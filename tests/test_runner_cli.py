"""The CLI experiment runner."""

import pytest

from repro.experiments import runner


def test_list_knows_every_experiment(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table5", "fig8", "fig13", "ablations"):
        assert name in out


def test_registry_covers_all_paper_artifacts():
    # 5 tables + 7 figures + ablations + the recsys workload
    assert len(runner.EXPERIMENTS) == 14
    for name, (module, _) in runner.EXPERIMENTS.items():
        assert hasattr(module, "run")
        assert hasattr(module, "report")
        assert hasattr(module, "check_shape")


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        runner.main(["table99"])


def test_no_args_is_an_error():
    with pytest.raises(SystemExit):
        runner.main([])


def test_runs_a_fast_experiment(capsys):
    assert runner.main(["table4", "--no-report"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out
    assert "shape check passed" in out
    assert "run report" not in out
