"""Pipelined prefetch schedule: bit-identical math, lower simulated time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.trainer import ClusterTrainer
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.train import WholeGraphTrainer


def _run_trainer(dataset, overlap, epochs=2):
    store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=3, batch_size=32, fanouts=[5, 5],
        hidden=32, overlap=overlap,
    )
    stats = [trainer.train_epoch() for _ in range(epochs)]
    weights = [p.data.copy() for p in trainer.model.parameters()]
    return stats, weights, trainer.evaluate()


def test_overlap_bit_identical_and_faster(medium_dataset):
    s_seq, w_seq, acc_seq = _run_trainer(medium_dataset, overlap=False)
    s_pipe, w_pipe, acc_pipe = _run_trainer(medium_dataset, overlap=True)
    for a, b in zip(s_seq, s_pipe):
        assert a.mean_loss == b.mean_loss  # bit-for-bit, not allclose
        assert a.iterations == b.iterations > 1
        assert b.epoch_time < a.epoch_time
        # the pipeline can at best hide the smaller of the two halves
        assert b.epoch_time >= a.epoch_time / 2
    assert all(np.array_equal(x, y) for x, y in zip(w_seq, w_pipe))
    assert acc_seq == acc_pipe


def test_overlap_phase_totals_record_full_work(medium_dataset):
    """Phase totals still report the un-overlapped per-phase work."""
    store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=3, batch_size=32, fanouts=[5, 5],
        hidden=32, overlap=True,
    )
    stats = trainer.train_epoch()
    assert stats.times.sample > 0
    assert stats.times.gather > 0
    assert stats.times.train > 0
    # overlap means wall time < sum of the recorded phase work (gradient
    # sync is accounted separately under its own allreduce phases)
    assert stats.epoch_time < (
        stats.times.total + stats.allreduce + stats.allreduce_wait
    )


def test_overlap_per_epoch_override(medium_dataset):
    store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=3, batch_size=32, fanouts=[5, 5],
        hidden=32, overlap=False,
    )
    seq = trainer.train_epoch()
    pipe = trainer.train_epoch(overlap=True)
    assert pipe.epoch_time < seq.epoch_time


def test_overlap_rejects_all_ranks_mode(small_store):
    with pytest.raises(ValueError):
        WholeGraphTrainer(
            small_store, "graphsage", compute_ranks="all", overlap=True
        )


def test_cluster_overlap_equivalence(medium_dataset):
    def run(overlap):
        tr = ClusterTrainer(
            medium_dataset, num_machine_nodes=2, model_name="graphsage",
            seed=3, batch_size=32, fanouts=[5, 5], hidden=32,
            overlap=overlap,
        )
        stats = [tr.train_epoch() for _ in range(2)]
        tr.assert_in_sync()
        weights = [p.data.copy() for p in tr.models[0].parameters()]
        return stats, weights, tr.evaluate()

    s_seq, w_seq, acc_seq = run(False)
    s_pipe, w_pipe, acc_pipe = run(True)
    for a, b in zip(s_seq, s_pipe):
        assert a["mean_loss"] == b["mean_loss"]
        assert b["epoch_time"] < a["epoch_time"]
    assert all(np.array_equal(x, y) for x, y in zip(w_seq, w_pipe))
    assert acc_seq == acc_pipe
