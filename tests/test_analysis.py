"""Tests for the performance analyzer (repro.telemetry.analysis).

The acceptance criteria of the analysis subsystem:

- the causal critical path tiles the timeline exactly: ``covered`` equals
  the makespan bit for bit, and on real training runs the makespan equals
  the trainer's reported ``epoch_time``;
- the hidden/exposed grad-sync split reconciles with the metrics ledgers
  *and* the per-bucket lane spans;
- the what-if replay is honest: removing an injected straggler recovers
  the clean run's epoch time within tolerance, and the knob ranks first;
- everything is deterministic — the same seed yields a byte-identical
  scrubbed AnalysisReport;
- span ``args`` payload metadata agrees with the metrics registry.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given

from repro.faults import FaultPlan, StragglerGpu
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.serve import (
    FrozenModel,
    InferenceEngine,
    MicroBatcher,
    synthesize_requests,
)
from repro.telemetry import metrics
from repro.telemetry.analysis import (
    analyze_node,
    analyze_report,
    attribute_regression,
    critical_path,
    default_knobs,
    overlap_report,
    render_text,
    replay_makespan,
    whatif_ranking,
)
from repro.telemetry.analysis.__main__ import main as analysis_main
from repro.train import WholeGraphTrainer
from repro.utils.rng import spawn_rng

from tests.test_sim_streams import _run_program, stream_programs

TRAIN_KW = dict(batch_size=32, fanouts=[5, 5], hidden=32)


def _trainer(dataset, plan=None, overlap=False, **kw):
    store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=3, overlap=overlap, fault_plan=plan,
        **TRAIN_KW, **kw,
    )
    # drop the store-build spans so the epoch starts at t=0 and the path
    # makespan is comparable to the trainer's epoch_time
    store.node.reset_clocks()
    return trainer


# ---------------------------------------------------------------------------
# critical path: exactness on real engines
# ---------------------------------------------------------------------------


class TestCriticalPathExactness:
    def test_makespan_equals_epoch_time_clean(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset)
        stats = trainer.train_epoch(max_iterations=4)
        report = analyze_node(trainer.node, metrics=registry, name="clean")
        assert report.makespan == stats.epoch_time
        assert report.critical_path["covered"] == report.makespan
        assert report.critical_path["epoch_time"] == stats.epoch_time

    def test_makespan_equals_epoch_time_overlap(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset, overlap=True)
        stats = trainer.train_epoch(max_iterations=4)
        report = analyze_node(trainer.node, metrics=registry, name="overlap")
        assert report.makespan == stats.epoch_time
        assert report.critical_path["covered"] == report.makespan

    def test_makespan_equals_epoch_time_faulted(self, registry, medium_dataset):
        plan = FaultPlan(events=[StragglerGpu(rank=3, slowdown=2.0)], seed=1)
        trainer = _trainer(medium_dataset, plan=plan)
        stats = trainer.train_epoch(max_iterations=4)
        report = analyze_node(trainer.node, metrics=registry, name="faulted")
        assert report.makespan == stats.epoch_time
        assert report.critical_path["covered"] == report.makespan

    def test_blame_tables_sum_to_makespan(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset, overlap=True)
        trainer.train_epoch(max_iterations=4)
        report = analyze_node(trainer.node, metrics=registry)
        for table in ("blame_phase", "blame_device", "blame_category"):
            total = sum(report.critical_path[table].values())
            assert total == pytest.approx(report.makespan, rel=1e-9)

    def test_slack_rows_present(self, registry, medium_dataset):
        # SPMD charging makes a clean run's ranks identical (zero slack
        # everywhere); a straggler skews them, giving the non-straggling
        # ranks' spans real slack before each barrier
        plan = FaultPlan(events=[StragglerGpu(rank=3, slowdown=2.0)], seed=1)
        trainer = _trainer(medium_dataset, plan=plan)
        trainer.train_epoch(max_iterations=4)
        report = analyze_node(trainer.node, metrics=registry)
        rows = report.slack["top_slack"]
        assert rows, "expected off-path spans with positive slack"
        for row in rows:
            assert row["slack"] > 0.0
            assert row["device"] != "gpu3", (
                "the straggler's own spans are the tight ones"
            )


# ---------------------------------------------------------------------------
# property: the path tiles any random stream program exactly
# ---------------------------------------------------------------------------


@given(stream_programs())
def test_critical_path_covers_random_dag(program):
    """On an arbitrary scheduler DAG the path length equals the makespan."""
    _, _, events, streams = _run_program(program)
    if not streams:
        return
    timeline = streams[0].clock.timeline
    provenance = [streams[0].loop.provenance]
    cp = critical_path([timeline], provenance)
    makespan = max((sp.end for sp in timeline.spans), default=0.0)
    assert cp.makespan == makespan
    assert cp.covered == makespan
    # the path is contiguous in time: entries tile [0, makespan]
    entries = cp.entries
    if entries:
        assert entries[0].start == 0.0
        assert entries[-1].end == makespan
        for a, b in zip(entries, entries[1:]):
            assert a.end == b.start


@given(stream_programs())
def test_identity_replay_matches_makespan(program):
    """Replaying the DAG with no scaling reproduces the recorded makespan."""
    _, _, _, streams = _run_program(program)
    if not streams:
        return
    timeline = streams[0].clock.timeline
    makespan = max((sp.end for sp in timeline.spans), default=0.0)
    assert replay_makespan([timeline]) == pytest.approx(makespan, rel=1e-9)


# ---------------------------------------------------------------------------
# overlap: ledgers and lanes reconcile
# ---------------------------------------------------------------------------


class TestOverlapReconciliation:
    def test_grad_sync_ledger_consistent(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset, overlap=True)
        trainer.train_epoch(max_iterations=4)
        rep = overlap_report(registry, [trainer.node.timeline])
        gs = rep["grad_sync"]
        assert gs["ledger_consistent"]
        assert gs["reconciled"], (
            "lane per-bucket exposed/hidden split must match the ledgers"
        )
        assert gs["total"] == pytest.approx(
            gs["exposed"] + gs["hidden"], rel=1e-9
        )
        assert 0.0 <= gs["exposed_fraction"] <= 1.0

    def test_slow_backward_hides_communication(self, registry,
                                               medium_dataset):
        # a straggler's 2x backward stretches the overlap window until the
        # bucketed all-reduce hides completely behind it
        plan = FaultPlan(events=[StragglerGpu(rank=3, slowdown=2.0)], seed=1)
        trainer = _trainer(medium_dataset, plan=plan)
        trainer.train_epoch(max_iterations=4)
        gs = overlap_report(registry, [trainer.node.timeline])["grad_sync"]
        assert gs["hidden"] > 0.0
        assert gs["exposed_fraction"] < 1.0
        assert gs["ledger_consistent"] and gs["reconciled"]


# ---------------------------------------------------------------------------
# what-if: the straggler knob tells the truth
# ---------------------------------------------------------------------------


class TestWhatIf:
    def test_no_straggler_recovers_clean_epoch(self, registry, medium_dataset):
        # overlap_grad_sync=False keeps the all-reduce as exposed spans in
        # both runs — replay can undo dilation exactly, but cannot re-expose
        # comm the straggler's longer backward happened to hide
        clean = _trainer(medium_dataset, overlap_grad_sync=False)
        clean_stats = clean.train_epoch(max_iterations=4)

        plan = FaultPlan(events=[StragglerGpu(rank=3, slowdown=2.0)], seed=1)
        faulted = _trainer(medium_dataset, plan=plan,
                           overlap_grad_sync=False)
        faulted_stats = faulted.train_epoch(max_iterations=4)
        assert faulted_stats.epoch_time > clean_stats.epoch_time

        ranking = whatif_ranking([faulted.node.timeline])
        scenarios = {row["knob"]: row for row in ranking["scenarios"]}
        assert "no_straggler" in scenarios
        # the dominant saving: removing the straggler ranks first
        assert ranking["scenarios"][0]["knob"] == "no_straggler"
        # and its replayed epoch time lands near the clean run's
        recovered = scenarios["no_straggler"]["epoch_time"]
        assert recovered == pytest.approx(clean_stats.epoch_time, rel=0.05)

    def test_straggler_knob_absent_on_clean_runs(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset)
        trainer.train_epoch(max_iterations=4)
        names = {k.name for k in default_knobs([trainer.node.timeline])}
        assert "no_straggler" not in names
        assert {"gather_2x", "nvlink_bw_2x", "compute_2x"} <= names

    def test_scalings_never_slow_the_replay(self, registry, medium_dataset):
        trainer = _trainer(medium_dataset, overlap=True)
        trainer.train_epoch(max_iterations=4)
        ranking = whatif_ranking([trainer.node.timeline])
        for row in ranking["scenarios"]:
            assert row["delta_seconds"] >= -1e-12


# ---------------------------------------------------------------------------
# determinism: byte-identical reports
# ---------------------------------------------------------------------------


def test_analysis_report_is_deterministic(medium_dataset):
    def run():
        saved = metrics.set_registry(metrics.MetricsRegistry())
        try:
            trainer = _trainer(medium_dataset, overlap=True)
            trainer.train_epoch(max_iterations=4)
            report = analyze_node(
                trainer.node, metrics=metrics.get_registry(), name="det"
            )
            return report.to_json()
        finally:
            metrics.set_registry(saved)

    assert run() == run()


# ---------------------------------------------------------------------------
# regression attribution (diff)
# ---------------------------------------------------------------------------


class TestAttributeRegression:
    BASE = {"epoch_time": 1.0, "phase_totals": {"gather": 0.4, "train": 0.6}}
    CAND = {"epoch_time": 1.5, "phase_totals": {"gather": 0.8, "train": 0.7}}

    def test_worst_phase_and_share(self):
        out = attribute_regression(self.BASE, self.CAND)
        assert out["total_delta"] == pytest.approx(0.5)
        assert out["worst"]["phase"] == "gather"
        assert out["worst"]["share"] == pytest.approx(0.4 / 0.5)

    def test_no_regression_gives_no_worst(self):
        out = attribute_regression(self.CAND, self.BASE)
        assert out["worst"] is None
        assert out["total_delta"] == pytest.approx(-0.5)

    def test_devices_block_from_analysis_reports(self):
        base = {
            "makespan": 1.0,
            "critical_path": {"blame_phase": {"a": 1.0},
                              "blame_device": {"gpu0": 1.0}},
        }
        cand = {
            "makespan": 2.0,
            "critical_path": {"blame_phase": {"a": 2.0},
                              "blame_device": {"gpu0": 2.0}},
        }
        out = attribute_regression(base, cand)
        assert out["devices"][0]["phase"] == "gpu0"
        assert out["devices"][0]["delta"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# serve: opt-in analysis leaves the report untouched and blames the tail
# ---------------------------------------------------------------------------


def _serve(dataset, analysis: bool):
    store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
    trainer = WholeGraphTrainer(store, "graphsage", seed=3, **TRAIN_KW)
    trainer.train_epoch(max_iterations=2)
    model = FrozenModel(trainer.model)
    store.node.reset_clocks()
    engine = InferenceEngine(
        store, model=model, fanouts=[5, 5],
        batcher=MicroBatcher(max_batch_size=8, max_wait_us=400.0),
        routing="round_robin",
    )
    requests = synthesize_requests(
        200, rate_qps=50_000.0, node_pool=store.test_nodes,
        rng=spawn_rng(21, "serve-analysis"), process="poisson",
    )
    return engine.serve(requests, seed=9, analysis=analysis)


class TestServeAnalysis:
    def test_analysis_does_not_perturb_the_report(self, registry,
                                                  medium_dataset):
        plain = _serve(medium_dataset, analysis=False).report.to_dict()
        registry.reset()
        analyzed = _serve(medium_dataset, analysis=True).report.to_dict()
        blame = analyzed.pop("latency_blame")
        series = analyzed.pop("timeseries")
        assert blame is not None and series is not None
        assert "latency_blame" not in plain and "timeseries" not in plain
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            analyzed, sort_keys=True
        )

    def test_p99_blame_structure(self, registry, medium_dataset):
        blame = _serve(medium_dataset, analysis=True).report.latency_blame
        tail = blame["p99_tail"]
        stages = ("queue_wait", "sample", "gather", "infer", "other")
        assert set(tail["seconds"]) == set(stages)
        assert sum(tail["fraction"].values()) == pytest.approx(1.0, abs=1e-9)
        assert tail["worst_stage"] in stages
        assert blame["p99_latency"] >= blame["all"]["mean_latency"]

    def test_timeseries_windows_tile_the_run(self, registry, medium_dataset):
        report = _serve(medium_dataset, analysis=True).report
        series = report.timeseries
        windows = series["windows"]
        assert len(windows) == 20
        assert windows[-1]["t_end"] == pytest.approx(
            report.duration_seconds, rel=1e-9
        )
        assert sum(w["completed"] for w in windows) == report.num_requests


# ---------------------------------------------------------------------------
# span args agree with the metrics registry
# ---------------------------------------------------------------------------


def test_gather_span_args_match_link_ledger(registry, medium_dataset):
    """Per-span byte args sum to the per-link byte counters exactly."""
    store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
    registry.reset()
    store.node.timeline.clear()
    rng = spawn_rng(5, "span-args")
    for rank in range(store.node.num_gpus):
        rows = rng.integers(0, medium_dataset.num_nodes, size=256)
        store.feature_tensor.gather(rows, rank=rank)
    span_bytes = span_remote = 0
    for sp in store.node.timeline.spans:
        if sp.category == "gather" and sp.args:
            span_bytes += sp.args["bytes"]
            span_remote += sp.args["remote_bytes"]
    nvlink = registry.total("gather_link_bytes_total", link="nvlink")
    hbm = registry.total("gather_link_bytes_total", link="hbm")
    assert span_remote == nvlink
    assert span_bytes - span_remote == hbm


def test_grad_sync_lane_args_match_ledger(registry, medium_dataset):
    """Per-bucket lane exposed/hidden args sum to the grad-sync ledgers."""
    trainer = _trainer(medium_dataset, overlap=True)
    trainer.train_epoch(max_iterations=4)
    exposed = hidden = 0.0
    for sp in trainer.node.timeline.spans:
        if sp.phase == "allreduce_bucket" and sp.args:
            exposed += sp.args["exposed_s"]
            hidden += sp.args["hidden_s"]
    assert exposed == pytest.approx(
        registry.total("grad_sync_exposed_seconds_total"), rel=1e-9
    )
    assert hidden == pytest.approx(
        registry.total("grad_sync_hidden_seconds_total"), rel=1e-9
    )


def test_straggler_spans_carry_dilation(registry, medium_dataset):
    plan = FaultPlan(events=[StragglerGpu(rank=3, slowdown=2.0)], seed=1)
    trainer = _trainer(medium_dataset, plan=plan)
    trainer.train_epoch(max_iterations=4)
    dilations = [
        sp.args["dilation"]
        for sp in trainer.node.timeline.spans
        if sp.args and "dilation" in sp.args
    ]
    assert dilations, "straggler-dilated spans must be marked"
    assert all(d == pytest.approx(2.0) for d in dilations)


# ---------------------------------------------------------------------------
# report mode + CLI
# ---------------------------------------------------------------------------


def _run_manifest(registry, dataset, name="t5"):
    trainer = _trainer(dataset, overlap=True)
    trainer.train_epoch(max_iterations=4)
    return trainer.run_report(name=name).to_dict()


class TestReportModeAndCli:
    def test_analyze_report_blames_phases(self, registry, medium_dataset):
        data = _run_manifest(registry, medium_dataset)
        report = analyze_report(data)
        assert report.mode == "report"
        assert report.critical_path["blame_phase"] == pytest.approx(
            data["phase_totals"]
        )
        assert report.whatif, "phase-arithmetic what-ifs expected"
        text = render_text(report)
        assert "critical path" in text and "what-if" in text

    def test_cli_writes_artifact_and_gates(self, registry, medium_dataset,
                                           tmp_path, capsys):
        data = _run_manifest(registry, medium_dataset)
        manifest = tmp_path / "run.json"
        manifest.write_text(json.dumps(data))

        rc = analysis_main([str(manifest), "--max-exposed-comm-frac", "1.0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert (tmp_path / "run.analysis.json").exists()
        assert "gate ok" in out

        rc = analysis_main([str(manifest), "--max-exposed-comm-frac", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "GATE FAILED" in out

    def test_cli_regression_attribution(self, registry, medium_dataset,
                                        tmp_path, capsys):
        data = _run_manifest(registry, medium_dataset)
        base = dict(data)
        base["phase_totals"] = {
            k: v * 0.5 for k, v in data["phase_totals"].items()
        }
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        base_path.write_text(json.dumps(base))
        cand_path.write_text(json.dumps(data))
        rc = analysis_main([str(cand_path), "--baseline", str(base_path)])
        assert rc == 0
        report = json.loads(
            (tmp_path / "cand.analysis.json").read_text()
        )
        worst = report["regression"]["worst"]
        assert worst is not None and worst["share"] > 0.0


def test_compare_runs_names_worst_regressor(tmp_path, capsys):
    import importlib.util
    import pathlib

    spec = importlib.util.spec_from_file_location(
        "compare_runs",
        pathlib.Path(__file__).resolve().parent.parent
        / "benchmarks" / "compare_runs.py",
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    base = {"name": "r", "phase_totals": {"gather": 0.4, "train": 0.6},
            "epoch_time": 1.0}
    cand = {"name": "r", "phase_totals": {"gather": 0.9, "train": 0.7},
            "epoch_time": 1.6}
    bp, cp = tmp_path / "b.json", tmp_path / "c.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cand))
    rc = mod.main([str(bp), str(cp)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "worst regressor: 'gather'" in out
    assert "83% of the growth" in out
