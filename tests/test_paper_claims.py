"""Cross-cutting assertions of specific sentences in the paper."""

import numpy as np
import pytest

from repro import config
from repro.dsm import WholeMemory
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode, costmodel


def test_dsm_setup_is_tens_to_two_hundred_ms():
    """§III-B: setting up one piece of distributed shared memory takes
    'tens to one or two hundred of milliseconds, depending on the memory
    size' — and happens once, before training."""
    node = SimNode()
    small = WholeMemory(node, 1 << 30, tag="a")  # 1 GB
    big = WholeMemory(node, 64 << 30, tag="b")  # 64 GB
    assert 5e-3 < small.setup_time < 0.25
    assert small.setup_time < big.setup_time < 0.25


def test_steady_state_gather_needs_no_setup(small_dataset):
    """After construction, training-loop gathers charge no dsm_setup."""
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    node.reset_clocks()
    store.gather_features(store.train_nodes[:64], rank=0)
    assert node.timeline.phase_total("dsm_setup") == 0


def test_paper_bandwidth_headline_numbers():
    """§III-B: NVLink 300 GB/s unidirectional; PCIe 4.0 x16 32 GB/s with
    2 GPUs per uplink -> 16 GB/s each; theoretical speedup 18.75x."""
    assert config.NVLINK_UNIDIR_BW == 300 * config.GB
    assert config.PCIE_GEN4_X16_BW == 32 * config.GB
    assert config.PCIE_BW_PER_GPU_SHARED == 16 * config.GB
    assert config.NVLINK_UNIDIR_BW / config.PCIE_BW_PER_GPU_SHARED == 18.75


def test_paper_algobw_cap():
    """§IV-C1: max AlgoBW = 300 / (7/8) ≈ 343 GB/s on 8 GPUs."""
    assert config.NVLINK_MAX_ALGO_BW == pytest.approx(
        343 * config.GB, rel=0.01
    )


def test_pointer_table_cost_is_negligible():
    """§III-B: the memory pointer table 'will not hurt scalability' —
    64 bytes on 8 GPUs, independent of the allocation size."""
    node = SimNode()
    small = WholeMemory(node, 1 << 20, tag="s")
    big = WholeMemory(node, 8 << 30, tag="b")
    assert small.pointer_tables[0].nbytes == 64
    assert big.pointer_tables[0].nbytes == 64


def test_training_hyperparameters_match_paper():
    """§IV / artifact appendix: batch 512, 3 layers, hidden 256,
    sample count 30, GAT 4 heads."""
    assert config.BATCH_SIZE == 512
    assert config.NUM_LAYERS == 3
    assert config.HIDDEN_SIZE == 256
    assert config.FANOUT == 30
    assert config.GAT_NUM_HEADS == 4


def test_papers100m_memory_budget_fits_a100():
    """§IV-B: structure (3 GB) + features (6.6 GB) + training (~20 GB)
    per GPU fits the 40 GB A100 with headroom."""
    from repro.experiments.table4_memory import run

    rows = run()
    total = sum(r.per_gpu_gb for r in rows)
    assert total < config.GPU_MEMORY_CAPACITY / config.GB


def test_undirected_storage_doubles_edges(small_dataset):
    """§IV-B: ogbn-papers100M's 1.6B edges are stored as 3.2B directed
    edges — the builder's undirected mode stores both directions."""
    g = small_dataset.graph
    src, dst = g.subgraph_edges()
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in pairs for (a, b) in pairs)


def test_wholegraph_faster_than_um_by_table1_margin():
    """§II-B's conclusion: P2P latency ~1 µs order, UM 20-35 µs — the
    gap that makes UM unusable as the DSM substrate."""
    for gb in (8, 128):
        ratio = costmodel.um_access_latency(gb * config.GB) / (
            costmodel.p2p_access_latency(gb * config.GB)
        )
        assert 12 < ratio < 30
