"""Equivalence tests for the vectorized hot-path kernels.

Each vectorized kernel is checked against a straightforward loop reference
(the shape of the pre-optimization code): the F-order ``segment_sum``
accumulator must be *bitwise* identical, the gather reply assembly must
reproduce the loop-built replies and byte accounting, and the batched
hash-table probe must resolve exactly like the slot-at-a-time loop —
including wrap-around chains and missing keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsm.comm import Communicator
from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import SimNode
from repro.ops.gather import distributed_memory_gather
from repro.ops.hashtable import EMPTY_KEY, GpuHashTable
from repro.ops.segment import segment_sum

# ---------------------------------------------------------------------------
# segment_sum: F-order accumulator is bit-identical to the C-order reference
# ---------------------------------------------------------------------------


def _segment_sum_reference(values: np.ndarray, indptr: np.ndarray):
    """The pre-optimization implementation (C-order zeros + cumsum)."""
    values = np.asarray(values)
    indptr = np.asarray(indptr, dtype=np.int64)
    n = indptr.shape[0] - 1
    if values.shape[0] == 0 or n == 0:
        return np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    acc_dtype = np.float64 if values.dtype.kind == "f" else np.int64
    cs = np.zeros((values.shape[0] + 1,) + values.shape[1:], dtype=acc_dtype)
    np.cumsum(values, axis=0, dtype=acc_dtype, out=cs[1:])
    out = cs[indptr[1:]] - cs[indptr[:-1]]
    return out.astype(values.dtype, copy=False)


def _random_indptr(rng, num_edges, num_segments):
    cuts = np.sort(rng.integers(0, num_edges + 1, size=num_segments - 1))
    return np.concatenate(([0], cuts, [num_edges])).astype(np.int64)


@pytest.mark.parametrize("shape", [(500,), (500, 7), (333, 4, 3)])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_segment_sum_bitwise_matches_reference(seeded_rng, shape, dtype):
    values = seeded_rng.standard_normal(shape).astype(dtype)
    indptr = _random_indptr(seeded_rng, shape[0], 40)
    got = segment_sum(values, indptr)
    ref = _segment_sum_reference(values, indptr)
    # bitwise, not approx: compare the raw bit patterns
    assert got.dtype == ref.dtype
    assert np.array_equal(
        got.view(np.uint32 if dtype == np.float32 else np.uint64),
        ref.view(np.uint32 if dtype == np.float32 else np.uint64),
    )


def test_segment_sum_bitwise_matches_reference_int(seeded_rng):
    values = seeded_rng.integers(-100, 100, size=(400, 5), dtype=np.int64)
    indptr = _random_indptr(seeded_rng, 400, 17)
    assert np.array_equal(
        segment_sum(values, indptr), _segment_sum_reference(values, indptr)
    )


def test_segment_sum_empty_segments_and_edges():
    out = segment_sum(np.zeros((0, 3), dtype=np.float32), [0, 0, 0])
    assert out.shape == (2, 3)
    assert np.all(out == 0)


# ---------------------------------------------------------------------------
# gather: vectorized reply assembly vs loop reference
# ---------------------------------------------------------------------------


def _loop_reference_gather(tensor, per_rank_rows):
    """Steps 3-5 of the NCCL gather as the original per-rank loops, run
    functionally (no clocks): returns (results, reply_bytes,
    remote_reply_bytes)."""
    nr = tensor.node.num_gpus
    buckets, orders = [], []
    for rows in per_rank_rows:
        rows = np.asarray(rows, dtype=np.int64)
        owners, local = tensor._owners_and_local(rows)
        order = np.argsort(owners, kind="stable")
        splits = np.cumsum(np.bincount(owners, minlength=nr))[:-1]
        buckets.append(np.split(local[order], splits))
        orders.append(np.split(order, splits))
    # transpose: id_requests[home][requester]
    id_requests = [
        [buckets[req][home] for req in range(nr)] for home in range(nr)
    ]
    replies = [[None] * nr for _ in range(nr)]
    for home in range(nr):
        part = tensor.local_part(home)
        for requester in range(nr):
            replies[home][requester] = part[id_requests[home][requester]]
    feature_replies = [
        [replies[home][req] for home in range(nr)] for req in range(nr)
    ]
    reply_bytes = np.zeros(nr)
    remote = np.zeros(nr)
    for requester in range(nr):
        for home in range(nr):
            nbytes = feature_replies[requester][home].nbytes
            reply_bytes[requester] += nbytes
            if home != requester:
                remote[requester] += nbytes
    results = []
    for rank, rows in enumerate(per_rank_rows):
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.size, tensor.num_cols), dtype=tensor.dtype)
        for home in range(nr):
            pos = orders[rank][home]
            if pos.size:
                out[pos] = feature_replies[rank][home]
        results.append(out)
    return results, reply_bytes, remote


@pytest.fixture
def tensor(registry):
    node = SimNode()
    rng = np.random.default_rng(3)
    host = rng.standard_normal((512, 16)).astype(np.float32)
    wt = WholeTensor(node, 512, 16, tag="feat", charge_setup=False)
    wt.load_from_host(host)
    return node, wt, host


def test_distributed_gather_matches_loop_reference(tensor, seeded_rng):
    node, wt, host = tensor
    nr = node.num_gpus
    per_rank_rows = [
        seeded_rng.integers(0, 512, size=seeded_rng.integers(1, 200))
        for _ in range(nr)
    ]
    ref_results, ref_bytes, ref_remote = _loop_reference_gather(
        wt, per_rank_rows
    )
    results, trace = distributed_memory_gather(
        wt, per_rank_rows, Communicator(node)
    )
    for got, ref, rows in zip(results, ref_results, per_rank_rows):
        assert np.array_equal(got, ref)
        # and both equal the direct row read
        assert np.array_equal(got, host[np.asarray(rows)])
    assert trace.step4_bytes_per_rank == float(ref_bytes.mean())
    assert trace.step4_remote_bytes_per_rank == float(ref_remote.mean())


def test_distributed_gather_with_empty_and_skewed_requests(tensor):
    node, wt, host = tensor
    nr = node.num_gpus
    # rank 0 asks for a handful (with repeats), the rest ask for nothing
    per_rank_rows = [np.array([5, 5, 17, 400, 5], dtype=np.int64)] + [
        np.array([], dtype=np.int64) for _ in range(nr - 1)
    ]
    results, _ = distributed_memory_gather(
        wt, per_rank_rows, Communicator(node)
    )
    assert np.array_equal(results[0], host[per_rank_rows[0]])
    for r in range(1, nr):
        assert results[r].shape == (0, wt.num_cols)


# ---------------------------------------------------------------------------
# hash table: batched window probe vs slot-at-a-time reference
# ---------------------------------------------------------------------------


def _loop_reference_lookup(table, keys):
    """The original one-slot-per-round probe loop."""
    keys = np.asarray(keys, dtype=np.int64).ravel()
    vals = np.full(keys.shape[0], EMPTY_KEY, dtype=np.int64)
    found = np.zeros(keys.shape[0], dtype=bool)
    if keys.size == 0:
        return vals, found
    pending = np.arange(keys.shape[0], dtype=np.int64)
    probe = table._home_slot(keys)
    for _ in range(table.capacity):
        if pending.size == 0:
            break
        cur = probe[pending]
        slot_keys = table.keys[cur]
        hit = slot_keys == keys[pending]
        vals[pending[hit]] = table.values[cur[hit]]
        found[pending[hit]] = True
        miss = slot_keys == EMPTY_KEY
        resolved = hit | miss
        nxt = pending[~resolved]
        probe[nxt] = (probe[nxt] + 1) % table.capacity
        pending = nxt
    return vals, found


@pytest.mark.parametrize("bucket_size", [4, 16, 128])
@pytest.mark.parametrize("load", [0.3, 0.9])
def test_lookup_matches_slot_at_a_time_reference(
    seeded_rng, bucket_size, load
):
    table = GpuHashTable(256, bucket_size=bucket_size, seed=1)
    keys = seeded_rng.choice(10_000, size=int(table.capacity * load),
                             replace=False).astype(np.int64)
    table.insert(keys, np.arange(keys.size))
    # half present, half absent, with duplicates
    queries = np.concatenate([
        seeded_rng.choice(keys, size=200),
        seeded_rng.integers(10_000, 20_000, size=200),
    ])
    got_vals, got_found = table.lookup(queries)
    ref_vals, ref_found = _loop_reference_lookup(table, queries)
    assert np.array_equal(got_vals, ref_vals)
    assert np.array_equal(got_found, ref_found)


def test_lookup_wraparound_chain(seeded_rng):
    """Chains that wrap past the end of the slot array resolve the same."""
    table = GpuHashTable(8, bucket_size=4, seed=0)
    keys = np.arange(100, 100 + table.capacity - 1, dtype=np.int64)
    table.insert(keys, np.arange(keys.size))
    queries = np.concatenate([keys, [999_999]])
    got_vals, got_found = table.lookup(queries)
    ref_vals, ref_found = _loop_reference_lookup(table, queries)
    assert np.array_equal(got_vals, ref_vals)
    assert np.array_equal(got_found, ref_found)
    assert bool(got_found[-1]) is False


def test_lookup_on_full_table_terminates(seeded_rng):
    """A completely full table of foreign keys must not loop forever."""
    table = GpuHashTable(8, bucket_size=8, seed=0)
    keys = np.arange(50, 50 + table.capacity, dtype=np.int64)
    table.insert(keys, np.arange(keys.size))
    vals, found = table.lookup(np.array([123_456]))
    ref_vals, ref_found = _loop_reference_lookup(
        table, np.array([123_456])
    )
    assert np.array_equal(vals, ref_vals)
    assert np.array_equal(found, ref_found)
    assert not found[0]


def test_lookup_empty_batch():
    table = GpuHashTable(16)
    vals, found = table.lookup(np.array([], dtype=np.int64))
    assert vals.size == 0 and found.size == 0


# ---------------------------------------------------------------------------
# sampler indptr preallocation
# ---------------------------------------------------------------------------


def test_sampler_block_indptr_structure(small_store, registry):
    from repro.ops.neighbor_sampler import NeighborSampler

    sampler = NeighborSampler(small_store, [5, 3], charge=False)
    rng = np.random.default_rng(1)
    seeds = rng.choice(small_store.num_nodes, size=64, replace=False)
    sub = sampler.sample(np.sort(seeds), 0, rng)
    for block in sub.blocks:
        indptr = block.indptr
        assert indptr.dtype == np.int64
        assert indptr[0] == 0
        assert np.all(np.diff(indptr) >= 0)
        assert indptr[-1] == block.indices.shape[0]
        assert indptr.shape[0] == block.num_targets + 1
