"""Training pipeline, trainer modes and data-parallel synchronisation."""

import numpy as np
import pytest

from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.nn import Adam, build_model
from repro.ops.neighbor_sampler import NeighborSampler
from repro.train import WholeGraphTrainer
from repro.train.ddp import DistributedDataParallel, charge_allreduce
from repro.train.metrics import PhaseTimes, accuracy
from repro.train.pipeline import run_iteration
from repro.dsm.comm import Communicator


def make_trainer(dataset, model_name="graphsage", **kw):
    node = SimNode()
    store = MultiGpuGraphStore(node, dataset, seed=0)
    defaults = dict(seed=0, batch_size=32, fanouts=[5, 5], hidden=16,
                    num_layers=2, lr=0.02, dropout=0.0)
    defaults.update(kw)
    return WholeGraphTrainer(store, model_name, **defaults)


def test_accuracy_metric():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
    assert accuracy(np.zeros((0, 2)), np.zeros(0)) == 0.0


def test_phase_times_arithmetic():
    a = PhaseTimes(1.0, 2.0, 3.0)
    a += PhaseTimes(0.5, 0.5, 0.5)
    assert a.total == pytest.approx(7.5)
    assert a.as_dict() == {"sample": 1.5, "gather": 2.5, "train": 3.5}


def test_run_iteration_phases_and_loss(small_dataset, rng):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    sampler = NeighborSampler(store, [5, 5])
    model = build_model("gcn", store.feature_dim, store.num_classes, rng,
                        hidden=8, num_layers=2)
    opt = Adam(model.parameters(), lr=0.01)
    res = run_iteration(store, sampler, model, store.train_nodes[:32], 0,
                        rng, optimizer=opt)
    assert res.loss > 0
    assert res.times.sample > 0
    assert res.times.gather > 0
    assert res.times.train > 0
    assert res.num_input_nodes >= 32


def test_run_iteration_inference_mode_skips_grads(small_dataset, rng):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    sampler = NeighborSampler(store, [5])
    model = build_model("gcn", store.feature_dim, store.num_classes, rng,
                        hidden=8, num_layers=1)
    run_iteration(store, sampler, model, store.train_nodes[:8], 0, rng)
    assert all(p.grad is None for p in model.parameters())


def test_trainer_loss_decreases(small_dataset):
    tr = make_trainer(small_dataset)
    first = tr.train_epoch().mean_loss
    for _ in range(3):
        last = tr.train_epoch().mean_loss
    assert last < first


def test_trainer_reaches_high_accuracy(small_dataset):
    tr = make_trainer(small_dataset)
    for _ in range(8):
        tr.train_epoch()
    assert tr.evaluate() > 0.85
    assert tr.evaluate(tr.store.test_nodes) > 0.8


def test_trainer_epoch_stats_bookkeeping(small_dataset):
    tr = make_trainer(small_dataset)
    s0 = tr.train_epoch(max_iterations=2)
    s1 = tr.train_epoch(max_iterations=2)
    assert (s0.epoch, s1.epoch) == (0, 1)
    assert s0.iterations == 2
    assert len(tr.history) == 2
    assert s0.times.total <= s0.epoch_time * 1.01
    row = s0.as_row()
    assert {"epoch", "loss", "iters", "epoch_time",
            "sample", "gather", "train"} <= set(row)


def test_trainer_charges_all_ranks_symmetrically(small_dataset):
    tr = make_trainer(small_dataset)
    tr.node.reset_clocks()
    tr.train_epoch(max_iterations=2)
    times = [c.now for c in tr.node.gpu_clock]
    assert max(times) - min(times) < 1e-9


def test_trainer_layer_cost_factor_scales_train_phase(small_dataset):
    t1 = make_trainer(small_dataset)
    t3 = make_trainer(small_dataset, layer_cost_factor=3.0)
    s1 = t1.train_epoch(max_iterations=2)
    s3 = t3.train_epoch(max_iterations=2)
    assert s3.times.train == pytest.approx(3 * s1.times.train, rel=0.05)
    assert s3.times.sample == pytest.approx(s1.times.sample, rel=0.05)


def test_trainer_rejects_bad_mode(small_dataset):
    with pytest.raises(ValueError):
        make_trainer(small_dataset, compute_ranks="some")


def test_ddp_mode_keeps_replicas_in_sync(small_dataset):
    tr = make_trainer(small_dataset, compute_ranks="all", fanouts=[4],
                      num_layers=1, batch_size=64)
    tr.train_epoch(max_iterations=2)
    tr.ddp.assert_in_sync(atol=1e-4)


def test_ddp_gradient_averaging(rng):
    """All-reduced gradients equal the mean of per-replica gradients."""
    node = SimNode()
    comm = Communicator(node)
    replicas = [
        build_model("gcn", 4, 2, np.random.default_rng(r), hidden=4,
                    num_layers=1)
        for r in range(8)
    ]
    ddp = DistributedDataParallel(replicas, comm)
    grads = []
    for r, m in enumerate(replicas):
        for p in m.parameters():
            p.grad = np.full_like(p.data, float(r))
        grads.append(float(r))
    ddp.sync_gradients()
    expected = np.mean(grads)
    for m in replicas:
        for p in m.parameters():
            assert np.allclose(p.grad, expected)


def test_ddp_broadcasts_initial_weights(rng):
    node = SimNode()
    replicas = [
        build_model("gcn", 4, 2, np.random.default_rng(r), hidden=4,
                    num_layers=1)
        for r in range(8)
    ]
    DistributedDataParallel(replicas, Communicator(node))
    ref = replicas[0].state_dict()
    for m in replicas[1:]:
        for a, b in zip(ref, m.state_dict()):
            assert np.array_equal(a, b)


def test_charge_allreduce_advances_all_gpus():
    node = SimNode()
    t = charge_allreduce(node, 10 * 1024 * 1024)
    assert t > 0
    assert all(c.now == pytest.approx(t) for c in node.gpu_clock)
