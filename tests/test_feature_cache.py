"""Hot-row feature cache: functional equivalence + performance shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsm.feature_cache import CACHE_POLICIES, FeatureCache
from repro.dsm.whole_tensor import WholeTensor
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode


def _tensor(node, partition, num_rows=400, num_cols=8, seed=11):
    t = WholeTensor(
        node, num_rows, num_cols, dtype=np.float32, tag="t",
        charge_setup=False, partition=partition,
    )
    rng = np.random.default_rng(seed)
    t.load_from_host(
        rng.standard_normal((num_rows, num_cols)).astype(np.float32),
        phase="load",
    )
    return t


@pytest.mark.parametrize("partition", ["block", "cyclic"])
@pytest.mark.parametrize("policy", CACHE_POLICIES)
@pytest.mark.parametrize("ratio", [0.0, 0.1, 1.0])
def test_cached_gather_bit_identical(partition, policy, ratio):
    """Cached gathers return the exact bytes of the uncached path."""
    node = SimNode()
    tensor = _tensor(node, partition)
    rng = np.random.default_rng(3)
    degrees = rng.integers(1, 100, size=tensor.num_rows)
    cache = FeatureCache.from_ratio(
        tensor, ratio, policy=policy, degrees=degrees, charge_fill=False
    )
    for step in range(6):
        rows = rng.integers(0, tensor.num_rows, size=64)
        rank = step % node.num_gpus
        got = cache.gather(rows, rank)
        expect = tensor.gather_no_cost(rows)
        assert got.dtype == expect.dtype
        assert np.array_equal(got, expect)
    summary = cache.summary()
    assert summary["hits"] + summary["misses"] == 6 * 64
    if ratio == 0.0:
        assert summary["hits"] == 0
    if ratio == 1.0 and policy == "static":
        assert summary["misses"] == 0


@pytest.mark.parametrize("policy", CACHE_POLICIES)
def test_store_cached_features_match_uncached(small_dataset, policy):
    """The store-level gather path is bit-identical with a cache layered in."""
    plain = MultiGpuGraphStore(SimNode(), small_dataset, seed=0)
    cached = MultiGpuGraphStore(
        SimNode(), small_dataset, seed=0,
        cache_ratio=0.1, cache_policy=policy,
    )
    rng = np.random.default_rng(5)
    for _ in range(4):
        rows = np.unique(rng.integers(0, plain.num_nodes, size=200))
        a = plain.gather_features(rows, 0)
        b = cached.gather_features(rows, 0)
        assert np.array_equal(a, b)
    assert cached.feature_cache.summary()["gather_calls"] == 4


def test_cache_capacity_accounting_and_free():
    """Every rank reserves capacity_rows * row_bytes; free() releases it."""
    node = SimNode()
    tensor = _tensor(node, "block")
    before = [m.used for m in node.gpu_memory]
    cache = FeatureCache(
        tensor, capacity_rows=50, policy="clock", charge_fill=False
    )
    expected = 50 * tensor.row_bytes
    for m, b in zip(node.gpu_memory, before):
        assert m.used - b == expected
    cache.free()
    for m, b in zip(node.gpu_memory, before):
        assert m.used == b


def test_clock_policy_learns_repeated_rows():
    """A re-gathered working set becomes all-hits under the CLOCK policy."""
    node = SimNode()
    tensor = _tensor(node, "block")
    cache = FeatureCache(
        tensor, capacity_rows=100, policy="clock", charge_fill=False
    )
    rows = np.arange(80)
    cache.gather(rows, 0)
    assert cache.rank_stats(0)["hits"] == 0
    cache.gather(rows, 0)
    assert cache.rank_stats(0)["hits"] == 80
    assert np.array_equal(cache.cached_rows(0), rows)


def test_clock_eviction_keeps_capacity():
    """Inserting past capacity evicts instead of growing."""
    node = SimNode()
    tensor = _tensor(node, "block")
    cache = FeatureCache(
        tensor, capacity_rows=10, policy="clock", charge_fill=False
    )
    rng = np.random.default_rng(9)
    for _ in range(5):
        rows = rng.integers(0, tensor.num_rows, size=40)
        got = cache.gather(rows, 2)
        assert np.array_equal(got, tensor.gather_no_cost(rows))
    assert cache.cached_rows(2).size == 10


def test_power_law_hit_rate_and_gather_time():
    """Acceptance shape: on a power-law graph, a 10% degree-ordered cache
    serves >= 50% of sampled-frontier rows and cuts simulated gather time,
    with features staying bit-identical."""
    from repro.ops.neighbor_sampler import NeighborSampler

    ds = load_dataset("uk_domain", num_nodes=12000, seed=3)
    gather_times = {}
    hit_rate = None
    reference = {}
    for ratio in (0.0, 0.1):
        node = SimNode()
        store = MultiGpuGraphStore(node, ds, seed=0, cache_ratio=ratio)
        sampler = NeighborSampler(store, [5, 5], charge=False)
        rng = np.random.default_rng(17)
        node.reset_clocks()
        total = 0.0
        for it in range(6):
            seeds = rng.choice(store.train_nodes, size=64, replace=False)
            sg = sampler.sample(np.sort(seeds), 0, rng)
            t0 = node.gpu_clock[0].now
            x = store.gather_features(sg.input_nodes, 0)
            total += node.gpu_clock[0].now - t0
            if ratio == 0.0:
                reference[it] = x
            else:
                assert np.array_equal(x, reference[it])
        gather_times[ratio] = total
        if ratio:
            hit_rate = store.feature_cache.hit_rate
    assert hit_rate >= 0.5
    assert gather_times[0.1] < gather_times[0.0]


def test_telemetry_cache_report(small_dataset):
    from repro.telemetry import cache_report, per_rank_cache_stats

    store = MultiGpuGraphStore(
        SimNode(), small_dataset, seed=0, cache_ratio=0.2
    )
    rng = np.random.default_rng(2)
    for rank in range(3):
        store.gather_features(
            np.unique(rng.integers(0, store.num_nodes, size=100)), rank
        )
    per_rank = per_rank_cache_stats(store.feature_cache)
    assert len(per_rank) == store.node.num_gpus
    assert sum(r["gather_calls"] for r in per_rank) == 3
    report = cache_report(store.feature_cache)
    assert "hit rate" in report and "all" in report


def test_cache_requires_device_features(small_dataset):
    with pytest.raises(ValueError):
        MultiGpuGraphStore(
            SimNode(), small_dataset, seed=0,
            feature_location="host_pinned", cache_ratio=0.1,
        )
