"""Autograd engine: every op's gradient vs central finite differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, unbroadcast


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


def check_grad(build, x: np.ndarray, atol: float = 2e-2):
    """``build(Tensor) -> scalar Tensor``; compares grads to numeric."""
    t = Tensor(x, requires_grad=True)
    loss = build(t)
    loss.backward()
    num = numeric_grad(lambda: float(build(Tensor(x)).data), x)
    assert np.allclose(t.grad, num, atol=atol), (t.grad, num)


@pytest.fixture
def x(rng):
    return rng.standard_normal((4, 3)).astype(np.float32)


def test_add_mul_sub_grads(x, rng):
    y = rng.standard_normal((4, 3)).astype(np.float32)
    check_grad(lambda t: ((t + Tensor(y)) * t - t).sum(), x)


def test_broadcast_add_bias_grad(x):
    b = np.ones(3, dtype=np.float32)
    t = Tensor(x, requires_grad=True)
    bias = Tensor(b, requires_grad=True)
    (t + bias).sum().backward()
    assert np.allclose(bias.grad, np.full(3, 4.0))
    assert np.allclose(t.grad, np.ones((4, 3)))


def test_matmul_grad(x, rng):
    w = rng.standard_normal((3, 5)).astype(np.float32)
    check_grad(lambda t: (t @ Tensor(w)).sum(), x)
    wt = Tensor(w, requires_grad=True)
    (Tensor(x) @ wt).sum().backward()
    num = numeric_grad(
        lambda: float((Tensor(x) @ Tensor(w)).sum().data), w
    )
    assert np.allclose(wt.grad, num, atol=2e-2)


def test_div_pow_grads(x):
    xp = np.abs(x) + 1.0
    check_grad(lambda t: (t / Tensor(np.full_like(xp, 2.0))).sum(), xp)
    check_grad(lambda t: (t ** 2.0).sum(), xp)


def test_mean_and_axis_sum_grads(x):
    check_grad(lambda t: t.mean(), x)
    check_grad(lambda t: t.sum(axis=0).sum(), x)
    check_grad(lambda t: t.sum(axis=1, keepdims=True).sum(), x)


def test_reshape_grad(x):
    check_grad(lambda t: (t.reshape(2, 6) * 2.0).sum(), x)


def test_diamond_graph_accumulates(x):
    """y used twice: gradient contributions must add."""
    t = Tensor(x, requires_grad=True)
    y = t * 2.0
    (y + y).sum().backward()
    assert np.allclose(t.grad, np.full_like(x, 4.0))


def test_no_grad_tracking_when_not_required(x):
    t = Tensor(x)  # requires_grad False
    out = (t * 2.0).sum()
    assert not out.requires_grad
    assert out._backward is None


def test_backward_twice_accumulates(x):
    t = Tensor(x, requires_grad=True)
    loss = (t * 3.0).sum()
    loss.backward()
    first = t.grad.copy()
    loss2 = (t * 3.0).sum()
    loss2.backward()
    assert np.allclose(t.grad, 2 * first)


def test_zero_grad(x):
    t = Tensor(x, requires_grad=True)
    (t * 1.0).sum().backward()
    t.zero_grad()
    assert t.grad is None


def test_detach_breaks_graph(x):
    t = Tensor(x, requires_grad=True)
    d = (t * 2.0).detach()
    assert not d.requires_grad


def test_unbroadcast_shapes():
    g = np.ones((4, 3))
    assert unbroadcast(g, (3,)).shape == (3,)
    assert unbroadcast(g, (1, 3)).shape == (1, 3)
    assert unbroadcast(g, (4, 1)).shape == (4, 1)
    assert np.allclose(unbroadcast(g, (3,)), np.full(3, 4.0))


def test_deep_chain_no_recursion_limit():
    t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
    out = t
    for _ in range(3000):
        out = out * 1.0
    out.sum().backward()
    assert np.allclose(t.grad, np.ones(2))
