"""CSR structure invariants, builders and node relabelling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph


def edges_strategy(max_nodes=30, max_edges=120):
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=max_edges,
            ),
        )
    )


@given(edges_strategy())
def test_builder_produces_valid_csr(case):
    n, edges = case
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    g = from_edge_list(src, dst, n, undirected=True, dedup=True)
    g.validate()
    # undirected + dedup + no self loops: adjacency is symmetric
    pairs = set(zip(*g.subgraph_edges()))
    assert all((b, a) in pairs for (a, b) in pairs)
    assert all(a != b for (a, b) in pairs)


@given(edges_strategy())
def test_builder_dedup_removes_duplicates(case):
    n, edges = case
    if not edges:
        return
    src = np.array([e[0] for e in edges] * 2, dtype=np.int64)
    dst = np.array([e[1] for e in edges] * 2, dtype=np.int64)
    g = from_edge_list(src, dst, n, undirected=False, dedup=True,
                       remove_self_loops=False)
    pairs = list(zip(*g.subgraph_edges()))
    assert len(pairs) == len(set(pairs))


def test_builder_rejects_out_of_range():
    with pytest.raises(ValueError):
        from_edge_list([0], [5], num_nodes=3)


def test_builder_weights_incompatible_with_dedup():
    with pytest.raises(ValueError):
        from_edge_list([0], [1], 2, dedup=True, edge_weights=[1.0])


def test_builder_keeps_weights_aligned():
    g = from_edge_list(
        [2, 0, 1], [0, 1, 2], 3, undirected=False, dedup=False,
        edge_weights=[2.0, 0.5, 1.5],
    )
    # edges sorted by src: (0,1,w=0.5), (1,2,w=1.5), (2,0,w=2.0)
    assert g.indices.tolist() == [1, 2, 0]
    assert g.edge_weights.tolist() == [0.5, 1.5, 2.0]


def test_csr_degree_and_neighbors():
    g = CSRGraph([0, 2, 2, 3], [1, 2, 0])
    assert g.degrees().tolist() == [2, 0, 1]
    assert g.neighbors(0).tolist() == [1, 2]
    assert g.neighbors(1).tolist() == []
    assert g.degree([0, 2]).tolist() == [2, 1]


def test_csr_validation_catches_breakage():
    with pytest.raises(ValueError):
        CSRGraph([0, 2], [5], num_nodes=1)  # endpoint out of range
    with pytest.raises(ValueError):
        CSRGraph([0, 2, 1], [0, 0], num_nodes=2)  # decreasing indptr
    with pytest.raises(ValueError):
        CSRGraph([0, 1], [0, 0], num_nodes=1)  # indptr[-1] != num_edges


def test_transpose_reverses_edges():
    g = CSRGraph([0, 2, 2, 3], [1, 2, 0])
    t = g.transpose()
    fwd = set(zip(*g.subgraph_edges()))
    bwd = set(zip(*t.subgraph_edges()))
    assert bwd == {(b, a) for (a, b) in fwd}


def test_transpose_involution():
    rng = np.random.default_rng(3)
    src = rng.integers(0, 20, 100)
    dst = rng.integers(0, 20, 100)
    g = from_edge_list(src, dst, 20, undirected=False, dedup=True)
    tt = g.transpose().transpose()
    assert np.array_equal(tt.indptr, g.indptr)
    assert np.array_equal(tt.indices, g.indices)


def test_permute_nodes_preserves_structure():
    rng = np.random.default_rng(4)
    g = from_edge_list(
        rng.integers(0, 30, 200), rng.integers(0, 30, 200), 30,
        undirected=True, dedup=True,
    )
    perm = rng.permutation(30).astype(np.int64)
    p = g.permute_nodes(perm)
    assert p.num_edges == g.num_edges
    orig = set(zip(*g.subgraph_edges()))
    new = set(zip(*p.subgraph_edges()))
    assert new == {(perm[a], perm[b]) for (a, b) in orig}
    # degrees follow the relabelling
    assert np.array_equal(p.degrees()[perm], g.degrees())
