"""Phase profiler, checkpointing, dataset IO, and LR schedules."""

import numpy as np
import pytest

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.graph.io import load_saved_dataset, save_dataset
from repro.hardware import SimNode
from repro.nn import Adam, Linear, SGD, build_model
from repro.nn.lr_scheduler import CosineAnnealingLR, LinearWarmup, StepLR
from repro.telemetry.profiler import PhaseProfiler
from repro.train import WholeGraphTrainer
from repro.train.checkpoint import load_checkpoint, save_checkpoint


# -- profiler -------------------------------------------------------------------------

def test_profiler_captures_only_its_region(small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    tr = WholeGraphTrainer(store, "gcn", seed=0, batch_size=32,
                           fanouts=[5], hidden=8, dropout=0.0)
    tr.train_epoch(max_iterations=1)  # outside the profiled region
    with PhaseProfiler(node) as prof:
        tr.train_epoch(max_iterations=2)
    totals = prof.phase_totals(node.gpu_memory[0].device)
    assert totals["sample"] > 0 and totals["train"] > 0
    assert prof.elapsed() > 0
    # region total matches the clock delta of gpu0
    dev = node.gpu_memory[0].device
    assert sum(totals.values()) == pytest.approx(prof.elapsed(dev), rel=0.01)


def test_profiler_report_sorted_by_time(small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    tr = WholeGraphTrainer(store, "gcn", seed=0, batch_size=32,
                           fanouts=[5], hidden=8, dropout=0.0)
    with PhaseProfiler(node) as prof:
        tr.train_epoch(max_iterations=1)
    text = prof.report(node.gpu_memory[0].device)
    assert "Phase profile" in text
    assert "sample" in text and "train" in text


def test_profiler_empty_region():
    node = SimNode()
    with PhaseProfiler(node) as prof:
        pass
    assert prof.summaries == []
    assert prof.elapsed() == 0.0


def test_profiler_never_advanced_device_elapsed_zero():
    node = SimNode()
    with PhaseProfiler(node) as prof:
        node.gpu_clock[0].advance(1e-3, phase="train")
    assert prof.elapsed(node.gpu_clock[0].device) == pytest.approx(1e-3)
    # devices that recorded nothing report zero, not KeyError
    assert prof.elapsed(node.gpu_clock[3].device) == 0.0
    assert prof.elapsed(node.host_clock.device) == 0.0
    assert prof.phase_totals(node.gpu_clock[3].device) == {}


def test_nested_profilers_on_same_node():
    node = SimNode()
    clk = node.gpu_clock[0]
    dev = clk.device
    with PhaseProfiler(node) as outer:
        clk.advance(1e-3, phase="sample")
        with PhaseProfiler(node) as inner:
            clk.advance(2e-3, phase="train")
        clk.advance(4e-3, phase="gather")
    # the inner region sees only its own span ...
    assert inner.phase_totals(dev) == pytest.approx({"train": 2e-3})
    assert inner.elapsed(dev) == pytest.approx(2e-3)
    # ... while the outer region sees all three
    assert outer.phase_totals(dev) == pytest.approx(
        {"sample": 1e-3, "train": 2e-3, "gather": 4e-3}
    )
    assert outer.elapsed(dev) == pytest.approx(7e-3)


# -- checkpointing -------------------------------------------------------------------------

def test_checkpoint_roundtrip_adam(tmp_path, rng):
    model = build_model("gcn", 8, 3, rng, hidden=8, num_layers=2)
    opt = Adam(model.parameters(), lr=0.01)
    # take a step so optimizer state is non-trivial
    for p in model.parameters():
        p.grad = np.ones_like(p.data)
    opt.step()
    path = tmp_path / "ck.npz"
    save_checkpoint(path, model, opt, epoch=7, extra={"best_acc": 0.9})

    model2 = build_model("gcn", 8, 3, np.random.default_rng(99), hidden=8,
                         num_layers=2)
    opt2 = Adam(model2.parameters(), lr=0.01)
    meta = load_checkpoint(path, model2, opt2)
    assert meta["epoch"] == 7
    assert float(meta["extra"]["best_acc"]) == pytest.approx(0.9)
    for a, b in zip(model.parameters(), model2.parameters()):
        assert np.array_equal(a.data, b.data)
    assert opt2.t == opt.t
    for m1, m2 in zip(opt._m, opt2._m):
        assert np.array_equal(m1, m2)


def test_checkpoint_resume_training_identical(tmp_path, rng):
    """Save -> load -> continue must equal uninterrupted training."""
    def make():
        m = build_model("gcn", 4, 2, np.random.default_rng(0), hidden=4,
                        num_layers=1, dropout=0.0)
        return m, Adam(m.parameters(), lr=0.05)

    def fake_step(model, opt, value):
        for p in model.parameters():
            p.grad = np.full_like(p.data, value)
        opt.step()

    m1, o1 = make()
    fake_step(m1, o1, 0.5)
    path = tmp_path / "mid.npz"
    save_checkpoint(path, m1, o1)
    fake_step(m1, o1, -0.25)
    uninterrupted = m1.state_dict()

    m2, o2 = make()
    load_checkpoint(path, m2, o2)
    fake_step(m2, o2, -0.25)
    for a, b in zip(uninterrupted, m2.state_dict()):
        assert np.allclose(a, b, atol=1e-7)


def test_checkpoint_optimizer_kind_mismatch(tmp_path, rng):
    model = build_model("gcn", 4, 2, rng, hidden=4, num_layers=1)
    opt = Adam(model.parameters())
    path = tmp_path / "ck.npz"
    save_checkpoint(path, model, opt)
    with pytest.raises(ValueError, match="Adam"):
        load_checkpoint(path, model, SGD(model.parameters()))


def test_checkpoint_shape_mismatch(tmp_path, rng):
    model = build_model("gcn", 4, 2, rng, hidden=4, num_layers=1)
    opt = Adam(model.parameters())
    path = tmp_path / "ck.npz"
    save_checkpoint(path, model, opt)
    other = build_model("gcn", 6, 2, rng, hidden=4, num_layers=1)
    with pytest.raises(ValueError, match="shape"):
        load_checkpoint(path, other, Adam(other.parameters()))


# -- dataset IO -------------------------------------------------------------------------

def test_dataset_roundtrip(tmp_path):
    ds = load_dataset("ogbn-products", num_nodes=800, seed=3,
                      feature_dim=8, num_classes=4, edge_weighted=True)
    path = tmp_path / "ds.npz"
    save_dataset(path, ds)
    back = load_saved_dataset(path)
    assert back.spec.name == ds.spec.name
    assert np.array_equal(back.graph.indptr, ds.graph.indptr)
    assert np.array_equal(back.graph.indices, ds.graph.indices)
    assert np.array_equal(back.graph.edge_weights, ds.graph.edge_weights)
    assert np.array_equal(back.features, ds.features)
    assert np.array_equal(back.labels, ds.labels)
    assert np.array_equal(back.train_nodes, ds.train_nodes)
    assert back.num_classes == ds.num_classes


def test_dataset_roundtrip_without_weights(tmp_path, small_dataset):
    path = tmp_path / "ds.npz"
    save_dataset(path, small_dataset)
    back = load_saved_dataset(path)
    assert back.graph.edge_weights is None
    # a store built from the reloaded dataset behaves identically
    s1 = MultiGpuGraphStore(SimNode(), small_dataset, seed=0)
    s2 = MultiGpuGraphStore(SimNode(), back, seed=0)
    assert np.array_equal(s1.csr.indices, s2.csr.indices)


# -- LR schedules -------------------------------------------------------------------------

def test_step_lr_decays(rng):
    opt = SGD(Linear(2, 2, rng).parameters(), lr=1.0)
    sched = StepLR(opt, step_size=3, gamma=0.1)
    lrs = [sched.step() for _ in range(7)]
    assert lrs[0] == 1.0 and lrs[2] == pytest.approx(0.1)
    assert lrs[5] == pytest.approx(0.01)
    assert opt.lr == lrs[-1]


def test_cosine_lr_endpoints(rng):
    opt = SGD(Linear(2, 2, rng).parameters(), lr=2.0)
    sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.2)
    lrs = [sched.step() for _ in range(12)]
    assert lrs[0] < 2.0  # decaying from step 1
    assert lrs[9] == pytest.approx(0.2)
    assert lrs[11] == pytest.approx(0.2)  # clamps past t_max
    assert all(b <= a + 1e-9 for a, b in zip(lrs, lrs[1:]))


def test_warmup_ramps_then_holds(rng):
    opt = SGD(Linear(2, 2, rng).parameters(), lr=1.0)
    sched = LinearWarmup(opt, warmup_steps=4)
    lrs = [sched.step() for _ in range(6)]
    assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.0, 1.0])


def test_scheduler_validation(rng):
    opt = SGD(Linear(2, 2, rng).parameters(), lr=1.0)
    with pytest.raises(ValueError):
        StepLR(opt, step_size=0)
    with pytest.raises(ValueError):
        CosineAnnealingLR(opt, t_max=0)
    with pytest.raises(ValueError):
        LinearWarmup(opt, warmup_steps=0)
