"""Synthetic-generator statistics and failure-injection tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.graph.generators import (
    block_labels,
    class_features,
    homophilous_edges,
    random_features,
    rmat_edges,
)
from repro.hardware import SimNode
from repro.hardware.memory import OutOfDeviceMemory
from repro.hardware.spec import LinkSpec, NodeSpec, a100, dgx_a100
from repro.utils.rng import spawn_rng


# -- generator statistics -----------------------------------------------------------

def test_rmat_degrees_heavy_tailed():
    rng = spawn_rng(0, "rmat")
    src, dst = rmat_edges(4096, 80_000, rng)
    deg = np.bincount(src, minlength=4096)
    # a heavy tail: max degree far above the mean, many zero-degree nodes
    assert deg.max() > 10 * deg.mean()
    assert (deg == 0).sum() > 100


def test_rmat_endpoints_in_range():
    rng = spawn_rng(1, "rmat")
    src, dst = rmat_edges(1000, 5000, rng)  # non-power-of-two folding
    assert src.min() >= 0 and src.max() < 1000
    assert dst.min() >= 0 and dst.max() < 1000


def test_rmat_rejects_bad_probabilities():
    with pytest.raises(ValueError):
        rmat_edges(10, 10, spawn_rng(0, "x"), a=0.6, b=0.3, c=0.3)


def test_homophilous_edges_mostly_intra_class():
    rng = spawn_rng(2, "homo")
    num_classes = 8
    src, dst = homophilous_edges(8000, 50_000, num_classes, rng,
                                 homophily=0.8)
    labels = block_labels(8000, num_classes)
    intra = np.mean(labels[src] == labels[dst])
    # 0.8 intra draws + 1/8 of random draws land intra
    assert 0.75 < intra < 0.90


@given(st.floats(min_value=0.0, max_value=1.0))
def test_homophily_parameter_monotone(h):
    rng = spawn_rng(3, "homo2")
    src, dst = homophilous_edges(2000, 10_000, 4, rng, homophily=h)
    labels = block_labels(2000, 4)
    intra = np.mean(labels[src] == labels[dst])
    expected = h + (1 - h) * 0.25
    assert abs(intra - expected) < 0.05


def test_homophily_out_of_range_rejected():
    with pytest.raises(ValueError):
        homophilous_edges(10, 10, 2, spawn_rng(0, "x"), homophily=1.5)


def test_block_labels_contiguous_and_balanced():
    labels = block_labels(1000, 7)
    assert labels.min() == 0 and labels.max() == 6
    counts = np.bincount(labels)
    assert counts.max() - counts.min() <= int(np.ceil(1000 / 7))
    # contiguity
    assert np.all(np.diff(labels) >= 0)


def test_class_features_separable():
    rng = spawn_rng(4, "feat")
    labels = block_labels(2000, 5)
    x = class_features(labels, 16, rng, signal=1.0, noise=0.5)
    cents = np.stack([x[labels == c].mean(0) for c in range(5)])
    within = np.mean([
        np.linalg.norm(x[labels == c] - cents[c], axis=1).mean()
        for c in range(5)
    ])
    between = np.linalg.norm(
        cents[:, None] - cents[None, :], axis=-1
    )[~np.eye(5, dtype=bool)].mean()
    assert between > within  # classes are linearly separable-ish


def test_random_features_standardised():
    x = random_features(5000, 32, spawn_rng(5, "rf"))
    assert abs(x.mean()) < 0.05
    assert abs(x.std() - 1.0) < 0.05


# -- failure injection -----------------------------------------------------------------

def tiny_gpu_node(capacity_bytes: int) -> SimNode:
    """A DGX whose GPUs have almost no memory."""
    base = dgx_a100()
    gpu = a100()
    small_gpu = type(gpu)(
        **{**gpu.__dict__, "memory_capacity": capacity_bytes}
    )
    spec = NodeSpec(
        name="tiny",
        num_gpus=base.num_gpus,
        gpu=small_gpu,
        nvlink=base.nvlink,
        pcie=base.pcie,
        gpus_per_pcie_switch=base.gpus_per_pcie_switch,
        inter_node=base.inter_node,
    )
    return SimNode(spec)


def test_store_build_fails_cleanly_on_oom(small_dataset):
    node = tiny_gpu_node(capacity_bytes=1024)
    with pytest.raises(OutOfDeviceMemory):
        MultiGpuGraphStore(node, small_dataset, seed=0)


def test_oom_message_names_device_and_sizes(small_dataset):
    node = tiny_gpu_node(capacity_bytes=1024)
    with pytest.raises(OutOfDeviceMemory, match="gpu0"):
        MultiGpuGraphStore(node, small_dataset, seed=0)


def test_whole_tensor_fits_exactly_at_capacity():
    from repro.dsm import WholeTensor

    node = tiny_gpu_node(capacity_bytes=400)
    # 8 GPUs x 100 rows x 4 B per row = exactly 400 B per GPU
    t = WholeTensor(node, 800, 1, dtype=np.float32, charge_setup=False)
    assert node.gpu_memory[0].free_bytes == 0
    with pytest.raises(OutOfDeviceMemory):
        WholeTensor(node, 8, 1, dtype=np.float32, charge_setup=False)
    t.free()


def test_dataset_scaled_instance_deterministic():
    a = load_dataset("friendster", num_nodes=1000, seed=11, feature_dim=4)
    b = load_dataset("friendster", num_nodes=1000, seed=11, feature_dim=4)
    assert np.array_equal(a.graph.indices, b.graph.indices)
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.train_nodes, b.train_nodes)


def test_trainer_determinism(small_dataset):
    """Same seeds end to end -> identical losses."""
    from repro.train import WholeGraphTrainer

    losses = []
    for _ in range(2):
        tr = WholeGraphTrainer(
            MultiGpuGraphStore(SimNode(), small_dataset, seed=0),
            "gcn", seed=42, batch_size=32, fanouts=[5], hidden=8,
            lr=0.02, dropout=0.3,
        )
        losses.append([tr.train_epoch().mean_loss for _ in range(2)])
    assert losses[0] == losses[1]


def test_different_seeds_differ(small_dataset):
    from repro.train import WholeGraphTrainer

    runs = []
    for seed in (1, 2):
        tr = WholeGraphTrainer(
            MultiGpuGraphStore(SimNode(), small_dataset, seed=0),
            "gcn", seed=seed, batch_size=32, fanouts=[5], hidden=8,
            lr=0.02, dropout=0.0,
        )
        runs.append(tr.train_epoch().mean_loss)
    assert runs[0] != runs[1]
