"""Cyclic (round-robin) WholeTensor partitioning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm import Communicator, WholeTensor
from repro.hardware import SimNode
from repro.ops.gather import distributed_memory_gather, shared_memory_gather


@pytest.fixture
def cyclic(rng):
    node = SimNode()
    t = WholeTensor(node, 403, 3, partition="cyclic", charge_setup=False)
    host = rng.standard_normal((403, 3)).astype(np.float32)
    t.load_from_host(host)
    return node, t, host


def test_cyclic_ownership_formula(cyclic):
    node, t, _ = cyclic
    rows = np.arange(403)
    assert np.array_equal(t.rank_of_row(rows), rows % 8)


def test_cyclic_rows_per_rank_cover_all(cyclic):
    _, t, _ = cyclic
    assert sum(t.rows_per_rank) == 403
    # ranks 0..2 get one extra row (403 = 50*8 + 3)
    assert t.rows_per_rank == [51, 51, 51, 50, 50, 50, 50, 50]


def test_cyclic_local_parts_hold_strided_rows(cyclic):
    _, t, host = cyclic
    for r in range(8):
        assert np.array_equal(t.local_part(r), host[r::8])


@given(st.lists(st.integers(min_value=0, max_value=402), max_size=50))
def test_cyclic_gather_property(rows):
    node = SimNode()
    t = WholeTensor(node, 403, 3, partition="cyclic", charge_setup=False)
    host = np.random.default_rng(1).standard_normal((403, 3)).astype(
        np.float32
    )
    t.load_from_host(host)
    rows = np.array(rows, dtype=np.int64)
    assert np.array_equal(t.gather(rows, 0), host[rows])


def test_cyclic_scatter_roundtrip(cyclic, rng):
    _, t, _ = cyclic
    rows = np.array([0, 7, 8, 402])
    vals = rng.standard_normal((4, 3)).astype(np.float32)
    t.scatter(rows, vals, 1)
    assert np.array_equal(t.gather_no_cost(rows), vals)


def test_cyclic_balances_sequential_access(rng):
    """Sequential row ranges spread over all GPUs (the cyclic layout's
    point), unlike the block layout where they hit one GPU."""
    node = SimNode()
    cyc = WholeTensor(node, 800, 2, partition="cyclic", charge_setup=False)
    blk = WholeTensor(node, 800, 2, partition="block", charge_setup=False)
    rows = np.arange(64)  # a contiguous range
    assert len(set(cyc.rank_of_row(rows).tolist())) == 8
    assert len(set(blk.rank_of_row(rows).tolist())) == 1


def test_cyclic_works_with_both_gather_impls(cyclic, rng):
    node, t, host = cyclic
    per_rank = [rng.integers(0, 403, size=30) for _ in range(8)]
    shared, _ = shared_memory_gather(t, per_rank)
    dist, _ = distributed_memory_gather(t, per_rank, Communicator(node))
    for s, d, rows in zip(shared, dist, per_rank):
        assert np.array_equal(s, host[rows])
        assert np.array_equal(d, host[rows])


def test_cyclic_rejects_rows_per_rank():
    node = SimNode()
    with pytest.raises(ValueError):
        WholeTensor(node, 100, 2, partition="cyclic",
                    rows_per_rank=[100, 0, 0, 0, 0, 0, 0, 0])
    with pytest.raises(ValueError):
        WholeTensor(node, 100, 2, partition="diagonal")
