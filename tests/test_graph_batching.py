"""Batched small graphs, readout pooling and graph-level learning."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.graph.batch import (
    batch_graphs,
    generate_graph_classification_dataset,
)
from repro.nn import Adam, Linear, Module, Tensor
from repro.nn import functional as F
from repro.nn.layers import GINConv
from repro.utils.rng import spawn_rng
from tests.test_nn_tensor import numeric_grad


def tiny_graphs():
    g1 = from_edge_list([0, 1], [1, 2], 3, undirected=True, dedup=True)
    g2 = from_edge_list([0], [1], 2, undirected=True, dedup=True)
    return [g1, g2]


def test_batch_is_block_diagonal():
    b = batch_graphs(tiny_graphs())
    assert b.num_graphs == 2
    assert b.num_nodes == 5
    assert b.graph_offsets.tolist() == [0, 3, 5]
    assert b.graph_ids.tolist() == [0, 0, 0, 1, 1]
    src, dst = b.csr.subgraph_edges()
    # no edge crosses the graph boundary
    assert np.all(b.graph_ids[src] == b.graph_ids[dst])
    # member adjacency preserved under the offset
    assert set(b.csr.neighbors(3).tolist()) == {4}
    assert set(b.csr.neighbors(0).tolist()) == {1}


def test_batch_edge_counts_add_up():
    gs = tiny_graphs()
    b = batch_graphs(gs)
    assert b.csr.num_edges == sum(g.num_edges for g in gs)
    b.csr.validate()


def test_batch_rejects_empty_list():
    with pytest.raises(ValueError):
        batch_graphs([])


def test_full_graph_block_identity_prefix():
    b = batch_graphs(tiny_graphs())
    block = b.full_graph_block()
    assert block.num_targets == block.num_src == b.num_nodes
    assert np.array_equal(
        block.duplicate_counts, np.bincount(b.csr.indices, minlength=5)
    )


def test_readout_mean_and_sum_semantics(rng):
    b = batch_graphs(tiny_graphs())
    h = rng.standard_normal((5, 3)).astype(np.float32)
    mean = F.graph_readout(Tensor(h), b.graph_offsets, "mean")
    s = F.graph_readout(Tensor(h), b.graph_offsets, "sum")
    assert np.allclose(mean.data[0], h[:3].mean(axis=0), atol=1e-6)
    assert np.allclose(s.data[1], h[3:].sum(axis=0), atol=1e-6)
    with pytest.raises(ValueError):
        F.graph_readout(Tensor(h), b.graph_offsets, "median")


@pytest.mark.parametrize("mode", ["mean", "sum"])
def test_readout_grad(mode, rng):
    b = batch_graphs(tiny_graphs())
    h = rng.standard_normal((5, 3)).astype(np.float32)

    def build(t):
        return (F.graph_readout(t, b.graph_offsets, mode) ** 2.0).sum()

    t = Tensor(h, requires_grad=True)
    build(t).backward()
    num = numeric_grad(lambda: float(build(Tensor(h)).data), h)
    assert np.allclose(t.grad, num, atol=2e-2)


def test_dataset_classes_structurally_distinct():
    rng = spawn_rng(0, "gc")
    graphs, feats, labels = generate_graph_classification_dataset(60, rng)
    for g, y in zip(graphs, labels):
        mean_deg = g.num_edges / g.num_nodes
        if y == 0:
            assert mean_deg == pytest.approx(2.0)  # rings
        else:
            assert mean_deg > 3.0  # dense


def test_graph_classification_learns():
    """End-to-end: GIN + readout separates rings from dense graphs using
    pure-noise node features (structure is the only signal)."""
    rng = spawn_rng(3, "gc-train")
    graphs, feats, labels = generate_graph_classification_dataset(96, rng)

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.conv = GINConv(8, 16, rng)
            self.head = Linear(16, 2, rng)

        def forward(self, batch, x):
            h = F.relu(self.conv(batch.full_graph_block(), x))
            return self.head(F.graph_readout(h, batch.graph_offsets))

    model = Net()
    opt = Adam(model.parameters(), lr=1e-2)
    batch = batch_graphs(graphs)
    x = Tensor(np.concatenate(feats))
    first = None
    for _ in range(40):
        logits = model(batch, x)
        loss = F.cross_entropy(logits, labels)
        model.zero_grad()
        loss.backward()
        opt.step()
        if first is None:
            first = float(loss.data)
    final_acc = float(np.mean(logits.data.argmax(-1) == labels))
    assert float(loss.data) < first * 0.7
    assert final_acc > 0.8
