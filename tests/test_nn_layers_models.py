"""GNN layers and the three evaluation models."""

import numpy as np
import pytest

from repro.nn import GATConv, GCNConv, SAGEConv, Tensor, build_model
from repro.nn import functional as F
from repro.nn.models import GAT, GCN, MODEL_NAMES, GraphSage
from repro.ops.neighbor_sampler import LayerBlock, NeighborSampler


def toy_block(rng, num_targets=3, num_src=7, fanout=3):
    counts = rng.integers(0, fanout + 1, size=num_targets)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    indices = rng.integers(0, num_src, size=indptr[-1])
    dup = np.bincount(indices, minlength=num_src)
    return LayerBlock(
        indptr=indptr, indices=indices, num_targets=num_targets,
        num_src=num_src, duplicate_counts=dup,
    )


@pytest.fixture
def block(rng):
    return toy_block(rng)


def test_gcn_conv_output_shape_and_semantics(rng, block):
    conv = GCNConv(4, 6, rng)
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = conv(block, Tensor(x))
    assert out.shape == (3, 6)
    # row t aggregates (sum_nbrs + self) / (deg+1) then projects
    for t in range(3):
        nbrs = block.indices[block.indptr[t]:block.indptr[t + 1]]
        agg = (x[nbrs].sum(axis=0) + x[t]) / (len(nbrs) + 1)
        expected = agg @ conv.linear.weight.data + conv.linear.bias.data
        assert np.allclose(out.data[t], expected, atol=1e-4)


def test_sage_conv_semantics(rng, block):
    conv = SAGEConv(4, 5, rng)
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = conv(block, Tensor(x))
    for t in range(3):
        nbrs = block.indices[block.indptr[t]:block.indptr[t + 1]]
        mean = x[nbrs].mean(axis=0) if len(nbrs) else np.zeros(4)
        expected = (
            x[t] @ conv.linear_self.weight.data
            + conv.linear_self.bias.data
            + mean @ conv.linear_neigh.weight.data
        )
        assert np.allclose(out.data[t], expected, atol=1e-4)


def test_gat_conv_shape_and_heads(rng, block):
    conv = GATConv(4, 8, rng, num_heads=4)
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = conv(block, Tensor(x))
    assert out.shape == (3, 8)
    assert conv.head_dim == 2


def test_gat_attention_is_convex_combination(rng):
    """With a single head and the bias zeroed, each output row lies in the
    convex hull of its neighbors' projected features."""
    block = LayerBlock(
        indptr=np.array([0, 3]), indices=np.array([0, 1, 2]),
        num_targets=1, num_src=3,
        duplicate_counts=np.array([1, 1, 1]),
    )
    conv = GATConv(4, 4, rng, num_heads=1)
    x = rng.standard_normal((3, 4)).astype(np.float32)
    out = conv(block, Tensor(x)).data - conv.bias.data
    h = x @ conv.linear.weight.data
    lo, hi = h.min(axis=0) - 1e-4, h.max(axis=0) + 1e-4
    assert np.all(out[0] >= lo) and np.all(out[0] <= hi)


def test_gat_rejects_indivisible_heads(rng):
    with pytest.raises(ValueError):
        GATConv(4, 10, rng, num_heads=4)


def test_layer_cost_estimates_positive(rng, block):
    for conv in (GCNConv(4, 8, rng), SAGEConv(4, 8, rng),
                 GATConv(4, 8, rng)):
        cost = conv.estimate_cost(3, 7, block.num_edges)
        assert cost["flops"] > 0 and cost["sparse_bytes"] > 0


def test_build_model_dispatch(rng):
    assert isinstance(build_model("gcn", 8, 4, rng, hidden=16,
                                  num_layers=2), GCN)
    assert isinstance(build_model("graphsage", 8, 4, rng, hidden=16,
                                  num_layers=2), GraphSage)
    assert isinstance(build_model("gat", 8, 4, rng, hidden=16,
                                  num_layers=2), GAT)
    with pytest.raises(ValueError):
        build_model("transformer", 8, 4, rng)
    assert set(MODEL_NAMES) == {"gcn", "graphsage", "gat"}


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_models_forward_on_sampled_subgraph(name, small_store, rng):
    sampler = NeighborSampler(small_store, [4, 4], charge=False)
    seeds = small_store.train_nodes[:16]
    sg = sampler.sample(seeds, 0, rng)
    model = build_model(name, small_store.feature_dim,
                        small_store.num_classes, rng, hidden=8, num_layers=2)
    x = Tensor(small_store.feature_tensor.gather_no_cost(sg.input_nodes))
    logits = model(sg, x, rng)
    assert logits.shape == (16, small_store.num_classes)
    loss = F.cross_entropy(logits, small_store.labels[seeds])
    model.zero_grad()
    loss.backward()
    assert all(p.grad is not None for p in model.parameters())


def test_model_layer_count_mismatch_rejected(small_store, rng):
    sampler = NeighborSampler(small_store, [4], charge=False)
    sg = sampler.sample(small_store.train_nodes[:4], 0, rng)
    model = build_model("gcn", small_store.feature_dim, 3, rng,
                        hidden=8, num_layers=2)
    x = Tensor(small_store.feature_tensor.gather_no_cost(sg.input_nodes))
    with pytest.raises(ValueError):
        model(sg, x)


def test_estimate_train_time_positive_and_ordered(small_store, rng):
    """GAT must cost more simulated train time than GCN/SAGE (paper
    §IV-C2's explanation of the smaller GAT speedups)."""
    sampler = NeighborSampler(small_store, [4, 4], charge=False)
    sg = sampler.sample(small_store.train_nodes[:16], 0, rng)
    times = {}
    for name in MODEL_NAMES:
        m = build_model(name, small_store.feature_dim, 8, rng,
                        hidden=16, num_layers=2)
        times[name] = m.estimate_train_time(sg)
        assert times[name] > 0
    assert times["gat"] > times["gcn"]
    assert times["gat"] > times["graphsage"]
