"""Scheduler bit-identity: stream-based engines vs legacy charging.

The overlap engines (pipelined prefetch, bucketed grad sync, serve) were
rebuilt on the :mod:`repro.sim` event-driven stream scheduler; the files
under ``tests/golden/`` hold scrubbed reports captured from the *legacy*
hand-charged implementations.  Byte equality here proves the refactor
changed no simulated timestamp, loss, phase total or metric anywhere across
train / cluster / serve — including the faulted runs, where straggler
dilation and link degradation must flow through stream timestamps exactly
as they flowed through the ad-hoc ``clock.advance`` calls.
"""

from __future__ import annotations

import json

import pytest

from tests import golden_cases

#: cheap-enough-to-rerun cases, covering every engine × fault combination
CASE_NAMES = sorted(golden_cases.CASES)


@pytest.mark.parametrize("name", CASE_NAMES)
def test_report_matches_committed_golden(name):
    path = golden_cases.GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden {path} — run "
        f"`PYTHONPATH=src python -m tests.golden_cases --write`"
    )
    assert golden_cases.CASES[name]() + "\n" == path.read_text()


def test_goldens_are_valid_scrubbed_json():
    """Committed goldens parse and contain no volatile keys."""
    from repro.telemetry.run_report import VOLATILE_KEYS

    def walk(obj):
        if isinstance(obj, dict):
            for k, v in obj.items():
                assert k not in VOLATILE_KEYS
                walk(v)
        elif isinstance(obj, list):
            for v in obj:
                walk(v)

    for name in CASE_NAMES:
        payload = json.loads(
            (golden_cases.GOLDEN_DIR / f"{name}.json").read_text()
        )
        walk(payload)


def test_faulted_cases_differ_from_clean():
    """The fault plans actually bite: faulted goldens are not byte-copies
    of their clean counterparts (otherwise the faulted bit-identity checks
    above would be vacuous)."""
    pairs = [
        ("train_overlap", "train_overlap_faulted"),
        ("cluster_overlap", "cluster_faulted"),
    ]
    for clean, faulted in pairs:
        a = (golden_cases.GOLDEN_DIR / f"{clean}.json").read_text()
        b = (golden_cases.GOLDEN_DIR / f"{faulted}.json").read_text()
        assert a != b
