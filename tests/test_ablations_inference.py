"""Ablation studies and the inference path."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import ablations
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode, costmodel
from repro.ops.append_unique import append_unique, sort_based_append_unique
from repro.ops.neighbor_sampler import NeighborSampler
from repro.train import WholeGraphTrainer


# -- sort-based unique: same contract as the hash-based op -----------------------

@given(
    st.integers(min_value=1, max_value=40),
    st.lists(st.integers(min_value=0, max_value=400), max_size=250),
    st.integers(min_value=0, max_value=2**31),
)
def test_sort_unique_invariants(nt, neighbor_list, seed):
    rng = np.random.default_rng(seed)
    targets = rng.choice(1500, size=nt, replace=False)
    neighbors = np.array(neighbor_list, dtype=np.int64)
    res = sort_based_append_unique(targets, neighbors)
    assert np.array_equal(res.unique_nodes[:nt], targets)
    assert np.unique(res.unique_nodes).shape[0] == res.num_unique
    assert set(res.unique_nodes.tolist()) == (
        set(targets.tolist()) | set(neighbors.tolist())
    )
    assert np.array_equal(res.unique_nodes[res.neighbor_subgraph_ids],
                          neighbors)
    c = Counter(neighbors.tolist())
    expected = np.array([c.get(n, 0) for n in res.unique_nodes.tolist()])
    assert np.array_equal(res.duplicate_counts, expected)


def _reference_sort_unique(targets, neighbors):
    """The scalar dict/loop implementation the vectorized op replaced."""
    targets = np.asarray(targets, dtype=np.int64).ravel()
    neighbors = np.asarray(neighbors, dtype=np.int64).ravel()
    nt = targets.shape[0]
    sub_id = {int(t): i for i, t in enumerate(targets)}
    suffix = sorted(set(neighbors.tolist()) - set(targets.tolist()))
    for i, n in enumerate(suffix):
        sub_id[n] = nt + i
    unique_nodes = np.concatenate(
        [targets, np.asarray(suffix, dtype=np.int64)]
    )
    ids = np.array(
        [sub_id[int(n)] for n in neighbors], dtype=np.int64
    )
    counts = np.bincount(ids, minlength=unique_nodes.shape[0])
    return unique_nodes, ids, counts.astype(np.int64)


@given(
    st.integers(min_value=0, max_value=40),
    st.lists(st.integers(min_value=0, max_value=400), max_size=250),
    st.integers(min_value=0, max_value=2**31),
)
def test_sort_unique_vectorized_matches_reference_loop(
    nt, neighbor_list, seed
):
    """The np.isin/searchsorted implementation is exactly the old
    per-element dict loop — same nodes, IDs and duplicate counts."""
    rng = np.random.default_rng(seed)
    targets = rng.choice(1500, size=nt, replace=False)
    neighbors = np.array(neighbor_list, dtype=np.int64)
    res = sort_based_append_unique(targets, neighbors)
    ref_nodes, ref_ids, ref_counts = _reference_sort_unique(
        targets, neighbors
    )
    assert np.array_equal(res.unique_nodes, ref_nodes)
    assert np.array_equal(res.neighbor_subgraph_ids, ref_ids)
    assert np.array_equal(res.duplicate_counts, ref_counts)
    assert res.num_targets == nt


def test_sort_and_hash_unique_same_node_sets():
    rng = np.random.default_rng(5)
    targets = rng.choice(500, size=20, replace=False)
    neighbors = rng.integers(0, 500, size=300)
    a = append_unique(targets, neighbors)
    b = sort_based_append_unique(targets, neighbors)
    assert a.num_unique == b.num_unique
    assert set(a.unique_nodes.tolist()) == set(b.unique_nodes.tolist())


def test_sort_unique_rejects_duplicate_targets():
    with pytest.raises(ValueError):
        sort_based_append_unique([3, 3], [1])


def test_sampler_unique_impl_validation(small_store):
    with pytest.raises(ValueError):
        NeighborSampler(small_store, [5], unique_impl="trie")


def test_sort_unique_charged_slower_than_hash(small_dataset):
    """The §III-C2 rationale: hashing beats sorting on the sampling phase."""
    times = {}
    for impl in ("hash", "sort"):
        node = SimNode()
        store = MultiGpuGraphStore(node, small_dataset, seed=0)
        sampler = NeighborSampler(store, [8, 8], unique_impl=impl)
        node.reset_clocks()
        sampler.sample(store.train_nodes[:64], 0, np.random.default_rng(1))
        times[impl] = node.timeline.phase_total("sample")
    assert times["sort"] > times["hash"]


# -- cost-model pieces behind the ablations ----------------------------------------

def test_backward_scatter_atomic_premium():
    # large enough that launch overhead is amortised
    plain = costmodel.backward_scatter_time(10**6, 0, 1024)
    atomic = costmodel.backward_scatter_time(0, 10**6, 1024)
    assert atomic > 2 * plain


def test_sort_unique_slower_than_hash_per_key():
    keys = 1_000_000
    assert costmodel.sort_unique_time(keys) > costmodel.hash_table_time(
        keys * 2
    )


# -- the three ablation studies -------------------------------------------------------

@pytest.fixture(scope="module")
def ablation_results():
    return ablations.run(num_nodes=6000)


def test_ablations_all_positive_speedup(ablation_results):
    ablations.check_shape(ablation_results)


def test_ablation_report_lists_all(ablation_results):
    text = ablations.report(ablation_results)
    for r in ablation_results:
        assert r.name in text


def test_um_ablation_is_dominant(ablation_results):
    by_name = {r.name: r for r in ablation_results}
    um = by_name["feature storage substrate"]
    others = [r for r in ablation_results if r is not um]
    assert all(um.speedup > o.speedup for o in others)


# -- inference -------------------------------------------------------------------------

@pytest.fixture(scope="module")
def trained(small_dataset):
    tr = WholeGraphTrainer(
        MultiGpuGraphStore(SimNode(), small_dataset, seed=0), "graphsage",
        seed=0, batch_size=32, fanouts=[5, 5], hidden=16, lr=0.02,
        dropout=0.0,
    )
    for _ in range(6):
        tr.train_epoch()
    return tr


def test_predict_matches_evaluate_accuracy(trained):
    nodes = trained.store.val_nodes
    preds = trained.predict(nodes, charge=False)
    acc = float(np.mean(preds == trained.store.labels[nodes]))
    assert acc > 0.85
    assert preds.shape == nodes.shape


def test_predict_charges_inference_phase(trained):
    node = trained.node
    node.reset_clocks()
    trained.predict(trained.store.val_nodes[:32], rank=2)
    device = node.gpu_memory[2].device
    bd = node.timeline.phase_breakdown(device)
    assert bd.get("inference", 0) > 0
    assert bd.get("sample", 0) > 0
    # inference involves no collective phases
    assert "allreduce" not in bd
    # and runs entirely on the chosen rank
    assert node.gpu_clock[0].now == 0


def test_predict_leaves_model_in_train_mode(trained):
    trained.predict(trained.store.val_nodes[:8], charge=False)
    assert trained.model.training
