"""With-replacement sampler variant and early stopping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops import (
    batch_sample_with_replacement,
    batch_sample_without_replacement,
)
from repro.train.early_stopping import EarlyStopping


@given(
    st.integers(min_value=1, max_value=32),
    st.lists(st.integers(min_value=1, max_value=40), min_size=1,
             max_size=30),
    st.integers(min_value=0, max_value=2**31),
)
def test_with_replacement_in_range(m, counts, seed):
    counts = np.array(counts, dtype=np.int64)
    rng = np.random.default_rng(seed)
    res = batch_sample_with_replacement(counts, m, rng)
    assert res.shape == (counts.shape[0], m)
    for i, n in enumerate(counts):
        assert res[i].min() >= 0 and res[i].max() < n


def test_with_replacement_can_exceed_degree():
    """Unlike Algorithm 1, M > N is legal with replacement."""
    rng = np.random.default_rng(0)
    res = batch_sample_with_replacement(np.array([3]), 10, rng)
    assert res.shape == (1, 10)
    assert res.max() < 3


def test_with_replacement_produces_duplicates():
    rng = np.random.default_rng(0)
    res = batch_sample_with_replacement(np.full(200, 5), 5, rng)
    dup_rows = sum(len(set(r.tolist())) < 5 for r in res)
    assert dup_rows > 100  # overwhelmingly likely with N=M=5


def test_without_replacement_never_duplicates_contrast():
    rng = np.random.default_rng(0)
    res = batch_sample_without_replacement(np.full(200, 5), 5, rng)
    assert all(len(set(r.tolist())) == 5 for r in res)


def test_with_replacement_rejects_empty_rows():
    with pytest.raises(ValueError):
        batch_sample_with_replacement(
            np.array([0, 3]), 2, np.random.default_rng(0)
        )


def test_with_replacement_uniform_marginals():
    rng = np.random.default_rng(1)
    res = batch_sample_with_replacement(np.full(5000, 8), 4, rng)
    freq = np.bincount(res.ravel(), minlength=8) / res.size
    assert np.allclose(freq, 1 / 8, atol=0.01)


# -- early stopping ----------------------------------------------------------------

def test_early_stopping_max_mode():
    es = EarlyStopping(patience=2, mode="max")
    assert not es.step(0.5)
    assert not es.step(0.6)  # improvement
    assert not es.step(0.55)  # bad 1
    assert es.step(0.58)  # bad 2 -> stop
    assert es.best == 0.6
    assert es.best_step == 1


def test_early_stopping_min_mode():
    es = EarlyStopping(patience=1, mode="min")
    assert not es.step(1.0)
    assert not es.step(0.5)
    assert es.step(0.7)


def test_early_stopping_min_delta():
    es = EarlyStopping(patience=1, min_delta=0.1, mode="max")
    es.step(0.5)
    # +0.05 is within min_delta -> counts as no improvement
    assert es.step(0.55)


def test_early_stopping_resets_on_improvement():
    es = EarlyStopping(patience=2, mode="max")
    es.step(0.1)
    es.step(0.05)  # bad 1
    es.step(0.2)  # improvement resets
    assert es.num_bad == 0
    assert not es.should_stop


def test_early_stopping_validation():
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)
    with pytest.raises(ValueError):
        EarlyStopping(mode="sideways")
