"""GlobalID packing round-trips and range enforcement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ids import (
    MAX_LOCAL_ID,
    MAX_RANK,
    local_of,
    make_global_ids,
    rank_of,
    split_global_ids,
)


@given(
    st.integers(min_value=0, max_value=MAX_RANK),
    st.integers(min_value=0, max_value=MAX_LOCAL_ID),
)
def test_roundtrip_scalar(rank, local):
    gid = make_global_ids(rank, local)
    r, l = split_global_ids(gid)
    assert int(r) == rank
    assert int(l) == local


def test_roundtrip_vectorised():
    rng = np.random.default_rng(0)
    ranks = rng.integers(0, 8, size=1000)
    locals_ = rng.integers(0, 10**9, size=1000)
    gids = make_global_ids(ranks, locals_)
    assert np.array_equal(rank_of(gids), ranks)
    assert np.array_equal(local_of(gids), locals_)


def test_global_ids_are_distinct_across_ranks():
    # the same local id on different ranks must differ
    gids = make_global_ids(np.arange(8), np.zeros(8, dtype=np.int64))
    assert np.unique(gids).shape[0] == 8


def test_ordering_within_rank_preserved():
    gids = make_global_ids(3, np.arange(100))
    assert np.all(np.diff(gids) > 0)


def test_rank_out_of_range_rejected():
    with pytest.raises(ValueError):
        make_global_ids(MAX_RANK + 1, 0)


def test_negative_local_rejected():
    with pytest.raises(ValueError):
        make_global_ids(0, -1)


def test_local_out_of_range_rejected():
    with pytest.raises(ValueError):
        make_global_ids(0, MAX_LOCAL_ID + 1)
