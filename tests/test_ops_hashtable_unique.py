"""GPU hash table and AppendUnique invariants (property-based)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops.append_unique import append_unique
from repro.ops.hashtable import EMPTY_KEY, GpuHashTable


def test_insert_then_lookup():
    t = GpuHashTable(64, bucket_size=16)
    slots, found, _ = t.insert([5, 6, 7], [50, 60, 70])
    assert not found.any()
    vals, ok = t.lookup([7, 5, 6, 8])
    assert vals.tolist()[:3] == [70, 50, 60]
    assert ok.tolist() == [True, True, True, False]


def test_reinsert_reports_found_and_keeps_value():
    t = GpuHashTable(64)
    t.insert([5], [50])
    _, found, _ = t.insert([5], [99])
    assert found.all()
    vals, _ = t.lookup([5])
    assert vals[0] == 50  # first writer wins


def test_duplicate_keys_within_batch():
    t = GpuHashTable(64)
    slots, found, _ = t.insert([3, 3, 3], [1, 2, 3])
    assert found.tolist() == [False, True, True]
    assert len(set(slots.tolist())) == 1
    assert t.size == 1


def test_empty_key_rejected():
    t = GpuHashTable(64)
    with pytest.raises(ValueError):
        t.insert([EMPTY_KEY], [0])


def test_table_full_detected():
    t = GpuHashTable(4, bucket_size=4)
    t.insert(np.arange(1, 5), np.zeros(4))
    with pytest.raises(RuntimeError):
        t.insert([99], [0])


def test_set_value_on_empty_slot_rejected():
    t = GpuHashTable(64)
    empty = np.flatnonzero(t.keys == EMPTY_KEY)[:1]
    with pytest.raises(ValueError):
        t.set_value(empty, [1])


@given(
    st.lists(st.integers(min_value=0, max_value=500), max_size=300),
    st.integers(min_value=8, max_value=128),
)
def test_table_holds_exactly_the_distinct_keys(keys, bucket_size):
    keys = [k + 1 for k in keys]  # avoid the reserved -1... 0 is fine; shift anyway
    t = GpuHashTable(max(2 * len(keys), bucket_size), bucket_size=bucket_size)
    if keys:
        t.insert(keys, np.zeros(len(keys)))
    stored = set(t.keys[t.occupied_slots()].tolist())
    assert stored == set(keys)
    assert t.size == len(set(keys))


@given(
    st.integers(min_value=1, max_value=60),
    st.lists(st.integers(min_value=0, max_value=800), max_size=400),
    st.integers(min_value=0, max_value=2**31),
)
def test_append_unique_full_invariants(nt, neighbor_list, seed):
    rng = np.random.default_rng(seed)
    targets = rng.choice(2000, size=nt, replace=False)
    neighbors = np.array(neighbor_list, dtype=np.int64)
    res = append_unique(targets, neighbors, bucket_size=32)

    # 1. targets first, in order
    assert np.array_equal(res.unique_nodes[:nt], targets)
    # 2. no duplicates, and covers exactly targets ∪ neighbors
    assert np.unique(res.unique_nodes).shape[0] == res.num_unique
    assert set(res.unique_nodes.tolist()) == (
        set(targets.tolist()) | set(neighbors.tolist())
    )
    # 3. sub-graph IDs translate back to the inputs
    assert np.array_equal(
        res.unique_nodes[res.neighbor_subgraph_ids], neighbors
    )
    # 4. IDs are contiguous in [0, num_unique)
    if neighbors.size:
        assert res.neighbor_subgraph_ids.max() < res.num_unique
    # 5. duplicate counts = neighbor multiplicity
    c = Counter(neighbors.tolist())
    expected = np.array([c.get(n, 0) for n in res.unique_nodes.tolist()])
    assert np.array_equal(res.duplicate_counts, expected)


def test_append_unique_rejects_duplicate_targets():
    with pytest.raises(ValueError):
        append_unique([1, 1], [2, 3])


def test_append_unique_neighbor_equal_to_target():
    res = append_unique([10, 20], [20, 20, 30])
    assert res.num_unique == 3
    # neighbor '20' maps to the *target* sub-graph ID 1
    assert res.neighbor_subgraph_ids.tolist() == [1, 1, 2]
    assert res.duplicate_counts.tolist() == [0, 2, 1]


def test_append_unique_empty_neighbors():
    res = append_unique([4, 5], [])
    assert res.num_unique == 2
    assert res.neighbor_subgraph_ids.shape == (0,)
    assert res.duplicate_counts.tolist() == [0, 0]


def test_append_unique_duplicate_count_feeds_atomic_elision():
    """Nodes sampled once get duplicate_count 1 (the g-SpMM fast path)."""
    res = append_unique([1], [2, 3, 3])
    by_node = dict(zip(res.unique_nodes.tolist(),
                       res.duplicate_counts.tolist()))
    assert by_node[2] == 1
    assert by_node[3] == 2
