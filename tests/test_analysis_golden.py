"""Analyzer snapshots over the pinned golden manifests.

The scrubbed reports under ``tests/golden/`` are the repo's timing
contract; the files under ``tests/golden/analysis/`` pin what the
performance analyzer *says* about them — the phase blame table, overlap
split and what-if bounds of each.  Byte equality here means two things at
once: the analyzer is deterministic over fixed input, and no refactor can
silently change its attribution without showing up as a reviewed diff.

Regenerate after an intentional analyzer change with::

    PYTHONPATH=src python -m tests.test_analysis_golden
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.analysis import analyze_report
from tests import golden_cases

CASE_NAMES = sorted(golden_cases.CASES)
ANALYSIS_DIR = golden_cases.GOLDEN_DIR / "analysis"


def _analyze(name: str) -> str:
    data = json.loads(
        (golden_cases.GOLDEN_DIR / f"{name}.json").read_text()
    )
    return analyze_report(data, name=name).to_json() + "\n"


@pytest.mark.parametrize("name", CASE_NAMES)
def test_analysis_matches_committed_snapshot(name):
    path = ANALYSIS_DIR / f"{name}.analysis.json"
    assert path.exists(), (
        f"missing analysis snapshot {path} — run "
        f"`PYTHONPATH=src python -m tests.test_analysis_golden`"
    )
    assert _analyze(name) == path.read_text()


@pytest.mark.parametrize("name", CASE_NAMES)
def test_blame_covers_the_manifest_phases(name):
    """Every phase in the manifest appears in the snapshot's blame table."""
    data = json.loads(
        (golden_cases.GOLDEN_DIR / f"{name}.json").read_text()
    )
    snap = json.loads((ANALYSIS_DIR / f"{name}.analysis.json").read_text())
    blame = snap["critical_path"]["blame_phase"]
    assert set(data["phase_totals"]) == set(blame)


def _write() -> None:
    ANALYSIS_DIR.mkdir(parents=True, exist_ok=True)
    for name in CASE_NAMES:
        path = ANALYSIS_DIR / f"{name}.analysis.json"
        path.write_text(_analyze(name))
        print(f"wrote {path}")


if __name__ == "__main__":
    _write()
