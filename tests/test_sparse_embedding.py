"""The correctness wall around the sparse-embedding recsys workload.

Three layers of bit-identity, all exact (``np.array_equal``, no tolerances):

1. **optimizer arithmetic** — SparseAdam / SparseSGD applied to an
   embedding's touched rows must match the dense :class:`~repro.nn.optim`
   optimizers stepping a one-row parameter over that row's touch
   subsequence, on hypothesis-generated touch patterns;
2. **trainer trajectories** — the single-node and cluster link-prediction
   trainers must produce bitwise-identical losses, weights and embedding
   tables (the cluster runs replicated global batches, and its float64
   gradient averaging is exact on identical replicas);
3. **chaos** — transient fault plans (stragglers, degraded links, lost
   gather replies) may only cost simulated *time*: the trained state must
   be byte-for-byte the state of a fault-free run.

Plus the telemetry contract: sparse row-grad pushes land as ``embed_grad``
spans on the comm-stream lane whose args reconcile exactly with the
``embedding_rows_touched_total`` / byte ledgers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.trainer import ClusterTrainer
from repro.dsm.sparse_embedding import WholeEmbedding, dedup_row_grads
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode, dgx_a100
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.sparse_optim import (
    RowGrads,
    SparseAdam,
    SparseSGD,
    average_row_grads,
)
from repro.train.trainer import WholeGraphTrainer

# -- helpers ------------------------------------------------------------------------


def _row_touches(history):
    """Map row -> ordered list of applied (averaged, deduped) grads."""
    touches: dict[int, list[np.ndarray]] = {}
    for step in history:
        rows, grads = step[0]
        for idx, row in enumerate(rows):
            touches.setdefault(int(row), []).append(grads[idx].copy())
    return touches


def _replay_dense(w0_row: np.ndarray, grads, make_opt) -> np.ndarray:
    """Dense-optimizer replay of one row's touch subsequence."""
    p = Parameter(w0_row.reshape(1, -1).copy())
    opt = make_opt([p])
    for g in grads:
        p.grad = g.reshape(1, -1).astype(np.float32)
        opt.step()
    return p.data.reshape(-1)


def _assert_replay_matches(embedding, w0, history, make_opt):
    """Every row of ``embedding`` equals its dense per-row replay."""
    final = embedding.state_dict()
    touches = _row_touches(history)
    assert touches, "history recorded no touched rows"
    for row, grads in touches.items():
        expected = _replay_dense(w0[row], grads, make_opt)
        assert np.array_equal(final[row], expected), f"row {row} diverged"
    untouched = np.setdiff1d(
        np.arange(embedding.num_rows), np.fromiter(touches, dtype=np.int64)
    )
    assert np.array_equal(final[untouched], w0[untouched])


def _linkpred_trainer(dataset, **kw):
    node = SimNode(node_id=0)
    store = MultiGpuGraphStore(node, dataset, seed=0)
    defaults = dict(
        seed=0, batch_size=64, task="linkpred", num_pairs=64,
        hidden=32, num_layers=2, lr=1e-2,
    )
    defaults.update(kw)
    return WholeGraphTrainer(store, "sage", **defaults)


# -- 1. optimizer arithmetic (hypothesis) -------------------------------------------

sparse_optim_cases = st.tuples(
    st.integers(min_value=4, max_value=40),        # num_rows
    st.integers(min_value=1, max_value=8),         # dim
    st.integers(min_value=1, max_value=6),         # steps
    st.sampled_from([1e-3, 1e-2, 0.1]),            # lr
    st.sampled_from([0.0, 0.01]),                  # weight decay
    st.integers(min_value=0, max_value=2**31),     # seed
)


def _run_sparse_steps(node, optimizer_cls, num_rows, dim, steps, rng, **kw):
    """Drive ``steps`` optimizer steps with random duplicated touches.

    Returns ``(embedding, w0, history)`` — the optimizer's recorded history
    holds the applied per-step deduplicated grads for the dense replay.
    """
    emb = WholeEmbedding(node, num_rows, dim, charge_setup=False)
    w0 = (rng.standard_normal((num_rows, dim)) * 0.5).astype(np.float32)
    emb.load_state_dict(w0)
    opt = optimizer_cls([emb], charge_setup=False, **kw)
    opt.record_history = True
    for _ in range(steps):
        n = int(rng.integers(1, 12))
        rows = rng.integers(0, num_rows, size=n).astype(np.int64)
        grads = rng.standard_normal((n, dim)).astype(np.float32)
        emb._pending.append((rows, grads))
        opt.step(charge=False)
    return emb, w0, opt.history


@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(sparse_optim_cases)
def test_sparse_adam_matches_dense_rowwise(record_rng_seed, case):
    num_rows, dim, steps, lr, wd, seed = case
    rng = record_rng_seed(seed)
    node = SimNode()
    emb, w0, history = _run_sparse_steps(
        node, SparseAdam, num_rows, dim, steps, rng,
        lr=lr, weight_decay=wd,
    )
    _assert_replay_matches(
        emb, w0, history, lambda ps: Adam(ps, lr=lr, weight_decay=wd)
    )


@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(sparse_optim_cases, st.sampled_from([0.0, 0.9]))
def test_sparse_sgd_matches_dense_rowwise(record_rng_seed, case, momentum):
    num_rows, dim, steps, lr, wd, seed = case
    rng = record_rng_seed(seed)
    node = SimNode()
    emb, w0, history = _run_sparse_steps(
        node, SparseSGD, num_rows, dim, steps, rng,
        lr=lr, weight_decay=wd, momentum=momentum,
    )
    _assert_replay_matches(
        emb, w0, history,
        lambda ps: SGD(ps, lr=lr, weight_decay=wd, momentum=momentum),
    )


def test_sparse_adam_per_row_step_counts(node):
    """A row skipped for k steps is bias-corrected by its own count."""
    emb = WholeEmbedding(node, 4, 2, charge_setup=False)
    emb.load_state_dict(np.ones((4, 2), dtype=np.float32))
    opt = SparseAdam([emb], lr=1e-2, charge_setup=False)
    g = np.full((1, 2), 0.5, dtype=np.float32)
    # row 0 touched 3x, row 3 touched once (on the last step)
    for rows in ([0], [0], [0, 3]):
        emb._pending.append((np.asarray(rows, dtype=np.int64),
                             np.repeat(g, len(rows), axis=0)))
        opt.step(charge=False)
    t = opt._t[0].gather_no_cost(np.arange(4))
    assert t.reshape(-1).tolist() == [3, 0, 0, 1]
    # row 3's single update equals a dense Adam's t=1 update
    p = Parameter(np.ones((1, 2), dtype=np.float32))
    dense = Adam([p], lr=1e-2)
    p.grad = g.copy()
    dense.step()
    assert np.array_equal(emb.read_rows(np.array([3]))[0], p.data[0])


# -- forward/backward plumbing -------------------------------------------------------


def test_forward_backward_records_row_grads(node):
    emb = WholeEmbedding(node, 50, 4, charge_setup=False)
    base = np.zeros((50, 4), dtype=np.float32)
    emb.load_state_dict(base)
    rows = np.array([7, 3, 7, 49], dtype=np.int64)
    out = emb.forward(rows, charge=False)
    (out * 2.0).sum().backward()
    urows, grads, raw, atomic = emb.collect_row_grads()
    assert urows.tolist() == [3, 7, 49]
    assert raw == 4 and atomic == 2  # the duplicated 7s collide
    expected = np.array([[2.0] * 4, [4.0] * 4, [2.0] * 4], dtype=np.float32)
    assert np.array_equal(grads, expected)
    assert not emb.has_pending_grads


def test_multiple_forwards_accumulate_before_step(node):
    emb = WholeEmbedding(node, 10, 2, charge_setup=False)
    emb.load_state_dict(np.zeros((10, 2), dtype=np.float32))
    for rows in ([1, 2], [2, 3]):
        out = emb.forward(np.asarray(rows, dtype=np.int64), charge=False)
        out.sum().backward()
    urows, grads, raw, atomic = emb.collect_row_grads()
    assert urows.tolist() == [1, 2, 3]
    assert np.array_equal(
        grads, np.array([[1, 1], [2, 2], [1, 1]], dtype=np.float32)
    )
    assert raw == 4 and atomic == 2


def test_average_row_grads_identity_on_identical_replicas(seeded_rng):
    """Averaging N identical float32 row grads is bitwise exact."""
    rows = np.array([2, 5, 9], dtype=np.int64)
    grads = seeded_rng.standard_normal((3, 4)).astype(np.float32)
    part = [RowGrads(rows=rows, grads=grads.copy(), raw_rows=5,
                     atomic_rows=2)]
    for n in (2, 3, 5):
        out = average_row_grads([part] * n)
        assert np.array_equal(out[0].grads, grads)
        assert np.array_equal(out[0].rows, rows)


# -- 2. trainer trajectories ---------------------------------------------------------


def test_trainer_sparse_adam_matches_dense_replay(bipartite_dataset):
    """3 epochs of single-node linkpred == dense per-row Adam replay."""
    tr = _linkpred_trainer(bipartite_dataset)
    w0 = tr.embedding.state_dict()
    tr.sparse_optimizer.record_history = True
    for _ in range(3):
        tr.train_epoch()
    _assert_replay_matches(
        tr.embedding, w0, tr.sparse_optimizer.history,
        lambda ps: Adam(ps, lr=1e-2),
    )


def test_trainer_sparse_sgd_matches_dense_replay(bipartite_dataset):
    tr = _linkpred_trainer(bipartite_dataset, sparse_optimizer="sgd")
    w0 = tr.embedding.state_dict()
    tr.sparse_optimizer.record_history = True
    for _ in range(3):
        tr.train_epoch()
    _assert_replay_matches(
        tr.embedding, w0, tr.sparse_optimizer.history,
        lambda ps: SGD(ps, lr=1e-2),
    )


def test_cluster_sparse_adam_matches_dense_replay(bipartite_dataset):
    """3 epochs of 2-machine cluster linkpred == dense per-row replay."""
    ct = ClusterTrainer(
        bipartite_dataset, 2, "sage", seed=0, batch_size=64,
        task="linkpred", num_pairs=64, hidden=32, num_layers=2, lr=1e-2,
    )
    w0 = ct.embeddings[0].state_dict()
    ct.sparse_optimizers[0].record_history = True
    for _ in range(3):
        ct.train_epoch()
    _assert_replay_matches(
        ct.embeddings[0], w0, ct.sparse_optimizers[0].history,
        lambda ps: Adam(ps, lr=1e-2),
    )


@pytest.mark.parametrize("num_machines", [2, 3])
def test_single_node_vs_cluster_bit_identity(bipartite_dataset,
                                             num_machines):
    """Replicated cluster linkpred is bitwise the single-node trajectory."""
    tr = _linkpred_trainer(bipartite_dataset)
    ct = ClusterTrainer(
        bipartite_dataset, num_machines, "sage", seed=0, batch_size=64,
        task="linkpred", num_pairs=64, hidden=32, num_layers=2, lr=1e-2,
    )
    for _ in range(3):
        single = tr.train_epoch()
        cluster = ct.train_epoch()
        # losses agree bitwise, not approximately
        assert single.mean_loss == cluster["mean_loss"]
        assert single.iterations == cluster["iterations"]
    ct.assert_in_sync()
    assert np.array_equal(
        tr.embedding.state_dict(), ct.embeddings[0].state_dict()
    )
    for a, b in zip(tr.model.parameters(), ct.models[0].parameters()):
        assert np.array_equal(a.data, b.data)
    assert tr.evaluate_linkpred(num_pairs=500) == ct.evaluate_linkpred(
        num_pairs=500
    )


def test_linkpred_auc_floor(bipartite_dataset):
    """Acceptance: link prediction learns the planted taste communities."""
    tr = _linkpred_trainer(bipartite_dataset, batch_size=32, num_pairs=256)
    aucs = []
    for _ in range(8):
        tr.train_epoch()
        aucs.append(tr.evaluate_linkpred(num_pairs=1000))
    assert aucs[-1] >= 0.85, aucs
    assert aucs[-1] > aucs[0]


# -- 3. chaos: transient faults change time, never math ------------------------------


def test_transient_faults_bit_identical_single_node(bipartite_dataset,
                                                    transient_plan):
    clean = _linkpred_trainer(bipartite_dataset)
    chaos = _linkpred_trainer(bipartite_dataset,
                              fault_plan=transient_plan())
    clean_stats = [clean.train_epoch(max_iterations=4) for _ in range(2)]
    chaos_stats = [chaos.train_epoch(max_iterations=4) for _ in range(2)]
    assert [s.mean_loss for s in clean_stats] == [
        s.mean_loss for s in chaos_stats
    ]
    assert np.array_equal(
        clean.embedding.state_dict(), chaos.embedding.state_dict()
    )
    for a, b in zip(clean.model.parameters(), chaos.model.parameters()):
        assert np.array_equal(a.data, b.data)
    # the faults cost real simulated time
    assert sum(s.epoch_time for s in chaos_stats) > sum(
        s.epoch_time for s in clean_stats
    )
    assert clean.evaluate_linkpred() == chaos.evaluate_linkpred()


def test_transient_faults_bit_identical_cluster(bipartite_dataset,
                                                transient_plan):
    kw = dict(seed=0, batch_size=64, task="linkpred", num_pairs=64,
              hidden=32, num_layers=2, lr=1e-2)
    clean = ClusterTrainer(bipartite_dataset, 2, "sage", **kw)
    chaos = ClusterTrainer(bipartite_dataset, 2, "sage",
                           fault_plan=transient_plan(), **kw)
    clean_stats = [clean.train_epoch(max_iterations=3) for _ in range(2)]
    chaos_stats = [chaos.train_epoch(max_iterations=3) for _ in range(2)]
    assert [s["mean_loss"] for s in clean_stats] == [
        s["mean_loss"] for s in chaos_stats
    ]
    assert np.array_equal(
        clean.embeddings[0].state_dict(), chaos.embeddings[0].state_dict()
    )
    chaos.assert_in_sync()


def test_linkpred_rejects_rank_failure_plans(bipartite_dataset):
    from repro.faults import FaultPlan, RankFailure

    plan = FaultPlan(events=[RankFailure(rank=0, time=1.0)])
    with pytest.raises(ValueError, match="transient"):
        _linkpred_trainer(bipartite_dataset, fault_plan=plan)
    with pytest.raises(ValueError, match="transient"):
        ClusterTrainer(
            bipartite_dataset, 2, "sage", task="linkpred", fault_plan=plan,
        )


# -- the telemetry contract ----------------------------------------------------------


def test_embedding_invisible_to_dense_grad_sync(bipartite_dataset):
    """The table is not a Parameter: grad-sync buckets only cover the
    dense encoder, and the sparse rows ride the comm lane separately."""
    tr = _linkpred_trainer(bipartite_dataset)
    dense_nbytes = sum(p.data.nbytes for p in tr.model.parameters())
    assert tr.embedding.total_bytes > 0
    assert sum(tr.grad_sync.param_nbytes) == dense_nbytes
    params = {id(p) for p in tr.model.parameters()}
    assert id(tr.embedding) not in params
    assert id(tr.embedding.table) not in params


def test_embed_grad_spans_reconcile_with_metrics(bipartite_dataset,
                                                 registry):
    """Comm-lane span args == metrics ledger == embedding grad stats."""
    tr = _linkpred_trainer(bipartite_dataset)
    tr.train_epoch(max_iterations=4)
    lane = tr.node.gpu_clock[0].device + "/nccl"
    spans = [
        s for s in tr.node.timeline.spans
        if s.device == lane and s.phase == "embed_grad"
    ]
    assert spans, "no embed_grad spans on the comm lane"
    span_rows = sum(s.args["rows"] for s in spans)
    span_bytes = sum(s.args["nbytes"] for s in spans)
    stats = tr.embedding.grad_stats
    assert span_rows == stats["rows_touched"]
    assert span_bytes == stats["grad_bytes"]
    assert span_rows == registry.total("embedding_rows_touched_total")
    # the per-link embedding ledger covers forward gathers + grad pushes
    link_bytes = registry.total("embedding_link_bytes_total")
    assert link_bytes == (
        tr.embedding.table.stats["gather_bytes"] + stats["grad_bytes"]
    )
    assert stats["steps"] == len(spans)


# -- lifecycle -----------------------------------------------------------------------


def test_rebuild_on_preserves_rows(seeded_rng):
    node8 = SimNode()
    emb = WholeEmbedding(node8, 33, 4, charge_setup=False)
    w = seeded_rng.standard_normal((33, 4)).astype(np.float32)
    emb.load_state_dict(w)
    for num_gpus in (4, 3, 1):
        shrunk = SimNode(dgx_a100(num_gpus))
        clone = emb.rebuild_on(shrunk, charge_setup=False)
        assert np.array_equal(clone.state_dict(), w)


def test_state_dict_roundtrip(node, seeded_rng):
    emb = WholeEmbedding(node, 20, 3, charge_setup=False)
    w = seeded_rng.standard_normal((20, 3)).astype(np.float32)
    emb.load_state_dict(w)
    assert np.array_equal(emb.state_dict(), w)


def test_dedup_row_grads_empty_and_single():
    u, s, c = dedup_row_grads(
        np.empty(0, dtype=np.int64), np.empty((0, 2), dtype=np.float32)
    )
    assert u.size == 0 and s.shape == (0, 2) and c.size == 0
    u, s, c = dedup_row_grads(
        np.array([5]), np.array([[1.0, 2.0]], dtype=np.float32)
    )
    assert u.tolist() == [5] and np.array_equal(
        s, np.array([[1.0, 2.0]], dtype=np.float32)
    )
