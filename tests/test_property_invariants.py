"""Property-based invariants for the core graph ops (hypothesis).

Complements the example-based suites with adversarial randomized inputs:

- the hash-based AppendUnique and the sort-based variant other frameworks
  use are interchangeable (same node set, same target prefix, same
  duplicate counts) and each is deterministic call-to-call;
- per-layer neighbor sampling respects the degree bound
  ``counts == min(degree, fanout)`` and only ever emits true neighbors;
- a directed CSR survives the COO round-trip exactly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.builder import from_edge_list
from repro.ops.append_unique import append_unique, sort_based_append_unique
from repro.ops.neighbor_sampler import sample_layer

# -- AppendUnique: hash vs sort equivalence, stability ------------------------------

targets_and_neighbors = st.tuples(
    st.integers(min_value=0, max_value=40),
    st.lists(st.integers(min_value=0, max_value=300), max_size=400),
    st.integers(min_value=0, max_value=2**31),
)


def _draw_targets(nt, seed):
    rng = np.random.default_rng(seed)
    return rng.choice(1000, size=nt, replace=False).astype(np.int64)


@given(targets_and_neighbors)
def test_hash_and_sort_append_unique_agree(data):
    nt, neighbor_list, seed = data
    targets = _draw_targets(nt, seed)
    neighbors = np.asarray(neighbor_list, dtype=np.int64)

    hashed = append_unique(targets, neighbors, bucket_size=32)
    sorted_ = sort_based_append_unique(targets, neighbors)

    # same universe of nodes, regardless of suffix ordering
    assert set(hashed.unique_nodes.tolist()) == set(
        sorted_.unique_nodes.tolist()
    )
    assert hashed.num_unique == sorted_.num_unique
    # targets first and in order, for both
    assert np.array_equal(hashed.unique_nodes[:nt], targets)
    assert np.array_equal(sorted_.unique_nodes[:nt], targets)
    # sub-graph IDs translate back to the input neighbors, for both
    assert np.array_equal(
        hashed.unique_nodes[hashed.neighbor_subgraph_ids], neighbors
    )
    assert np.array_equal(
        sorted_.unique_nodes[sorted_.neighbor_subgraph_ids], neighbors
    )
    # duplicate counts agree per *node* (the layouts may differ)
    h = dict(zip(hashed.unique_nodes.tolist(),
                 hashed.duplicate_counts.tolist()))
    s = dict(zip(sorted_.unique_nodes.tolist(),
                 sorted_.duplicate_counts.tolist()))
    assert h == s
    # and both match the true neighbor multiplicity
    assert h == {
        n: Counter(neighbors.tolist()).get(n, 0)
        for n in hashed.unique_nodes.tolist()
    }


@given(targets_and_neighbors)
def test_append_unique_is_deterministic(data):
    nt, neighbor_list, seed = data
    targets = _draw_targets(nt, seed)
    neighbors = np.asarray(neighbor_list, dtype=np.int64)
    a = append_unique(targets, neighbors, bucket_size=32)
    b = append_unique(targets, neighbors, bucket_size=32)
    for attr in ("unique_nodes", "neighbor_subgraph_ids",
                 "duplicate_counts"):
        assert np.array_equal(getattr(a, attr), getattr(b, attr))


# -- sampler: degree bound and membership -------------------------------------------

edge_lists = st.tuples(
    st.integers(min_value=1, max_value=30),  # num_nodes
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=0, max_value=29),
        ),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=12),  # fanout
    st.integers(min_value=0, max_value=2**31),  # rng seed
)


@given(edge_lists)
def test_sample_layer_degree_bounds(data):
    num_nodes, edges, fanout, seed = data
    src = np.array([min(s, num_nodes - 1) for s, _ in edges],
                   dtype=np.int64)
    dst = np.array([min(d, num_nodes - 1) for _, d in edges],
                   dtype=np.int64)
    g = from_edge_list(src, dst, num_nodes, undirected=False, dedup=False,
                       remove_self_loops=False)
    targets = np.arange(num_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    flat, counts, positions = sample_layer(
        g.indptr, g.indices, targets, fanout, rng
    )
    degrees = g.degree(targets)
    # the degree bound: exactly min(degree, fanout) neighbors per target
    assert np.array_equal(counts, np.minimum(degrees, fanout))
    assert flat.shape[0] == int(counts.sum())
    # every sampled edge is a real edge of its target, at its position
    assert np.array_equal(g.indices[positions], flat)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for i, t in enumerate(targets):
        mine = flat[offsets[i] : offsets[i + 1]]
        neighbors = Counter(g.neighbors(int(t)).tolist())
        sampled = Counter(mine.tolist())
        # sampling without replacement: multiplicity never exceeds the
        # edge multiplicity in the graph
        for n, c in sampled.items():
            assert c <= neighbors[n]
        # full-degree targets get every neighbor verbatim
        if degrees[i] <= fanout:
            assert sampled == neighbors
        # edge positions stay inside the target's own CSR row
        pos = positions[offsets[i] : offsets[i + 1]]
        assert np.all((pos >= g.indptr[t]) & (pos < g.indptr[t + 1]))
        assert np.unique(pos).shape[0] == pos.shape[0]  # no edge twice


# -- CSR round-trip -----------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=40),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=39),
            st.integers(min_value=0, max_value=39),
        ),
        max_size=300,
    ),
)
def test_csr_coo_roundtrip_exact(num_nodes, edges):
    src = np.array([min(s, num_nodes - 1) for s, _ in edges],
                   dtype=np.int64)
    dst = np.array([min(d, num_nodes - 1) for _, d in edges],
                   dtype=np.int64)
    g = from_edge_list(src, dst, num_nodes, undirected=False, dedup=False,
                       remove_self_loops=False)
    assert g.num_edges == src.shape[0]  # nothing dropped or added
    s2, d2 = g.subgraph_edges()
    g2 = from_edge_list(s2, d2, num_nodes, undirected=False, dedup=False,
                        remove_self_loops=False)
    assert np.array_equal(g.indptr, g2.indptr)
    assert np.array_equal(g.indices, g2.indices)
    # the COO expansion preserves the multiset of input edges
    assert Counter(zip(src.tolist(), dst.tolist())) == Counter(
        zip(s2.tolist(), d2.tolist())
    )
