"""Property-based invariants for the core graph ops (hypothesis).

Complements the example-based suites with adversarial randomized inputs:

- the hash-based AppendUnique and the sort-based variant other frameworks
  use are interchangeable (same node set, same target prefix, same
  duplicate counts) and each is deterministic call-to-call;
- per-layer neighbor sampling respects the degree bound
  ``counts == min(degree, fanout)`` and only ever emits true neighbors;
- a directed CSR survives the COO round-trip exactly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.builder import from_edge_list
from repro.ops.append_unique import append_unique, sort_based_append_unique
from repro.ops.neighbor_sampler import sample_layer

# -- AppendUnique: hash vs sort equivalence, stability ------------------------------

targets_and_neighbors = st.tuples(
    st.integers(min_value=0, max_value=40),
    st.lists(st.integers(min_value=0, max_value=300), max_size=400),
    st.integers(min_value=0, max_value=2**31),
)


def _draw_targets(nt, seed):
    rng = np.random.default_rng(seed)
    return rng.choice(1000, size=nt, replace=False).astype(np.int64)


@given(targets_and_neighbors)
def test_hash_and_sort_append_unique_agree(data):
    nt, neighbor_list, seed = data
    targets = _draw_targets(nt, seed)
    neighbors = np.asarray(neighbor_list, dtype=np.int64)

    hashed = append_unique(targets, neighbors, bucket_size=32)
    sorted_ = sort_based_append_unique(targets, neighbors)

    # same universe of nodes, regardless of suffix ordering
    assert set(hashed.unique_nodes.tolist()) == set(
        sorted_.unique_nodes.tolist()
    )
    assert hashed.num_unique == sorted_.num_unique
    # targets first and in order, for both
    assert np.array_equal(hashed.unique_nodes[:nt], targets)
    assert np.array_equal(sorted_.unique_nodes[:nt], targets)
    # sub-graph IDs translate back to the input neighbors, for both
    assert np.array_equal(
        hashed.unique_nodes[hashed.neighbor_subgraph_ids], neighbors
    )
    assert np.array_equal(
        sorted_.unique_nodes[sorted_.neighbor_subgraph_ids], neighbors
    )
    # duplicate counts agree per *node* (the layouts may differ)
    h = dict(zip(hashed.unique_nodes.tolist(),
                 hashed.duplicate_counts.tolist()))
    s = dict(zip(sorted_.unique_nodes.tolist(),
                 sorted_.duplicate_counts.tolist()))
    assert h == s
    # and both match the true neighbor multiplicity
    assert h == {
        n: Counter(neighbors.tolist()).get(n, 0)
        for n in hashed.unique_nodes.tolist()
    }


@given(targets_and_neighbors)
def test_append_unique_is_deterministic(data):
    nt, neighbor_list, seed = data
    targets = _draw_targets(nt, seed)
    neighbors = np.asarray(neighbor_list, dtype=np.int64)
    a = append_unique(targets, neighbors, bucket_size=32)
    b = append_unique(targets, neighbors, bucket_size=32)
    for attr in ("unique_nodes", "neighbor_subgraph_ids",
                 "duplicate_counts"):
        assert np.array_equal(getattr(a, attr), getattr(b, attr))


# -- sampler: degree bound and membership -------------------------------------------

edge_lists = st.tuples(
    st.integers(min_value=1, max_value=30),  # num_nodes
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=0, max_value=29),
        ),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=12),  # fanout
    st.integers(min_value=0, max_value=2**31),  # rng seed
)


@given(edge_lists)
def test_sample_layer_degree_bounds(data):
    num_nodes, edges, fanout, seed = data
    src = np.array([min(s, num_nodes - 1) for s, _ in edges],
                   dtype=np.int64)
    dst = np.array([min(d, num_nodes - 1) for _, d in edges],
                   dtype=np.int64)
    g = from_edge_list(src, dst, num_nodes, undirected=False, dedup=False,
                       remove_self_loops=False)
    targets = np.arange(num_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    flat, counts, positions = sample_layer(
        g.indptr, g.indices, targets, fanout, rng
    )
    degrees = g.degree(targets)
    # the degree bound: exactly min(degree, fanout) neighbors per target
    assert np.array_equal(counts, np.minimum(degrees, fanout))
    assert flat.shape[0] == int(counts.sum())
    # every sampled edge is a real edge of its target, at its position
    assert np.array_equal(g.indices[positions], flat)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for i, t in enumerate(targets):
        mine = flat[offsets[i] : offsets[i + 1]]
        neighbors = Counter(g.neighbors(int(t)).tolist())
        sampled = Counter(mine.tolist())
        # sampling without replacement: multiplicity never exceeds the
        # edge multiplicity in the graph
        for n, c in sampled.items():
            assert c <= neighbors[n]
        # full-degree targets get every neighbor verbatim
        if degrees[i] <= fanout:
            assert sampled == neighbors
        # edge positions stay inside the target's own CSR row
        pos = positions[offsets[i] : offsets[i + 1]]
        assert np.all((pos >= g.indptr[t]) & (pos < g.indptr[t + 1]))
        assert np.unique(pos).shape[0] == pos.shape[0]  # no edge twice


# -- CSR round-trip -----------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=40),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=39),
            st.integers(min_value=0, max_value=39),
        ),
        max_size=300,
    ),
)
def test_csr_coo_roundtrip_exact(num_nodes, edges):
    src = np.array([min(s, num_nodes - 1) for s, _ in edges],
                   dtype=np.int64)
    dst = np.array([min(d, num_nodes - 1) for _, d in edges],
                   dtype=np.int64)
    g = from_edge_list(src, dst, num_nodes, undirected=False, dedup=False,
                       remove_self_loops=False)
    assert g.num_edges == src.shape[0]  # nothing dropped or added
    s2, d2 = g.subgraph_edges()
    g2 = from_edge_list(s2, d2, num_nodes, undirected=False, dedup=False,
                        remove_self_loops=False)
    assert np.array_equal(g.indptr, g2.indptr)
    assert np.array_equal(g.indices, g2.indices)
    # the COO expansion preserves the multiset of input edges
    assert Counter(zip(src.tolist(), dst.tolist())) == Counter(
        zip(s2.tolist(), d2.tolist())
    )


# -- negative sampling: purity and exact counts -------------------------------------


link_graphs = st.tuples(
    st.integers(min_value=20, max_value=40),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=39),
            st.integers(min_value=0, max_value=39),
        ),
        min_size=1,
        max_size=80,
    ),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=2**31),
)


@given(link_graphs)
def test_link_batch_negatives_never_positive(data):
    """The uniform negative sampler only emits non-edges, non-self-loops,
    and the batch carries exactly ``num_pairs`` of each label."""
    from repro.train.trainer import sample_link_batch

    num_nodes, edges, num_pairs, seed = data
    s = np.array([min(a, num_nodes - 1) for a, _ in edges], dtype=np.int64)
    d = np.array([min(b, num_nodes - 1) for _, b in edges], dtype=np.int64)
    g = from_edge_list(s, d, num_nodes, undirected=False, dedup=True,
                       remove_self_loops=False)
    src, dst, labels = sample_link_batch(
        g, num_pairs, np.random.default_rng(seed)
    )
    # exact counts: num_pairs positives then num_pairs negatives
    assert src.shape == dst.shape == labels.shape == (2 * num_pairs,)
    assert labels[:num_pairs].tolist() == [1.0] * num_pairs
    assert labels[num_pairs:].tolist() == [0.0] * num_pairs
    edge_set = set(zip(*(e.tolist() for e in g.subgraph_edges())))
    for a, b in zip(src[:num_pairs], dst[:num_pairs]):
        assert (int(a), int(b)) in edge_set  # positives are real edges
    for a, b in zip(src[num_pairs:], dst[num_pairs:]):
        assert int(a) != int(b)  # no self-loops
        assert (int(a), int(b)) not in edge_set  # never a positive


# -- embedding row -> shard routing is a partition ----------------------------------


embedding_layouts = st.tuples(
    st.integers(min_value=1, max_value=200),      # num_rows
    st.sampled_from([1, 2, 3, 4, 8]),             # num_gpus
    st.integers(min_value=0, max_value=2**31),    # seed
)


@given(embedding_layouts)
def test_row_shard_routing_is_partition(data):
    """Every table row is owned by exactly one rank, the per-rank shard
    sizes tile the table, and values round-trip through the owners —
    including after an elastic ``rebuild_on`` shrink."""
    from repro.dsm.sparse_embedding import WholeEmbedding
    from repro.hardware import SimNode, dgx_a100

    num_rows, num_gpus, seed = data
    node = SimNode(dgx_a100(num_gpus))
    emb = WholeEmbedding(node, num_rows, 3, charge_setup=False)
    rows = np.arange(num_rows, dtype=np.int64)
    owners = emb.rank_of_row(rows)
    assert owners.shape == (num_rows,)
    assert np.all((owners >= 0) & (owners < num_gpus))
    # shard sizes tile the table exactly: the routing is a partition
    shard_rows = np.bincount(owners, minlength=num_gpus)
    local_sizes = [
        emb.table.local_part(r).shape[0] for r in range(num_gpus)
    ]
    assert shard_rows.tolist() == local_sizes
    assert int(shard_rows.sum()) == num_rows
    # values written through the routing come back verbatim, and survive
    # re-sharding onto fewer GPUs
    w = np.random.default_rng(seed).standard_normal(
        (num_rows, 3)
    ).astype(np.float32)
    emb.write_rows(rows, w)
    assert np.array_equal(emb.read_rows(rows), w)
    if num_gpus > 1:
        shrunk = emb.rebuild_on(SimNode(dgx_a100(1)), charge_setup=False)
        assert np.array_equal(shrunk.read_rows(rows), w)


# -- scatter-add dedup of duplicated row grads --------------------------------------


duplicated_grads = st.tuples(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1,
             max_size=60),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)


@given(duplicated_grads)
def test_dedup_row_grads_matches_sequential_sum(data):
    """``dedup_row_grads`` scatter-adds duplicates bit-identically to
    summing each row's contributions one by one, in occurrence order."""
    from repro.dsm.sparse_embedding import dedup_row_grads

    row_list, dim, seed = data
    rows = np.array(row_list, dtype=np.int64)
    grads = np.random.default_rng(seed).standard_normal(
        (rows.size, dim)
    ).astype(np.float32)
    uniq, summed, counts = dedup_row_grads(rows, grads)
    assert np.array_equal(uniq, np.unique(rows))
    assert int(counts.sum()) == rows.size
    for i, r in enumerate(uniq):
        acc = np.zeros(dim, dtype=np.float32)
        for j in np.flatnonzero(rows == r):
            acc = acc + grads[j]  # float32 adds, occurrence order
        assert np.array_equal(summed[i], acc)
        assert counts[i] == int((rows == r).sum())
