"""Extensions: host-pinned storage, edge features, link prediction,
multi-node cluster training."""

import numpy as np
import pytest

from repro.cluster import ClusterTrainer
from repro.dsm import HostPinnedTensor
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.nn import Tensor
from repro.nn import functional as F
from repro.ops.negative_sampling import (
    edges_exist,
    sample_negative_edges,
    sample_positive_edges,
    sort_rows,
)
from repro.ops.neighbor_sampler import NeighborSampler
from repro.train.metrics import roc_auc
from tests.test_nn_tensor import numeric_grad


# -- host-pinned storage ------------------------------------------------------------

def test_host_pinned_gather_correct(rng):
    node = SimNode()
    t = HostPinnedTensor(node, 300, 4)
    host = rng.standard_normal((300, 4)).astype(np.float32)
    t.load_from_host(host)
    rows = np.array([0, 299, 17])
    assert np.array_equal(t.gather(rows, 0), host[rows])
    assert np.array_equal(t.gather_no_cost(rows), host[rows])
    with pytest.raises(IndexError):
        t.gather(np.array([300]), 0)


def test_host_pinned_much_slower_than_device(rng):
    """The §III-B bandwidth argument measured through the gather path."""
    from repro.dsm import WholeTensor

    node = SimNode()
    host_t = HostPinnedTensor(node, 10_000, 128)
    dev_t = WholeTensor(node, 10_000, 128, charge_setup=False)
    rows = rng.integers(0, 10_000, size=5000)
    node.reset_clocks()
    host_t.gather(rows, 0)
    t_host = node.gpu_clock[0].now
    node.reset_clocks()
    dev_t.gather(rows, 0)
    t_dev = node.gpu_clock[0].now
    assert t_host > 5 * t_dev


def test_host_pinned_accounting_on_host_ledger():
    node = SimNode()
    HostPinnedTensor(node, 100, 8, tag="feature")
    assert node.host_memory.usage_by_tag()["feature"] == 100 * 8 * 4
    assert node.total_memory_usage() == 0  # no GPU memory used


def test_store_feature_location_host(small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0,
                               feature_location="host_pinned")
    s = np.array([0, 7])
    got = store.gather_features(s, 0)
    orig = store.partition.to_original[s]
    assert np.allclose(got, small_dataset.features[orig])
    with pytest.raises(ValueError):
        MultiGpuGraphStore(node, small_dataset, feature_location="floppy")


def test_trainer_runs_on_host_pinned_store(small_dataset):
    from repro.train import WholeGraphTrainer

    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0,
                               feature_location="host_pinned")
    tr = WholeGraphTrainer(store, "gcn", seed=0, batch_size=32,
                           fanouts=[5], hidden=8, lr=0.02, dropout=0.0)
    stats = tr.train_epoch(max_iterations=2)
    assert np.isfinite(stats.mean_loss)


# -- edge features --------------------------------------------------------------------

@pytest.fixture(scope="module")
def weighted_store():
    ds = load_dataset("ogbn-products", num_nodes=1500, seed=2,
                      feature_dim=8, num_classes=4, edge_weighted=True)
    return MultiGpuGraphStore(SimNode(), ds, seed=0)


def test_edge_weights_partitioned_and_gatherable(weighted_store, rng):
    store = weighted_store
    assert store.edge_weight_tensor is not None
    sampler = NeighborSampler(store, [4], charge=False)
    sg = sampler.sample(store.train_nodes[:16], 0, rng)
    blk = sg.blocks[0]
    w = store.gather_edge_weights(blk.edge_positions, 0)
    assert np.allclose(w, store.csr.edge_weights[blk.edge_positions])
    assert np.all(w > 0)


def test_edge_weights_follow_permutation(weighted_store):
    """Permuted CSR carries each edge's weight with it."""
    store = weighted_store
    ds_graph = store.dataset.graph
    # pick a stored node, map back, compare weight multisets per node
    for stored in (0, 100, 1499):
        orig = store.partition.to_original[stored]
        s, e = store.csr.indptr[stored], store.csr.indptr[stored + 1]
        so, eo = ds_graph.indptr[orig], ds_graph.indptr[orig + 1]
        assert np.allclose(
            np.sort(store.csr.edge_weights[s:e]),
            np.sort(ds_graph.edge_weights[so:eo]),
        )


def test_weighted_spmm_through_sampled_block(weighted_store, rng):
    store = weighted_store
    sampler = NeighborSampler(store, [4], charge=False)
    sg = sampler.sample(store.train_nodes[:8], 0, rng)
    blk = sg.blocks[0]
    w = store.gather_edge_weights(blk.edge_positions, 0)
    x = Tensor(store.feature_tensor.gather_no_cost(sg.frontiers[1]),
               requires_grad=True)
    out = F.spmm_sum(blk.indptr, blk.indices, x, edge_weights=Tensor(w))
    # reference
    ref = np.zeros((blk.num_targets, 8), dtype=np.float32)
    for t in range(blk.num_targets):
        for e in range(blk.indptr[t], blk.indptr[t + 1]):
            ref[t] += w[e] * x.data[blk.indices[e]]
    assert np.allclose(out.data, ref, atol=1e-4)


def test_unweighted_store_rejects_edge_gather(small_store):
    with pytest.raises(RuntimeError):
        small_store.gather_edge_weights(np.array([0]), 0)


# -- link prediction pieces --------------------------------------------------------------

def test_sort_rows_preserves_multiset(small_dataset):
    g = small_dataset.graph
    s = sort_rows(g)
    assert np.array_equal(np.sort(g.indices), np.sort(s.indices))
    for r in (0, 10, 500):
        lo, hi = s.indptr[r], s.indptr[r + 1]
        assert np.all(np.diff(s.indices[lo:hi]) >= 0)


def test_edges_exist_matches_truth(small_dataset, rng):
    g = sort_rows(small_dataset.graph)
    # positives must exist
    src, dst = sample_positive_edges(g, 200, rng)
    assert edges_exist(g, src, dst).all()
    # known non-edge: a node paired with itself is never an edge (self
    # loops removed by the builder)
    ids = rng.integers(0, g.num_nodes, size=100)
    assert not edges_exist(g, ids, ids).any()


def test_negative_edges_are_non_edges(small_dataset, rng):
    g = small_dataset.graph
    src, dst = sample_negative_edges(g, 300, rng)
    assert not edges_exist(sort_rows(g), src, dst).any()
    assert np.all(src != dst)


def test_positive_edge_sampling_valid(small_dataset, rng):
    g = small_dataset.graph
    src, dst = sample_positive_edges(g, 100, rng)
    for s, d in zip(src[:20], dst[:20]):
        assert d in set(g.neighbors(s).tolist())


def test_pairwise_dot_grad(rng):
    h = rng.standard_normal((6, 4)).astype(np.float32)
    left = np.array([0, 2, 2])
    right = np.array([1, 3, 5])

    def build(t):
        return (F.pairwise_dot(t, left, right) ** 2.0).sum()

    t = Tensor(h, requires_grad=True)
    build(t).backward()
    num = numeric_grad(lambda: float(build(Tensor(h)).data), h)
    assert np.allclose(t.grad, num, atol=2e-2)


def test_bce_with_logits_matches_manual(rng):
    z = rng.standard_normal(50).astype(np.float32)
    y = (rng.random(50) > 0.5).astype(np.float32)
    loss = F.binary_cross_entropy_with_logits(Tensor(z), y)
    p = 1 / (1 + np.exp(-z))
    manual = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
    assert float(loss.data) == pytest.approx(manual, abs=1e-5)


def test_bce_grad(rng):
    z = rng.standard_normal(20).astype(np.float32)
    y = (rng.random(20) > 0.5).astype(np.float32)
    t = Tensor(z, requires_grad=True)
    F.binary_cross_entropy_with_logits(t, y).backward()
    num = numeric_grad(
        lambda: float(
            F.binary_cross_entropy_with_logits(Tensor(z), y).data
        ),
        z,
    )
    assert np.allclose(t.grad, num, atol=1e-2)


def test_sigmoid_values_and_grad(rng):
    x = rng.standard_normal((4, 3)).astype(np.float32)
    out = F.sigmoid(Tensor(x))
    assert np.allclose(out.data, 1 / (1 + np.exp(-x)), atol=1e-5)
    t = Tensor(x, requires_grad=True)
    F.sigmoid(t).sum().backward()
    num = numeric_grad(
        lambda: float(F.sigmoid(Tensor(x)).sum().data), x
    )
    assert np.allclose(t.grad, num, atol=1e-2)


def test_roc_auc_extremes():
    assert roc_auc([0.1, 0.9], [0, 1]) == 1.0
    assert roc_auc([0.9, 0.1], [0, 1]) == 0.0
    assert roc_auc([0.5, 0.5], [0, 1]) == pytest.approx(0.5)
    assert roc_auc([1.0], [1]) == 0.5  # degenerate: single class


def test_roc_auc_matches_brute_force(rng):
    scores = rng.random(60)
    labels = rng.random(60) > 0.6
    pos, neg = scores[labels], scores[~labels]
    brute = np.mean([
        1.0 if p > n else (0.5 if p == n else 0.0)
        for p in pos for n in neg
    ])
    assert roc_auc(scores, labels) == pytest.approx(brute, abs=1e-9)


# -- multi-node cluster training --------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster_dataset():
    return load_dataset("ogbn-products", num_nodes=1500, seed=9,
                        feature_dim=8, num_classes=4)


def test_cluster_replicas_stay_in_sync(cluster_dataset):
    tr = ClusterTrainer(cluster_dataset, 2, "gcn", seed=0, batch_size=32,
                        fanouts=[4], hidden=8, lr=0.02, dropout=0.0)
    tr.train_epoch(max_iterations=2)
    tr.assert_in_sync(atol=1e-4)


def test_cluster_two_nodes_faster_than_one(cluster_dataset):
    t1 = ClusterTrainer(cluster_dataset, 1, "gcn", seed=0, batch_size=32,
                        fanouts=[4], hidden=8, lr=0.02, dropout=0.0)
    t2 = ClusterTrainer(cluster_dataset, 2, "gcn", seed=0, batch_size=32,
                        fanouts=[4], hidden=8, lr=0.02, dropout=0.0)
    e1 = t1.train_epoch()["epoch_time"]
    e2 = t2.train_epoch()["epoch_time"]
    assert e2 < e1


def test_cluster_training_converges(cluster_dataset):
    tr = ClusterTrainer(cluster_dataset, 2, "graphsage", seed=0,
                        batch_size=32, fanouts=[5, 5], hidden=16, lr=0.02,
                        dropout=0.0)
    for _ in range(6):
        stats = tr.train_epoch()
    assert tr.evaluate() > 0.8
    assert stats["mean_loss"] < 1.0


def test_cluster_rejects_zero_nodes(cluster_dataset):
    with pytest.raises(ValueError):
        ClusterTrainer(cluster_dataset, 0, "gcn")
