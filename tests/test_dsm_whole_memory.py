"""WholeMemory setup protocol, IPC semantics and pointer tables."""

import numpy as np
import pytest

from repro.dsm.ipc import IpcHandle, ipc_get_mem_handle, ipc_open_mem_handle
from repro.dsm.pointer_table import MemoryPointerTable
from repro.dsm.whole_memory import WholeMemory, split_evenly
from repro.hardware import SimNode


def test_split_evenly_covers_total():
    sizes = split_evenly(1003, 8)
    assert sum(sizes) == 1003
    assert max(sizes) - min(sizes) <= 1


def test_ipc_cannot_open_own_handle():
    buf = np.zeros(16, dtype=np.uint8)
    h = ipc_get_mem_handle(3, buf)
    with pytest.raises(ValueError):
        ipc_open_mem_handle(h, 3)
    assert ipc_open_mem_handle(h, 0) is buf


def test_ipc_freed_handle_rejected():
    from repro.dsm.ipc import ipc_close_mem_handle

    buf = np.zeros(16, dtype=np.uint8)
    h = ipc_get_mem_handle(0, buf)
    ipc_close_mem_handle(h)
    with pytest.raises(KeyError):
        ipc_open_mem_handle(h, 1)


def test_pointer_table_requires_complete_exchange():
    t = MemoryPointerTable(0, 4)
    assert not t.complete
    with pytest.raises(RuntimeError):
        t.pointer(2)
    for r in range(4):
        t.set_pointer(r, np.zeros(1, dtype=np.uint8))
    assert t.complete


def test_pointer_table_is_64_bytes_on_8_gpus():
    # paper §III-B: "For DGX-A100 with 8 GPUs, it is just 8x8 = 64 bytes"
    assert MemoryPointerTable(0, 8).nbytes == 64


def test_whole_memory_partitions_and_tables(node: SimNode):
    wm = WholeMemory(node, 8000, tag="t")
    assert sum(wm.partition_sizes) == 8000
    assert len(wm.buffers) == 8
    for rank, table in enumerate(wm.pointer_tables):
        assert table.complete
        for peer in range(8):
            # every rank's table points at the peer's actual buffer
            assert table.pointer(peer) is wm.buffers[peer]


def test_whole_memory_charges_device_memory(node: SimNode):
    WholeMemory(node, 8 * 1024, tag="graph")
    usage = node.memory_usage_by_tag()
    assert usage["graph"] == 8 * 1024


def test_whole_memory_setup_time_charged(node: SimNode):
    WholeMemory(node, 1024, tag="x")
    assert node.timeline.phase_total("dsm_setup") > 0
    assert all(c.now > 0 for c in node.gpu_clock)


def test_whole_memory_rank_of_offset(node: SimNode):
    wm = WholeMemory(node, [10, 20, 30, 40, 0, 0, 0, 0], tag="x",
                     charge_setup=False)
    assert wm.rank_of_offset([0, 9]).tolist() == [0, 0]
    assert wm.rank_of_offset([10, 29]).tolist() == [1, 1]
    assert wm.rank_of_offset([30]).tolist() == [2]


def test_whole_memory_free_releases(node: SimNode):
    wm = WholeMemory(node, 800, tag="x", charge_setup=False)
    wm.free()
    assert node.total_memory_usage() == 0
    with pytest.raises(RuntimeError):
        wm.free()


def test_whole_memory_wrong_partition_count(node: SimNode):
    with pytest.raises(ValueError):
        WholeMemory(node, [100, 100], tag="x")
