"""Fast-scale runs of every experiment with the paper-shape checks.

These use reduced sizes/iterations so the whole module stays in CI
territory; the ``benchmarks/`` harness runs the same experiments at the
full reproduction scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig7_accuracy_curve,
    fig8_bandwidth,
    fig10_gather,
    fig12_utilization,
    fig13_scaling,
    table1_latency,
    table2_datasets,
    table4_memory,
)
from repro.experiments.common import (
    measure_baseline,
    measure_wholegraph,
)


def test_table1_shape():
    rows = table1_latency.run(num_accesses=3000)
    table1_latency.check_shape(rows)
    assert "Table I" in table1_latency.report(rows)


def test_table1_tracks_paper_values():
    rows = table1_latency.run(num_accesses=3000)
    for r in rows:
        paper_um = table1_latency.PAPER_UM_US[r.size_gb]
        paper_p2p = table1_latency.PAPER_P2P_US[r.size_gb]
        assert abs(r.um_us - paper_um) / paper_um < 0.45
        assert abs(r.p2p_us - paper_p2p) / paper_p2p < 0.25


def test_table2_shape():
    rows = table2_datasets.run(num_nodes=4000)
    table2_datasets.check_shape(rows)
    assert len(rows) == 4


def test_table4_shape():
    rows = table4_memory.run()
    table4_memory.check_shape(rows)
    # structure/features within 10% of the paper's nvidia-smi readings
    assert rows[0].per_gpu_gb == pytest.approx(3.1, rel=0.1)
    assert rows[1].per_gpu_gb == pytest.approx(6.7, rel=0.1)


def test_fig8_shape():
    pts = fig8_bandwidth.run(
        segment_sizes=(8, 32, 64, 128, 512),
        bytes_per_gpu=8 * 1024 * 1024,
        total_rows=200_000,
    )
    fig8_bandwidth.check_shape(pts)


def test_fig10_shape():
    rows = fig10_gather.run(num_rows=100_000, rows_per_gpu=20_000)
    fig10_gather.check_shape(rows)


def test_fig13_shape():
    rows = fig13_scaling.run(
        datasets=("friendster",), models=("gcn",),
        num_nodes=6000, iterations=2,
    )
    fig13_scaling.check_shape(rows)


def test_measured_pipelines_paper_ordering():
    """The Table V ordering at test scale: WG << DGL << PyG."""
    kwargs = dict(num_nodes=6000, iterations=2, batch_size=128,
                  fanouts=[10, 10], hidden=32)
    wg, _ = measure_wholegraph("ogbn-products", "graphsage", **kwargs)
    dgl, _ = measure_baseline("DGL", "ogbn-products", "graphsage", **kwargs)
    pyg, _ = measure_baseline("PyG", "ogbn-products", "graphsage", **kwargs)
    assert dgl.epoch_time_full / wg.epoch_time_full > 3
    assert pyg.epoch_time_full / dgl.epoch_time_full > 3
    # breakdown shapes (Fig. 9) — at this reduced batch/fanout WholeGraph's
    # compute share is a bit below the paper-scale ~60-80%, but the data
    # path must never dominate it the way it dominates the baselines
    assert wg.phase_fractions["train"] > 0.4
    assert dgl.phase_fractions["sample"] + dgl.phase_fractions["gather"] > 0.8


def test_fig12_shape_small():
    traces = fig12_utilization.run(
        dataset="ogbn-products", num_nodes=6000, iterations=3,
    )
    fig12_utilization.check_shape(traces)
    report = fig12_utilization.report(traces)
    assert "WholeGraph" in report


def test_fig7_curves_track():
    curves = fig7_accuracy_curve.run(
        num_nodes=3000, epochs=4, batch_size=64, fanouts=(5, 5), hidden=32,
    )
    fig7_accuracy_curve.check_shape(curves, band=0.15)
