"""Shared fixtures for the WholeGraph-reproduction test suite."""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.telemetry.metrics import MetricsRegistry, set_registry

# a lean hypothesis profile: the default example count makes the heavier
# graph-op properties slow on this single-core box; print_blob gives the
# @reproduce_failure decorator on any falsifying example
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile("repro")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On failure, print the seed of any seeded RNG the test consumed."""
    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_rng_seed", None)
    if seed is not None and report.when == "call" and report.failed:
        report.sections.append(
            ("seeded rng", f"np.random.default_rng(seed={seed})")
        )


@pytest.fixture
def rng(request) -> np.random.Generator:
    request.node._rng_seed = 1234
    return np.random.default_rng(1234)


@pytest.fixture
def seeded_rng(request) -> np.random.Generator:
    """A per-test deterministic RNG; its seed is reported on failure."""
    seed = zlib.crc32(request.node.nodeid.encode())
    request.node._rng_seed = seed
    return np.random.default_rng(seed)


@pytest.fixture
def record_rng_seed(request):
    """Factory that stamps a (e.g. hypothesis-drawn) seed on the test item.

    The sparse-optimizer identity properties draw their seeds from
    hypothesis rather than ``seeded_rng``; recording each drawn seed here
    makes a failure print the falsifying seed through the same
    ``pytest_runtest_makereport`` hook.  Returns the seeded generator.
    """

    def record(seed: int) -> np.random.Generator:
        request.node._rng_seed = int(seed)
        return np.random.default_rng(int(seed))

    return record


@pytest.fixture
def node() -> SimNode:
    """A fresh 8-GPU DGX-A100 model."""
    return SimNode()


@pytest.fixture
def registry() -> MetricsRegistry:
    """A fresh process metrics registry, restored after the test."""
    fresh = MetricsRegistry()
    prev = set_registry(fresh)
    yield fresh
    set_registry(prev)


@pytest.fixture(scope="session")
def small_dataset():
    """A small labelled products-like dataset (session-cached)."""
    return load_dataset(
        "ogbn-products", num_nodes=2000, seed=7, feature_dim=16,
        num_classes=5,
    )


@pytest.fixture(scope="session")
def medium_dataset():
    """A 3000-node labelled dataset — several batches of 32 per epoch
    (session-cached; shared by the pipeline, fault and determinism
    suites)."""
    return load_dataset(
        "ogbn-products", num_nodes=3000, seed=7, feature_dim=16,
        num_classes=5,
    )


@pytest.fixture(scope="session")
def bipartite_dataset():
    """A small user-item rating graph (session-cached; recsys suites)."""
    from repro.graph import load_bipartite_dataset

    return load_bipartite_dataset(num_users=400, num_items=150, seed=0)


@pytest.fixture
def small_store(small_dataset) -> MultiGpuGraphStore:
    return MultiGpuGraphStore(SimNode(), small_dataset, seed=0)


@pytest.fixture
def transient_plan():
    """Factory for a deterministic all-transient-kinds fault plan."""
    from repro.faults import (
        FaultPlan,
        GatherReplyLoss,
        LinkDegradation,
        StragglerGpu,
    )

    def build(
        *,
        slowdown: float = 3.0,
        link_factor: float = 2.0,
        loss_probability: float = 0.5,
        start: float = 0.0,
        end: float = float("inf"),
        seed: int = 11,
        node_id: int = 0,
    ) -> FaultPlan:
        return FaultPlan(
            events=[
                StragglerGpu(
                    rank=1, slowdown=slowdown,
                    start=start, end=end, node_id=node_id,
                ),
                LinkDegradation(
                    factor=link_factor, start=start, end=end,
                    node_id=node_id,
                ),
                GatherReplyLoss(
                    probability=loss_probability, start=start, end=end,
                ),
            ],
            seed=seed,
        )

    return build
