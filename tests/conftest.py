"""Shared fixtures for the WholeGraph-reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode

# a lean hypothesis profile: the default example count makes the heavier
# graph-op properties slow on this single-core box
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def node() -> SimNode:
    """A fresh 8-GPU DGX-A100 model."""
    return SimNode()


@pytest.fixture(scope="session")
def small_dataset():
    """A small labelled products-like dataset (session-cached)."""
    return load_dataset(
        "ogbn-products", num_nodes=2000, seed=7, feature_dim=16,
        num_classes=5,
    )


@pytest.fixture
def small_store(small_dataset) -> MultiGpuGraphStore:
    return MultiGpuGraphStore(SimNode(), small_dataset, seed=0)
