"""Parallelism plans: equivalence, pipeline schedule, CAGNET full-graph.

Pins the tentpole contracts of the plan abstraction:

- a data-parallel run through an explicit plan instance (or the plan
  name) is byte-identical to the default ``plan=None`` path on scrubbed
  RunReports (hypothesis sweep over seeds and schedules);
- pipeline-parallel loss is bit-identical to data-parallel at equal
  seeds for every micro-batch count (micro-batching is pure timing);
- exposed pipeline bubbles are measured, exported through
  ``EpochStats.extras``, and reach the analysis layer's blame tables;
- a rank failure mid-pipeline recovers through the plan interface
  (chaos case);
- the CAGNET full-graph epoch is deterministic, learns, and its
  replication knob trades broadcast volume for reduce time.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, RankFailure
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.hardware.spec import dgx_a100
from repro.telemetry import metrics
from repro.telemetry.analysis import analyze_node
from repro.telemetry.run_report import scrub_report
from repro.train import WholeGraphTrainer
from repro.train.plans import (
    CagnetFullGraphPlan,
    DataParallelPlan,
    HybridParallelPlan,
    PipelineParallelPlan,
    resolve_plan,
)

TRAIN_KW = dict(batch_size=32, fanouts=[5, 5], hidden=32)


def _trainer(dataset, plan=None, num_gpus=4, seed=3, **kw):
    node = SimNode(dgx_a100(num_gpus))
    store = MultiGpuGraphStore(node, dataset, seed=seed)
    merged = {**TRAIN_KW, **kw}
    return WholeGraphTrainer(store, "graphsage", seed=seed, plan=plan,
                             **merged)


def _isolated(fn):
    prev = metrics.set_registry(metrics.MetricsRegistry())
    try:
        return fn()
    finally:
        metrics.set_registry(prev)


def _scrubbed_run(dataset, plan, seed, overlap):
    def run():
        tr = _trainer(dataset, plan=plan, seed=seed, overlap=overlap)
        tr.train_epoch(max_iterations=3)
        tr.train_epoch(max_iterations=3)
        report = tr.run_report("equivalence")
        return json.dumps(
            scrub_report(report.to_dict()), sort_keys=True, indent=2
        )

    return _isolated(run)


# ---------------------------------------------------------------------------
# data-parallel equivalence: the plan extraction is byte-identical
# ---------------------------------------------------------------------------


class TestDataParallelEquivalence:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 50), overlap=st.booleans())
    def test_explicit_plan_matches_default(
        self, medium_dataset, seed, overlap
    ):
        """plan=DataParallelPlan() == plan=None, byte for byte."""
        default = _scrubbed_run(medium_dataset, None, seed, overlap)
        explicit = _scrubbed_run(
            medium_dataset, DataParallelPlan(), seed, overlap
        )
        assert default == explicit

    def test_plan_name_matches_default(self, medium_dataset):
        default = _scrubbed_run(medium_dataset, None, 3, False)
        named = _scrubbed_run(medium_dataset, "data_parallel", 3, False)
        assert default == named

    def test_default_plan_adds_no_report_keys(self, registry, medium_dataset):
        tr = _trainer(medium_dataset)
        tr.train_epoch(max_iterations=2)
        cfg = tr.run_report("dp").config
        assert "plan" not in cfg
        assert tr.plan.name == "data_parallel"

    def test_resolve_plan_rejects_unknown_and_rebind(self):
        with pytest.raises(ValueError, match="unknown parallelism plan"):
            resolve_plan("tensor_parallel")
        bound = DataParallelPlan()
        bound.trainer = object()  # simulates a plan a trainer already took
        with pytest.raises(ValueError, match="single trainer"):
            resolve_plan(bound)


# ---------------------------------------------------------------------------
# pipeline parallelism
# ---------------------------------------------------------------------------


class TestPipelinePlan:
    @pytest.mark.parametrize("micro", [1, 4])
    def test_loss_bit_identical_to_data_parallel(
        self, medium_dataset, micro
    ):
        """Micro-batching is a pure timing schedule: same losses as DP."""
        dp = _isolated(
            lambda: _trainer(medium_dataset).train_epoch(max_iterations=4)
        )

        def pipe():
            tr = _trainer(
                medium_dataset,
                plan=PipelineParallelPlan(micro_batches=micro),
            )
            return tr.train_epoch(max_iterations=4)

        pp = _isolated(pipe)
        assert pp.mean_loss == dp.mean_loss  # bitwise, not approx

    def test_bubbles_measured_and_exported(self, registry, medium_dataset):
        tr = _trainer(medium_dataset, plan=PipelineParallelPlan())
        stats = tr.train_epoch(max_iterations=4)
        assert stats.extras["pipeline_bubble"] > 0.0
        assert stats.extras["activation_transfer"] > 0.0
        assert 0.0 < stats.extras["bubble_fraction_model"] < 1.0
        assert registry.total("pipeline_bubble_seconds_total") == (
            pytest.approx(stats.extras["pipeline_bubble"])
        )
        row = stats.as_row()
        assert "pipeline_bubble" in row
        cfg = tr.run_report("pipe").config
        assert cfg["plan"] == "pipeline"
        assert cfg["num_stages"] == 2  # min(4 gpus, 2 layers)
        assert cfg["micro_batches"] > 0

    def test_activation_transfers_on_comm_lane(
        self, registry, medium_dataset
    ):
        tr = _trainer(medium_dataset, plan=PipelineParallelPlan())
        tr.train_epoch(max_iterations=2)
        timeline = tr.node.timeline
        comm_act = sum(
            timeline.phase_total("activation_transfer", f"gpu{r}/nccl")
            for r in range(tr.node.num_gpus)
        )
        assert comm_act > 0.0
        assert comm_act == pytest.approx(
            timeline.phase_total("activation_transfer")
        )

    def test_bubbles_reach_blame_tables(self, registry, medium_dataset):
        tr = _trainer(medium_dataset, plan=PipelineParallelPlan())
        tr.node.reset_clocks()
        tr.train_epoch(max_iterations=4)
        report = analyze_node(tr.node, metrics=registry, name="pipe")
        assert report.critical_path["blame_phase"].get(
            "pipeline_bubble", 0.0
        ) > 0.0

    def test_more_micro_batches_cut_relative_bubble(
        self, registry, medium_dataset
    ):
        """The modelled bubble fraction (S-1)/(M+S-1) falls with M."""
        fracs = []
        for micro in (1, 8):
            def run(m=micro):
                tr = _trainer(
                    medium_dataset,
                    plan=PipelineParallelPlan(micro_batches=m),
                    fanouts=[5, 5, 5, 5],
                )
                return tr.train_epoch(max_iterations=3)

            stats = _isolated(run)
            fracs.append(stats.extras["bubble_fraction_model"])
        assert fracs[1] < fracs[0]

    def test_validates_schedule_knobs(self, medium_dataset):
        with pytest.raises(ValueError, match="owns its schedule"):
            _trainer(
                medium_dataset, plan=PipelineParallelPlan(), overlap=True
            )
        with pytest.raises(ValueError, match="num_stages"):
            _trainer(
                medium_dataset, plan=PipelineParallelPlan(num_stages=3)
            )  # only 2 layers
        with pytest.raises(ValueError, match="micro_batches"):
            _trainer(
                medium_dataset, plan=PipelineParallelPlan(micro_batches=0)
            )

    def test_hybrid_groups(self, registry, medium_dataset):
        tr = _trainer(
            medium_dataset,
            plan=HybridParallelPlan(num_stages=2, num_groups=2),
        )
        stats = tr.train_epoch(max_iterations=3)
        assert np.isfinite(stats.mean_loss)
        assert stats.allreduce > 0.0  # cross-group stage-parameter sync
        cfg = tr.run_report("hybrid").config
        assert cfg["plan"] == "hybrid"
        assert cfg["num_groups"] == 2
        with pytest.raises(ValueError, match="GPUs"):
            _trainer(
                medium_dataset,
                plan=HybridParallelPlan(num_stages=2, num_groups=4),
            )


# ---------------------------------------------------------------------------
# chaos: rank failure mid-pipeline, recovery through the plan interface
# ---------------------------------------------------------------------------


class TestPipelineChaos:
    def test_rank_failure_mid_pipeline_restarts(self, medium_dataset):
        def window():
            tr = _trainer(medium_dataset, plan=PipelineParallelPlan())
            t0 = max(c.now for c in tr.node.gpu_clock)
            stats = tr.train_epoch(max_iterations=4)
            return t0, stats

        t0, clean = _isolated(window)

        def chaos():
            plan = FaultPlan(events=[
                RankFailure(rank=2, time=t0 + 0.4 * clean.epoch_time)
            ])
            tr = _trainer(
                medium_dataset, plan=PipelineParallelPlan(),
                fault_plan=plan, recovery_policy="restart",
            )
            stats = tr.train_epoch(max_iterations=4)
            return tr, stats

        tr, stats = _isolated(chaos)
        assert len(tr.recoveries) == 1
        rec = tr.recoveries[0]
        assert rec["policy"] == "restart"
        assert rec["recovery_seconds"] > 0.0
        # the epoch replayed from its first batch and still finished
        # (fresh RNG draws after the reload, so only shape is comparable)
        assert stats.iterations == 4
        assert np.isfinite(stats.mean_loss)
        assert stats.epoch_time > clean.epoch_time

    def test_pipeline_rejects_shrink(self, medium_dataset):
        plan = FaultPlan(events=[RankFailure(rank=1, time=1e9)])
        with pytest.raises(ValueError, match="restart"):
            _trainer(
                medium_dataset, plan=PipelineParallelPlan(),
                fault_plan=plan, recovery_policy="shrink",
            )


# ---------------------------------------------------------------------------
# CAGNET full-graph
# ---------------------------------------------------------------------------


class TestCagnetPlan:
    def test_deterministic_across_replication(self, medium_dataset):
        """c is a pure timing knob: identical losses for c=1 and c=2."""
        losses = []
        for c in (1, 2):
            def run(c=c):
                tr = _trainer(
                    medium_dataset, plan=CagnetFullGraphPlan(replication=c)
                )
                return [tr.train_epoch().mean_loss for _ in range(3)]

            losses.append(_isolated(run))
        assert losses[0] == losses[1]

    def test_full_graph_epoch_learns(self, registry, medium_dataset):
        tr = _trainer(medium_dataset, plan=CagnetFullGraphPlan())
        stats = [tr.train_epoch() for _ in range(5)]
        assert stats[0].iterations == 1  # one full-graph pass per epoch
        assert stats[-1].mean_loss < stats[0].mean_loss
        assert registry.total("iterations_total") == 5.0
        cfg = tr.run_report("cagnet").config
        assert cfg["plan"] == "cagnet"
        assert cfg["replication"] == 1

    def test_replication_trades_broadcast_for_reduce(self, medium_dataset):
        extras = []
        for c in (1, 2):
            def run(c=c):
                tr = _trainer(
                    medium_dataset, plan=CagnetFullGraphPlan(replication=c)
                )
                return tr.train_epoch().extras

            extras.append(_isolated(run))
        assert extras[1]["broadcast"] < extras[0]["broadcast"]
        assert extras[0]["reduce"] == 0.0  # c=1 is the 1D algorithm
        assert extras[1]["reduce"] > 0.0

    def test_collectives_feed_blame_tables(self, registry, medium_dataset):
        tr = _trainer(medium_dataset, plan=CagnetFullGraphPlan())
        tr.node.reset_clocks()
        tr.train_epoch()
        report = analyze_node(tr.node, metrics=registry, name="cagnet")
        # the exposed broadcast stall (compute waiting on the collective)
        # is what lands on the critical path
        assert report.critical_path["blame_phase"].get(
            "broadcast_wait", 0.0
        ) > 0.0

    def test_validates_knobs(self, medium_dataset):
        with pytest.raises(ValueError, match="divide"):
            _trainer(medium_dataset, plan=CagnetFullGraphPlan(replication=3))
        with pytest.raises(ValueError, match="full-graph"):
            _trainer(
                medium_dataset, plan=CagnetFullGraphPlan(), overlap=True
            )
