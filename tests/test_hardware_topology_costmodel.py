"""DGX topology wiring and the cost-model anchor points (paper numbers)."""

import numpy as np
import pytest

from repro import config
from repro.config import GB, US
from repro.hardware import SimNode, costmodel
from repro.hardware.spec import dgx_a100
from repro.hardware.topology import HOST, build_dgx_topology, gpu_name


@pytest.fixture(scope="module")
def topo():
    return build_dgx_topology(dgx_a100())


def test_gpu_count_and_kinds(topo):
    assert len(topo.endpoints("gpu")) == 8
    assert HOST in topo.endpoints("host")


def test_gpu_to_gpu_goes_through_nvswitch(topo):
    path = topo.path("gpu0", "gpu5")
    assert [l.spec.kind for l in path] == ["nvlink", "nvlink"]
    assert topo.effective_bandwidth("gpu0", "gpu5") == config.NVLINK_UNIDIR_BW


def test_host_bandwidth_shared_by_pcie_pair(topo):
    # paper §III-B: 2 GPUs share one x16 uplink -> 16 GB/s per GPU
    assert topo.effective_bandwidth("gpu0", HOST) == 16 * GB
    assert topo.effective_bandwidth("gpu0", HOST, concurrent=False) == 32 * GB


def test_paper_transfer_speedup_ratio(topo):
    """The 18.75x theoretical bandwidth advantage (paper §III-B)."""
    nvlink = topo.effective_bandwidth("gpu0", "gpu1")
    pcie = topo.effective_bandwidth("gpu0", HOST)
    assert nvlink / pcie == pytest.approx(18.75)


def test_table1_p2p_latency_anchors():
    assert costmodel.p2p_access_latency(8 * GB) == pytest.approx(1.35 * US)
    lat_128 = costmodel.p2p_access_latency(128 * GB)
    assert 1.5 * US < lat_128 < 1.65 * US  # paper: 1.56 us


def test_table1_um_latency_anchors():
    assert costmodel.um_access_latency(8 * GB) == pytest.approx(20.8 * US)
    lat_128 = costmodel.um_access_latency(128 * GB)
    assert 33 * US < lat_128 < 38 * US  # paper: 35.8 us


def test_um_p2p_gap_is_order_of_magnitude():
    for size in (8, 16, 32, 64, 128):
        ratio = costmodel.um_access_latency(size * GB) / (
            costmodel.p2p_access_latency(size * GB)
        )
        assert ratio > 10


def test_fig8_bandwidth_curve_anchors():
    # linear region below 64 B
    assert costmodel.random_read_bus_bw(32) == pytest.approx(
        costmodel.random_read_bus_bw(64) / 2
    )
    # 181 GB/s at 64 B, saturation at 230 GB/s
    assert costmodel.random_read_bus_bw(64) == pytest.approx(181 * GB)
    assert costmodel.random_read_bus_bw(128) == pytest.approx(230 * GB)
    assert costmodel.random_read_bus_bw(4096) == pytest.approx(230 * GB)


def test_algo_bw_exceeds_bus_bw_by_n_over_n_minus_1():
    algo = costmodel.random_read_algo_bw(256, 8)
    bus = costmodel.random_read_bus_bw(256)
    assert algo / bus == pytest.approx(8 / 7)


def test_gather_time_monotone_in_bytes():
    t1 = costmodel.gather_time(1 * GB, 512, 8)
    t2 = costmodel.gather_time(2 * GB, 512, 8)
    assert t2 > t1


def test_gather_time_local_fraction_speeds_up():
    remote = costmodel.gather_time(1 * GB, 512, 8, remote_fraction=1.0)
    mostly_local = costmodel.gather_time(1 * GB, 512, 8, remote_fraction=0.1)
    assert mostly_local < remote


def test_pointer_chase_mechanism_dispatch():
    n, fp = 1000, 8 * GB
    assert costmodel.pointer_chase_time(n, fp, "um") > (
        costmodel.pointer_chase_time(n, fp, "p2p")
    ) > costmodel.pointer_chase_time(n, fp, "local")
    with pytest.raises(ValueError):
        costmodel.pointer_chase_time(n, fp, "warp")


def test_dsm_setup_cost_in_paper_range():
    # paper §III-B: "tens to one or two hundred of milliseconds"
    assert 5e-3 < costmodel.dsm_setup_time(1 * GB) < 0.25
    assert costmodel.dsm_setup_time(100 * GB) < 0.25


def test_allreduce_time_scales_with_payload():
    t_small = costmodel.allreduce_time(1 * 1024**2, 8, 300 * GB, 1e-6)
    t_big = costmodel.allreduce_time(64 * 1024**2, 8, 300 * GB, 1e-6)
    assert t_big > t_small
    assert costmodel.allreduce_time(100, 1, 300 * GB, 1e-6) == 0.0


def test_simnode_sync_creates_wait_spans():
    node = SimNode()
    node.gpu_clock[0].advance(1.0, phase="train")
    node.sync()
    assert all(c.now == pytest.approx(1.0) for c in node.gpu_clock)
    waits = [s for s in node.timeline.spans if not s.busy]
    assert len(waits) >= 7  # the other GPUs + host waited
