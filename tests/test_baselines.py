"""DGL-like / PyG-like host pipelines: functionality and cost architecture."""

import numpy as np
import pytest

from repro.baselines import (
    CpuBaselineTrainer,
    DGL_PROFILE,
    HostGraphStore,
    PYG_PROFILE,
    profile_by_name,
)
from repro.hardware import SimNode


def make_baseline(dataset, framework="DGL", **kw):
    node = SimNode()
    store = HostGraphStore(node, dataset)
    defaults = dict(seed=0, batch_size=32, fanouts=[5, 5], hidden=16,
                    num_layers=2, lr=0.02, dropout=0.0)
    defaults.update(kw)
    return CpuBaselineTrainer(store, profile_by_name(framework),
                              "graphsage", **defaults)


def test_profiles_lookup():
    assert profile_by_name("dgl") is DGL_PROFILE
    assert profile_by_name("PyG") is PYG_PROFILE
    with pytest.raises(KeyError):
        profile_by_name("neugraph")


def test_profiles_encode_paper_ordering():
    # PyG's host pipeline is the slower of the two (Table V)
    assert PYG_PROFILE.sample_edges_per_s < DGL_PROFILE.sample_edges_per_s
    assert PYG_PROFILE.gather_bytes_per_s < DGL_PROFILE.gather_bytes_per_s
    assert PYG_PROFILE.layer_cost_factor > DGL_PROFILE.layer_cost_factor > 1.0


def test_host_store_views(small_dataset):
    store = HostGraphStore(SimNode(), small_dataset)
    assert store.num_nodes == small_dataset.num_nodes
    assert store.feature_dim == small_dataset.features.shape[1]
    nodes = np.array([0, 5, 9])
    assert np.array_equal(
        store.gather_features_host(nodes), small_dataset.features[nodes]
    )
    assert store.structure_nbytes() > 0
    assert store.feature_nbytes() == small_dataset.features.nbytes


def test_baseline_training_converges(small_dataset):
    tr = make_baseline(small_dataset)
    first = tr.train_epoch().mean_loss
    for _ in range(7):
        last = tr.train_epoch().mean_loss
    assert last < first
    assert tr.evaluate() > 0.85


def test_baseline_subgraph_matches_host_graph(small_dataset, rng):
    tr = make_baseline(small_dataset)
    sg, edges = tr._sample_subgraph(small_dataset.train_nodes[:16], rng)
    sg.validate_prefix_property()
    assert edges == sum(b.num_edges for b in sg.blocks)
    blk = sg.blocks[0]
    for i in range(blk.num_targets):
        nbrs = set(small_dataset.graph.neighbors(sg.frontiers[0][i]).tolist())
        for e in range(blk.indptr[i], blk.indptr[i + 1]):
            assert sg.frontiers[1][blk.indices[e]] in nbrs


def test_baseline_gpu_idles_during_host_phases(small_dataset):
    """The Fig. 12 mechanism: GPU waits through sample+gather."""
    tr = make_baseline(small_dataset)
    tr.node.reset_clocks()
    tr.train_epoch(max_iterations=2)
    device = tr.node.gpu_memory[0].device
    spans = tr.node.timeline.device_spans(device)
    wait_time = sum(s.duration for s in spans if not s.busy)
    busy_time = sum(s.duration for s in spans if s.busy)
    assert wait_time > busy_time  # data path dominates


def test_baseline_sample_gather_dominate(small_dataset):
    stats = make_baseline(small_dataset).train_epoch(max_iterations=2)
    data_path = stats.times.sample + stats.times.gather
    assert data_path > stats.times.train


def test_pyg_slower_than_dgl_on_same_work(small_dataset):
    dgl = make_baseline(small_dataset, "DGL").train_epoch(max_iterations=2)
    pyg = make_baseline(small_dataset, "PyG").train_epoch(max_iterations=2)
    assert pyg.epoch_time > dgl.epoch_time


def test_baseline_host_clock_charged(small_dataset):
    tr = make_baseline(small_dataset)
    tr.node.reset_clocks()
    tr.train_epoch(max_iterations=1)
    breakdown = tr.node.timeline.phase_breakdown(tr.node.host_clock.device)
    assert breakdown.get("host_sample", 0) > 0
    assert breakdown.get("host_gather", 0) > 0
