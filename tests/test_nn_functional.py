"""Functional ops: activations, losses and the graph autograd ops."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.test_nn_tensor import numeric_grad


def grad_close(build, x, atol=2e-2):
    t = Tensor(x, requires_grad=True)
    build(t).backward()
    num = numeric_grad(lambda: float(build(Tensor(x)).data), x)
    assert np.allclose(t.grad, num, atol=atol), np.abs(t.grad - num).max()


@pytest.fixture
def x(rng):
    return rng.standard_normal((5, 4)).astype(np.float32) + 0.05


def test_relu_leaky_elu_grads(x):
    grad_close(lambda t: F.relu(t).sum(), x)
    grad_close(lambda t: F.leaky_relu(t, 0.1).sum(), x)
    grad_close(lambda t: F.elu(t).sum(), x)


def test_relu_forward_values():
    out = F.relu(Tensor([[-1.0, 2.0]]))
    assert out.data.tolist() == [[0.0, 2.0]]
    out = F.leaky_relu(Tensor([[-1.0, 2.0]]), 0.2)
    assert np.allclose(out.data, [[-0.2, 2.0]])


def test_dropout_train_vs_eval(x, rng):
    t = Tensor(x)
    assert F.dropout(t, 0.5, rng, training=False) is t
    out = F.dropout(t, 0.5, rng, training=True)
    kept = out.data != 0
    # inverted dropout rescales survivors
    assert np.allclose(out.data[kept], x[kept] * 2.0, atol=1e-5)


def test_log_softmax_rows_normalised(x):
    out = F.log_softmax(Tensor(x))
    assert np.allclose(np.exp(out.data).sum(axis=-1), 1.0, atol=1e-5)


def test_cross_entropy_matches_manual(x):
    labels = np.array([0, 1, 2, 3, 0])
    loss = F.cross_entropy(Tensor(x), labels)
    logp = F.log_softmax(Tensor(x)).data
    manual = -logp[np.arange(5), labels].mean()
    assert float(loss.data) == pytest.approx(manual, abs=1e-6)


def test_cross_entropy_grad(x):
    labels = np.array([0, 1, 2, 3, 0])
    grad_close(lambda t: F.cross_entropy(t, labels), x, atol=5e-3)


def test_gather_and_slice_rows_grads(x):
    rows = np.array([0, 2, 2, 4])
    grad_close(lambda t: (F.gather_rows(t, rows) ** 2.0).sum(), x)
    grad_close(lambda t: (F.slice_rows(t, 3) * 3.0).sum(), x)


def test_slice_rows_is_prefix(x):
    out = F.slice_rows(Tensor(x), 2)
    assert np.array_equal(out.data, x[:2])


@pytest.fixture
def csr():
    indptr = np.array([0, 2, 5])
    indices = np.array([1, 2, 0, 3, 4])
    return indptr, indices


def test_spmm_sum_grad(csr, x):
    indptr, indices = csr
    grad_close(
        lambda t: (F.spmm_sum(indptr, indices, t) ** 2.0).sum(), x
    )


def test_spmm_sum_weighted_grads(csr, x, rng):
    indptr, indices = csr
    w = rng.standard_normal(5).astype(np.float32)
    grad_close(
        lambda t: (
            F.spmm_sum(indptr, indices, t, edge_weights=Tensor(w)) ** 2.0
        ).sum(),
        x,
    )
    # gradient w.r.t. weights is the g-SDDMM
    wt = Tensor(w, requires_grad=True)
    xs = Tensor(x)
    (F.spmm_sum(indptr, indices, xs, edge_weights=wt) ** 2.0).sum().backward()
    num = numeric_grad(
        lambda: float(
            (F.spmm_sum(indptr, indices, xs, edge_weights=Tensor(w)) ** 2.0)
            .sum().data
        ),
        w,
    )
    assert np.allclose(wt.grad, num, atol=2e-2)


def test_spmm_mean_grad(csr, x):
    indptr, indices = csr
    grad_close(
        lambda t: (F.spmm_mean(indptr, indices, t) ** 2.0).sum(), x
    )


def test_spmm_dup_counts_do_not_change_grad(csr, x):
    indptr, indices = csr
    dup = np.bincount(indices, minlength=5)
    a = Tensor(x, requires_grad=True)
    (F.spmm_sum(indptr, indices, a) ** 2.0).sum().backward()
    b = Tensor(x, requires_grad=True)
    (F.spmm_sum(indptr, indices, b, duplicate_counts=dup) ** 2.0).sum().backward()
    assert np.allclose(a.grad, b.grad, atol=1e-5)


def test_edge_softmax_grad(csr, rng):
    indptr, indices = csr
    logits = rng.standard_normal((5, 2)).astype(np.float32)
    grad_close(
        lambda t: (F.edge_softmax(indptr, t) ** 2.0).sum(), logits
    )


def test_edge_softmax_normalised_per_target(csr, rng):
    indptr, _ = csr
    alpha = F.edge_softmax(indptr, Tensor(rng.standard_normal((5, 3))))
    assert np.allclose(alpha.data[0:2].sum(axis=0), 1.0, atol=1e-5)
    assert np.allclose(alpha.data[2:5].sum(axis=0), 1.0, atol=1e-5)


def test_edge_gather_add_grads(csr, rng):
    indptr, indices = csr
    dst = rng.standard_normal((5, 2)).astype(np.float32)  # >2 rows: prefix
    src = rng.standard_normal((5, 2)).astype(np.float32)
    grad_close(
        lambda t: (
            F.edge_gather_add(indptr, indices, t, Tensor(src)) ** 2.0
        ).sum(),
        dst,
    )
    grad_close(
        lambda t: (
            F.edge_gather_add(indptr, indices, Tensor(dst), t) ** 2.0
        ).sum(),
        src,
    )


def test_edge_mul_gather_grads(csr, rng):
    indptr, indices = csr
    alpha = rng.random((5, 2)).astype(np.float32)
    feat = rng.standard_normal((5, 2, 3)).astype(np.float32)
    grad_close(
        lambda t: (F.edge_mul_gather(indices, t, Tensor(feat)) ** 2.0).sum(),
        alpha,
    )
    grad_close(
        lambda t: (F.edge_mul_gather(indices, Tensor(alpha), t) ** 2.0).sum(),
        feat,
    )


def test_segment_sum_op_grad(csr, rng):
    indptr, _ = csr
    vals = rng.standard_normal((5, 2)).astype(np.float32)
    grad_close(lambda t: (F.segment_sum(indptr, t) ** 2.0).sum(), vals)
