"""Prefix sums, RNG streams and formatting helpers."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngPool, spawn_rng
from repro.utils.scan import exclusive_prefix_sum, inclusive_prefix_sum
from repro.utils.units import format_bytes, format_seconds


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
def test_exclusive_scan_matches_reference(values):
    out = exclusive_prefix_sum(np.array(values, dtype=np.int64))
    ref = [sum(values[:i]) for i in range(len(values))]
    assert out.tolist() == ref


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=200))
def test_scan_total_recoverable(values):
    v = np.array(values, dtype=np.int64)
    ex = exclusive_prefix_sum(v)
    assert ex[-1] + v[-1] == v.sum()
    assert inclusive_prefix_sum(v)[-1] == v.sum()


def test_exclusive_scan_empty():
    assert exclusive_prefix_sum(np.array([], dtype=np.int64)).shape == (0,)


def test_rank_streams_are_independent():
    pool = RngPool(seed=0, num_ranks=4)
    draws = [pool.rank(r).integers(0, 2**31, size=16) for r in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_rng_reproducible_across_pools():
    a = RngPool(seed=5, num_ranks=2).rank(1).integers(0, 1000, 8)
    b = RngPool(seed=5, num_ranks=2).rank(1).integers(0, 1000, 8)
    assert np.array_equal(a, b)


def test_named_streams_differ_from_rank_streams():
    pool = RngPool(seed=0, num_ranks=2)
    named = pool.named("features").integers(0, 2**31, 16)
    rank0 = pool.rank(0).integers(0, 2**31, 16)
    assert not np.array_equal(named, rank0)


def test_spawn_rng_distinguishes_string_keys():
    a = spawn_rng(0, "alpha").integers(0, 2**31, 8)
    b = spawn_rng(0, "beta").integers(0, 2**31, 8)
    assert not np.array_equal(a, b)


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(3.1 * 1024**3) == "3.10 GB"
    assert "MB" in format_bytes(5 * 1024**2)


def test_format_seconds():
    assert format_seconds(2.5) == "2.50 s"
    assert format_seconds(3e-3) == "3.00 ms"
    assert format_seconds(4e-6) == "4.00 us"
