"""Bucketed, backward-overlapped gradient synchronisation (paper §III-D).

The contract under test: bucketing + overlap are *pure timing* features —
the reduced gradients (and therefore the whole training trajectory) are
bit-identical to the flat sequential all-reduce, while the simulated
exposed communication shrinks and straggler stalls surface as a distinct
``allreduce_wait`` phase.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.trainer import ClusterTrainer
from repro.dsm.comm import Communicator
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.nn import build_model
from repro.nn.module import Module, Parameter
from repro.train import WholeGraphTrainer
from repro.train.ddp import (
    DistributedDataParallel,
    GradSyncModel,
    assign_buckets,
    charge_allreduce,
)
from repro.train.pipeline import plan_grad_sync


class ToyModel(Module):
    """A module with arbitrary (uneven) parameter shapes."""

    def __init__(self, shapes, rng):
        super().__init__()
        for i, shape in enumerate(shapes):
            setattr(self, f"p{i}", Parameter(
                rng.standard_normal(shape).astype(np.float32)
            ))


def _make_ddp_pair(shapes, bucket_cap_mb, seed=0):
    """Two DDP instances over identically-initialised replicas with
    identical gradients: one bucketed, one for the flat reference path."""
    node_a, node_b = SimNode(), SimNode()
    reps_a = [
        ToyModel(shapes, np.random.default_rng(seed + r))
        for r in range(node_a.num_gpus)
    ]
    reps_b = [
        ToyModel(shapes, np.random.default_rng(seed + r))
        for r in range(node_b.num_gpus)
    ]
    bucketed = DistributedDataParallel(
        reps_a, Communicator(node_a), bucket_cap_mb=bucket_cap_mb,
        overlap_grad_sync=True,
    )
    flat = DistributedDataParallel(reps_b, Communicator(node_b))
    grad_rng = np.random.default_rng(seed + 999)
    for ra, rb in zip(reps_a, reps_b):
        for pa, pb in zip(ra.parameters(), rb.parameters()):
            g = grad_rng.standard_normal(pa.data.shape).astype(np.float32)
            pa.grad = g.copy()
            pb.grad = g.copy()
    return bucketed, flat


# -- bit-identity: bucketed == flat ------------------------------------------------

@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
        min_size=1, max_size=7,
    ),
    # 0 -> single flat bucket; 1e-5 MB -> one bucket per parameter;
    # None -> the configured default
    cap=st.sampled_from([0.0, 1e-5, 1e-4, 1e-3, 25.0, None]),
    seed=st.integers(0, 2**20),
)
@settings(max_examples=15)
def test_bucketed_sync_bit_identical_to_flat(shapes, cap, seed):
    bucketed, flat = _make_ddp_pair(shapes, cap, seed)
    bucketed.sync_gradients()
    flat.sync_gradients_flat()
    for ra, rb in zip(bucketed.replicas, flat.replicas):
        for pa, pb in zip(ra.parameters(), rb.parameters()):
            assert np.array_equal(pa.grad, pb.grad)


def test_bucketed_sync_handles_missing_grads():
    """A ``None`` gradient reduces exactly like the flat path's zeros."""
    shapes = [(3, 4), (7,), (2, 5)]
    bucketed, flat = _make_ddp_pair(shapes, bucket_cap_mb=1e-5)
    bucketed.replicas[2].parameters()[1].grad = None
    flat.replicas[2].parameters()[1].grad = None
    bucketed.sync_gradients()
    flat.sync_gradients_flat()
    for ra, rb in zip(bucketed.replicas, flat.replicas):
        for pa, pb in zip(ra.parameters(), rb.parameters()):
            assert np.array_equal(pa.grad, pb.grad)


def test_sync_reuses_preallocated_views():
    """After a sync every ``p.grad`` is a view into the flat bucket
    storage — the no-per-step-concatenate invariant."""
    shapes = [(4, 4), (9,), (3, 2)]
    ddp, _ = _make_ddp_pair(shapes, bucket_cap_mb=1e-5)
    ddp.sync_gradients()
    flat_bases = {
        id(buf) for bufs in ddp._flat for buf in bufs
    }
    for rep in ddp.replicas:
        for p in rep.parameters():
            assert id(p.grad.base) in flat_bases


def _run_all_mode(dataset, overlap_grad_sync, bucket_cap_mb, epochs=2):
    store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
    tr = WholeGraphTrainer(
        store, "graphsage", seed=0, batch_size=64, fanouts=[4],
        num_layers=1, hidden=16, lr=0.02, dropout=0.0,
        compute_ranks="all", bucket_cap_mb=bucket_cap_mb,
        overlap_grad_sync=overlap_grad_sync,
    )
    stats = [tr.train_epoch(max_iterations=2) for _ in range(epochs)]
    tr.ddp.assert_in_sync(atol=1e-6)
    weights = [p.data.copy() for p in tr.model.parameters()]
    return stats, weights


def test_ddp_training_bit_identical_across_sync_schedules(small_dataset):
    """Multi-epoch DDP training: flat sequential sync vs bucketed +
    overlapped produce bit-identical weights and losses."""
    s_flat, w_flat = _run_all_mode(
        small_dataset, overlap_grad_sync=False, bucket_cap_mb=0.0
    )
    s_over, w_over = _run_all_mode(
        small_dataset, overlap_grad_sync=True, bucket_cap_mb=1e-4
    )
    for a, b in zip(s_flat, s_over):
        assert a.mean_loss == b.mean_loss  # bit-for-bit, not allclose
    assert all(np.array_equal(x, y) for x, y in zip(w_flat, w_over))
    # the overlapped run really hid comm behind backward...
    assert s_over[0].allreduce_hidden > 0
    # ...while the flat single-bucket run exposed everything
    assert s_flat[0].allreduce_hidden == 0


def test_cluster_training_bit_identical_across_sync_schedules(small_dataset):
    def run(overlap_grad_sync, cap):
        tr = ClusterTrainer(
            small_dataset, num_machine_nodes=2, model_name="graphsage",
            seed=3, batch_size=32, fanouts=[4], hidden=16,
            bucket_cap_mb=cap, overlap_grad_sync=overlap_grad_sync,
        )
        stats = [tr.train_epoch(max_iterations=2) for _ in range(2)]
        tr.assert_in_sync()
        weights = [p.data.copy() for p in tr.models[0].parameters()]
        return stats, weights

    s_flat, w_flat = run(False, 0.0)
    s_over, w_over = run(True, 1e-4)
    for a, b in zip(s_flat, s_over):
        assert a["mean_loss"] == b["mean_loss"]
    assert all(np.array_equal(x, y) for x, y in zip(w_flat, w_over))


# -- bucket assignment ---------------------------------------------------------------

def test_assign_buckets_flat_cap_is_single_bucket():
    nbytes = [40, 400, 4]
    assert assign_buckets(nbytes, 0.0) == [(2, 1, 0)]
    assert assign_buckets(nbytes, -1.0) == [(2, 1, 0)]


def test_assign_buckets_tiny_cap_is_one_per_param():
    buckets = assign_buckets([100, 200, 300], 1e-9)
    assert buckets == [(2,), (1,), (0,)]


def test_assign_buckets_partitions_reverse_order():
    nbytes = [10, 20, 30, 40, 50, 60]
    buckets = assign_buckets(nbytes, 80 / (1024 * 1024))
    flat = [i for b in buckets for i in b]
    assert flat == list(reversed(range(6)))  # reverse-parameter order
    assert sorted(flat) == list(range(6))  # exact partition
    for b in buckets[:-1]:  # every bucket obeys the cap (single-param over-
        assert sum(nbytes[i] for i in b) <= 80  # cap buckets excepted)


def test_assign_buckets_oversized_param_gets_own_bucket():
    buckets = assign_buckets([1000, 8], 16 / (1024 * 1024))
    assert buckets == [(1,), (0,)]


# -- the overlap schedule -------------------------------------------------------------

def test_plan_no_producers_fully_exposed():
    plan = plan_grad_sync([100, 100], [2e-6, 3e-6])
    assert plan.exposed == pytest.approx(plan.total_comm)
    assert plan.hidden == pytest.approx(0.0)
    assert plan.starts[0] == 0.0


def test_plan_zero_window_matches_flat():
    plan = plan_grad_sync([100, 100], [2e-6, 3e-6], [(0.0, 0.0)])
    assert plan.exposed == pytest.approx(plan.total_comm)


def test_plan_big_window_exposes_only_last_bucket():
    times = [2e-6, 3e-6, 4e-6]
    plan = plan_grad_sync([100, 100, 100], times, [(0.0, 1.0)])
    assert plan.exposed == pytest.approx(times[-1])
    assert plan.hidden == pytest.approx(sum(times[:-1]))


def test_plan_comm_stream_is_serial():
    plan = plan_grad_sync(
        [50, 100, 200], [1e-6, 2e-6, 3e-6], [(0.0, 5e-6)]
    )
    for j in range(1, plan.num_buckets):
        assert plan.starts[j] >= plan.ends[j - 1]
        assert plan.ends[j] == pytest.approx(
            plan.starts[j] + plan.bucket_times[j]
        )


def test_plan_slowest_producer_gates_launch():
    """A straggler replica delays every bucket's collective launch."""
    fast = plan_grad_sync([100, 100], [1e-6, 1e-6], [(0.0, 1e-3)])
    straggler = plan_grad_sync(
        [100, 100], [1e-6, 1e-6], [(0.0, 1e-3), (0.0, 0.0)]
    )
    assert straggler.exposed > fast.exposed
    assert straggler.exposed == pytest.approx(straggler.total_comm)


def test_grad_sync_model_overlap_reduces_exposed():
    node = SimNode()
    nbytes = [256 * 1024, 128 * 1024, 64 * 1024, 32 * 1024]
    flat = GradSyncModel(node, nbytes, bucket_cap_mb=0.0, overlap=False)
    over = GradSyncModel(node, nbytes, bucket_cap_mb=0.1, overlap=True)
    p_flat = flat.plan(None)
    p_over = over.plan([(0.0, 2e-3)])
    assert p_flat.num_buckets == 1
    assert p_over.num_buckets > 1
    assert p_flat.exposed == pytest.approx(p_flat.total_comm)
    assert p_over.exposed < p_flat.exposed
    assert p_over.hidden > 0


def test_table5_config_exposed_comm_reduction():
    """The PR's acceptance criterion: on the Table-5 GraphSage model the
    bucketed + overlapped schedule cuts exposed all-reduce >= 30% versus
    the flat sequential sync (backward window ~60% of a ~5 ms step)."""
    node = SimNode()
    model = build_model(
        "graphsage", 128, 172, np.random.default_rng(0),
        hidden=256, num_layers=3,
    )
    nbytes = [p.data.nbytes for p in model.parameters()]
    flat = GradSyncModel(
        node, nbytes, bucket_cap_mb=0.0, overlap=False
    ).plan(None)
    over = GradSyncModel(node, nbytes).plan([(0.0, 3e-3)])
    assert over.exposed <= 0.7 * flat.exposed


# -- collective barrier semantics ---------------------------------------------------

def test_allreduce_straggler_stall_is_distinct_phase():
    node = SimNode()
    comm = Communicator(node)
    skew = 5e-6
    node.gpu_clock[3].advance(skew, phase="train")
    comm.allreduce([np.ones(1024, np.float32)] * node.num_gpus)
    dev0 = node.gpu_clock[0].device
    dev3 = node.gpu_clock[3].device
    # the on-time ranks stall exactly the skew, as their own phase
    assert node.timeline.phase_total("allreduce_wait", dev0) == (
        pytest.approx(skew)
    )
    assert node.timeline.phase_total("allreduce_wait", dev3) == 0.0
    assert node.timeline.phase_total("allreduce", dev0) > 0
    # everyone leaves the collective together
    assert len({round(c.now, 12) for c in node.gpu_clock}) == 1


def test_charge_allreduce_barrier_before_transfer():
    node = SimNode()
    skew = 2e-6
    node.gpu_clock[5].advance(skew, phase="train")
    t = charge_allreduce(node, 4 * 1024 * 1024)
    assert all(c.now == pytest.approx(skew + t) for c in node.gpu_clock)
    dev0 = node.gpu_clock[0].device
    assert node.timeline.phase_total("allreduce_wait", dev0) == (
        pytest.approx(skew)
    )


def test_grad_sync_charge_barrier_and_nccl_lane():
    node = SimNode()
    sync = GradSyncModel(node, [64 * 1024] * 4, bucket_cap_mb=0.05)
    for i, clock in enumerate(node.gpu_clock):
        clock.advance(1e-3 + (1e-6 if i == 0 else 0.0), phase="train")
    plan = sync.charge([(node.gpu_clock[0].now, 1e-3)])
    # stragglers aligned, exposed tail charged to everyone
    assert len({round(c.now, 12) for c in node.gpu_clock}) == 1
    dev1 = node.gpu_clock[1].device
    assert node.timeline.phase_total("allreduce_wait", dev1) == (
        pytest.approx(1e-6)
    )
    # the bucket-by-bucket schedule lands on the nccl comm-stream lane
    lane = node.gpu_clock[0].device + "/nccl"
    spans = [s for s in node.timeline.spans if s.device == lane]
    assert len(spans) == plan.num_buckets
    assert all(s.phase == "allreduce_bucket" for s in spans)
    assert any(s.args.get("hidden") for s in spans)
