"""Chrome-trace export, RunReport manifests, and the compare_runs tool."""

import json

import pytest

from benchmarks import compare_runs
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.hardware.clock import SimClock, Timeline
from repro.telemetry.run_report import RunReport, json_safe
from repro.telemetry.trace import (
    _split_device,
    export_chrome_trace,
    trace_events,
)
from repro.train import WholeGraphTrainer


# the fresh-registry ``registry`` fixture comes from conftest.py

# -- trace export -------------------------------------------------------------------


def test_split_device_node_prefix():
    assert _split_device("gpu0") == (0, "gpu0")
    assert _split_device("n2.gpu1") == (2, "gpu1")
    assert _split_device("host") == (0, "host")
    assert _split_device("n1.host") == (1, "host")


def test_trace_roundtrip_small_timeline():
    tl = Timeline()
    c0 = SimClock("gpu0", tl)
    c1 = SimClock("n1.gpu0", tl)
    c0.advance(1e-3, phase="sample", category="sampling", args={"rows": 5})
    c0.advance(2e-3, phase="train")
    c1.advance(3e-3, phase="gather")
    c1.wait_until(7e-3)

    doc = json.loads(export_chrome_trace(tl))
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == len(tl.spans) == 4
    for e in xs:
        for key in ("ph", "ts", "dur", "pid", "tid", "name"):
            assert key in e
    # devices on different sim nodes land in different processes
    by_name = {e["name"]: e for e in xs if e["name"] != "wait"}
    assert by_name["sample"]["pid"] == 0
    assert by_name["gather"]["pid"] == 1
    assert by_name["sample"]["args"] == {"rows": 5, "busy": True}
    assert by_name["sample"]["cat"] == "sampling"
    # microsecond timestamps
    assert by_name["train"]["ts"] == pytest.approx(1e3)
    assert by_name["train"]["dur"] == pytest.approx(2e3)
    # the idle wait span is exported as non-busy
    wait = next(e for e in xs if e["name"] == "wait")
    assert wait["args"]["busy"] is False and wait["cat"] == "idle"
    # process/thread metadata names every lane
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {
        "process_name", "thread_name", "thread_sort_index",
    }


def test_trace_groups_stream_lanes_under_base_device():
    """``<base>/<stream>`` lanes get tids directly after their base row,
    regardless of when the lane's first span was recorded."""
    tl = Timeline()
    g0 = SimClock("gpu0", tl)
    g1 = SimClock("gpu1", tl)
    nccl0 = SimClock("gpu0/nccl", tl)
    g0.advance(1e-3, phase="train")
    g1.advance(1e-3, phase="train")
    # the lane appears *after* gpu1 in first-seen order...
    nccl0.advance(2e-3, phase="allreduce_bucket")
    events = trace_events(tl)
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # ...but still renders directly under gpu0
    assert names == {0: "gpu0", 1: "gpu0/nccl", 2: "gpu1"}
    sort_keys = {
        e["tid"]: e["args"]["sort_index"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_sort_index"
    }
    assert sort_keys == {0: 0, 1: 1, 2: 2}


def test_trace_exclude_waits():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    c.advance(1e-3, phase="train")
    c.wait_until(5e-3)
    events = trace_events(tl, include_waits=False)
    assert [e["name"] for e in events if e["ph"] == "X"] == ["train"]


def test_trace_counter_tracks_from_metrics(registry):
    tl = Timeline()
    SimClock("gpu0", tl).advance(1e-3, phase="train")
    registry.counter("bytes_total", link="nvlink").inc(100, t=1e-4)
    registry.counter("bytes_total", link="nvlink").inc(50, t=5e-4)
    registry.counter("untimestamped_total").inc(7)  # no samples -> no track
    events = trace_events(tl, metrics=registry)
    counters = [e for e in events if e["ph"] == "C"]
    assert [c["args"]["value"] for c in counters] == [100.0, 150.0]
    assert counters[0]["name"] == "bytes_total{link=nvlink}"
    assert counters[0]["ts"] == pytest.approx(100.0)  # 1e-4 s -> 100 us


def test_export_writes_file(tmp_path):
    tl = Timeline()
    SimClock("gpu0", tl).advance(1e-3, phase="train")
    path = tmp_path / "trace.json"
    text = export_chrome_trace(tl, path=path)
    assert json.loads(path.read_text()) == json.loads(text)


def test_trainer_trace_covers_every_span(registry, small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    tr = WholeGraphTrainer(store, "gcn", seed=0, batch_size=64,
                           fanouts=[5], hidden=8, dropout=0.0)
    node.reset_clocks()
    tr.train_epoch(max_iterations=2)
    doc = json.loads(export_chrome_trace(node.timeline, metrics=registry))
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(node.timeline.spans)
    assert {e["name"] for e in xs} >= {"sample", "gather", "train"}
    # one thread lane per device that recorded spans
    lanes = {(e["pid"], e["tid"]) for e in xs}
    assert len(lanes) == len(node.timeline.devices())


# -- run reports --------------------------------------------------------------------


def test_json_safe_handles_numpy_and_nonfinite():
    import numpy as np

    out = json_safe({
        "i": np.int64(3),
        "f": np.float32(0.5),
        "arr": np.arange(3),
        "nan": float("nan"),
        "nested": [{"x": np.float64(1.5)}],
    })
    assert out == {
        "i": 3, "f": 0.5, "arr": [0, 1, 2], "nan": None,
        "nested": [{"x": 1.5}],
    }
    json.dumps(out)


def test_run_report_roundtrip(tmp_path):
    rep = RunReport(
        name="demo", kind="run", config={"batch_size": 64}, seed=7,
        phase_totals={"train": 0.5}, epoch_time=1.5, accuracy=0.9,
    )
    path = tmp_path / "report.json"
    rep.save(path)
    back = RunReport.load(path)
    assert back == rep
    # unknown keys from future schema versions are ignored, not fatal
    data = json.loads(path.read_text())
    data["added_in_v2"] = True
    assert RunReport.from_dict(data).name == "demo"


def test_trainer_run_report(registry, small_dataset, tmp_path):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0, cache_ratio=0.1)
    tr = WholeGraphTrainer(store, "graphsage", seed=3, batch_size=64,
                           fanouts=[5], hidden=8, dropout=0.0)
    node.reset_clocks()
    tr.train_epoch(max_iterations=2)
    rep = tr.run_report(accuracy=0.5)
    assert rep.seed == 3
    assert rep.config["model"] == "graphsage"
    assert rep.phase_totals["train"] > 0
    assert rep.epoch_time > 0
    assert rep.cache["hits"] + rep.cache["misses"] > 0
    assert rep.accuracy == 0.5
    assert len(rep.history) == 1
    assert "cache_hits_total" in rep.metrics
    # the manifest is plain JSON end to end
    path = tmp_path / "r.json"
    rep.save(path)
    assert RunReport.load(path).phase_totals == pytest.approx(
        rep.phase_totals
    )


def test_runner_writes_manifest(registry, tmp_path, capsys):
    from repro.experiments import runner

    assert runner.main(["table4", "--report-dir", str(tmp_path)]) == 0
    path = tmp_path / "table4.json"
    assert path.exists()
    data = json.loads(path.read_text())
    assert data["name"] == "table4"
    assert data["kind"] == "experiment"
    assert data["extra"]["shape_check"] is True
    assert data["schema_version"] == 1


# -- compare_runs -------------------------------------------------------------------


def _manifest(**over):
    base = {
        "name": "demo",
        "phase_totals": {"sample": 1.0, "gather": 2.0, "train": 4.0},
        "epoch_time": 7.0,
        "accuracy": 0.9,
    }
    base.update(over)
    return base


def test_compare_identical_reports_clean():
    regressions, notes = compare_runs.compare_reports(_manifest(), _manifest())
    assert regressions == [] and notes == []


def test_compare_flags_phase_regression():
    cand = _manifest(phase_totals={"sample": 1.0, "gather": 2.5, "train": 4.0})
    regressions, _ = compare_runs.compare_reports(_manifest(), cand)
    assert len(regressions) == 1
    assert "gather" in regressions[0]


def test_compare_within_tolerance_passes():
    cand = _manifest(phase_totals={"sample": 1.05, "gather": 2.0, "train": 4.0})
    regressions, _ = compare_runs.compare_reports(
        _manifest(), cand, tolerance=0.10
    )
    assert regressions == []


def test_compare_epoch_time_and_accuracy():
    cand = _manifest(epoch_time=10.0, accuracy=0.5)
    regressions, _ = compare_runs.compare_reports(_manifest(), cand)
    assert any("epoch_time" in r for r in regressions)
    assert any("accuracy" in r for r in regressions)


def test_compare_improvement_is_a_note_not_regression():
    cand = _manifest(phase_totals={"sample": 0.5, "gather": 2.0, "train": 4.0})
    regressions, notes = compare_runs.compare_reports(_manifest(), cand)
    assert regressions == []
    assert any("improved" in n for n in notes)


def test_compare_runs_cli_exit_codes(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(_manifest()))
    b.write_text(json.dumps(_manifest(
        phase_totals={"sample": 1.0, "gather": 2.0, "train": 6.0}
    )))
    assert compare_runs.main([str(a), str(a)]) == 0
    assert compare_runs.main([str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # a looser tolerance lets the same diff pass
    assert compare_runs.main([str(a), str(b), "--tolerance", "0.6"]) == 0
