"""WholeTensor gather/scatter correctness and cost accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import SimNode


@pytest.fixture
def loaded():
    node = SimNode()
    t = WholeTensor(node, 500, 4, tag="f", charge_setup=False)
    host = np.arange(500 * 4, dtype=np.float32).reshape(500, 4)
    t.load_from_host(host)
    return node, t, host


def test_gather_equals_fancy_indexing(loaded):
    node, t, host = loaded
    rows = np.array([0, 499, 250, 3, 250])
    out = t.gather(rows, rank=5)
    assert np.array_equal(out, host[rows])


@given(st.lists(st.integers(min_value=0, max_value=499), max_size=64))
def test_gather_property_any_rows(rows):
    node = SimNode()
    t = WholeTensor(node, 500, 3, tag="f", charge_setup=False)
    host = np.random.default_rng(0).standard_normal((500, 3)).astype(np.float32)
    t.load_from_host(host)
    rows = np.array(rows, dtype=np.int64)
    assert np.array_equal(t.gather(rows, 0), host[rows])


def test_gather_charges_requesting_rank_only(loaded):
    node, t, host = loaded
    node.reset_clocks()
    t.gather(np.arange(100), rank=2)
    assert node.gpu_clock[2].now > 0
    assert node.gpu_clock[3].now == 0


def test_gather_stats_accumulate(loaded):
    node, t, _ = loaded
    t.gather(np.arange(10), 0)
    t.gather(np.arange(20), 0)
    assert t.stats["gather_calls"] == 2
    assert t.stats["gather_rows"] == 30
    assert t.stats["gather_bytes"] == 30 * t.row_bytes


def test_gather_remote_fraction_reflects_ownership(loaded):
    node, t, _ = loaded
    t.stats["gather_remote_bytes"] = 0
    t.stats["gather_bytes"] = 0
    # rows owned by rank 0, requested from rank 0: all local
    local_rows = np.arange(t.row_offsets[1])
    t.gather(local_rows, 0)
    assert t.stats["gather_remote_bytes"] == 0


def test_gather_out_of_range_rejected(loaded):
    _, t, _ = loaded
    with pytest.raises(IndexError):
        t.gather(np.array([500]), 0)
    with pytest.raises(IndexError):
        t.gather(np.array([-1]), 0)


def test_scatter_roundtrip(loaded):
    node, t, host = loaded
    rows = np.array([7, 123, 456])
    vals = np.full((3, 4), -1.0, dtype=np.float32)
    t.scatter(rows, vals, rank=1)
    assert np.array_equal(t.gather(rows, 0), vals)


def test_rank_of_row_matches_offsets(loaded):
    _, t, _ = loaded
    for rank in range(8):
        lo, hi = t.row_offsets[rank], t.row_offsets[rank + 1]
        if hi > lo:
            assert t.rank_of_row([lo]).item() == rank
            assert t.rank_of_row([hi - 1]).item() == rank


def test_explicit_rows_per_rank():
    node = SimNode()
    rows = [10, 20, 30, 40, 0, 0, 0, 0]
    t = WholeTensor(node, 100, 2, rows_per_rank=rows, charge_setup=False)
    assert t.rows_per_rank == rows
    assert t.local_part(1).shape == (20, 2)
    with pytest.raises(ValueError):
        WholeTensor(node, 100, 2, rows_per_rank=[50, 50], charge_setup=False)


def test_materialize_false_accounts_without_data():
    node = SimNode()
    num_rows = 500_000_000  # 256 GB total — far beyond host RAM, fits 8x40GB
    t = WholeTensor(node, num_rows, 128, tag="feature", materialize=False,
                    charge_setup=False)
    usage = node.memory_usage_by_tag()
    assert usage["feature"] == num_rows * 128 * 4
    with pytest.raises(RuntimeError):
        t.gather(np.array([0]), 0)
    t.free()
    assert node.total_memory_usage() == 0


def test_gather_no_cost_does_not_touch_clock(loaded):
    node, t, host = loaded
    node.reset_clocks()
    out = t.gather_no_cost(np.array([5, 10]))
    assert np.array_equal(out, host[[5, 10]])
    assert all(c.now == 0 for c in node.gpu_clock)
