"""Graph analytics vs networkx references."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import MultiGpuGraphStore, from_edge_list, load_dataset
from repro.graph.algorithms import (
    bfs_levels,
    connected_components,
    connected_components_on_store,
    pagerank,
    pagerank_on_store,
)
from repro.hardware import SimNode
from repro.utils.rng import spawn_rng


def random_graph(n=60, m=200, seed=0, ensure_connected=False):
    rng = spawn_rng(seed, "alg")
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    if ensure_connected:
        chain = np.arange(n - 1)
        src = np.concatenate([src, chain])
        dst = np.concatenate([dst, chain + 1])
    return from_edge_list(src, dst, n, undirected=True, dedup=True)


def to_nx(csr) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(csr.num_nodes))
    s, d = csr.subgraph_edges()
    g.add_edges_from(zip(s.tolist(), d.tolist()))
    return g


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pagerank_matches_networkx(seed):
    csr = random_graph(seed=seed)
    ours, _ = pagerank(csr, damping=0.85, tol=1e-10)
    ref = nx.pagerank(to_nx(csr), alpha=0.85, tol=1e-10)
    ref_arr = np.array([ref[i] for i in range(csr.num_nodes)])
    assert np.allclose(ours, ref_arr, atol=1e-6)


def test_pagerank_sums_to_one():
    csr = random_graph(seed=3)
    ranks, _ = pagerank(csr)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
    assert np.all(ranks > 0)


def test_pagerank_handles_dangling_nodes():
    # node 2 has no out-edges
    csr = from_edge_list([0, 1], [1, 0], 3, undirected=False, dedup=True,
                         remove_self_loops=True)
    ranks, _ = pagerank(csr, tol=1e-12)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-6)


def test_pagerank_empty_graph():
    csr = from_edge_list([], [], 0)
    ranks, it = pagerank(csr)
    assert ranks.shape == (0,) and it == 0


@pytest.mark.parametrize("seed", [0, 5])
def test_connected_components_match_networkx(seed):
    csr = random_graph(n=80, m=90, seed=seed)  # sparse -> many components
    labels = connected_components(csr)
    comps = list(nx.connected_components(to_nx(csr)))
    assert len(set(labels.tolist())) == len(comps)
    for comp in comps:
        comp_labels = set(labels[list(comp)].tolist())
        assert len(comp_labels) == 1
        assert comp_labels.pop() == min(comp)  # label = min node id


def test_connected_components_fully_connected():
    csr = random_graph(n=50, m=300, seed=7, ensure_connected=True)
    labels = connected_components(csr)
    assert np.all(labels == 0)


def test_bfs_matches_networkx():
    csr = random_graph(n=70, m=150, seed=9, ensure_connected=True)
    levels = bfs_levels(csr, source=0)
    ref = nx.single_source_shortest_path_length(to_nx(csr), 0)
    for v in range(70):
        assert levels[v] == ref.get(v, -1)


def test_bfs_unreachable_marked():
    csr = from_edge_list([0], [1], 4, undirected=True, dedup=True)
    levels = bfs_levels(csr, 0)
    assert levels.tolist() == [0, 1, -1, -1]
    with pytest.raises(ValueError):
        bfs_levels(csr, 99)


def test_store_parallel_pagerank_matches_and_charges():
    ds = load_dataset("ogbn-products", num_nodes=1200, seed=4,
                      feature_dim=4, num_classes=4)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=0)
    node.reset_clocks()
    ranks, iterations = pagerank_on_store(store, tol=1e-10)
    # functional equality with the plain-CSR run
    direct, _ = pagerank(store.csr, tol=1e-10)
    assert np.allclose(ranks, direct)
    assert iterations > 1
    assert node.timeline.phase_total("analytics") > 0
    # all GPUs worked (SPMD over partitions)
    for mem in node.gpu_memory:
        assert node.timeline.phase_total("analytics", mem.device) > 0


def test_store_parallel_cc_matches():
    ds = load_dataset("friendster", num_nodes=800, seed=4, feature_dim=4)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=0)
    labels = connected_components_on_store(store)
    assert np.array_equal(labels, connected_components(store.csr))
