"""Online-serving subsystem tests (repro.serve).

Covers the ISSUE-5 contract: micro-batcher close rules, arrival-process
determinism, frozen-model bit-identity with the trainer's eval forward,
byte-identical scrubbed ServeReports across same-seed runs, p99 latency
monotone in offered load, and cache-warm beating cache-cold gather cost.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import NeighborSampler
from repro.serve import (
    FrozenModel,
    InferenceEngine,
    MicroBatcher,
    ServeReport,
    bursty_arrivals,
    poisson_arrivals,
    synthesize_requests,
)
from repro.serve.report import latency_summary
from repro.telemetry.metrics import MetricsRegistry, set_registry
from repro.telemetry.run_report import scrub_report
from repro.train.trainer import WholeGraphTrainer
from repro.utils.rng import spawn_rng

FANOUTS = [5, 5]


@pytest.fixture(scope="module")
def trained(medium_dataset):
    """One trained GraphSage + its frozen export (module-cached)."""
    reg = set_registry(MetricsRegistry())
    try:
        store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
        trainer = WholeGraphTrainer(
            store, "sage", fanouts=FANOUTS, hidden=32, num_layers=2,
            seed=3, batch_size=256,
        )
        trainer.train_epoch()
    finally:
        set_registry(reg)
    return trainer, FrozenModel(trainer.model)


def make_engine(dataset, frozen, *, cache_ratio=0.0, replicas=None,
                max_batch_size=32, max_wait_us=50.0, routing="round_robin",
                cache_policy="static", model=True):
    """Fresh node + store + engine (clean clocks per serving run)."""
    store = MultiGpuGraphStore(
        SimNode(), dataset, seed=0, cache_ratio=cache_ratio,
        cache_policy=cache_policy,
    )
    return InferenceEngine(
        store,
        model=frozen if model else None,
        fanouts=FANOUTS if model else None,
        batcher=MicroBatcher(max_batch_size, max_wait_us),
        replicas=replicas,
        routing=routing,
    )


def make_requests(store, n, rate, seed=11, process="poisson"):
    rng = spawn_rng(seed, "serve-requests")
    return synthesize_requests(
        n, rate_qps=rate, node_pool=store.test_nodes, rng=rng,
        process=process,
    )


# ---------------------------------------------------------------------------
# micro-batcher close rules
# ---------------------------------------------------------------------------


class TestMicroBatcher:
    def test_deadline_close_single_request(self):
        b = MicroBatcher(max_batch_size=8, max_wait_us=100)
        d = b.next_batch(np.array([1.0]), 0, t_free=0.0)
        assert d.count == 1
        assert d.close_time == pytest.approx(1.0 + 100e-6)

    def test_fill_close_at_capacity(self):
        # 8 requests 1us apart: the 4th arrival closes a full batch early
        arr = 1.0 + np.arange(8) * 1e-6
        b = MicroBatcher(max_batch_size=4, max_wait_us=100)
        d = b.next_batch(arr, 0, t_free=0.0)
        assert d.count == 4
        assert d.close_time == pytest.approx(arr[3])

    def test_queue_depth_counts_arrived_leftovers(self):
        # 8 simultaneous requests, capacity 4: the leftover 4 are queued
        arr = np.full(8, 1.0)
        d = MicroBatcher(max_batch_size=4, max_wait_us=100).next_batch(
            arr, 0, t_free=0.0
        )
        assert d.count == 4
        assert d.queue_depth_after == 4

    def test_busy_server_grabs_backlog(self):
        # server frees long after the deadline: it takes everything waiting
        # (up to capacity) immediately, no extra wait
        arr = np.array([1.0, 1.1, 1.2, 5.0])
        b = MicroBatcher(max_batch_size=8, max_wait_us=100)
        d = b.next_batch(arr, 0, t_free=3.0)
        assert d.close_time == pytest.approx(3.0)
        assert d.count == 3  # the 4th hasn't arrived yet

    def test_zero_wait_dispatches_head_alone(self):
        arr = np.array([1.0, 2.0])
        d = MicroBatcher(max_batch_size=8, max_wait_us=0).next_batch(
            arr, 0, t_free=0.0
        )
        assert d.count == 1
        assert d.close_time == pytest.approx(1.0)

    def test_plan_covers_every_request_once(self, seeded_rng):
        arr = np.sort(seeded_rng.uniform(0, 1e-3, size=200))
        plan = MicroBatcher(max_batch_size=7, max_wait_us=20).plan(
            arr, service_time=30e-6
        )
        covered = [i for d in plan for i in range(d.first_index, d.last_index)]
        assert covered == list(range(200))
        assert all(1 <= d.count <= 7 for d in plan)
        # close times never precede the head arrival
        assert all(d.close_time >= arr[d.first_index] for d in plan)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_us=-1)


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


class TestArrivals:
    def test_poisson_rate_and_monotonicity(self):
        rng = spawn_rng(0, "poisson")
        arr = poisson_arrivals(1000.0, 5000, rng)
        assert np.all(np.diff(arr) > 0)
        # empirical rate within 10% of the target
        assert 5000 / arr[-1] == pytest.approx(1000.0, rel=0.1)

    def test_bursty_preserves_marginal_rate(self):
        rng = spawn_rng(0, "bursty")
        arr = bursty_arrivals(1000.0, 20000, rng)
        assert np.all(np.diff(arr) > 0)
        assert 20000 / arr[-1] == pytest.approx(1000.0, rel=0.15)

    def test_bursty_has_heavier_gap_tail(self):
        # burstiness = higher coefficient of variation of the gaps
        p = np.diff(poisson_arrivals(1000.0, 20000, spawn_rng(1, "p")))
        b = np.diff(bursty_arrivals(1000.0, 20000, spawn_rng(1, "b")))
        cv = lambda g: g.std() / g.mean()  # noqa: E731
        assert cv(b) > cv(p)

    def test_synthesize_is_deterministic(self, small_store):
        a = make_requests(small_store, 50, 1e5, seed=9)
        b = make_requests(small_store, 50, 1e5, seed=9)
        assert a == b
        assert all(r.node_id in small_store.test_nodes for r in a)


# ---------------------------------------------------------------------------
# frozen model
# ---------------------------------------------------------------------------


class TestFrozenModel:
    def test_bit_identical_to_trainer_eval_forward(self, trained):
        trainer, frozen = trained
        store = trainer.store
        sampler = NeighborSampler(store, FANOUTS, charge=False)
        rng = spawn_rng(4, "freeze-check")
        seeds = store.val_nodes[:64]
        sg = sampler.sample(seeds, 0, rng)
        x = store.feature_tensor.gather_no_cost(sg.input_nodes)

        trainer.model.eval()
        want = trainer.model(sg, Tensor(x), None).data
        trainer.model.train()
        got = frozen(sg, x)
        np.testing.assert_array_equal(got, want)
        assert got.dtype == want.dtype

    def test_snapshot_isolated_from_further_training(self, trained):
        trainer, frozen = trained
        before = [p.copy() for p in frozen.state_dict()]
        reg = set_registry(MetricsRegistry())
        try:
            trainer.train_epoch()
        finally:
            set_registry(reg)
        after = frozen.state_dict()
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_forward_builds_no_tape(self, trained):
        _, frozen = trained
        assert all(not p.requires_grad for p in frozen._module.parameters())
        assert frozen.num_layers == 2
        assert frozen.param_bytes() == sum(
            p.nbytes for p in frozen.state_dict()
        )

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            FrozenModel(object())


# ---------------------------------------------------------------------------
# engine + report
# ---------------------------------------------------------------------------


class TestEngine:
    def test_same_seed_byte_identical_scrubbed_report(
        self, medium_dataset, trained
    ):
        _, frozen = trained

        def one_run():
            prev = set_registry(MetricsRegistry())
            try:
                eng = make_engine(medium_dataset, frozen, cache_ratio=0.1)
                reqs = make_requests(eng.store, 300, 5e5, seed=21)
                rep = eng.serve(reqs, seed=5).report
            finally:
                set_registry(prev)
            return json.dumps(scrub_report(rep.to_dict()), sort_keys=True)

        assert one_run() == one_run()

    def test_p99_monotone_in_arrival_rate(self, medium_dataset, trained):
        _, frozen = trained
        p99s = []
        for rate in (2e5, 2e6, 2e7):
            prev = set_registry(MetricsRegistry())
            try:
                eng = make_engine(medium_dataset, frozen, replicas=[0])
                reqs = make_requests(eng.store, 400, rate, seed=13)
                rep = eng.serve(reqs, seed=5).report
            finally:
                set_registry(prev)
            p99s.append(rep.latency["p99"])
        assert p99s[0] < p99s[1] < p99s[2], p99s

    def test_cache_warm_beats_cache_cold(self, medium_dataset, trained):
        _, frozen = trained
        totals = {}
        for ratio in (0.0, 0.25):
            prev = set_registry(MetricsRegistry())
            try:
                eng = make_engine(medium_dataset, frozen, cache_ratio=ratio,
                                  replicas=[0])
                reqs = make_requests(eng.store, 300, 1e6, seed=17)
                rep = eng.serve(reqs, seed=5).report
            finally:
                set_registry(prev)
            totals[ratio] = (
                rep.phase_totals["serve_gather"], rep.latency["mean"]
            )
        # the warm static cache strictly cuts gather time, which feeds
        # straight into mean latency at equal offered load
        assert totals[0.25][0] < totals[0.0][0]
        assert totals[0.25][1] <= totals[0.0][1]

    def test_clock_cache_warms_up_across_passes(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen, cache_ratio=0.25,
                          replicas=[0], cache_policy="clock")
        reqs = make_requests(eng.store, 200, 1e6, seed=19)
        timeline = eng.node.timeline
        eng.serve(reqs, seed=5)
        cold = timeline.phase_total("serve_gather")
        eng.serve(reqs, seed=5)
        warm = timeline.phase_total("serve_gather") - cold
        assert warm < cold

    def test_predictions_align_with_store_labels_shape(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen)
        reqs = make_requests(eng.store, 100, 5e5)
        res = eng.serve(reqs, seed=2)
        assert res.predictions.shape == (100,)
        assert np.all(res.predictions >= 0)
        assert np.all(res.predictions < eng.store.num_classes)
        assert np.all(res.latencies > 0)

    def test_embedding_mode_serves_without_model(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen, model=False)
        reqs = make_requests(eng.store, 80, 5e5)
        res = eng.serve(reqs, seed=2)
        assert res.predictions is None
        assert res.report.phase_totals["serve_sample"] == 0.0
        assert res.report.phase_totals["serve_gather"] > 0.0

    def test_hash_routing_pins_nodes_to_replicas(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen, routing="hash")
        reqs = make_requests(eng.store, 120, 5e5)
        res = eng.serve(reqs, seed=2)
        seen = {}
        for r, rep in zip(reqs, res.replica_of):
            assert seen.setdefault(r.node_id, rep) == rep

    def test_round_robin_balances_replicas(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen)
        reqs = make_requests(eng.store, 160, 5e5)
        res = eng.serve(reqs, seed=2)
        counts = [row["requests"] for row in res.report.per_replica]
        assert sum(counts) == 160
        assert max(counts) - min(counts) <= 1

    def test_serve_metrics_and_trace_lane(
        self, medium_dataset, trained, registry
    ):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen, replicas=[0])
        reqs = make_requests(eng.store, 60, 5e5)
        res = eng.serve(reqs, seed=2)
        assert registry.total("serve_requests_total") == 60
        assert registry.total("serve_batches_total") == res.report.num_batches
        lane = eng.node.gpu_memory[0].device + "/serve"
        spans = eng.node.timeline.device_spans(lane)
        assert len(spans) == res.report.num_batches
        assert all(s.phase == "serve_batch" for s in spans)

    def test_report_round_trip(self, medium_dataset, trained, registry,
                               tmp_path):
        _, frozen = trained
        eng = make_engine(medium_dataset, frozen, replicas=[0, 1])
        reqs = make_requests(eng.store, 50, 5e5)
        rep = eng.serve(reqs, seed=2).report
        path = tmp_path / "serve.json"
        rep.save(path)
        loaded = ServeReport.load(path)
        assert loaded.to_dict() == rep.to_dict()
        assert loaded.kind == "serve"
        assert loaded.qps == pytest.approx(
            loaded.num_requests / loaded.duration_seconds
        )

    def test_engine_validation(self, medium_dataset, trained, registry):
        _, frozen = trained
        store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
        with pytest.raises(ValueError):
            InferenceEngine(store, model=frozen, fanouts=[5])  # layer mismatch
        with pytest.raises(ValueError):
            InferenceEngine(store, routing="random")
        with pytest.raises(ValueError):
            InferenceEngine(store, replicas=[])
        eng = InferenceEngine(store, model=frozen, fanouts=FANOUTS)
        with pytest.raises(ValueError):
            eng.serve([])


def test_latency_summary_exactness():
    lat = np.arange(1, 101, dtype=np.float64)
    s = latency_summary(lat)
    assert s["count"] == 100
    assert s["p50"] == pytest.approx(np.percentile(lat, 50))
    assert s["p99"] == pytest.approx(np.percentile(lat, 99))
    assert s["min"] == 1.0 and s["max"] == 100.0
    empty = latency_summary([])
    assert empty["count"] == 0 and empty["p99"] is None
