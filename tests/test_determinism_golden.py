"""Golden determinism: two same-seed runs leave byte-identical artifacts.

The simulation's determinism contract (DESIGN.md §8): given the same seeds
and config, *everything* a run records — weights, clocks, metrics, the full
run-report JSON — is reproduced bit-for-bit.  Only the documented
``VOLATILE_KEYS`` (wall-clock stamps callers may add) are exempt, and
``scrub_report`` strips exactly those.
"""

from __future__ import annotations

import json

import numpy as np

from repro.faults import FaultPlan, GatherReplyLoss, StragglerGpu
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.telemetry import metrics
from repro.telemetry.run_report import (
    VOLATILE_KEYS,
    RunReport,
    scrub_report,
)
from repro.train import WholeGraphTrainer


def _golden_run(dataset, fault_plan=None):
    """One fully-isolated training run: fresh registry, node, store."""
    prev = metrics.set_registry(metrics.MetricsRegistry())
    try:
        store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
        trainer = WholeGraphTrainer(
            store, "graphsage", seed=3, batch_size=32, fanouts=[5, 5],
            hidden=32, fault_plan=fault_plan,
        )
        for _ in range(2):
            trainer.train_epoch(max_iterations=4)
        report = trainer.run_report(accuracy=trainer.evaluate())
        weights = [p.data.copy() for p in trainer.model.parameters()]
        return report, weights
    finally:
        metrics.set_registry(prev)


def _scrubbed_json(report: RunReport) -> str:
    return json.dumps(scrub_report(report), sort_keys=True, indent=2)


def test_same_seed_runs_are_byte_identical(medium_dataset):
    r1, w1 = _golden_run(medium_dataset)
    r2, w2 = _golden_run(medium_dataset)
    for a, b in zip(w1, w2):
        assert np.array_equal(a, b)
    assert _scrubbed_json(r1) == _scrubbed_json(r2)


def test_same_seed_fault_runs_are_byte_identical(medium_dataset):
    """Fault injection is inside the determinism contract too: the
    injector draws from its own plan-seeded stream, so a faulted run is
    just as reproducible as a clean one."""
    plan = FaultPlan(
        events=[
            StragglerGpu(rank=1, slowdown=2.0),
            GatherReplyLoss(probability=0.5),
        ],
        seed=11,
    )
    r1, w1 = _golden_run(medium_dataset, plan)
    r2, w2 = _golden_run(medium_dataset, plan)
    for a, b in zip(w1, w2):
        assert np.array_equal(a, b)
    assert _scrubbed_json(r1) == _scrubbed_json(r2)


def test_report_json_stable_through_disk_roundtrip(
    medium_dataset, tmp_path
):
    report, _ = _golden_run(medium_dataset)
    path = tmp_path / "run.json"
    report.save(path)
    loaded = RunReport.load(path)
    assert _scrubbed_json(loaded) == _scrubbed_json(report)


# -- scrub_report -------------------------------------------------------------------


def test_scrub_report_strips_volatile_keys_at_any_depth():
    report = {
        "name": "x",
        "wall_time_seconds": 1.23,
        "config": {"timestamp": "now", "seed": 7},
        "history": [
            {"epoch": 0, "hostname": "gpu-box"},
            {"epoch": 1},
        ],
        "extra": {"nested": {"report_path": "/tmp/r.json", "keep": 1}},
    }
    scrubbed = scrub_report(report)
    assert scrubbed == {
        "name": "x",
        "config": {"seed": 7},
        "history": [{"epoch": 0}, {"epoch": 1}],
        "extra": {"nested": {"keep": 1}},
    }
    # the input is not mutated
    assert "wall_time_seconds" in report


def test_scrub_report_accepts_runreport_instances():
    report = RunReport(name="r", extra={"timestamp": "now", "keep": True})
    scrubbed = scrub_report(report)
    assert scrubbed["extra"] == {"keep": True}
    assert scrubbed["name"] == "r"


def test_scrub_report_custom_volatile_set():
    report = {"a": 1, "b": {"a": 2, "c": 3}}
    assert scrub_report(report, volatile={"a"}) == {"b": {"c": 3}}


def test_volatile_keys_is_the_documented_contract():
    assert VOLATILE_KEYS == {
        "wall_time_seconds", "timestamp", "hostname", "report_path",
    }
