"""Global gather implementations and the multi-layer neighbor sampler."""

import numpy as np
import pytest

from repro.dsm.comm import Communicator
from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import SimNode
from repro.ops.gather import distributed_memory_gather, shared_memory_gather
from repro.ops.neighbor_sampler import NeighborSampler, sample_layer


@pytest.fixture
def tensor_setup(rng):
    node = SimNode()
    t = WholeTensor(node, 1000, 8, tag="f", charge_setup=False)
    host = rng.standard_normal((1000, 8)).astype(np.float32)
    t.load_from_host(host)
    per_rank = [rng.integers(0, 1000, size=64) for _ in range(8)]
    return node, t, host, per_rank


def test_both_gathers_functionally_identical(tensor_setup):
    node, t, host, per_rank = tensor_setup
    shared, _ = shared_memory_gather(t, per_rank)
    dist, _ = distributed_memory_gather(t, per_rank, Communicator(node))
    for s, d, rows in zip(shared, dist, per_rank):
        assert np.array_equal(s, host[rows])
        assert np.array_equal(d, host[rows])


def test_distributed_gather_has_five_steps(tensor_setup):
    node, t, _, per_rank = tensor_setup
    _, trace = distributed_memory_gather(t, per_rank, Communicator(node))
    assert set(trace.step_times) == {
        "bucket_ids", "alltoallv_ids", "local_gather",
        "alltoallv_features", "reorder",
    }
    assert all(v > 0 for v in trace.step_times.values())
    assert trace.total_time == pytest.approx(sum(trace.step_times.values()),
                                             rel=1e-6)


def test_shared_gather_faster_than_distributed(tensor_setup):
    """The Fig. 10 headline: one kernel beats five software steps."""
    node, t, _, per_rank = tensor_setup
    _, t_shared = shared_memory_gather(t, per_rank)
    _, trace = distributed_memory_gather(t, per_rank, Communicator(node))
    assert trace.total_time > 2.0 * t_shared


def test_gather_wrong_rank_count_rejected(tensor_setup):
    node, t, _, _ = tensor_setup
    with pytest.raises(ValueError):
        distributed_memory_gather(t, [np.array([0])], Communicator(node))


def test_gather_empty_requests(tensor_setup):
    node, t, host, _ = tensor_setup
    empty = [np.array([], dtype=np.int64) for _ in range(8)]
    shared, _ = shared_memory_gather(t, empty)
    dist, _ = distributed_memory_gather(t, empty, Communicator(node))
    assert all(s.shape == (0, 8) for s in shared)
    assert all(d.shape == (0, 8) for d in dist)


# -- sample_layer -----------------------------------------------------------------

def test_sample_layer_counts_and_membership(rng):
    indptr = np.array([0, 3, 3, 10, 12])
    indices = np.arange(12) % 5
    targets = np.array([0, 1, 2, 3])
    flat, counts, positions = sample_layer(indptr, indices, targets, fanout=4, rng=rng)
    assert counts.tolist() == [3, 0, 4, 2]
    assert flat.shape[0] == 9
    # each target's slice contains only its own neighbors
    off = 0
    for t, c in zip(targets, counts):
        nbrs = set(indices[indptr[t]:indptr[t + 1]].tolist())
        assert set(flat[off:off + c].tolist()) <= nbrs
        off += c


def test_sample_layer_edge_positions_consistent(rng):
    indptr = np.array([0, 3, 3, 10, 12])
    indices = np.arange(12) % 5
    targets = np.array([0, 2, 3])
    flat, counts, positions = sample_layer(indptr, indices, targets, 4, rng)
    # the edge-position handle dereferences back to the sampled neighbor
    assert np.array_equal(indices[positions], flat)
    # and each position lies inside its target's CSR row
    off = 0
    for t_, c in zip(targets, counts):
        seg = positions[off:off + c]
        assert np.all(seg >= indptr[t_]) and np.all(seg < indptr[t_ + 1])
        off += c


def test_sample_layer_without_replacement(rng):
    indptr = np.array([0, 50])
    indices = np.arange(50)
    flat, counts, positions = sample_layer(indptr, indices, np.array([0]), 20, rng)
    assert counts[0] == 20
    assert len(set(flat.tolist())) == 20


def test_sample_layer_take_all_is_exact(rng):
    indptr = np.array([0, 5])
    indices = np.array([9, 8, 7, 6, 5])
    flat, counts, positions = sample_layer(indptr, indices, np.array([0]), 30, rng)
    assert sorted(flat.tolist()) == [5, 6, 7, 8, 9]


# -- NeighborSampler over the store ---------------------------------------------------

def test_sampler_prefix_property(small_store, rng):
    sampler = NeighborSampler(small_store, [4, 4, 4], charge=False)
    sg = sampler.sample(small_store.train_nodes[:32], 0, rng)
    sg.validate_prefix_property()
    assert sg.num_layers == 3
    assert len(sg.frontiers) == 4


def test_sampler_blocks_reference_real_edges(small_store, rng):
    sampler = NeighborSampler(small_store, [5, 5], charge=False)
    sg = sampler.sample(small_store.train_nodes[:16], 0, rng)
    for level, blk in enumerate(sg.blocks):
        tgt, src = sg.frontiers[level], sg.frontiers[level + 1]
        for i in range(blk.num_targets):
            nbrs = set(small_store.csr.neighbors(tgt[i]).tolist())
            for e in range(blk.indptr[i], blk.indptr[i + 1]):
                assert src[blk.indices[e]] in nbrs


def test_sampler_fanout_respected(small_store, rng):
    sampler = NeighborSampler(small_store, [3], charge=False)
    sg = sampler.sample(small_store.train_nodes[:64], 0, rng)
    blk = sg.blocks[0]
    counts = np.diff(blk.indptr)
    degrees = small_store.degree(sg.frontiers[0])
    assert np.array_equal(counts, np.minimum(degrees, 3))


def test_sampler_duplicate_counts_match_block(small_store, rng):
    sampler = NeighborSampler(small_store, [6], charge=False)
    sg = sampler.sample(small_store.train_nodes[:32], 0, rng)
    blk = sg.blocks[0]
    ref = np.bincount(blk.indices, minlength=blk.num_src)
    assert np.array_equal(blk.duplicate_counts, ref)


def test_sampler_charges_sample_phase(small_store, rng):
    node = small_store.node
    node.reset_clocks()
    sampler = NeighborSampler(small_store, [4, 4])
    sampler.sample(small_store.train_nodes[:16], rank=3, rng=rng)
    assert node.timeline.phase_total("sample", node.gpu_memory[3].device) > 0
    assert node.timeline.phase_total("sample", node.gpu_memory[0].device) == 0


def test_sampler_deterministic_per_rng(small_store):
    sampler = NeighborSampler(small_store, [4, 4], charge=False)
    a = sampler.sample(small_store.train_nodes[:8], 0, np.random.default_rng(5))
    b = sampler.sample(small_store.train_nodes[:8], 0, np.random.default_rng(5))
    for fa, fb in zip(a.frontiers, b.frontiers):
        assert np.array_equal(fa, fb)
