"""Simulated clocks, timelines and the device-memory allocator."""

import pytest

from repro.hardware.clock import SimClock, Span, Timeline
from repro.hardware.memory import DeviceMemory, OutOfDeviceMemory


def test_clock_advances_and_records():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    c.advance(1.0, phase="sample")
    c.advance(0.5, phase="train")
    assert c.now == 1.5
    assert tl.phase_total("sample") == 1.0
    assert tl.phase_total("train") == 0.5


def test_clock_rejects_negative_advance():
    c = SimClock("gpu0")
    with pytest.raises(ValueError):
        c.advance(-1.0)


def test_wait_until_records_non_busy_span():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    c.advance(1.0, phase="train")
    c.wait_until(3.0)
    spans = tl.device_spans("gpu0")
    assert spans[-1].busy is False
    assert spans[-1].duration == 2.0
    # waiting for the past is a no-op
    c.wait_until(1.0)
    assert c.now == 3.0


def test_phase_breakdown_filters_by_device():
    tl = Timeline()
    a, b = SimClock("gpu0", tl), SimClock("gpu1", tl)
    a.advance(1.0, phase="x")
    b.advance(2.0, phase="x")
    assert tl.phase_total("x") == 3.0
    assert tl.phase_total("x", device="gpu1") == 2.0
    assert tl.phase_breakdown("gpu0") == {"x": 1.0}


def test_span_duration():
    assert Span("d", 1.0, 3.5, "p").duration == 2.5


def test_memory_allocation_accounting():
    mem = DeviceMemory("gpu0", capacity=1000)
    a = mem.allocate(400, tag="graph")
    b = mem.allocate(300, tag="feature")
    assert mem.used == 700
    assert mem.free_bytes == 300
    assert mem.usage_by_tag() == {"graph": 400, "feature": 300}
    mem.free(a)
    assert mem.used == 300
    assert mem.peak == 700  # high-water mark survives frees
    mem.free(b)
    assert mem.usage_by_tag() == {}


def test_memory_overflow_raises():
    mem = DeviceMemory("gpu0", capacity=100)
    mem.allocate(80)
    with pytest.raises(OutOfDeviceMemory):
        mem.allocate(21)


def test_memory_double_free_raises():
    mem = DeviceMemory("gpu0", capacity=100)
    a = mem.allocate(10)
    mem.free(a)
    with pytest.raises(KeyError):
        mem.free(a)


def test_memory_negative_allocation_rejected():
    mem = DeviceMemory("gpu0", capacity=100)
    with pytest.raises(ValueError):
        mem.allocate(-1)
