"""Unit + property tests for the event-driven stream scheduler (repro.sim).

Covers the invariants the overlap engines lean on:

- same-stream ops serialize (never overlap), in launch order;
- an op never starts before any of its dependencies completes;
- dependency stalls are recorded as non-busy wait spans;
- the event loop is deterministic: the same launch program replays to the
  identical span sequence and event times;
- straggler ``scale_hooks`` dilate busy time *through* stream timestamps;
- the relative-time window arithmetic matches the legacy overlap formulas
  bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import SimNode
from repro.hardware.clock import SimClock, Timeline
from repro.sim import (
    DeviceStreams,
    Event,
    EventLoop,
    OverlapWindow,
    Stream,
    VirtualStream,
    join,
    streams_for,
)


def make_stream(device="gpu", loop=None, timeline=None):
    loop = loop or EventLoop()
    timeline = timeline if timeline is not None else Timeline()
    return Stream(SimClock(device, timeline), loop), loop, timeline


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


class TestEvent:
    def test_external_event_is_done(self):
        ev = Event.at(3.5)
        assert ev.done
        assert ev.time == 3.5
        assert ev.wait() == 3.5

    def test_pending_event_raises_on_time(self):
        ev = EventLoop().user_event("x")
        assert not ev.done
        with pytest.raises(RuntimeError, match="pending"):
            _ = ev.time

    def test_user_event_fire_resolves(self):
        ev = EventLoop().user_event("x")
        ev.fire(2.0)
        assert ev.done and ev.time == 2.0
        with pytest.raises(RuntimeError, match="already fired"):
            ev.fire(3.0)

    def test_launch_returns_completed_event_when_deps_resolved(self):
        s, _, _ = make_stream()
        ev = s.launch(1.5, phase="compute")
        assert ev.done
        assert ev.start == 0.0
        assert ev.time == 1.5


# ---------------------------------------------------------------------------
# streams
# ---------------------------------------------------------------------------


class TestStream:
    def test_same_stream_ops_serialize(self):
        s, _, tl = make_stream()
        a = s.launch(1.0, phase="a")
        b = s.launch(2.0, phase="b")
        assert b.start == a.time
        assert b.time == 3.0
        spans = tl.device_spans("gpu")
        assert [(sp.start, sp.end) for sp in spans] == [(0.0, 1.0), (1.0, 3.0)]

    def test_cross_stream_dep_records_wait_span(self):
        loop = EventLoop()
        tl = Timeline()
        s1, _, _ = make_stream("gpu0", loop, tl)
        s2, _, _ = make_stream("gpu1", loop, tl)
        a = s1.launch(2.0, phase="produce")
        b = s2.launch(1.0, deps=[a], phase="consume", wait_phase="dep_wait")
        assert b.start == a.time
        waits = [sp for sp in tl.device_spans("gpu1") if not sp.busy]
        assert len(waits) == 1
        assert waits[0].phase == "dep_wait"
        assert (waits[0].start, waits[0].end) == (0.0, 2.0)

    def test_no_wait_span_when_dep_already_past(self):
        loop = EventLoop()
        tl = Timeline()
        s1, _, _ = make_stream("gpu0", loop, tl)
        s2, _, _ = make_stream("gpu1", loop, tl)
        a = s1.launch(1.0, phase="x")
        s2.launch(5.0, phase="y")
        b = s2.launch(1.0, deps=[a], phase="z")
        assert b.start == 5.0  # dep at t=1 is already in the past
        assert all(sp.busy for sp in tl.device_spans("gpu1"))

    def test_callable_op_charges_its_own_clock(self):
        s, _, _ = make_stream()
        ev = s.launch(
            lambda: s.clock.advance(0.5, phase="inner") and 42 or 42,
            phase="outer",
        )
        assert ev.value == 42
        assert ev.time == 0.5

    def test_zero_duration_op_records_no_span(self):
        s, _, tl = make_stream()
        ev = s.launch(0.0, phase="noop")
        assert ev.done and ev.time == 0.0
        assert tl.spans == []

    def test_parked_op_waits_for_user_event(self):
        s, loop, _ = make_stream()
        gate = loop.user_event("gate")
        ev = s.launch(1.0, deps=[gate], phase="gated")
        assert not ev.done
        gate.fire(4.0)
        loop.run_until_idle()
        assert ev.start == 4.0 and ev.time == 5.0

    def test_event_wait_drains_the_loop(self):
        s, loop, _ = make_stream()
        gate = loop.user_event("gate")
        ev = s.launch(1.0, deps=[gate], phase="gated")
        gate.fire(2.0)
        assert ev.wait() == 3.0

    def test_stream_is_fifo_past_a_parked_op(self):
        """An op launched after a parked op on the same stream must not
        jump the queue (CUDA-stream FIFO semantics)."""
        s, loop, _ = make_stream()
        gate = loop.user_event("gate")
        a = s.launch(1.0, deps=[gate], phase="a")
        b = s.launch(1.0, phase="b")
        assert not b.done  # parked behind a, despite having no explicit deps
        gate.fire(2.0)
        loop.run_until_idle()
        assert a.start == 2.0 and a.time == 3.0
        assert b.start == 3.0 and b.time == 4.0

    def test_deadlock_is_detected(self):
        s, loop, _ = make_stream()
        gate = loop.user_event("never")
        s.launch(1.0, deps=[gate], phase="stuck")
        with pytest.raises(RuntimeError, match="deadlock"):
            loop.run_until_idle()

    def test_scale_hook_dilates_through_stream_timestamps(self):
        """A straggler hook on the clock slows stream ops and every
        dependent op observes the dilated completion time."""
        loop = EventLoop()
        tl = Timeline()
        slow, _, _ = make_stream("slow", loop, tl)
        fast, _, _ = make_stream("fast", loop, tl)
        slow.clock.scale_hook = lambda dt, phase, now: dt * 3.0
        a = slow.launch(1.0, phase="compute")
        assert a.time == 3.0
        b = fast.launch(0.5, deps=[a], phase="consume")
        assert b.start == 3.0 and b.time == 3.5


# ---------------------------------------------------------------------------
# node registry / join
# ---------------------------------------------------------------------------


class TestDeviceStreams:
    def test_streams_for_caches_per_node(self):
        node = SimNode()
        assert streams_for(node) is streams_for(node)
        assert node.streams is node.streams

    def test_reset_clocks_drops_the_registry(self):
        node = SimNode()
        before = node.streams
        node.reset_clocks()
        assert node.streams is not before

    def test_compute_streams_bind_gpu_clocks(self):
        node = SimNode()
        ds = node.streams
        for r in range(node.num_gpus):
            assert ds.compute(r).clock is node.gpu_clock[r]
        assert ds.host().clock is node.host_clock

    def test_lane_renders_as_device_slash_name(self):
        node = SimNode()
        lane = node.streams.lane(0, "nccl")
        assert lane.device == node.gpu_clock[0].device + "/nccl"
        assert node.streams.comm(0) is lane
        lane.record(1.0, 2.0, phase="allreduce_bucket")
        assert node.timeline.phase_total("allreduce_bucket") == 1.0

    def test_barrier_joins_all_ranks(self):
        node = SimNode()
        ds = node.streams
        ds.compute(0).launch(2.0, phase="x")
        ds.compute(1).launch(0.5, phase="x")
        ev = ds.barrier(phase="sync")
        assert ev.time == 2.0
        assert all(c.now == 2.0 for c in node.gpu_clock)

    def test_join_across_nodes(self):
        n0, n1 = SimNode(node_id=0), SimNode(node_id=1)
        n0.streams.compute(0).launch(1.0, phase="x")
        n1.streams.compute(0).launch(3.0, phase="x")
        ev = join(
            [n.streams.compute(r) for n in (n0, n1) for r in range(2)],
            phase="cluster_sync",
        )
        assert ev.time == 3.0
        assert n0.gpu_clock[0].now == 3.0
        assert n1.gpu_clock[1].now == 3.0


# ---------------------------------------------------------------------------
# relative-time windows
# ---------------------------------------------------------------------------


class TestWindows:
    def test_virtual_stream_matches_legacy_cursor_loop(self):
        """The VirtualStream recurrence is float-for-float the legacy
        ``stream_free`` loop of plan_grad_sync."""
        rng = np.random.default_rng(5)
        durations = rng.uniform(1e-6, 1e-3, size=32)
        floors = rng.uniform(-1e-3, 1e-3, size=32)
        vs = VirtualStream()
        stream_free = -float("inf")
        for d, f in zip(durations, floors):
            start, end = vs.launch(d, not_before=f)
            legacy_start = max(f, stream_free)
            stream_free = legacy_start + d
            assert start == legacy_start and end == stream_free

    @given(
        train=st.floats(0, 1e3, allow_nan=False),
        prefetch=st.floats(0, 1e3, allow_nan=False),
    )
    def test_window_exposed_matches_legacy_formula(self, train, prefetch):
        window = OverlapWindow(charged=prefetch)
        window.stream("compute").launch(train)
        assert window.exposed == max(0.0, train - prefetch)
        assert window.hidden == train - window.exposed

    def test_empty_window_exposes_nothing(self):
        assert OverlapWindow(charged=1.0).exposed == 0.0


# ---------------------------------------------------------------------------
# property tests: determinism + ordering invariants
# ---------------------------------------------------------------------------


@st.composite
def stream_programs(draw):
    """A random launch program over K streams with back-references as deps
    and a sprinkle of user-event gates."""
    num_streams = draw(st.integers(1, 4))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_streams - 1),           # stream
                st.floats(0.0, 10.0, allow_nan=False),     # duration
                st.lists(st.integers(0, 40), max_size=3),  # dep back-refs
                st.booleans(),                             # gate on user event
            ),
            min_size=1,
            max_size=24,
        )
    )
    gate_time = draw(st.floats(0.0, 20.0, allow_nan=False))
    return num_streams, ops, gate_time


def _run_program(program):
    """Execute a stream program; returns (span tuples, event times)."""
    num_streams, ops, gate_time = program
    loop = EventLoop()
    tl = Timeline()
    streams = [
        Stream(SimClock(f"d{i}", tl), loop) for i in range(num_streams)
    ]
    gate = loop.user_event("gate")
    events: list[Event] = []
    gated = []
    for stream_idx, duration, dep_refs, use_gate in ops:
        deps = [events[r % len(events)] for r in dep_refs if events]
        if use_gate:
            deps.append(gate)
        ev = streams[stream_idx].launch(duration, deps=deps, phase="op")
        events.append(ev)
        if use_gate or any(not d.done for d in deps):
            gated.append(ev)
    gate.fire(gate_time)
    loop.run_until_idle()
    spans = [
        (sp.device, sp.start, sp.end, sp.phase, sp.busy) for sp in tl.spans
    ]
    return spans, [ev.time for ev in events], events, streams


@given(stream_programs())
def test_event_loop_is_deterministic(program):
    """Replaying the same launch program gives identical spans and times."""
    spans1, times1, _, _ = _run_program(program)
    spans2, times2, _, _ = _run_program(program)
    assert spans1 == spans2
    assert times1 == times2


@given(stream_programs())
def test_stream_ordering_invariants(program):
    """No same-stream overlap; ops start at/after every dependency; spans
    on one device are monotone."""
    _, _, events, streams = _run_program(program)
    for ev in events:
        assert ev.done
        assert ev.start <= ev.time
    # per-device span monotonicity (same-stream ops never overlap)
    for s in streams:
        spans = s.clock.timeline.device_spans(s.device)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start


@given(stream_programs())
def test_dependencies_are_respected(program):
    num_streams, ops, gate_time = program
    loop = EventLoop()
    tl = Timeline()
    streams = [
        Stream(SimClock(f"d{i}", tl), loop) for i in range(num_streams)
    ]
    gate = loop.user_event("gate")
    events: list[Event] = []
    deps_of: list[list[Event]] = []
    for stream_idx, duration, dep_refs, use_gate in ops:
        deps = [events[r % len(events)] for r in dep_refs if events]
        if use_gate:
            deps.append(gate)
        ev = streams[stream_idx].launch(duration, deps=deps, phase="op")
        events.append(ev)
        deps_of.append(deps)
    gate.fire(gate_time)
    loop.run_until_idle()
    for ev, deps in zip(events, deps_of):
        for d in deps:
            assert ev.start >= d.time
