"""NCCL-style collectives and the unified-memory page-migration model."""

import numpy as np
import pytest

from repro.dsm.comm import Communicator
from repro.dsm.unified_memory import UnifiedMemorySpace
from repro.hardware import SimNode


@pytest.fixture
def comm(node):
    return Communicator(node)


def test_allgather_delivers_everything(comm):
    objs = [f"h{r}" for r in range(8)]
    out = comm.allgather(objs)
    assert all(row == objs for row in out)


def test_alltoallv_transpose_semantics(comm):
    send = [
        [np.array([s * 10 + d]) for d in range(8)] for s in range(8)
    ]
    recv = comm.alltoallv(send)
    for dst in range(8):
        for src in range(8):
            assert recv[dst][src][0] == src * 10 + dst


def test_alltoallv_charges_all_ranks(comm, node):
    node.reset_clocks()
    send = [[np.zeros(1000) for _ in range(8)] for _ in range(8)]
    comm.alltoallv(send)
    assert all(c.now > 0 for c in node.gpu_clock)


def test_allreduce_sums_correctly(comm):
    arrays = [np.full(16, float(r)) for r in range(8)]
    out = comm.allreduce(arrays)
    assert all(np.allclose(o, sum(range(8))) for o in out)


def test_allreduce_dtype_preserved(comm):
    arrays = [np.ones(4, dtype=np.float32) for _ in range(8)]
    out = comm.allreduce(arrays)
    assert out[0].dtype == np.float32


def test_broadcast_replicates(comm):
    data = np.arange(10)
    out = comm.broadcast(data, root=2)
    assert all(np.array_equal(o, data) for o in out)


def test_send_recv_charges_both_endpoints(comm, node):
    node.reset_clocks()
    comm.send_recv(np.zeros(1 << 20), src=1, dst=6)
    assert node.gpu_clock[1].now > 0
    assert node.gpu_clock[6].now == node.gpu_clock[1].now
    assert node.gpu_clock[0].now == 0


def test_collective_rank_count_enforced(comm):
    with pytest.raises(ValueError):
        comm.allreduce([np.zeros(1)] * 3)


# -- unified memory ----------------------------------------------------------

def test_um_pages_initially_distributed(node):
    um = UnifiedMemorySpace(node, 8 * 64 * 1024, page_bytes=64 * 1024)
    owners = set(um.page_owner.tolist())
    assert len(owners) == 8


def test_um_fault_migrates_page(node):
    um = UnifiedMemorySpace(node, 8 * 64 * 1024, page_bytes=64 * 1024)
    # page 7 starts on rank 7; access from rank 0 faults and migrates
    addr = 7 * 64 * 1024
    um.access(np.array([addr]), rank=0)
    assert um.fault_count == 1
    assert um.page_owner[7] == 0
    # second access is now a local hit
    um.access(np.array([addr]), rank=0)
    assert um.hit_count == 1


def test_um_fault_slower_than_hit(node):
    um = UnifiedMemorySpace(node, 8 * 64 * 1024, page_bytes=64 * 1024)
    t_fault = um.access(np.array([7 * 64 * 1024]), rank=0)
    t_hit = um.access(np.array([7 * 64 * 1024]), rank=0)
    assert t_fault > 10 * t_hit


def test_um_out_of_range_access(node):
    um = UnifiedMemorySpace(node, 1024, page_bytes=64 * 1024)
    with pytest.raises(IndexError):
        um.access(np.array([1 << 30]), rank=0)
