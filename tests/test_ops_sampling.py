"""Algorithm 1: parallel sampling without replacement.

Property-tested invariants: exactly M outputs, all distinct, all in range,
uniform marginal distribution, and agreement with the sequential reference
on feasibility.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.sampling import (
    batch_sample_without_replacement,
    parallel_sample_without_replacement,
    reference_sample_without_replacement,
)


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=0, max_value=2**31),
)
def test_single_node_distinct_and_in_range(m, extra, seed):
    n = m + extra
    rng = np.random.default_rng(seed)
    out = parallel_sample_without_replacement(n, m, rng)
    assert out.shape == (m,)
    assert len(set(out.tolist())) == m
    assert out.min() >= 0 and out.max() < n


@given(
    st.integers(min_value=1, max_value=32),
    st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=40),
    st.integers(min_value=0, max_value=2**31),
)
def test_batch_rows_independent(m, extras, seed):
    counts = np.array([m + e for e in extras], dtype=np.int64)
    rng = np.random.default_rng(seed)
    res = batch_sample_without_replacement(counts, m, rng)
    assert res.shape == (len(extras), m)
    for i, n in enumerate(counts):
        row = res[i]
        assert len(set(row.tolist())) == m
        assert row.min() >= 0 and row.max() < n


def test_m_equals_n_is_permutation():
    rng = np.random.default_rng(0)
    res = batch_sample_without_replacement(np.full(50, 7), 7, rng)
    for row in res:
        assert sorted(row.tolist()) == list(range(7))


def test_rejects_m_greater_than_n():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        parallel_sample_without_replacement(3, 5, rng)
    with pytest.raises(ValueError):
        batch_sample_without_replacement(np.array([3, 10]), 5, rng)


def test_zero_samples():
    rng = np.random.default_rng(0)
    assert parallel_sample_without_replacement(5, 0, rng).shape == (0,)
    out = batch_sample_without_replacement(np.array([5, 6]), 0, rng)
    assert out.shape == (2, 0)


def test_marginal_uniformity_chi_square():
    """Each of N indices should be selected with probability M/N."""
    rng = np.random.default_rng(42)
    n, m, trials = 12, 4, 6000
    res = batch_sample_without_replacement(np.full(trials, n), m, rng)
    counts = np.bincount(res.ravel(), minlength=n)
    expected = trials * m / n
    chi2 = ((counts - expected) ** 2 / expected).sum()
    # 11 dof, p=0.001 critical value ~31.3
    assert chi2 < 31.3, (chi2, counts)


def test_reference_sampler_properties():
    rng = np.random.default_rng(0)
    out = reference_sample_without_replacement(10, 4, rng)
    assert len(set(out.tolist())) == 4
    # M >= N returns everything
    assert np.array_equal(
        reference_sample_without_replacement(3, 5, rng), np.arange(3)
    )


def test_deterministic_given_rng_state():
    a = batch_sample_without_replacement(
        np.full(10, 20), 5, np.random.default_rng(9)
    )
    b = batch_sample_without_replacement(
        np.full(10, 20), 5, np.random.default_rng(9)
    )
    assert np.array_equal(a, b)


@settings(max_examples=10)
@given(st.integers(min_value=0, max_value=2**31))
def test_large_m_stress(seed):
    """Heavy collision regime: M close to N."""
    rng = np.random.default_rng(seed)
    n, m = 130, 128
    res = batch_sample_without_replacement(np.full(20, n), m, rng)
    for row in res:
        assert len(set(row.tolist())) == m
        assert row.max() < n
