"""Hash partitioning, GlobalIDs and the multi-GPU graph store."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import MultiGpuGraphStore, hash_partition, load_dataset
from repro.graph.partition import splitmix64
from repro.hardware import SimNode


@given(st.integers(min_value=1, max_value=3000),
       st.integers(min_value=1, max_value=16))
def test_partition_is_a_bijection(n, ranks):
    p = hash_partition(n, ranks)
    assert p.counts.sum() == n
    # to_stored / to_original invert each other
    assert np.array_equal(p.to_original[p.to_stored], np.arange(n))
    assert np.array_equal(p.to_stored[p.to_original], np.arange(n))


@given(st.integers(min_value=100, max_value=3000))
def test_partition_global_ids_consistent_with_stored_rows(n):
    p = hash_partition(n, 8)
    nodes = np.arange(n)
    gids = p.global_ids(nodes)
    # GlobalID (rank||local) addresses the same storage row
    assert np.array_equal(p.stored_of_global(gids), p.to_stored[nodes])


def test_partition_balanced():
    p = hash_partition(100_000, 8)
    assert p.counts.max() - p.counts.min() < 0.05 * p.counts.mean()


def test_partition_rank_blocks_contiguous():
    p = hash_partition(1000, 8)
    owners_by_row = p.owner[p.to_original]
    # stored layout groups each rank's nodes contiguously
    changes = np.count_nonzero(np.diff(owners_by_row))
    assert changes == 7


def test_partition_rank_of_stored():
    p = hash_partition(1000, 8)
    rows = np.arange(1000)
    assert np.array_equal(
        p.rank_of_stored(rows), p.owner[p.to_original]
    )


def test_splitmix64_mixes():
    h = splitmix64(np.arange(1000).astype(np.uint64))
    # adjacent inputs land in different low bits
    assert len(set((h % np.uint64(8)).tolist())) == 8


def test_partition_seed_changes_assignment():
    a = hash_partition(1000, 8, seed=0)
    b = hash_partition(1000, 8, seed=1)
    assert not np.array_equal(a.owner, b.owner)


@given(st.integers(min_value=0, max_value=2**63))
def test_partition_accepts_any_seed(seed):
    """Regression: seed mixing must stay in 64-bit modular arithmetic
    (seed >= 2 used to overflow the uint64 conversion)."""
    p = hash_partition(64, 8, seed=seed)
    assert p.counts.sum() == 64


# -- store ---------------------------------------------------------------------

def test_store_features_match_dataset(small_store, small_dataset):
    s = np.array([0, 1, 100, small_store.num_nodes - 1])
    orig = small_store.partition.to_original[s]
    got = small_store.gather_features(s, rank=0)
    assert np.allclose(got, small_dataset.features[orig])


def test_store_neighbors_match_dataset(small_store, small_dataset):
    for stored in [0, 5, 999]:
        orig = small_store.partition.to_original[stored]
        flat, counts = small_store.neighbors_concat([stored])
        got = np.sort(small_store.partition.to_original[flat])
        assert np.array_equal(got, np.sort(small_dataset.graph.neighbors(orig)))


def test_store_labels_and_splits_translated(small_store, small_dataset):
    back = small_store.partition.to_original[small_store.train_nodes]
    assert set(back.tolist()) == set(small_dataset.train_nodes.tolist())
    # labels permuted consistently
    assert np.array_equal(
        small_store.labels,
        small_dataset.labels[small_store.partition.to_original],
    )


def test_store_structure_lives_in_dsm(small_store):
    """The DSM partitions hold exactly the canonical CSR slices."""
    csr = small_store.csr
    for rank in range(small_store.node.num_gpus):
        lo = small_store.partition.rank_offsets[rank]
        hi = small_store.partition.rank_offsets[rank + 1]
        elo, ehi = csr.indptr[lo], csr.indptr[hi]
        part = small_store.indices_tensor.local_part(rank).ravel()
        assert np.array_equal(part, csr.indices[elo:ehi])


def test_store_edges_partitioned_with_source(small_store):
    assert sum(small_store.edges_per_rank) == small_store.num_edges


def test_store_memory_tagged(small_store):
    usage = small_store.memory_usage_per_gpu()
    assert usage["graph"] > 0
    assert usage["feature"] > 0
    # features: num_nodes * dim * 4 bytes spread over 8 GPUs
    expected = small_store.num_nodes * small_store.feature_dim * 4 / 8
    assert usage["feature"] == pytest.approx(expected)


def test_store_free_releases(small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    store.free()
    assert node.total_memory_usage() == 0


def test_datasets_registry_complete():
    from repro.graph.datasets import DATASETS, dataset_spec

    assert set(DATASETS) == {
        "ogbn-products", "ogbn-papers100M", "friendster", "uk_domain"
    }
    with pytest.raises(KeyError):
        dataset_spec("ogbn-nope")


def test_dataset_split_fractions():
    ds = load_dataset("friendster", num_nodes=5000, seed=0, feature_dim=8)
    # 1% labels, 80/10/10 -> ~40 train, ~5 val, ~5 test at 5000 nodes
    assert 20 <= len(ds.train_nodes) <= 60
    assert len(ds.val_nodes) >= 1
    # splits disjoint
    all_ids = np.concatenate([ds.train_nodes, ds.val_nodes, ds.test_nodes])
    assert np.unique(all_ids).shape[0] == all_ids.shape[0]


def test_dataset_homophily_learnable_signal():
    """Features correlate with labels (class centroids separable)."""
    ds = load_dataset("ogbn-products", num_nodes=2000, seed=1,
                      feature_dim=16, num_classes=4)
    centroids = np.stack([
        ds.features[ds.labels == c].mean(axis=0) for c in range(4)
    ])
    dists = np.linalg.norm(
        centroids[:, None, :] - centroids[None, :, :], axis=-1
    )
    np.fill_diagonal(dists, np.inf)
    assert dists.min() > 0.5  # distinct centroids


def test_dataset_full_iterations_per_epoch():
    from repro.graph.datasets import dataset_spec

    spec = dataset_spec("ogbn-products")
    assert spec.full_iterations_per_epoch == int(np.ceil(196_615 / 512))
