"""Metrics registry, and its consistency with the cost-model ground truth."""

import numpy as np
import pytest

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.telemetry.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.train import WholeGraphTrainer


# the fresh-registry ``registry`` fixture comes from conftest.py

# -- registry primitives ------------------------------------------------------------


def test_counter_accumulates_and_rejects_decrease(registry):
    c = registry.counter("bytes_total", link="nvlink")
    c.inc(100)
    c.inc(50)
    assert c.value == 150
    with pytest.raises(ValueError):
        c.inc(-1)
    # same name+labels returns the same child
    assert registry.counter("bytes_total", link="nvlink") is c
    assert registry.counter("bytes_total", link="hbm") is not c


def test_counter_timestamped_samples(registry):
    c = registry.counter("x_total")
    c.inc(1)  # no t= -> no sample
    c.inc(2, t=0.5)
    c.inc(3, t=0.75)
    assert c.samples == [(0.5, 3.0), (0.75, 6.0)]
    assert registry.series() == {"x_total": [(0.5, 3.0), (0.75, 6.0)]}


def test_gauge_sets_and_samples(registry):
    g = registry.gauge("hit_rate", rank=0)
    g.set(0.25)
    g.set(0.5, t=1.0)
    assert g.value == 0.5
    assert registry.series()["hit_rate{rank=0}"] == [(1.0, 0.5)]


def test_histogram_vectorised_observe():
    h = Histogram("rows")
    h.observe([1, 2, 3, 1000])
    h.observe(7)
    assert h.count == 5
    assert h.total == pytest.approx(1013.0)
    assert h.min == 1.0 and h.max == 1000.0
    assert h.mean == pytest.approx(1013.0 / 5)
    # power-of-two buckets keyed by upper bound 2^k
    assert h.buckets == {2.0: 1, 4.0: 2, 8.0: 1, 1024.0: 1}


def test_histogram_empty_snapshot_is_json_safe(registry):
    h = registry.histogram("never_observed")
    d = h.as_dict()
    assert d["count"] == 0 and d["min"] is None and d["max"] is None


def test_collect_filters_by_name_and_label_subset(registry):
    registry.counter("a_total", link="nvlink", rank=0).inc(1)
    registry.counter("a_total", link="hbm", rank=0).inc(2)
    registry.counter("b_total").inc(4)
    assert registry.total("a_total") == 3
    assert registry.total("a_total", link="hbm") == 2
    assert registry.total("b_total") == 4
    assert len(registry.collect()) == 3
    assert registry.collect("a_total", rank=0, link="nvlink")[0].value == 1


def test_snapshot_flattened_names(registry):
    registry.counter("a_total", link="nvlink").inc(5)
    registry.gauge("g").set(2.0)
    snap = registry.snapshot()
    assert snap["a_total{link=nvlink}"]["value"] == 5
    assert snap["g"]["type"] == "gauge"


def test_set_registry_swaps_default():
    prev = get_registry()
    fresh = MetricsRegistry()
    old = set_registry(fresh)
    try:
        assert old is prev
        assert get_registry() is fresh
    finally:
        set_registry(prev)


# -- consistency with the cost-model ground truth -----------------------------------


def _train(store, **kw):
    trainer = WholeGraphTrainer(store, "graphsage", seed=0, batch_size=128,
                                fanouts=[5, 5], hidden=8, dropout=0.0, **kw)
    store.node.reset_clocks()
    trainer.train_epoch(max_iterations=3)
    return trainer


def test_link_bytes_match_whole_tensor_stats(registry, small_dataset):
    """Sum of per-link byte counters == the WholeTensor stats ledger."""
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    _train(store)
    st = store.feature_tensor.stats
    nvlink = registry.total("gather_link_bytes_total", link="nvlink")
    hbm = registry.total("gather_link_bytes_total", link="hbm")
    assert st["gather_bytes"] > 0
    assert nvlink == pytest.approx(st["gather_remote_bytes"])
    assert nvlink + hbm == pytest.approx(st["gather_bytes"])
    assert registry.total("gather_requests_total") == st["gather_calls"]
    assert registry.total("gather_rows_total") == st["gather_rows"]


def test_cache_hit_miss_totals_match_requests(registry, small_dataset):
    """cache hits + misses == rows requested through the cached gather."""
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0, cache_ratio=0.1)
    _train(store)
    hits = registry.total("cache_hits_total")
    misses = registry.total("cache_misses_total")
    requests = registry.total("cache_requests_total")
    assert requests > 0
    assert hits + misses == pytest.approx(requests)
    # the cache's own ledger agrees
    summary = store.feature_cache.summary()
    assert hits == pytest.approx(summary["hits"])
    assert misses == pytest.approx(summary["misses"])
    hit_rate = registry.gauge("cache_hit_rate").value
    assert hit_rate == pytest.approx(hits / requests)


def test_phase_seconds_match_timeline(registry, small_dataset):
    """phase_seconds_total counters agree with the timeline breakdown."""
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    _train(store)
    dev0 = node.gpu_memory[0].device
    breakdown = node.timeline.phase_breakdown(dev0)
    for phase in ("sample", "gather"):
        assert registry.total("phase_seconds_total", phase=phase) == (
            pytest.approx(breakdown[phase])
        )
    # the timeline's train total additionally carries the gradient
    # all-reduce the trainer charges outside the per-iteration metric
    train_metric = registry.total("phase_seconds_total", phase="train")
    assert 0 < train_metric <= breakdown["train"] + 1e-12


def test_sampler_edges_counted(registry, small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    _train(store)
    assert registry.total("sampler_edges_total") > 0
    fanout_hist = registry.histogram("sampler_fanout")
    assert fanout_hist.count > 0
    assert fanout_hist.max <= 5  # fanouts=[5, 5]


def test_pipelined_schedule_records_overlap(registry, small_dataset):
    node = SimNode()
    store = MultiGpuGraphStore(node, small_dataset, seed=0)
    trainer = _train(store, overlap=True)
    iterations = trainer.history[-1].iterations
    assert iterations >= 1
    assert registry.total(
        "iterations_total", schedule="pipelined"
    ) == iterations
    hidden = registry.total("overlap_hidden_seconds_total")
    full = registry.total("phase_seconds_total", phase="train")
    assert 0 <= hidden <= full


def test_instrumentation_survives_without_samples(registry):
    """A registry with no timestamped updates yields no counter tracks."""
    registry.counter("quiet_total").inc(5)
    assert registry.series() == {}
    assert np.isfinite(registry.total("quiet_total"))
