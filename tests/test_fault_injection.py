"""Chaos suite: scheduled fault injection, recovery, and determinism.

Covers the contract of :mod:`repro.faults` end to end:

- transient faults (degraded links, stragglers, gather reply loss) change
  *simulated time only* — trained weights stay bit-identical;
- an empty plan is indistinguishable from no plan, down to the scrubbed
  run-report JSON;
- permanent rank failures are survived by checkpoint restart (same GPU
  count, epoch replay) or elastic shrink (re-shard across survivors);
- every fault and recovery lands in the metrics registry and run report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    GatherReplyLoss,
    LinkDegradation,
    RankFailure,
    RankFailureError,
    StragglerGpu,
)
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.train import WholeGraphTrainer

TRAIN_KW = dict(batch_size=32, fanouts=[5, 5], hidden=32)


def _make_trainer(dataset, plan=None, overlap=False, **kw):
    store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
    return WholeGraphTrainer(
        store, "graphsage", seed=3, overlap=overlap, fault_plan=plan,
        **TRAIN_KW, **kw,
    )


def _train(dataset, plan=None, overlap=False, epochs=2, iters=4, **kw):
    trainer = _make_trainer(dataset, plan, overlap=overlap, **kw)
    stats = [trainer.train_epoch(max_iterations=iters) for _ in range(epochs)]
    return trainer, stats


def _weights(trainer):
    return [p.data.copy() for p in trainer.model.parameters()]


def _epoch_window(dataset):
    """(clock after store setup, epoch duration) of a fault-free run."""
    trainer = _make_trainer(dataset)
    t0 = trainer.node.sync()
    stats = trainer.train_epoch(max_iterations=4)
    return t0, stats.epoch_time


# -- transient faults: timing-only, weights bit-identical ---------------------------

TRANSIENT_PLANS = {
    "fabric_degradation": [LinkDegradation(factor=2.0)],
    "straggler": [StragglerGpu(rank=2, slowdown=3.0)],
    "reply_loss": [GatherReplyLoss(probability=0.6)],
    "combined": [
        LinkDegradation(factor=2.0),
        StragglerGpu(rank=1, slowdown=2.5),
        GatherReplyLoss(probability=0.5),
    ],
}


@pytest.mark.parametrize("kind", sorted(TRANSIENT_PLANS))
@pytest.mark.parametrize("overlap", [False, True])
def test_transient_faults_preserve_weights(
    registry, small_dataset, kind, overlap
):
    base_tr, base_stats = _train(small_dataset, overlap=overlap)
    plan = FaultPlan(events=TRANSIENT_PLANS[kind], seed=11)
    tr, stats = _train(small_dataset, plan, overlap=overlap)

    for a, b in zip(_weights(base_tr), _weights(tr)):
        assert np.array_equal(a, b)  # bit-for-bit, not allclose
    for a, b in zip(base_stats, stats):
        assert a.mean_loss == b.mean_loss
        assert b.epoch_time >= a.epoch_time
    # the faults measurably cost simulated time over the run
    assert sum(s.epoch_time for s in stats) > sum(
        s.epoch_time for s in base_stats
    )
    assert tr.evaluate() == base_tr.evaluate()
    assert not tr.recoveries  # transient faults never trigger recovery


def test_named_link_degradation_hits_topology(registry, node):
    """A named-link degradation reduces that link's resolved bandwidth."""
    from repro.hardware.topology import gpu_name

    plan = FaultPlan(
        events=[LinkDegradation(factor=4.0, link="nvlink0")]
    )
    base = node.topology.effective_bandwidth(gpu_name(0), gpu_name(1))
    FaultInjector(plan).install(node)
    degraded = node.topology.effective_bandwidth(gpu_name(0), gpu_name(1))
    assert degraded < base
    assert registry.total(
        "faults_injected_total", kind="link_degradation"
    ) == 1


def test_transient_faults_land_in_metrics_and_report(
    registry, small_dataset, transient_plan
):
    plan = transient_plan()
    tr, _ = _train(small_dataset, plan)
    snap = registry.snapshot()
    for kind in ("link_degradation", "straggler", "gather_reply_loss"):
        assert registry.total("faults_injected_total", kind=kind) == 1
    assert registry.total("retries_total") > 0
    report = tr.run_report().to_dict()
    assert report["config"]["fault_plan"] == plan.to_config()
    # the recorded plan reproduces the run: round-trip it
    again = FaultPlan.from_config(report["config"]["fault_plan"])
    assert again.events == plan.events and again.seed == plan.seed
    assert "retries_total" in str(snap)


def test_reply_loss_outside_window_is_free(registry, small_dataset):
    """A loss window the run never enters changes nothing at all."""
    base_tr, base_stats = _train(small_dataset)
    plan = FaultPlan(
        events=[GatherReplyLoss(probability=0.9, start=1e6, end=1e7)],
        seed=5,
    )
    tr, stats = _train(small_dataset, plan)
    assert [s.epoch_time for s in stats] == [
        s.epoch_time for s in base_stats
    ]
    for a, b in zip(_weights(base_tr), _weights(tr)):
        assert np.array_equal(a, b)
    assert registry.total("retries_total") == 0.0


# -- empty plan == no plan (the determinism contract) -------------------------------


def test_empty_plan_is_bit_identical_to_no_plan(registry, small_dataset):
    from repro.telemetry import metrics
    from repro.telemetry.run_report import scrub_report

    def run(plan):
        prev = metrics.set_registry(metrics.MetricsRegistry())
        try:
            tr, stats = _train(small_dataset, plan)
            report = tr.run_report(accuracy=tr.evaluate())
            return _weights(tr), stats, report
        finally:
            metrics.set_registry(prev)

    w_none, s_none, r_none = run(None)
    w_empty, s_empty, r_empty = run(FaultPlan(events=[]))
    for a, b in zip(w_none, w_empty):
        assert np.array_equal(a, b)
    assert [s.as_row() for s in s_none] == [s.as_row() for s in s_empty]
    assert r_none.config["fault_plan"] is None
    assert r_empty.config["fault_plan"] is None
    import json

    assert json.dumps(scrub_report(r_none), sort_keys=True) == json.dumps(
        scrub_report(r_empty), sort_keys=True
    )


# -- permanent faults: checkpoint restart ------------------------------------------


def test_rank_failure_restart_recovers(registry, small_dataset, tmp_path):
    t0, epoch_time = _epoch_window(small_dataset)
    base_tr, base_stats = _train(small_dataset)
    base_acc = base_tr.evaluate()

    plan = FaultPlan(
        events=[RankFailure(rank=2, time=t0 + 0.4 * epoch_time)]
    )
    tr, stats = _train(
        small_dataset, plan, recovery_policy="restart",
        checkpoint_dir=str(tmp_path),
    )
    assert len(tr.recoveries) == 1
    rec = tr.recoveries[0]
    assert rec["policy"] == "restart"
    assert rec["ranks"] == [[0, 2]]
    assert rec["recovery_seconds"] > 0
    assert tr.node.num_gpus == 8  # restart replaces the GPU in place
    # the interrupted epoch replayed in full and training converged to an
    # accuracy within noise of the fault-free run
    assert stats[0].iterations == base_stats[0].iterations
    assert np.isfinite(stats[-1].mean_loss)
    assert abs(tr.evaluate() - base_acc) <= 0.15
    # the recovery is visible in metrics and the run report
    assert registry.total("rank_failures_total") == 1
    assert registry.total("recovery_seconds", policy="restart") > 0
    report = tr.run_report().to_dict()
    assert report["extra"]["recoveries"][0]["policy"] == "restart"
    # the failed run paid for detection + reload: epoch 0 took longer
    assert stats[0].epoch_time > base_stats[0].epoch_time


def test_restart_writes_and_reuses_checkpoints(
    registry, small_dataset, tmp_path
):
    plan = FaultPlan(events=[RankFailure(rank=0, time=1e9)])  # never fires
    tr, _ = _train(
        small_dataset, plan, recovery_policy="restart",
        checkpoint_dir=str(tmp_path), epochs=1,
    )
    assert (tmp_path / "latest.npz").exists()
    assert not tr.recoveries


# -- permanent faults: elastic shrink ----------------------------------------------


def test_rank_failure_elastic_shrink(registry, small_dataset):
    t0, epoch_time = _epoch_window(small_dataset)
    plan = FaultPlan(
        events=[RankFailure(rank=5, time=t0 + 0.4 * epoch_time)]
    )
    tr, stats = _train(small_dataset, plan, recovery_policy="shrink")
    assert len(tr.recoveries) == 1
    assert tr.recoveries[0]["policy"] == "shrink"
    # WholeMemory re-sharded over the 7 survivors
    assert tr.node.num_gpus == 7
    assert tr.store.node is tr.node
    assert len(tr.store.partition.counts) == 7
    # the epoch finished (remaining batches translated to the new
    # stored-ID space) and the model still trains and evaluates
    assert stats[0].iterations == 4
    assert all(np.isfinite(s.mean_loss) for s in stats)
    assert 0.0 <= tr.evaluate() <= 1.0
    assert registry.total("recovery_seconds", policy="shrink") > 0


@pytest.mark.parametrize("overlap", [False, True])
def test_shrink_mid_epoch_continues_not_restarts(
    registry, small_dataset, overlap
):
    """Shrink resumes from the interrupted batch — losses accumulate."""
    t0, epoch_time = _epoch_window(small_dataset)
    plan = FaultPlan(
        events=[RankFailure(rank=1, time=t0 + 0.4 * epoch_time)]
    )
    tr, stats = _train(
        small_dataset, plan, recovery_policy="shrink", overlap=overlap,
        epochs=1, iters=4,
    )
    assert tr.node.num_gpus == 7
    assert stats[0].iterations == 4


def test_shrink_rejected_in_full_ddp_mode(small_dataset):
    with pytest.raises(ValueError, match="shrink"):
        _make_trainer(
            small_dataset,
            FaultPlan(events=[RankFailure(rank=0, time=0.0)]),
            compute_ranks="all", recovery_policy="shrink",
        )


def test_restart_works_in_full_ddp_mode(registry, small_dataset, tmp_path):
    t0, epoch_time = _epoch_window(small_dataset)
    plan = FaultPlan(
        events=[RankFailure(rank=3, time=t0 + 0.4 * epoch_time)]
    )
    tr, stats = _train(
        small_dataset, plan, recovery_policy="restart",
        checkpoint_dir=str(tmp_path), compute_ranks="all",
        epochs=1, iters=2,
    )
    assert len(tr.recoveries) == 1
    assert np.isfinite(stats[0].mean_loss)
    # all replicas reloaded the same checkpoint and stayed in sync
    ref = tr.model.state_dict()
    for replica in tr.replicas[1:]:
        for a, b in zip(ref, replica.state_dict()):
            assert np.array_equal(a, b)


# -- cluster trainer ----------------------------------------------------------------


def _cluster(dataset, plan=None, policy="shrink", overlap=False, n=3):
    from repro.cluster.trainer import ClusterTrainer

    tr = ClusterTrainer(
        dataset, n, "graphsage", seed=3, overlap=overlap,
        fault_plan=plan, recovery_policy=policy, **TRAIN_KW,
    )
    stats = [tr.train_epoch(max_iterations=4) for _ in range(2)]
    return tr, stats


@pytest.mark.parametrize("overlap", [False, True])
def test_cluster_transient_faults_preserve_weights(
    registry, small_dataset, transient_plan, overlap
):
    base_tr, base_stats = _cluster(small_dataset, overlap=overlap)
    plan = transient_plan(node_id=1)
    tr, stats = _cluster(small_dataset, plan, overlap=overlap)
    for a, b in zip(base_tr.models[0].parameters(),
                    tr.models[0].parameters()):
        assert np.array_equal(a.data, b.data)
    assert stats[0]["epoch_time"] > base_stats[0]["epoch_time"]
    tr.assert_in_sync()


def test_cluster_machine_node_failure_shrinks(registry, small_dataset):
    base_tr, base_stats = _cluster(small_dataset)
    t_fail = 0.5 * base_stats[0]["epoch_time"]
    plan = FaultPlan(events=[RankFailure(rank=0, time=t_fail, node_id=2)])
    tr, stats = _cluster(small_dataset, plan, policy="shrink")
    assert tr.num_machine_nodes == 2
    assert [n.node_id for n in tr.nodes] == [0, 1]
    assert len(tr.recoveries) == 1
    assert tr.recoveries[0]["nodes"] == [2]
    tr.assert_in_sync()
    assert 0.0 <= tr.evaluate() <= 1.0
    report = tr.run_report().to_dict()
    assert report["extra"]["recoveries"][0]["policy"] == "shrink"
    assert report["config"]["num_machine_nodes"] == 2


def test_cluster_machine_node_failure_restart(registry, small_dataset):
    plan = FaultPlan(events=[RankFailure(rank=0, time=1e-4, node_id=1)])
    tr, stats = _cluster(small_dataset, plan, policy="restart")
    assert tr.num_machine_nodes == 3  # node assumed restarted in place
    assert len(tr.recoveries) == 1
    tr.assert_in_sync()
    assert all(np.isfinite(s["mean_loss"]) for s in stats)


def test_cluster_sole_node_failure_is_fatal(registry, small_dataset):
    plan = FaultPlan(events=[RankFailure(rank=0, time=0.0, node_id=0)])
    from repro.cluster.trainer import ClusterTrainer

    tr = ClusterTrainer(
        small_dataset, 1, "graphsage", seed=3,
        fault_plan=plan, recovery_policy="shrink", **TRAIN_KW,
    )
    with pytest.raises(RankFailureError):
        tr.train_epoch(max_iterations=2)


# -- plan validation & round-trip ---------------------------------------------------


def test_plan_config_roundtrip():
    plan = FaultPlan(
        events=[
            LinkDegradation(factor=2.0, start=0.1, end=0.2),
            LinkDegradation(factor=3.0, link="nvlink0"),
            StragglerGpu(rank=4, slowdown=2.0, start=0.0, end=1.0),
            GatherReplyLoss(probability=0.25, max_retries=3, node_id=1),
            RankFailure(rank=7, time=0.5, node_id=2),
        ],
        seed=42,
    )
    import json

    cfg = json.loads(json.dumps(plan.to_config()))
    again = FaultPlan.from_config(cfg)
    assert again.events == plan.events
    assert again.seed == plan.seed


@pytest.mark.parametrize(
    "event",
    [
        lambda: LinkDegradation(factor=0.5),
        lambda: StragglerGpu(rank=0, slowdown=0.9),
        lambda: GatherReplyLoss(probability=1.5),
        lambda: GatherReplyLoss(probability=-0.1),
    ],
)
def test_invalid_events_rejected(event):
    with pytest.raises(ValueError):
        event()


def test_unknown_link_name_rejected(node):
    plan = FaultPlan(
        events=[LinkDegradation(factor=2.0, link="nvlink99")]
    )
    with pytest.raises(ValueError, match="unknown topology link"):
        FaultInjector(plan).install(node)


def test_invalid_recovery_policy_rejected(small_dataset):
    with pytest.raises(ValueError, match="recovery_policy"):
        _make_trainer(small_dataset, recovery_policy="reboot")


# -- acceptance: Table-V GraphSage config under degraded hardware ------------------


def test_table5_graphsage_straggler_and_degraded_link(
    registry, medium_dataset
):
    """The paper's GraphSage config (batch 512, fanout 30x3, hidden 256)
    completes under a straggler + degraded NVLink fabric, and the run
    report quantifies the epoch-time overhead."""
    from repro import config

    kw = dict(
        batch_size=config.BATCH_SIZE,
        fanouts=[config.FANOUT] * config.NUM_LAYERS,
        hidden=config.HIDDEN_SIZE,
    )

    def run(plan):
        store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
        tr = WholeGraphTrainer(
            store, "graphsage", seed=3, fault_plan=plan, **kw
        )
        stats = tr.train_epoch(max_iterations=2)
        return tr, stats

    _, base = run(None)
    plan = FaultPlan(
        events=[
            StragglerGpu(rank=3, slowdown=2.0),
            LinkDegradation(factor=2.0),
        ],
        seed=1,
    )
    tr, faulted = run(plan)
    overhead = faulted.epoch_time / base.epoch_time - 1.0
    assert overhead > 0.05  # the injected faults measurably cost time
    report = tr.run_report(
        extra={"epoch_time_overhead": overhead}
    ).to_dict()
    assert report["extra"]["epoch_time_overhead"] == overhead
    assert report["config"]["fault_plan"] == plan.to_config()
    assert report["config"]["model"] == "graphsage"
    assert not tr.recoveries
