"""Modules, Linear, initialisers and optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, SGD, Tensor
from repro.nn.init import kaiming_uniform, xavier_uniform, zeros
from repro.nn.module import Module, Parameter


def test_linear_forward_shape(rng):
    lin = Linear(6, 4, rng)
    out = lin(Tensor(np.ones((10, 6), dtype=np.float32)))
    assert out.shape == (10, 4)


def test_linear_no_bias(rng):
    lin = Linear(3, 2, rng, bias=False)
    assert lin.bias is None
    assert len(lin.parameters()) == 1


def test_linear_flops(rng):
    assert Linear(10, 20, rng).flops(5) == 2 * 5 * 10 * 20


def test_module_parameter_collection(rng):
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.a = Linear(2, 3, rng)
            self.layers = [Linear(3, 3, rng), Linear(3, 1, rng)]
            self.scale = Parameter(np.ones(1, dtype=np.float32))

    net = Net()
    # 2 params per Linear (w, b) x3 + scale
    assert len(net.parameters()) == 7
    assert net.num_parameters() == (2 * 3 + 3) + (3 * 3 + 3) + (3 + 1) + 1


def test_module_parameters_deterministic_order(rng):
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.a = Linear(2, 2, rng)
            self.b = Linear(2, 2, rng)

    net = Net()
    assert [p.shape for p in net.parameters()] == [
        (2, 2), (2,), (2, 2), (2,)
    ]
    # stable across calls (DDP's flat all-reduce depends on this)
    first = [id(p) for p in net.parameters()]
    assert first == [id(p) for p in net.parameters()]


def test_train_eval_mode_propagates(rng):
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.inner = Linear(2, 2, rng)

    net = Net()
    net.eval()
    assert not net.training and not net.inner.training
    net.train()
    assert net.training and net.inner.training


def test_state_dict_roundtrip(rng):
    a, b = Linear(4, 3, rng), Linear(4, 3, rng)
    b.load_state_dict(a.state_dict())
    assert np.array_equal(a.weight.data, b.weight.data)
    with pytest.raises(ValueError):
        b.load_state_dict(a.state_dict()[:1])


def test_xavier_bounds(rng):
    w = xavier_uniform((100, 50), rng)
    limit = np.sqrt(6 / 150)
    assert np.abs(w).max() <= limit
    assert w.std() > 0.1 * limit


def test_kaiming_and_zeros(rng):
    w = kaiming_uniform((64, 64), rng)
    assert np.abs(w).max() <= np.sqrt(6 / 64)
    assert np.all(zeros((5,)) == 0)


def _quadratic_problem():
    """min ||w - target||^2 — any sane optimizer converges fast."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    w = Parameter(np.zeros(3, dtype=np.float32))

    def loss_and_grad():
        diff = Tensor(w.data) - Tensor(target)
        w.grad = 2 * (w.data - target)
        return float((diff * diff).sum().data)

    return w, target, loss_and_grad


def test_sgd_converges():
    w, target, step = _quadratic_problem()
    opt = SGD([w], lr=0.1)
    for _ in range(100):
        step()
        opt.step()
    assert np.allclose(w.data, target, atol=1e-3)


def test_sgd_momentum_faster_than_plain():
    w1, target, s1 = _quadratic_problem()
    w2, _, s2 = _quadratic_problem()
    plain, mom = SGD([w1], lr=0.01), SGD([w2], lr=0.01, momentum=0.9)
    for _ in range(50):
        s1(); plain.step()
        s2(); mom.step()
    assert np.abs(w2.data - target).sum() < np.abs(w1.data - target).sum()


def test_adam_converges():
    w, target, step = _quadratic_problem()
    opt = Adam([w], lr=0.1)
    for _ in range(200):
        step()
        opt.step()
    assert np.allclose(w.data, target, atol=1e-2)


def test_adam_weight_decay_shrinks():
    w = Parameter(np.full(4, 10.0, dtype=np.float32))
    opt = Adam([w], lr=0.1, weight_decay=0.5)
    for _ in range(50):
        w.grad = np.zeros(4, dtype=np.float32)
        opt.step()
    assert np.abs(w.data).max() < 10.0


def test_optimizer_skips_none_grads(rng):
    lin = Linear(2, 2, rng)
    opt = SGD(lin.parameters(), lr=0.1)
    before = lin.weight.data.copy()
    opt.step()  # no grads accumulated
    assert np.array_equal(before, lin.weight.data)


def test_optimizer_grad_nbytes(rng):
    lin = Linear(4, 4, rng)
    opt = Adam(lin.parameters())
    assert opt.grad_nbytes() == (16 + 4) * 4


def test_optimizer_requires_params():
    with pytest.raises(ValueError):
        SGD([])
