"""Out-of-core tier and streaming loader: identity, ledgers, faults.

The contract of the storage tier below the DSM
(:mod:`repro.dsm.tiered_tensor`) and the prefetching loader on top
(:mod:`repro.train.streaming`):

- the streaming schedule is a *performance* feature: losses and trained
  weights stay bit-identical to the sequential schedule at equal seeds;
- every gathered byte lands in exactly one tier ledger, and the in-object
  stats reconcile with the metrics registry (property-based);
- host-tier reads honour the fault-injection hooks (reply-loss retries are
  drawn and charged, on the calling rank for synchronous gathers and on the
  host clock for prefetches);
- the streaming run-report manifest records the tier knobs, and only then.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import TieredTensor
from repro.faults import FaultInjector, FaultPlan, GatherReplyLoss
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.ops.neighbor_sampler import NeighborSampler
from repro.telemetry import metrics
from repro.train import StreamingLoader, WholeGraphTrainer

TRAIN_KW = dict(
    seed=3, batch_size=32, fanouts=[5, 5], hidden=16, num_layers=2,
    lr=0.02, dropout=0.1,
)


def _tiered_trainer(dataset, *, streaming, cache_ratio=0.0, **kw):
    store = MultiGpuGraphStore(
        SimNode(), dataset, seed=0, tier="tiered",
        host_pinned_fraction=0.4, cache_ratio=cache_ratio,
    )
    merged = dict(TRAIN_KW, **kw)
    return WholeGraphTrainer(store, "graphsage", streaming=streaming,
                             **merged)


def _weights(trainer):
    return [p.data.copy() for p in trainer.model.parameters()]


# -- bit-identity: streaming is a schedule, not a different computation -------------


def test_streaming_loss_and_weights_bit_identical(registry, medium_dataset):
    seq = _tiered_trainer(medium_dataset, streaming=False)
    stm = _tiered_trainer(medium_dataset, streaming=True)
    for _ in range(2):
        a = seq.train_epoch()
        b = stm.train_epoch()
        assert a.mean_loss == b.mean_loss  # bit-for-bit, not approx
    for p, q in zip(_weights(seq), _weights(stm)):
        assert np.array_equal(p, q)
    assert seq.evaluate() == stm.evaluate()


def test_streaming_with_static_cache_stays_bit_identical(
    registry, medium_dataset
):
    seq = _tiered_trainer(medium_dataset, streaming=False, cache_ratio=0.1)
    stm = _tiered_trainer(medium_dataset, streaming=True, cache_ratio=0.1)
    a = seq.train_epoch()
    b = stm.train_epoch()
    assert a.mean_loss == b.mean_loss
    for p, q in zip(_weights(seq), _weights(stm)):
        assert np.array_equal(p, q)


def test_streaming_hides_host_transfers(registry, medium_dataset):
    """Prefetch must hide transfer time; the ledger must add up exactly."""
    seq = _tiered_trainer(medium_dataset, streaming=False)
    seq_time = seq.train_epoch().epoch_time

    metrics.set_registry(metrics.MetricsRegistry())
    try:
        stm = _tiered_trainer(medium_dataset, streaming=True)
        stm_time = stm.train_epoch().epoch_time
        reg = metrics.get_registry()
        total = reg.total("host_fetch_seconds_total")
        exposed = reg.total("host_fetch_exposed_seconds_total")
        hidden = reg.total("host_fetch_hidden_seconds_total")
    finally:
        metrics.set_registry(registry)

    assert total > 0
    assert hidden > 0  # at least some transfer ran behind compute
    assert total == pytest.approx(exposed + hidden, rel=1e-9)
    assert stm_time < seq_time  # hiding transfers buys simulated time


# -- schedule guardrails ------------------------------------------------------------


def test_streaming_requires_tiered_store(medium_dataset):
    store = MultiGpuGraphStore(SimNode(), medium_dataset, seed=0)
    with pytest.raises(ValueError, match="tiered"):
        WholeGraphTrainer(store, "graphsage", streaming=True, **TRAIN_KW)


def test_streaming_excludes_overlap_schedule(medium_dataset):
    store = MultiGpuGraphStore(
        SimNode(), medium_dataset, seed=0, tier="tiered"
    )
    with pytest.raises(ValueError, match="one schedule"):
        WholeGraphTrainer(store, "graphsage", streaming=True, overlap=True,
                          **TRAIN_KW)


def test_streaming_loader_rejects_clock_cache(medium_dataset):
    store = MultiGpuGraphStore(
        SimNode(), medium_dataset, seed=0, tier="tiered",
        cache_ratio=0.1, cache_policy="clock",
    )
    sampler = NeighborSampler(store, [5, 5])
    with pytest.raises(ValueError, match="static"):
        StreamingLoader(store, sampler)


# -- per-tier byte ledgers reconcile with the registry (property-based) -------------


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.integers(min_value=0, max_value=199), min_size=1, max_size=64
    ),
    frac=st.floats(min_value=0.0, max_value=1.0),
    calls=st.integers(min_value=1, max_value=4),
)
def test_tier_byte_ledger_matches_registry(rows, frac, calls):
    prev = metrics.get_registry()
    metrics.set_registry(metrics.MetricsRegistry())
    try:
        reg = metrics.get_registry()
        node = SimNode()
        tensor = TieredTensor(
            node, 200, 8, tag="ledger", host_pinned_fraction=frac
        )
        rows = np.asarray(rows, dtype=np.int64)
        for i in range(calls):
            tensor.gather(rows, rank=i % node.num_gpus)

        st_ = tensor.stats
        host = reg.total("tier_gather_bytes_total", tier="host")
        disk = reg.total("tier_gather_bytes_total", tier="disk")
        # in-object stats and registry counters describe the same bytes
        assert host == st_["host_bytes"]
        assert disk == st_["disk_bytes"]
        # every gathered byte lands in exactly one tier
        assert host + disk == st_["gather_bytes"]
        assert st_["gather_bytes"] == calls * rows.size * tensor.row_bytes
        # the link ledger mirrors the tier ledger (warm=PCIe, cold=disk)
        assert reg.total("gather_link_bytes_total", link="pcie") == host
        assert reg.total("gather_link_bytes_total", link="disk") == disk
        # placement honours the warm fraction exactly
        n_host = int(round(frac * 200))
        assert int(np.count_nonzero(tensor.tier_of == 0)) == n_host
    finally:
        metrics.set_registry(prev)


def test_streaming_loader_ledger_matches_registry(registry, medium_dataset):
    """After a streaming epoch the tensor stats and registry agree."""
    stm = _tiered_trainer(medium_dataset, streaming=True)
    stm.train_epoch()
    tensor = stm.store.feature_tensor
    assert registry.total(
        "tier_gather_bytes_total", tier="host"
    ) == tensor.stats["host_bytes"]
    assert registry.total(
        "tier_gather_bytes_total", tier="disk"
    ) == tensor.stats["disk_bytes"]
    # each fetched row was staged into HBM and consumed exactly once
    assert tensor.stats["staged_bytes"] == tensor.stats["gather_bytes"]
    assert registry.total("iterations_total", schedule="streaming") > 0


# -- fault injection on host-tier reads ---------------------------------------------


def test_gather_retry_on_host_tier_read(registry, node):
    plan = FaultPlan(
        events=[GatherReplyLoss(probability=0.95)], seed=7
    )
    FaultInjector(plan).install(node)
    tensor = TieredTensor(node, 128, 16, host_pinned_fraction=0.5)
    t0 = node.gpu_clock[0].now
    tensor.gather(np.arange(64), rank=0)
    assert registry.total("retries_total") > 0
    retry_spans = [
        s for s in node.timeline.spans
        if s.phase == "gather_retry" and not s.busy
    ]
    assert retry_spans  # the backoff is visible, non-busy, on the timeline
    assert all(s.start >= t0 for s in retry_spans)
    assert node.gpu_clock[0].now > t0  # and it cost the calling rank time


def test_streaming_prefetch_retries_charge_host_clock(
    registry, medium_dataset, transient_plan
):
    plan = transient_plan(loss_probability=0.95)
    node = SimNode()
    store = MultiGpuGraphStore(
        node, medium_dataset, seed=0, tier="tiered",
        host_pinned_fraction=0.4,
    )
    FaultInjector(plan).install(node)
    loader = StreamingLoader(store, NeighborSampler(store, [5, 5]))
    rng = np.random.default_rng(0)
    loader.prefetch(store.train_nodes[:32], rng)
    assert registry.total("retries_total") > 0
    retry_spans = [
        s for s in node.timeline.spans if s.phase == "gather_retry"
    ]
    # the retry backoff lands on the host stream, not a GPU stream
    assert retry_spans
    assert {s.device for s in retry_spans} == {node.host_clock.device}
    subgraph, feats = loader.take()
    assert feats.shape[0] == subgraph.input_nodes.size


def test_streaming_under_transient_faults_preserves_weights(
    registry, medium_dataset, transient_plan
):
    base = _tiered_trainer(medium_dataset, streaming=True)
    base_stats = base.train_epoch()
    faulted = _tiered_trainer(
        medium_dataset, streaming=True,
        fault_plan=transient_plan(loss_probability=0.8),
    )
    faulted_stats = faulted.train_epoch()
    assert base_stats.mean_loss == faulted_stats.mean_loss
    assert faulted_stats.epoch_time > base_stats.epoch_time
    for p, q in zip(_weights(base), _weights(faulted)):
        assert np.array_equal(p, q)


# -- manifest knobs -----------------------------------------------------------------


def test_run_report_records_tier_knobs(registry, medium_dataset):
    stm = _tiered_trainer(medium_dataset, streaming=True)
    stm.train_epoch()
    cfg = stm.run_report().to_dict()["config"]
    assert cfg["tier"] == "tiered"
    assert cfg["host_pinned_fraction"] == 0.4
    assert cfg["streaming"] is True
    assert cfg["prefetch_depth"] == stm.prefetch_depth

    plain = WholeGraphTrainer(
        MultiGpuGraphStore(SimNode(), medium_dataset, seed=0),
        "graphsage", **TRAIN_KW,
    )
    plain.train_epoch()
    cfg = plain.run_report().to_dict()["config"]
    for key in ("tier", "host_pinned_fraction", "streaming",
                "prefetch_depth"):
        assert key not in cfg  # device-tier manifests stay byte-identical
