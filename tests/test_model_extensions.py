"""GIN layer, SAGE max-pool aggregator, and spmm_max gradients."""

import numpy as np
import pytest

from repro.nn import EXTENDED_MODEL_NAMES, Adam, Tensor, build_model
from repro.nn import functional as F
from repro.nn.layers import GINConv
from repro.nn.layers.sage import SAGEConv
from repro.ops.neighbor_sampler import LayerBlock, NeighborSampler
from tests.test_nn_tensor import numeric_grad


@pytest.fixture
def block(rng):
    counts = rng.integers(1, 4, size=3)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    indices = rng.integers(0, 7, size=indptr[-1])
    return LayerBlock(
        indptr=indptr, indices=indices, num_targets=3, num_src=7,
        duplicate_counts=np.bincount(indices, minlength=7),
    )


def test_spmm_max_forward_semantics(block, rng):
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = F.spmm_max(block.indptr, block.indices, Tensor(x))
    for t in range(3):
        nbrs = block.indices[block.indptr[t]:block.indptr[t + 1]]
        assert np.allclose(out.data[t], x[nbrs].max(axis=0), atol=1e-6)


def test_spmm_max_grad(block, rng):
    x = rng.standard_normal((7, 4)).astype(np.float32)

    def build(t):
        return (F.spmm_max(block.indptr, block.indices, t) ** 2.0).sum()

    t = Tensor(x, requires_grad=True)
    build(t).backward()
    num = numeric_grad(lambda: float(build(Tensor(x)).data), x)
    assert np.allclose(t.grad, num, atol=2e-2)


def test_spmm_max_tie_splitting():
    """Tied maxima split the gradient evenly (documented subgradient)."""
    indptr = np.array([0, 2])
    indices = np.array([0, 1])
    x = Tensor(np.array([[3.0], [3.0], [0.0]], dtype=np.float32),
               requires_grad=True)
    F.spmm_max(indptr, indices, x).sum().backward()
    assert np.allclose(x.grad.ravel(), [0.5, 0.5, 0.0])


def test_sage_max_aggregator_semantics(block, rng):
    conv = SAGEConv(4, 5, rng, aggregator="max")
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = conv(block, Tensor(x))
    for t in range(3):
        nbrs = block.indices[block.indptr[t]:block.indptr[t + 1]]
        expected = (
            x[t] @ conv.linear_self.weight.data + conv.linear_self.bias.data
            + x[nbrs].max(axis=0) @ conv.linear_neigh.weight.data
        )
        assert np.allclose(out.data[t], expected, atol=1e-4)


def test_sage_aggregator_validation(rng):
    with pytest.raises(ValueError):
        SAGEConv(4, 4, rng, aggregator="median")


def test_gin_conv_semantics(block, rng):
    conv = GINConv(4, 5, rng, init_eps=0.5)
    x = rng.standard_normal((7, 4)).astype(np.float32)
    out = conv(block, Tensor(x))
    for t in range(3):
        nbrs = block.indices[block.indptr[t]:block.indptr[t + 1]]
        combined = 1.5 * x[t] + x[nbrs].sum(axis=0)
        hidden = np.maximum(
            combined @ conv.mlp_in.weight.data + conv.mlp_in.bias.data, 0
        )
        expected = hidden @ conv.mlp_out.weight.data + conv.mlp_out.bias.data
        assert np.allclose(out.data[t], expected, atol=1e-4)


def test_gin_eps_is_trainable(block, rng):
    conv = GINConv(4, 4, rng)
    x = Tensor(rng.standard_normal((7, 4)).astype(np.float32))
    (conv(block, x) ** 2.0).sum().backward()
    assert conv.eps.grad is not None
    assert abs(float(conv.eps.grad[0])) > 0


def test_gin_model_trains(small_store, rng):
    sampler = NeighborSampler(small_store, [5, 5], charge=False)
    model = build_model("gin", small_store.feature_dim,
                        small_store.num_classes, rng, hidden=16,
                        num_layers=2, dropout=0.0)
    opt = Adam(model.parameters(), lr=0.02)
    losses = []
    for _ in range(25):
        seeds = rng.choice(small_store.train_nodes, size=32, replace=False)
        sg = sampler.sample(seeds, 0, rng)
        x = Tensor(small_store.feature_tensor.gather_no_cost(sg.input_nodes))
        loss = F.cross_entropy(model(sg, x, rng),
                               small_store.labels[seeds])
        model.zero_grad()
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert np.mean(losses[-5:]) < losses[0] * 0.5


def test_extended_registry():
    assert "gin" in EXTENDED_MODEL_NAMES
    with pytest.raises(ValueError):
        build_model("gat2", 4, 2, np.random.default_rng(0))
