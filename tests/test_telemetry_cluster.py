"""Telemetry (utilization, bandwidth, tables) and multi-node scaling."""

import numpy as np
import pytest

from repro.cluster import MultiNodeCluster, scaling_curve
from repro.hardware.clock import SimClock, Timeline
from repro.telemetry.bandwidth import algo_bw, bus_bw, bw_from_gather_stats
from repro.telemetry.report import format_table
from repro.telemetry.utilization import mean_utilization, utilization_trace


def busy_idle_timeline():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    for _ in range(5):
        c.advance(1.0, phase="train")  # busy 1s
        c.wait_until(c.now + 1.0)  # idle 1s
    return tl


def test_mean_utilization_fifty_percent():
    tl = busy_idle_timeline()
    assert mean_utilization(tl, "gpu0", t_end=10.0) == pytest.approx(50.0)


def test_utilization_trace_alternates():
    tl = busy_idle_timeline()
    t, u = utilization_trace(tl, "gpu0", window=1.0, t_end=10.0)
    assert u.shape[0] == 10
    assert np.allclose(u[::2], 100.0)
    assert np.allclose(u[1::2], 0.0)


def test_utilization_trace_partial_window_overlap():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    c.advance(0.5, phase="k")
    t, u = utilization_trace(tl, "gpu0", window=1.0, t_end=1.0)
    assert u[0] == pytest.approx(50.0)


def test_fully_busy_device_hits_100():
    tl = Timeline()
    c = SimClock("gpu0", tl)
    c.advance(10.0, phase="train")
    assert mean_utilization(tl, "gpu0", t_end=10.0) == pytest.approx(100.0)


def test_empty_timeline_zero_utilization():
    assert mean_utilization(Timeline(), "gpu0", t_end=1.0) == 0.0


def test_utilization_trace_integrates_to_mean():
    """Window-averaged trace == overall busy fraction (same integral)."""
    tl = Timeline()
    c = SimClock("gpu0", tl)
    rng = np.random.default_rng(0)
    for dt in rng.uniform(0.01, 0.7, size=40):
        c.advance(dt, phase="k", busy=bool(rng.integers(2)))
    t_end = 10.0  # a whole number of windows past every span
    window = 0.5
    _, u = utilization_trace(tl, "gpu0", window=window, t_end=t_end)
    assert np.mean(u) == pytest.approx(
        mean_utilization(tl, "gpu0", t_end=t_end)
    )


def test_utilization_trace_matches_reference_loop():
    """The vectorised accumulation equals the per-span/per-window overlap."""
    tl = Timeline()
    c = SimClock("gpu0", tl)
    rng = np.random.default_rng(3)
    for dt in rng.uniform(0.0, 1.3, size=60):
        c.advance(dt, phase="k", busy=bool(rng.integers(2)))
    window = 0.7
    centers, u = utilization_trace(tl, "gpu0", window=window)
    edges = np.arange(0.0, centers[-1] + window, window)
    expected = np.zeros(centers.shape[0])
    for s in tl.device_spans("gpu0"):
        if not s.busy:
            continue
        for w in range(expected.shape[0]):
            overlap = min(s.end, edges[w + 1]) - max(s.start, edges[w])
            expected[w] += max(0.0, overlap)
    assert np.allclose(u, 100.0 * expected / window)


def test_bandwidth_helpers():
    assert algo_bw(100.0, 2.0) == 50.0
    assert algo_bw(100.0, 0.0) == 0.0
    assert bus_bw(800.0, 1.0, 8) == pytest.approx(700.0)
    assert bus_bw(800.0, 1.0, 1) == 0.0
    out = bw_from_gather_stats(
        {"gather_time": 1.0, "gather_bytes": 80, "gather_remote_bytes": 70},
        8,
    )
    assert out["algo_bw"] == 80 and out["bus_bw"] == 70
    assert out["num_gpus"] == 8


def test_bw_from_gather_stats_uniform_fallback():
    """Without a remote-bytes ledger, BusBW falls back to (N-1)/N."""
    stats = {"gather_time": 1.0, "gather_bytes": 800}  # host-pinned style
    out = bw_from_gather_stats(stats, 8)
    assert out["algo_bw"] == pytest.approx(800.0)
    assert out["bus_bw"] == pytest.approx(800.0 * 7 / 8)
    # measured and uniform agree exactly when the pattern IS uniform
    uniform = bw_from_gather_stats(
        {"gather_time": 1.0, "gather_bytes": 800,
         "gather_remote_bytes": 700},
        8,
    )
    assert uniform["bus_bw"] == pytest.approx(out["bus_bw"])


def test_format_table_alignment():
    s = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]], title="T")
    lines = s.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len({len(l) for l in lines[2:]}) <= 2  # aligned rows


# -- multi-node scaling ------------------------------------------------------------

def test_scaling_curve_near_linear():
    pts = scaling_curve(
        single_node_iter_time=2e-3,
        iterations_per_epoch=2000,
        grad_nbytes=2 * 1024 * 1024,
        node_counts=(1, 2, 4, 8),
    )
    assert [p.num_nodes for p in pts] == [1, 2, 4, 8]
    assert pts[0].speedup == pytest.approx(1.0)
    assert pts[-1].speedup > 7.0  # near-linear at 8 nodes (Fig. 13)
    assert all(b.speedup > a.speedup for a, b in zip(pts, pts[1:]))
    assert all(0 < p.efficiency <= 1.001 for p in pts)


def test_scaling_degrades_with_huge_gradients():
    """Communication-bound regime: scaling efficiency must drop."""
    small = scaling_curve(1e-3, 1000, 1 * 1024 * 1024)[-1]
    huge = scaling_curve(1e-3, 1000, 4 * 1024**3)[-1]
    assert huge.speedup < small.speedup


def test_allreduce_delta_zero_for_single_node():
    cluster = MultiNodeCluster()
    assert cluster.allreduce_delta(10**6, 1) == 0.0
    assert cluster.allreduce_delta(10**6, 4) > 0


def test_epoch_time_divides_iterations():
    cluster = MultiNodeCluster()
    t1 = cluster.epoch_time(1e-3, 800, 10**6, 1)
    t8 = cluster.epoch_time(1e-3, 800, 10**6, 8)
    assert t1 == pytest.approx(0.8)
    assert t8 < t1 / 6
