"""Segment reductions, g-SpMM and g-SDDMM against dense references."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops.sddmm import gsddmm_add, gsddmm_dot
from repro.ops.segment import (
    scatter_add_rows,
    segment_ids_from_indptr,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.ops.spmm import (
    atomic_elision_stats,
    gspmm_backward_features,
    gspmm_mean,
    gspmm_sum,
    reference_gspmm_backward_features,
    reference_gspmm_mean,
    reference_gspmm_sum,
)


def random_csr(rng, rows=6, cols=9, density=0.4):
    mask = rng.random((rows, cols)) < density
    indptr = np.zeros(rows + 1, dtype=np.int64)
    indices = []
    for r in range(rows):
        cs = np.flatnonzero(mask[r])
        indices.extend(cs.tolist())
        indptr[r + 1] = indptr[r] + cs.size
    return indptr, np.array(indices, dtype=np.int64)


@given(st.integers(min_value=0, max_value=2**31))
def test_segment_sum_mean_max_vs_loop(seed):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, 5, size=8)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    values = rng.standard_normal((indptr[-1], 3)).astype(np.float32)
    s = segment_sum(values, indptr)
    m = segment_mean(values, indptr)
    mx = segment_max(values, indptr)
    for i in range(8):
        seg = values[indptr[i]:indptr[i + 1]]
        if seg.shape[0] == 0:
            assert np.all(s[i] == 0) and np.all(m[i] == 0) and np.all(mx[i] == 0)
        else:
            assert np.allclose(s[i], seg.sum(axis=0), atol=1e-5)
            assert np.allclose(m[i], seg.mean(axis=0), atol=1e-5)
            assert np.allclose(mx[i], seg.max(axis=0), atol=1e-5)


def test_segment_softmax_sums_to_one():
    rng = np.random.default_rng(0)
    indptr = np.array([0, 3, 3, 7])
    vals = rng.standard_normal((7, 2)).astype(np.float32)
    sm = segment_softmax(vals, indptr)
    assert np.allclose(sm[0:3].sum(axis=0), 1.0, atol=1e-5)
    assert np.allclose(sm[3:7].sum(axis=0), 1.0, atol=1e-5)


def test_segment_softmax_stable_with_large_values():
    indptr = np.array([0, 2])
    vals = np.array([[1000.0], [1001.0]], dtype=np.float32)
    sm = segment_softmax(vals, indptr)
    assert np.isfinite(sm).all()
    assert sm.sum() == pytest.approx(1.0, abs=1e-5)


def test_segment_ids_expansion():
    assert segment_ids_from_indptr([0, 2, 2, 5]).tolist() == [0, 0, 2, 2, 2]


@given(st.integers(min_value=0, max_value=2**31))
def test_scatter_add_matches_np_add_at(seed):
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, 10, size=50)
    vals = rng.standard_normal((50, 4)).astype(np.float32)
    ref = np.zeros((10, 4), dtype=np.float32)
    np.add.at(ref, idx, vals)
    out = scatter_add_rows(10, idx, vals)
    assert np.allclose(out, ref, atol=1e-4)


def test_scatter_add_empty():
    out = scatter_add_rows(5, np.array([], dtype=np.int64),
                           np.zeros((0, 3), dtype=np.float32))
    assert out.shape == (5, 3) and np.all(out == 0)


@given(st.integers(min_value=0, max_value=2**31))
def test_gspmm_sum_vs_dense_matmul(seed):
    rng = np.random.default_rng(seed)
    indptr, indices = random_csr(rng)
    x = rng.standard_normal((9, 5)).astype(np.float32)
    w = rng.standard_normal(indices.shape[0]).astype(np.float32)
    dense = np.zeros((6, 9), dtype=np.float32)
    for r in range(6):
        for e in range(indptr[r], indptr[r + 1]):
            dense[r, indices[e]] += w[e]
    assert np.allclose(
        gspmm_sum(indptr, indices, x, w), dense @ x, atol=1e-4
    )


@given(st.integers(min_value=0, max_value=2**31))
def test_scipy_and_reference_kernels_agree(seed):
    rng = np.random.default_rng(seed)
    indptr, indices = random_csr(rng)
    x = rng.standard_normal((9, 5)).astype(np.float32)
    w = rng.standard_normal(indices.shape[0]).astype(np.float32)
    assert np.allclose(
        gspmm_sum(indptr, indices, x, w),
        reference_gspmm_sum(indptr, indices, x, w),
        atol=1e-4,
    )
    assert np.allclose(
        gspmm_mean(indptr, indices, x),
        reference_gspmm_mean(indptr, indices, x),
        atol=1e-4,
    )
    g = rng.standard_normal((6, 5)).astype(np.float32)
    fast, _ = gspmm_backward_features(indptr, indices, g, 9, edge_weights=w)
    ref, _ = reference_gspmm_backward_features(
        indptr, indices, g, 9, edge_weights=w
    )
    assert np.allclose(fast, ref, atol=1e-4)


def test_backward_is_transpose_spmm():
    """grad_x = A^T g — verified against explicit transpose."""
    rng = np.random.default_rng(7)
    indptr, indices = random_csr(rng)
    g = rng.standard_normal((6, 4)).astype(np.float32)
    dense = np.zeros((6, 9), dtype=np.float32)
    for r in range(6):
        dense[r, indices[indptr[r]:indptr[r + 1]]] = 1.0
    out, _ = gspmm_backward_features(indptr, indices, g, 9)
    assert np.allclose(out, dense.T @ g, atol=1e-4)


def test_duplicate_count_elision_same_result_and_stats():
    rng = np.random.default_rng(1)
    indptr = np.array([0, 2, 4])
    indices = np.array([0, 1, 1, 2])  # node 1 hit twice, 0 and 2 once
    dup = np.array([1, 2, 1])
    g = rng.standard_normal((2, 3)).astype(np.float32)
    with_dup, stats = reference_gspmm_backward_features(
        indptr, indices, g, 3, duplicate_counts=dup
    )
    without, _ = reference_gspmm_backward_features(indptr, indices, g, 3)
    assert np.allclose(with_dup, without, atol=1e-5)
    assert stats == {"plain_stores": 2, "atomic_adds": 2}
    assert atomic_elision_stats(indices, dup) == stats
    assert atomic_elision_stats(indices, None)["atomic_adds"] == 4


def test_gsddmm_dot_per_edge():
    indptr = np.array([0, 2, 3])
    indices = np.array([0, 2, 1])
    u = np.arange(6, dtype=np.float32).reshape(2, 3)  # dst rows
    v = np.arange(9, dtype=np.float32).reshape(3, 3)  # src rows
    out = gsddmm_dot(indptr, indices, u, v)
    expected = [u[0] @ v[0], u[0] @ v[2], u[1] @ v[1]]
    assert np.allclose(out, expected)


def test_gsddmm_add_multihead():
    indptr = np.array([0, 1, 3])
    indices = np.array([1, 0, 2])
    dst = np.array([[1.0, 10.0], [2.0, 20.0]], dtype=np.float32)
    src = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]], dtype=np.float32)
    out = gsddmm_add(indptr, indices, dst, src)
    assert np.allclose(out, [[1.3, 10.4], [2.1, 20.2], [2.5, 20.6]])
