"""Recsys quickstart: sparse embedding training + top-k recommendation.

The embedding-table workload of the paper's recsys discussion, end to end:

1. generate a bipartite user-item rating graph with planted taste
   communities (``load_bipartite_dataset``);
2. train link prediction over it — a ``WholeEmbedding`` table sharded
   across the simulated GPUs holds one trainable row per user/item, the
   GraphSage encoder rides on top, and ``SparseAdam`` updates only the
   rows each batch touches (state co-sharded with the table);
3. report the held-out ROC-AUC per epoch and the sparse-update economics
   (rows touched per epoch vs table size);
4. freeze the encoder, build the offline item index, and serve top-10
   recommendations through the costed serving stack.

Run:  python examples/recsys_quickstart.py
"""

import numpy as np

from repro.graph import MultiGpuGraphStore, load_bipartite_dataset
from repro.hardware import SimNode
from repro.serve import FrozenModel, RecsysEngine, synthesize_requests
from repro.train import WholeGraphTrainer
from repro.utils.rng import spawn_rng

EPOCHS = 6
TOP_K = 10


def main() -> None:
    ds = load_bipartite_dataset(num_users=600, num_items=250, seed=0)
    store = MultiGpuGraphStore(SimNode(), ds, seed=0)
    trainer = WholeGraphTrainer(
        store, "sage", seed=0, batch_size=32, task="linkpred",
        num_pairs=256, hidden=32, num_layers=2, lr=1e-2,
    )
    table = trainer.embedding
    print(
        f"embedding table: {table.num_rows} rows x {table.dim} "
        f"({table.total_bytes / 2**10:.0f} KiB sharded over "
        f"{trainer.node.num_gpus} GPUs)"
    )

    touched0 = 0
    for epoch in range(EPOCHS):
        stats = trainer.train_epoch()
        auc = trainer.evaluate_linkpred(num_pairs=1000)
        touched = table.grad_stats["rows_touched"]
        print(
            f"epoch {epoch}: loss {stats.mean_loss:.4f}  "
            f"AUC {auc:.4f}  rows touched {touched - touched0}  "
            f"epoch time {stats.epoch_time * 1e3:.2f} ms"
        )
        touched0 = touched

    engine = RecsysEngine(
        store, FrozenModel(trainer.model), table, ds.item_nodes,
        top_k=TOP_K, score_scale=trainer._score_scale,
    )
    requests = synthesize_requests(
        300, 50_000.0, ds.user_nodes, spawn_rng(0, "recsys-quickstart")
    )
    report = engine.serve(requests, seed=0).report
    print(
        f"\nserved {len(requests)} requests: "
        f"p99 {report.latency['p99'] * 1e6:.1f} us at {report.qps:.0f} qps"
    )

    users = ds.user_nodes[:5]
    recs = engine.recommend(users)
    csr = store.csr
    for u, items in zip(users, recs):
        rated = csr.indices[csr.indptr[u]: csr.indptr[u + 1]]
        hits = int(np.isin(items, rated).sum())
        print(
            f"user {u}: top-{TOP_K} {items.tolist()} "
            f"({hits} already rated)"
        )


if __name__ == "__main__":
    main()
