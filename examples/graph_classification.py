"""Graph classification — "predicting categories of ... even graphs" (§I).

Batches many small graphs block-diagonally, runs full-graph GIN message
passing over the whole batch in one g-SpMM sweep (full-batch on small
graphs is the degenerate case of sampling with unlimited fanout), pools
node embeddings per graph with a mean readout, and classifies.

The synthetic task is structural — rings vs dense random graphs — so node
features are pure noise and only the aggregation can separate the classes.

Run:  python examples/graph_classification.py
"""

import numpy as np

from repro.graph.batch import (
    batch_graphs,
    generate_graph_classification_dataset,
)
from repro.nn import Adam, Linear, Module, Tensor
from repro.nn import functional as F
from repro.nn.layers import GINConv
from repro.train.metrics import accuracy
from repro.utils.rng import spawn_rng


class GraphClassifier(Module):
    """Two GIN layers, mean readout, linear head."""

    def __init__(self, in_dim, hidden, num_classes, rng):
        super().__init__()
        self.conv1 = GINConv(in_dim, hidden, rng)
        self.conv2 = GINConv(hidden, hidden, rng)
        self.head = Linear(hidden, num_classes, rng)

    def forward(self, batch, x: Tensor) -> Tensor:
        block = batch.full_graph_block()
        h = F.relu(self.conv1(block, x))
        h = F.relu(self.conv2(block, h))
        pooled = F.graph_readout(h, batch.graph_offsets, mode="mean")
        return self.head(pooled)


def main() -> None:
    rng = spawn_rng(11, "graphcls")
    train_g, train_x, train_y = generate_graph_classification_dataset(
        256, rng
    )
    test_g, test_x, test_y = generate_graph_classification_dataset(128, rng)

    model = GraphClassifier(8, 32, 2, rng)
    opt = Adam(model.parameters(), lr=5e-3)
    batch_size = 32

    print(f"training on {len(train_g)} graphs (rings vs dense), "
          f"testing on {len(test_g)}")
    for epoch in range(8):
        order = rng.permutation(len(train_g))
        losses = []
        for i in range(0, len(order), batch_size):
            idx = order[i : i + batch_size]
            batch = batch_graphs([train_g[j] for j in idx])
            x = Tensor(np.concatenate([train_x[j] for j in idx]))
            logits = model(batch, x)
            loss = F.cross_entropy(logits, train_y[idx])
            model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))

        batch = batch_graphs(test_g)
        x = Tensor(np.concatenate(test_x))
        acc = accuracy(model(batch, x).data, test_y)
        print(f"epoch {epoch}: loss={np.mean(losses):.4f} test_acc={acc:.3f}")


if __name__ == "__main__":
    main()
