"""Serving quickstart: train, freeze, and serve 1000 simulated requests.

Walks the online-inference path that :mod:`repro.serve` adds on top of the
training stack:

1. train a small GraphSage on a synthetic ogbn-products-like dataset;
2. freeze the trained model (weight snapshot, forward-only);
3. serve 1000 Poisson-arrival requests through the dynamic micro-batcher
   across all 8 simulated GPU replicas, every request charging real
   sample/gather/forward costs;
4. print the SLO summary: QPS, p50/p95/p99 latency, a latency histogram,
   and the per-phase breakdown of where each microsecond went.

Run:  python examples/serve_quickstart.py
"""

import numpy as np

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.serve import (
    FrozenModel,
    InferenceEngine,
    MicroBatcher,
    synthesize_requests,
)
from repro.train import WholeGraphTrainer
from repro.utils.rng import spawn_rng
from repro.utils.units import format_seconds

NUM_REQUESTS = 1000
OFFERED_QPS = 2e6  # past single-node saturation, so queueing is visible
FANOUTS = [10, 10]


def print_latency_histogram(latencies: np.ndarray, bins: int = 12) -> None:
    """A quick terminal histogram of per-request latency (microseconds)."""
    us = latencies * 1e6
    counts, edges = np.histogram(us, bins=bins)
    peak = counts.max() or 1
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(40 * c / peak))
        print(f"  {lo:8.1f}-{hi:8.1f} us | {bar} {c}")


def main() -> None:
    # -- 1. train -------------------------------------------------------------
    dataset = load_dataset(
        "ogbn-products", num_nodes=8000, seed=0, num_classes=8
    )
    node = SimNode()
    store = MultiGpuGraphStore(node, dataset, seed=0, cache_ratio=0.1)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=0, batch_size=128, fanouts=FANOUTS,
        hidden=64, lr=1e-2, dropout=0.1,
    )
    for epoch in range(3):
        stats = trainer.train_epoch()
        print(f"epoch {epoch}: loss={stats.mean_loss:.4f}")

    # -- 2. freeze ------------------------------------------------------------
    frozen = FrozenModel(trainer.model)
    print(f"frozen export: {frozen!r}")

    # -- 3. serve -------------------------------------------------------------
    engine = InferenceEngine(
        store,
        model=frozen,
        fanouts=FANOUTS,
        batcher=MicroBatcher(max_batch_size=32, max_wait_us=100),
    )
    requests = synthesize_requests(
        NUM_REQUESTS,
        rate_qps=OFFERED_QPS,
        node_pool=store.test_nodes,
        rng=spawn_rng(42, "quickstart-requests"),
    )
    result = engine.serve(requests, seed=7)

    # -- 4. the SLO story -----------------------------------------------------
    report = result.report
    lat = report.latency
    print(
        f"\nserved {report.num_requests} requests in "
        f"{format_seconds(report.duration_seconds)} simulated "
        f"({report.num_batches} batches, "
        f"mean occupancy {report.batch_occupancy['mean']:.1f})"
    )
    print(
        f"throughput: {report.qps:,.0f} qps   latency: "
        f"p50={lat['p50'] * 1e6:.1f}us p95={lat['p95'] * 1e6:.1f}us "
        f"p99={lat['p99'] * 1e6:.1f}us"
    )
    print("\nlatency histogram:")
    print_latency_histogram(result.latencies)
    print("\nwhere the time went (simulated seconds, all replicas):")
    for phase, t in sorted(report.phase_totals.items()):
        print(f"  {phase:<14} {format_seconds(t)}")


if __name__ == "__main__":
    main()
