"""Quickstart: train a GraphSage model with WholeGraph on a simulated DGX.

Walks the full WholeGraph pipeline from the paper:

1. generate a synthetic ogbn-products-like dataset;
2. hash-partition the graph + features across the 8 simulated GPUs
   (the multi-GPU distributed-shared-memory store, paper §III-B);
3. train a 2-layer GraphSage with GPU sampling + global feature gather;
4. report accuracy, the per-phase time breakdown, and GPU utilization.

Run:  python examples/quickstart.py
"""

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.telemetry.utilization import mean_utilization
from repro.train import WholeGraphTrainer
from repro.utils.units import format_bytes, format_seconds


def main() -> None:
    # -- 1. dataset ----------------------------------------------------------
    dataset = load_dataset(
        "ogbn-products", num_nodes=8000, seed=0, num_classes=8
    )
    print(
        f"dataset: {dataset.name} (scaled) — {dataset.num_nodes} nodes, "
        f"{dataset.graph.num_edges} directed edges, "
        f"{dataset.feature_dim}-dim features, "
        f"{len(dataset.train_nodes)} train nodes"
    )

    # -- 2. a simulated DGX-A100 and the multi-GPU store ----------------------
    node = SimNode()  # 8 A100s on NVSwitch
    store = MultiGpuGraphStore(node, dataset, seed=0)
    usage = store.memory_usage_per_gpu()
    print(
        "per-GPU storage: "
        + ", ".join(f"{k}={format_bytes(v)}" for k, v in usage.items())
    )

    # -- 3. train -------------------------------------------------------------
    trainer = WholeGraphTrainer(
        store,
        "graphsage",
        seed=0,
        batch_size=128,
        fanouts=[10, 10],
        hidden=64,
        lr=1e-2,
        dropout=0.1,
    )
    for epoch in range(6):
        stats = trainer.train_epoch()
        acc = trainer.evaluate()
        print(
            f"epoch {epoch}: loss={stats.mean_loss:.4f} "
            f"val_acc={acc:.3f} "
            f"sim_epoch_time={format_seconds(stats.epoch_time)} "
            f"(sample={format_seconds(stats.times.sample)}, "
            f"gather={format_seconds(stats.times.gather)}, "
            f"train={format_seconds(stats.times.train)})"
        )

    # -- 4. utilization --------------------------------------------------------
    util = mean_utilization(node.timeline, node.gpu_memory[0].device)
    print(f"test accuracy: {trainer.evaluate(store.test_nodes):.3f}")
    print(f"simulated GPU-0 utilization over the run: {util:.1f}%")


if __name__ == "__main__":
    main()
