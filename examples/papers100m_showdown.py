"""Framework showdown on an ogbn-papers100M-like workload.

Reproduces the paper's core comparison on one workload: WholeGraph vs the
DGL-like and PyG-like host-memory pipelines, training a 3-layer GCN with
the paper's hyper-parameters (batch 512, fanout 30 per layer, hidden 256).

Prints per-iteration phase breakdowns (Fig. 9), extrapolated full-scale
epoch times and speedups (Table V rows), and mean GPU utilization
(Fig. 12) for each framework.

Run:  python examples/papers100m_showdown.py        (~2-3 min)
      python examples/papers100m_showdown.py --fast (reduced scale)
"""

import sys

from repro.experiments.common import measure_baseline, measure_wholegraph
from repro.graph.datasets import dataset_spec
from repro.telemetry.report import format_table
from repro.telemetry.utilization import mean_utilization
from repro.utils.units import format_seconds

DATASET = "ogbn-papers100M"
MODEL = "gcn"


def main(fast: bool = False) -> None:
    kwargs = dict(num_nodes=8000 if fast else 30_000, iterations=2)
    if fast:
        kwargs.update(batch_size=128, fanouts=[10, 10], hidden=64)

    spec = dataset_spec(DATASET)
    print(
        f"workload: {DATASET} ({spec.full_nodes/1e6:.1f}M nodes, "
        f"{spec.full_edges/1e9:.1f}B edges at full scale), model={MODEL}"
    )
    print(
        f"full-scale epoch = {spec.full_iterations_per_epoch} iterations "
        f"of batch 512\n"
    )

    rows = []
    results = {}
    for framework in ("PyG", "DGL", "WholeGraph"):
        if framework == "WholeGraph":
            measured, node = measure_wholegraph(DATASET, MODEL, **kwargs)
        else:
            measured, node = measure_baseline(framework, DATASET, MODEL,
                                              **kwargs)
        util = mean_utilization(node.timeline, node.gpu_memory[0].device)
        results[framework] = measured
        rows.append([
            framework,
            measured.iter_times.sample * 1e3,
            measured.iter_times.gather * 1e3,
            measured.iter_times.train * 1e3,
            format_seconds(measured.epoch_time_full),
            f"{util:.1f}%",
        ])

    print(format_table(
        ["Framework", "sample (ms/it)", "gather (ms/it)", "train (ms/it)",
         "full-scale epoch", "GPU util"],
        rows,
        title=f"{DATASET} / {MODEL} — simulated DGX-A100, 8 GPUs",
    ))
    wg = results["WholeGraph"].epoch_time_full
    print(
        f"\nspeedups: {results['DGL'].epoch_time_full / wg:.1f}x vs DGL, "
        f"{results['PyG'].epoch_time_full / wg:.1f}x vs PyG "
        f"(paper reports 38.65x and 62.91x on real hardware)"
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
