"""Link prediction with WholeGraph — the paper's other headline GNN task.

GNNs "predict missing links between nodes, i.e. link prediction" (paper
§I).  This example trains a GraphSage encoder on the multi-GPU store with a
dot-product edge decoder:

1. sample positive edges from the graph and uniform negative pairs
   (rejection-sampled against the adjacency);
2. encode both endpoints with sampled multi-layer GraphSage (the endpoints
   form the seed batch; WholeGraph's prefix property puts their embeddings
   in the first rows);
3. score pairs by embedding dot product and minimise binary cross-entropy;
4. report ROC-AUC on held-out positives/negatives.

Run:  python examples/link_prediction.py
"""

import numpy as np

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.nn import Adam, Tensor, build_model
from repro.nn import functional as F
from repro.ops.negative_sampling import (
    sample_negative_edges,
    sample_positive_edges,
)
from repro.ops.neighbor_sampler import NeighborSampler
from repro.train.metrics import roc_auc
from repro.utils.rng import spawn_rng


def encode_pairs(model, sampler, store, src, dst, rng, train_rng=None):
    """Embed the endpoints of the given pairs; returns (h, left, right)."""
    seeds, inverse = np.unique(np.concatenate([src, dst]),
                               return_inverse=True)
    sg = sampler.sample(seeds, 0, rng)
    x = Tensor(store.feature_tensor.gather_no_cost(sg.input_nodes))
    h = model(sg, x, train_rng)
    left = inverse[: src.shape[0]]
    right = inverse[src.shape[0]:]
    return h, left, right


def main() -> None:
    rng = spawn_rng(7, "linkpred")
    dataset = load_dataset("ogbn-products", num_nodes=4000, seed=3,
                           num_classes=8)
    node = SimNode()
    store = MultiGpuGraphStore(node, dataset, seed=0)
    print(
        f"link prediction on {dataset.name} (scaled): "
        f"{store.num_nodes} nodes, {store.num_edges} directed edges"
    )

    sampler = NeighborSampler(store, [8, 8], charge=False)
    # encoder output = embedding space (no classification head)
    embed_dim = 32
    model = build_model("graphsage", store.feature_dim, embed_dim, rng,
                        hidden=64, num_layers=2, dropout=0.1)
    opt = Adam(model.parameters(), lr=3e-3)
    # scale scores like scaled dot-product attention so BCE starts sane
    score_scale = 1.0 / np.sqrt(embed_dim)

    batch_pairs = 256
    for step in range(60):
        ps, pd = sample_positive_edges(store.csr, batch_pairs, rng)
        ns, nd = sample_negative_edges(store.csr, batch_pairs, rng)
        src = np.concatenate([ps, ns])
        dst = np.concatenate([pd, nd])
        labels = np.concatenate(
            [np.ones(batch_pairs), np.zeros(batch_pairs)]
        )
        h, left, right = encode_pairs(model, sampler, store, src, dst, rng,
                                      train_rng=rng)
        scores = F.pairwise_dot(h, left, right) * score_scale
        loss = F.binary_cross_entropy_with_logits(scores, labels)
        model.zero_grad()
        loss.backward()
        opt.step()
        if step % 10 == 0 or step == 59:
            auc = roc_auc(scores.data, labels)
            print(f"step {step:2d}: loss={float(loss.data):.4f} "
                  f"train-batch AUC={auc:.3f}")

    # held-out evaluation with fresh pairs
    model.eval()
    ps, pd = sample_positive_edges(store.csr, 1000, rng)
    ns, nd = sample_negative_edges(store.csr, 1000, rng)
    h, left, right = encode_pairs(
        model, sampler, store,
        np.concatenate([ps, ns]), np.concatenate([pd, nd]), rng,
    )
    scores = F.pairwise_dot(h, left, right).data * score_scale
    labels = np.concatenate([np.ones(1000), np.zeros(1000)])
    print(f"\nheld-out ROC-AUC: {roc_auc(scores, labels):.3f}")


if __name__ == "__main__":
    main()
