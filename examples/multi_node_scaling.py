"""Multi-node scaling: how fast can 8 DGX nodes train papers100M?

Reproduces the paper's §IV-D anchor: "we can train 80 epochs of a 3-layer
GraphSAGE model with a hidden size of 256 and a sample count of 30,30,30 on
the ogbn-papers100M dataset in 66 seconds with 8 DGX-A100 servers."

Measures the single-node iteration time at the paper's hyper-parameters,
predicts the 1/2/4/8-node epoch times with the replicated-store +
hierarchical-all-reduce model (paper §III-D), and prints the 80-epoch
figure next to the paper's.

Run:  python examples/multi_node_scaling.py
"""

from repro.cluster import scaling_curve
from repro.experiments.common import measure_wholegraph
from repro.graph.datasets import dataset_spec
from repro.telemetry.report import format_table

DATASET = "ogbn-papers100M"
MODEL = "graphsage"


def main() -> None:
    spec = dataset_spec(DATASET)
    print(f"measuring single-node iteration time for {MODEL} on {DATASET}…")
    measured, _ = measure_wholegraph(
        DATASET, MODEL, num_nodes=20_000, iterations=3
    )
    print(
        f"single-node: {measured.iter_time*1e3:.2f} ms/iteration, "
        f"{spec.full_iterations_per_epoch} iterations per full-scale epoch\n"
    )

    grad_nbytes = (
        (spec.feature_dim * 256 + 256 * 256 + 256 * spec.num_classes) * 4
    )
    points = scaling_curve(
        measured.iter_time,
        spec.full_iterations_per_epoch,
        grad_nbytes,
        node_counts=(1, 2, 4, 8),
    )
    print(format_table(
        ["Nodes", "GPUs", "iters/epoch", "epoch time (s)", "speedup",
         "efficiency"],
        [
            [p.num_nodes, p.num_nodes * 8, p.iterations, p.epoch_time,
             f"{p.speedup:.2f}x", f"{100*p.efficiency:.1f}%"]
            for p in points
        ],
        title="Fig. 13-style scaling (replicated store, gradient-only traffic)",
    ))

    t80 = 80 * points[-1].epoch_time
    print(
        f"\n80 epochs on 8 nodes: {t80:.0f} s simulated "
        "(paper measured 66 s on Selene)"
    )


if __name__ == "__main__":
    main()
