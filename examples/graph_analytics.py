"""Graph analytics on the WholeGraph shared-memory store.

The paper positions its distributed-shared-memory architecture as useful
beyond GNN training — "also appropriate for other sparse graph computing
patterns" (§I), next to nvGRAPH and Gunrock (§V).  This example runs
PageRank, connected components and BFS over the hash-partitioned
multi-GPU store and reports the simulated per-GPU analytics time.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.graph import MultiGpuGraphStore, load_dataset
from repro.graph.algorithms import (
    bfs_levels,
    connected_components_on_store,
    pagerank_on_store,
)
from repro.hardware import SimNode
from repro.telemetry.profiler import PhaseProfiler
from repro.utils.units import format_seconds


def main() -> None:
    dataset = load_dataset("uk_domain", num_nodes=20_000, seed=1,
                           feature_dim=4)
    node = SimNode()
    store = MultiGpuGraphStore(node, dataset, seed=0)
    print(
        f"analytics on {dataset.name} (scaled): {store.num_nodes} nodes, "
        f"{store.num_edges} directed edges, hash-partitioned over "
        f"{node.num_gpus} GPUs"
    )

    with PhaseProfiler(node) as prof:
        ranks, iterations = pagerank_on_store(store, tol=1e-8)
    top = np.argsort(ranks)[::-1][:5]
    print(
        f"\nPageRank converged in {iterations} iterations "
        f"({format_seconds(prof.elapsed())} simulated)"
    )
    print("top-5 nodes by rank:", ", ".join(
        f"{store.partition.to_original[i]}({ranks[i]:.2e})" for i in top
    ))

    with PhaseProfiler(node) as prof:
        labels = connected_components_on_store(store)
    sizes = np.bincount(np.unique(labels, return_inverse=True)[1])
    print(
        f"\nconnected components: {sizes.size} components, "
        f"largest has {sizes.max()} nodes "
        f"({format_seconds(prof.elapsed())} simulated)"
    )

    source = int(store.train_nodes[0])
    levels = bfs_levels(store.csr, source)
    reached = levels >= 0
    print(
        f"\nBFS from stored node {source}: reached {reached.sum()} nodes, "
        f"eccentricity {levels[reached].max()}"
    )


if __name__ == "__main__":
    main()
