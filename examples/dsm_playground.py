"""Using the distributed-shared-memory library directly.

The paper notes (§I) that treating the multi-GPU platform as a distributed
shared memory is useful beyond GNN training.  This example drives
`repro.dsm` as a standalone library:

1. allocate a WholeTensor across 8 simulated GPUs (IPC exchange + pointer
   tables, paper Fig. 3);
2. compare GPUDirect-P2P vs Unified-Memory pointer chases (Table I);
3. sweep the random-gather segment size and print the Fig. 8 curve;
4. race the one-kernel shared-memory gather against the 5-step NCCL-style
   gather (Fig. 4 / Fig. 10).

Run:  python examples/dsm_playground.py
"""

import numpy as np

from repro.config import GB
from repro.dsm import Communicator, UnifiedMemorySpace, WholeTensor
from repro.hardware import SimNode, costmodel
from repro.ops.gather import distributed_memory_gather, shared_memory_gather
from repro.telemetry.report import format_table
from repro.utils.units import format_seconds


def main() -> None:
    rng = np.random.default_rng(0)
    node = SimNode()

    # -- 1. a shared 2-D tensor across all GPUs --------------------------------
    tensor = WholeTensor(node, num_rows=200_000, num_cols=64, tag="demo")
    host = rng.standard_normal((200_000, 64)).astype(np.float32)
    tensor.load_from_host(host)
    print(
        f"WholeTensor: {tensor.shape}, {tensor.total_bytes/2**20:.0f} MiB "
        f"across {node.num_gpus} GPUs "
        f"(setup charged {format_seconds(tensor.memory.setup_time)}; "
        f"pointer table = {tensor.memory.pointer_tables[0].nbytes} B/GPU)"
    )
    rows = rng.integers(0, 200_000, size=1000)
    assert np.array_equal(tensor.gather(rows, rank=3), host[rows])
    print("gather from rank 3 verified against host data\n")

    # -- 2. P2P vs UM pointer chase ----------------------------------------------
    chase_rows = []
    for size_gb in (8, 32, 128):
        um = UnifiedMemorySpace(node, size_gb * GB)
        t_um = um.access(rng.integers(0, size_gb * GB, 4000), rank=0)
        t_p2p = costmodel.pointer_chase_time(4000, size_gb * GB, "p2p")
        chase_rows.append(
            [size_gb, t_um / 4000 * 1e6, t_p2p / 4000 * 1e6,
             f"{t_um / t_p2p:.1f}x"]
        )
    print(format_table(
        ["Footprint (GB)", "UM (us/access)", "P2P (us/access)", "UM penalty"],
        chase_rows,
        title="Dependent random accesses (Table I experiment)",
    ))

    # -- 3. segment-size bandwidth sweep --------------------------------------------
    bw_rows = []
    for seg in (16, 64, 256, 1024):
        cols = seg // 4
        t = WholeTensor(node, 100_000, cols, tag="bw", charge_setup=False)
        per_rank = [
            rng.integers(0, 100_000, size=4 * 2**20 // seg)
            for _ in range(node.num_gpus)
        ]
        _, elapsed = shared_memory_gather(t, per_rank)
        bus = (per_rank[0].size * seg) * 7 / 8 / elapsed
        bw_rows.append([seg, bus / GB])
        t.free()
    print()
    print(format_table(
        ["Segment (B)", "BusBW (GB/s)"], bw_rows,
        title="Random-gather bandwidth vs segment size (Fig. 8 experiment)",
    ))

    # -- 4. shared-memory vs NCCL gather ----------------------------------------------
    per_rank = [rng.integers(0, 200_000, size=50_000) for _ in range(8)]
    _, t_shared = shared_memory_gather(tensor, per_rank)
    _, trace = distributed_memory_gather(tensor, per_rank, Communicator(node))
    print(
        f"\nglobal gather of 50k x 256 B rows/GPU: "
        f"shared-memory {format_seconds(t_shared)} vs "
        f"NCCL-style {format_seconds(trace.total_time)} "
        f"({trace.total_time / t_shared:.2f}x slower; steps: "
        + ", ".join(
            f"{k}={format_seconds(v)}" for k, v in trace.step_times.items()
        )
        + ")"
    )


if __name__ == "__main__":
    main()
