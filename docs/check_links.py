#!/usr/bin/env python3
"""Dead-link check over every Markdown file in the repository.

Stdlib-only, offline: relative links (``[text](path)`` and bare
``<path.md>``-style references) are resolved against the file that contains
them and must point at an existing file or directory; external links
(``http(s)://``, ``mailto:``) are *not* fetched — CI must pass without
network access — and in-page anchors (``#section``) are stripped before
resolution.

Usage::

    python docs/check_links.py          # exit 1 if any relative link is dead

CI runs this next to ``gen_api.py --check`` so a file rename that orphans a
cross-reference fails the build.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target) — target captured lazily so titles
#: ('path "title"') and nested parens in text don't confuse it
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: directories never scanned (artifacts, VCS internals)
SKIP_DIRS = {".git", "runs", "results", "__pycache__", ".pytest_cache"}

#: link schemes that are out of scope for an offline checker
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files() -> list[Path]:
    """Every ``*.md`` under the repo root, skipping artifact directories."""
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(
                REPO_ROOT).parts):
            continue
        out.append(path)
    return out


def check_file(path: Path) -> list[str]:
    """Dead-link messages for one Markdown file (empty = clean)."""
    problems = []
    text = path.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            rel = path.relative_to(REPO_ROOT)
            problems.append(f"{rel}: dead link -> {target}")
    return problems


def main() -> int:
    """Scan the repo; print dead links and return the exit code."""
    files = iter_markdown_files()
    problems = [p for f in files for p in check_file(f)]
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} dead link(s) across {len(files)} files")
        return 1
    print(f"all relative links resolve ({len(files)} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
