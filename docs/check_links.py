#!/usr/bin/env python3
"""Dead-link check over every Markdown file in the repository.

Stdlib-only, offline: relative links (``[text](path)`` and bare
``<path.md>``-style references) are resolved against the file that contains
them and must point at an existing file or directory; external links
(``http(s)://``, ``mailto:``) are *not* fetched — CI must pass without
network access.  Anchors are validated too: a ``#fragment`` (in-page or on
a relative ``.md`` link) must match a GitHub-style heading slug in the
target file, so a heading rename or section renumbering that orphans a
deep link fails the build the same way a file rename does.

Usage::

    python docs/check_links.py          # exit 1 if any relative link is dead

CI runs this next to ``gen_api.py --check`` so a file rename that orphans a
cross-reference fails the build.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target) — target captured lazily so titles
#: ('path "title"') and nested parens in text don't confuse it
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (``#`` .. ``######``); setext headings are not used here
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: fenced code blocks — headings inside them are not anchors
FENCE_RE = re.compile(r"^(```|~~~)")

#: directories never scanned (artifacts, VCS internals)
SKIP_DIRS = {".git", "runs", "results", "__pycache__", ".pytest_cache"}

#: link schemes that are out of scope for an offline checker
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files() -> list[Path]:
    """Every ``*.md`` under the repo root, skipping artifact directories."""
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(
                REPO_ROOT).parts):
            continue
        out.append(path)
    return out


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading line.

    Markdown formatting is dropped first (inline code, emphasis, the text
    of links), then: lowercase, punctuation removed, spaces and dashes
    become hyphens. Matches GitHub's slugger for the constructs used in
    this repo (including ``§``-numbered headings, where the ``§`` is
    punctuation and disappears).
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](u) -> t
    text = text.replace("`", "").replace("*", "").replace("_", "_")
    text = text.strip().lower()
    # GitHub keeps letters/digits/underscores/hyphens/spaces, drops the rest
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def collect_anchors(path: Path) -> set[str]:
    """All valid anchor slugs in one Markdown file.

    Duplicate headings get ``-1``, ``-2``, ... suffixes exactly as GitHub
    appends them; explicit ``<a name="...">``/``<a id="...">`` anchors
    count too.
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    text = path.read_text()
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    for m in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"", text):
        anchors.add(m.group(1))
    return anchors


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Dead-link messages for one Markdown file (empty = clean)."""
    problems = []
    text = path.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        rel = path.relative_to(REPO_ROOT)
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{rel}: dead link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if resolved not in anchor_cache:
                anchor_cache[resolved] = collect_anchors(resolved)
            if fragment not in anchor_cache[resolved]:
                problems.append(f"{rel}: dead anchor -> {target}")
    return problems


def main() -> int:
    """Scan the repo; print dead links and return the exit code."""
    files = iter_markdown_files()
    anchor_cache: dict[Path, set[str]] = {}
    problems = [p for f in files for p in check_file(f, anchor_cache)]
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} dead link(s) across {len(files)} files")
        return 1
    print(f"all relative links and anchors resolve "
          f"({len(files)} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
