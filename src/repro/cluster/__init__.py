"""Multi-node scaling (paper §III-D, Fig. 13): analytic model + measured trainer."""

from repro.cluster.multinode import MultiNodeCluster, scaling_curve
from repro.cluster.trainer import ClusterTrainer

__all__ = ["MultiNodeCluster", "scaling_curve", "ClusterTrainer"]
