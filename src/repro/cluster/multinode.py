"""Multi-node data-parallel scaling (paper §III-D / Fig. 13).

WholeGraph scales out by *replicating* the graph store on every machine
node: sampling and gathering stay node-local, the only inter-node traffic
is the gradient all-reduce.  Epoch time on ``k`` nodes is therefore

    T(k) = ceil(iters / k) · (t_iter_local + Δ_allreduce(k))

where ``t_iter_local`` is the measured single-node iteration time and
``Δ_allreduce(k)`` replaces the intra-node NVLink all-reduce with a
hierarchical reduce whose inter-node stage rides the InfiniBand NICs.
Gradients are a few MB while iterations are milliseconds, so the curve is
near-linear — exactly the Fig. 13 shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware import costmodel
from repro.hardware.spec import NodeSpec, dgx_a100


@dataclass
class ScalingPoint:
    """Predicted epoch time on ``num_nodes`` machines."""

    num_nodes: int
    iterations: int
    iter_time: float
    epoch_time: float
    speedup: float
    efficiency: float


class MultiNodeCluster:
    """A cluster of identical nodes, each holding a full store replica."""

    def __init__(self, spec: NodeSpec | None = None):
        self.spec = spec if spec is not None else dgx_a100()

    def allreduce_delta(self, grad_nbytes: int, num_nodes: int) -> float:
        """Extra all-reduce time of the inter-node stage vs single-node.

        Hierarchical all-reduce: intra-node reduce-scatter/all-gather over
        NVLink (already in the measured iteration time), plus an inter-node
        ring over the per-node NIC aggregate for one GPU's shard.
        """
        if num_nodes <= 1:
            return 0.0
        shard = grad_nbytes / self.spec.num_gpus
        return costmodel.allreduce_time(
            shard,
            num_nodes,
            self.spec.inter_node.bandwidth,
            self.spec.inter_node.latency,
        )

    def epoch_time(
        self,
        single_node_iter_time: float,
        iterations_per_epoch: int,
        grad_nbytes: int,
        num_nodes: int,
    ) -> float:
        """Predicted epoch time on ``num_nodes`` nodes."""
        iters = int(np.ceil(iterations_per_epoch / num_nodes))
        return iters * (
            single_node_iter_time + self.allreduce_delta(grad_nbytes, num_nodes)
        )


def scaling_curve(
    single_node_iter_time: float,
    iterations_per_epoch: int,
    grad_nbytes: int,
    node_counts=(1, 2, 4, 8),
    spec: NodeSpec | None = None,
) -> list[ScalingPoint]:
    """Epoch-time speedups vs node count, normalised to one node."""
    cluster = MultiNodeCluster(spec)
    base = cluster.epoch_time(
        single_node_iter_time, iterations_per_epoch, grad_nbytes, 1
    )
    points = []
    for k in node_counts:
        t = cluster.epoch_time(
            single_node_iter_time, iterations_per_epoch, grad_nbytes, k
        )
        points.append(
            ScalingPoint(
                num_nodes=k,
                iterations=int(np.ceil(iterations_per_epoch / k)),
                iter_time=single_node_iter_time
                + cluster.allreduce_delta(grad_nbytes, k),
                epoch_time=t,
                speedup=base / t,
                efficiency=base / t / k,
            )
        )
    return points
