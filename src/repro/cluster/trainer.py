"""Functional multi-node data-parallel training (paper §III-D).

Complements the analytic scaling model in :mod:`repro.cluster.multinode`
with a *measured* multi-machine run: every machine node is a full
:class:`~repro.hardware.machine.SimNode` holding its own replica of the
graph store; iterations are distributed across nodes; each node computes
its local gradients, an inter-node all-reduce averages them over the
InfiniBand NICs, and every replica steps identically — the Apex-DDP flow
the paper describes.

The replicas really stay bit-identical (``assert_in_sync``), and the
per-node clocks really show the near-linear epoch-time reduction of
Fig. 13.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import config
from repro.dsm.sparse_embedding import WholeEmbedding
from repro.faults import FaultInjector, FaultPlan, RankFailureError
from repro.graph import MultiGpuGraphStore
from repro.graph.datasets import SyntheticDataset
from repro.hardware import SimNode
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.nn.sparse_optim import average_row_grads
from repro.ops.neighbor_sampler import NeighborSampler
from repro.train.checkpoint import save_checkpoint
from repro.train.metrics import roc_auc
from repro.train.pipeline import (
    PipelinedExecutor,
    run_iteration,
    train_batch,
)
from repro.train.plans.cluster import ClusterDataParallelPlan
from repro.train.trainer import (
    SPARSE_OPTIMIZERS,
    linkpred_forward,
    sample_link_batch,
)
from repro.utils.rng import RngPool, spawn_rng


class ClusterTrainer:
    """Train one model data-parallel over ``num_machine_nodes`` DGX nodes."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        num_machine_nodes: int,
        model_name: str,
        seed: int = 0,
        batch_size: int = config.BATCH_SIZE,
        fanouts=None,
        hidden: int = config.HIDDEN_SIZE,
        num_layers: int = config.NUM_LAYERS,
        lr: float = 3e-3,
        dropout: float = 0.5,
        overlap: bool = False,
        bucket_cap_mb: float | None = None,
        overlap_grad_sync: bool = True,
        fault_plan: FaultPlan | None = None,
        recovery_policy: str = "shrink",
        checkpoint_dir: str | None = None,
        task: str = "node",
        embedding_dim: int | None = None,
        num_pairs: int | None = None,
        sparse_optimizer: str = "adam",
        plan=None,
    ):
        """``overlap=True`` selects the double-buffered schedule on every
        machine node: each node prefetches its next batch's sample+gather
        while the current batch trains (same bit-identical-math guarantee as
        :class:`~repro.train.trainer.WholeGraphTrainer`).

        ``bucket_cap_mb`` / ``overlap_grad_sync`` configure the bucketed
        hierarchical gradient synchronisation (intra-node NVLink ring plus
        an inter-node IB ring per bucket); both are pure timing knobs.

        ``fault_plan`` injects scheduled faults (:mod:`repro.faults`); a
        rank failure takes its whole machine node (replica) down.
        ``recovery_policy="shrink"`` (default) drops the dead node and
        continues data-parallel over the survivors — replicas are already
        in sync, so no state moves; ``"restart"`` reloads the last
        epoch-boundary checkpoint into every replica and re-runs the epoch
        (the failed node's process is assumed restarted in place).

        ``plan`` is the parallelism plan owning gradient sync and fault
        recovery; only the default
        :class:`~repro.train.plans.cluster.ClusterDataParallelPlan` makes
        sense across machine nodes today, but instances may be passed for
        testing/extension."""
        if num_machine_nodes < 1:
            raise ValueError("need at least one machine node")
        if fanouts is None:
            fanouts = [config.FANOUT] * num_layers
        else:
            fanouts = list(fanouts)
            num_layers = len(fanouts)
        self.batch_size = int(batch_size)
        self.num_machine_nodes = num_machine_nodes
        self.seed = int(seed)
        self.model_name = model_name
        self.history: list[dict] = []

        # one full replica of everything per machine node (§III-D: "each
        # machine node holds one replica of the graph structure and graph
        # features")
        self.nodes = [SimNode(node_id=i) for i in range(num_machine_nodes)]
        self.stores = [
            MultiGpuGraphStore(node, dataset, seed=seed)
            for node in self.nodes
        ]
        self.samplers = [
            NeighborSampler(store, fanouts) for store in self.stores
        ]
        if task not in ("node", "linkpred"):
            raise ValueError("task must be 'node' or 'linkpred'")
        if task == "linkpred" and overlap:
            raise ValueError(
                "link prediction runs in the sequential symmetric mode"
            )
        self.task = task

        if task == "linkpred":
            from repro.faults import RankFailure

            if fault_plan is not None and fault_plan.of_kind(RankFailure):
                raise ValueError(
                    "link prediction supports transient fault plans only"
                )
            if sparse_optimizer not in SPARSE_OPTIMIZERS:
                raise ValueError(
                    f"sparse_optimizer must be one of "
                    f"{sorted(SPARSE_OPTIMIZERS)}"
                )
            self.embedding_dim = (
                int(embedding_dim) if embedding_dim
                else self.stores[0].feature_dim
            )
            self.num_pairs = (
                int(num_pairs) if num_pairs else self.batch_size
            )
            self.sparse_optim_name = sparse_optimizer
            # replicated link prediction: every machine processes *the
            # same* global pair batch, so the trajectory is bit-identical
            # to the single-node trainer's — same "init" model stream,
            # same "embedding" init, same per-step "rank"/"dropout"
            # consumption, one shared "linkpred-pairs" stream
            init_rng = spawn_rng(seed, "init")
            self.models = [
                build_model(
                    model_name, self.embedding_dim, hidden, init_rng,
                    hidden=hidden, num_layers=num_layers, dropout=dropout,
                )
                for _ in range(num_machine_nodes)
            ]
            self._score_scale = 1.0 / float(np.sqrt(hidden))
            self.embeddings = [
                WholeEmbedding(
                    node, self.stores[0].num_nodes, self.embedding_dim,
                    rng=spawn_rng(seed, "embedding"),
                )
                for node in self.nodes
            ]
            self.sparse_optimizers = [
                SPARSE_OPTIMIZERS[sparse_optimizer]([emb], lr=lr)
                for emb in self.embeddings
            ]
            self._pair_rng = spawn_rng(seed, "linkpred-pairs")
            self._sample_rngs = [
                spawn_rng(seed, "rank", 0)
                for _ in range(num_machine_nodes)
            ]
            self.iterations_per_epoch = max(
                1, self.stores[0].train_nodes.shape[0] // self.batch_size
            )
        else:
            self.embeddings = []
            self.sparse_optimizers = []
            init_rng = spawn_rng(seed, "cluster-init")
            self.models = [
                build_model(
                    model_name, self.stores[0].feature_dim,
                    self.stores[0].num_classes, init_rng,
                    hidden=hidden, num_layers=num_layers, dropout=dropout,
                )
                for _ in range(num_machine_nodes)
            ]
        # start in sync (the DDP weight broadcast)
        state = self.models[0].state_dict()
        for m in self.models[1:]:
            m.load_state_dict(state)
        self.optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        self._bucket_cap_mb = bucket_cap_mb
        self._overlap_grad_sync = bool(overlap_grad_sync)
        # the plan owns gradient sync and fault recovery; its bind leaves
        # ``self.grad_sync`` (the bucketed hierarchical pricing over all
        # machine nodes) populated for reporting and test access
        self.plan = ClusterDataParallelPlan() if plan is None else plan
        if self.plan.trainer is not None:
            raise ValueError("plan instances bind to a single trainer")
        self.plan.bind(self)
        self.rngs = RngPool(seed, num_machine_nodes)
        self.epoch_rng = self.rngs.named("cluster-epochs")
        self.overlap = bool(overlap)
        #: per-node dropout streams, separate from the sampling streams so
        #: both schedules consume each stream in the same order; replicated
        #: link prediction instead gives every machine the single-node
        #: trainer's "dropout" stream (consumed identically on identical
        #: batches, so replicas stay in lock-step with the single-node run)
        self._model_rngs = [
            (
                spawn_rng(seed, "dropout") if task == "linkpred"
                else self.rngs.named(f"cluster-dropout-{i}")
            )
            for i in range(num_machine_nodes)
        ]
        self._epoch = 0

        # -- fault injection & recovery ------------------------------------
        if recovery_policy not in ("restart", "shrink"):
            raise ValueError("recovery_policy must be 'restart' or 'shrink'")
        self.recovery_policy = recovery_policy
        self.fault_plan = fault_plan
        self.fault_injector = None
        self._checkpoint_dir = checkpoint_dir
        #: recovery actions taken so far (time, nodes, policy, cost)
        self.recoveries: list[dict] = []
        if fault_plan is not None and fault_plan:
            self.fault_injector = FaultInjector(fault_plan).install(
                self.nodes
            )
            if self._needs_checkpoints():
                self._save_checkpoint()

    def _needs_checkpoints(self) -> bool:
        from repro.faults import RankFailure

        return (
            self.fault_injector is not None
            and self.recovery_policy == "restart"
            and bool(self.fault_plan.of_kind(RankFailure))
        )

    def _checkpoint_path(self) -> str:
        if self._checkpoint_dir is None:
            self._checkpoint_dir = tempfile.mkdtemp(prefix="cluster-ckpt-")
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        return os.path.join(self._checkpoint_dir, "latest.npz")

    def _save_checkpoint(self) -> None:
        save_checkpoint(
            self._checkpoint_path(), self.models[0], self.optimizers[0],
            epoch=self._epoch,
        )

    def _grad_nbytes(self) -> int:
        return sum(p.data.nbytes for p in self.models[0].parameters())

    def _overlapped_node_step(
        self,
        executor: PipelinedExecutor,
        i: int,
        batch: np.ndarray,
        batches: list[np.ndarray],
        nxt: int,
    ) -> tuple[float, float]:
        """Node ``i`` trains ``batch`` while prefetching its next batch.

        ``nxt`` is the global index of the batch node ``i`` will process in
        the next round-robin step; its sample+gather runs concurrently with
        this step's training compute, so only the exposed tail
        ``max(0, train - prefetch)`` advances the node's clocks.  Returns
        ``(loss, train compute seconds)`` — the gradient sync is charged
        per group by the caller.
        """
        sample_rng = self.rngs.rank(i)
        if not executor.has_staged:
            # prologue: the epoch's first prefetch is fully exposed
            executor.prefetch(batch, sample_rng, mirror_ranks=True)
        sg, x_np = executor.take()
        prefetch_t = 0.0
        if nxt < len(batches):
            prefetch_t = executor.prefetch(
                batches[nxt], sample_rng, mirror_ranks=True
            )
        loss, _ = train_batch(
            self.models[i], sg, x_np, self.stores[i].labels[batch],
            rng=self._model_rngs[i], optimizer=None, compute_grads=True,
        )
        train_t = self.models[i].estimate_train_time(sg)
        executor.charge_overlapped_train(train_t, prefetch_t)
        return loss, train_t

    def train_epoch(self, max_iterations: int | None = None) -> dict:
        """One epoch; global batches are distributed round-robin over the
        machine nodes and processed concurrently (per-node clocks advance
        in parallel)."""
        if self.task == "linkpred":
            return self._train_epoch_linkpred(max_iterations)
        store0 = self.stores[0]
        order = self.epoch_rng.permutation(store0.train_nodes)
        nb = max(1, order.shape[0] // self.batch_size)
        batches = [
            order[i * self.batch_size : (i + 1) * self.batch_size]
            for i in range(nb)
        ]
        if max_iterations is not None:
            batches = batches[: max_iterations * self.num_machine_nodes]

        t_start = max(node.sync() for node in self.nodes)
        losses: list[float] = []
        executors = self._make_executors() if self.overlap else None
        # round-robin: one step processes batches[cursor : cursor+k]
        # concurrently; the cursor loop (instead of a fixed-stride range)
        # lets a mid-epoch recovery change k or replay the epoch
        cursor = 0
        while cursor < len(batches):
            k = self.num_machine_nodes
            group = batches[cursor : cursor + k]
            try:
                producers = []
                for i, batch in enumerate(group):
                    if self.overlap:
                        loss, train_t = self._overlapped_node_step(
                            executors[i], i, batch, batches, cursor + k + i
                        )
                        losses.append(loss)
                        producers.append(
                            (self.nodes[i].gpu_clock[0].now, train_t)
                        )
                        continue
                    res = run_iteration(
                        self.stores[i], self.samplers[i], self.models[i],
                        batch, 0, self.rngs.rank(i),
                        optimizer=None, compute_grads=True,
                        charge_train=True,
                        model_rng=self._model_rngs[i],
                    )
                    losses.append(res.loss)
                    # symmetric intra-node ranks
                    node = self.nodes[i]
                    for r in range(1, node.num_gpus):
                        clk = node.gpu_clock[r]
                        clk.advance(res.times.sample, phase="sample")
                        clk.advance(res.times.gather, phase="gather")
                        clk.advance(res.times.train, phase="train")
                    producers.append(
                        (node.gpu_clock[0].now, res.times.train)
                    )
                # global bucketed sync: averages the gradients
                # functionally, then charges the hierarchical (NVLink +
                # IB) schedule — nodes that got no batch this step stall
                # at the collective barrier
                self.plan.sync_gradients(producers)
                for opt in self.optimizers:
                    opt.step()
                cursor += len(group)
                self._poll_faults()
            except RankFailureError as exc:
                _, cursor, losses = self.plan.recover(
                    exc, None, cursor, losses
                )
                if self.overlap:
                    # staged prefetches target pre-failure batch indexes;
                    # rebuild and pay a fresh pipeline prologue
                    executors = self._make_executors()
        t_end = max(node.sync() for node in self.nodes)
        self._epoch += 1
        stats = {
            "epoch": self._epoch - 1,
            "mean_loss": float(np.mean(losses)) if losses else float("nan"),
            "iterations": len(batches),
            "epoch_time": t_end - t_start,
        }
        self.history.append(stats)
        if self._needs_checkpoints():
            self._save_checkpoint()
        return stats

    # -- replicated link prediction (sparse embeddings + row-grad sync) -------

    def _train_epoch_linkpred(self, max_iterations: int | None) -> dict:
        """One link-prediction epoch: every machine node processes the
        *same* global pair batch each step (replicated data-parallel), so
        the loss trajectory is bit-identical to the single-node trainer's
        while still exercising the full gradient-averaging machinery."""
        n_iter = self.iterations_per_epoch
        if max_iterations is not None:
            n_iter = min(n_iter, int(max_iterations))
        t_start = max(node.sync() for node in self.nodes)
        losses = [self._step_linkpred() for _ in range(n_iter)]
        t_end = max(node.sync() for node in self.nodes)
        self._epoch += 1
        stats = {
            "epoch": self._epoch - 1,
            "mean_loss": float(np.mean(losses)) if losses else float("nan"),
            "iterations": n_iter,
            "epoch_time": t_end - t_start,
        }
        self.history.append(stats)
        return stats

    def _step_linkpred(self) -> float:
        """One replicated link-prediction step across all machine nodes."""
        src, dst, labels = sample_link_batch(
            self.stores[0].csr, self.num_pairs, self._pair_rng
        )
        producers = []
        collected = []
        machine_losses = []
        for i in range(self.num_machine_nodes):
            node = self.nodes[i]
            res = linkpred_forward(
                node, self.models[i], self.samplers[i], self.embeddings[i],
                src, dst, labels, 0, self._sample_rngs[i],
                self._model_rngs[i], self._score_scale, charge=True,
            )
            machine_losses.append(float(res.loss.data))
            self.models[i].zero_grad()
            res.loss.backward()
            sg = res.subgraph
            train_t = self.models[i].estimate_train_time(sg)
            clock = node.gpu_clock[0]
            clock.advance(
                train_t, phase="train", category="compute",
                args={"edges": sg.total_edges(),
                      "input_nodes": int(sg.input_nodes.shape[0])},
            )
            for r in range(1, node.num_gpus):
                clk = node.gpu_clock[r]
                clk.advance(res.t_sample, phase="sample")
                clk.advance(res.t_gather, phase="gather")
                clk.advance(train_t, phase="train")
            producers.append((clock.now, train_t))
            collected.append(self.sparse_optimizers[i].collect())
        # dense encoder grads: float64-accumulate average (exact for the
        # identical replicated grads), then the hierarchical sync charge
        self.plan.sync_gradients(producers, f64=True)
        for opt in self.optimizers:
            opt.step()
        # sparse row grads: union-average across replicas under the same
        # float64 contract, then every replica applies the identical update
        # (comm-lane push + touched-row state arithmetic on its own node)
        averaged = average_row_grads(collected)
        for sparse_opt in self.sparse_optimizers:
            sparse_opt.apply(averaged, rank=0)
        for node in self.nodes:
            node.sync()
        return float(np.mean(machine_losses))

    def evaluate_linkpred(self, num_pairs: int = 2000) -> float:
        """Held-out link-prediction AUC on machine node 0's replica.

        Draws the same ``linkpred-eval`` stream as the single-node
        trainer's :meth:`~repro.train.trainer.WholeGraphTrainer.\
evaluate_linkpred`, so the two agree bitwise on identical state.
        """
        if self.task != "linkpred":
            raise ValueError("evaluate_linkpred needs task='linkpred'")
        rng = spawn_rng(self.seed, "linkpred-eval")
        src, dst, labels = sample_link_batch(
            self.stores[0].csr, num_pairs, rng
        )
        model = self.models[0]
        model.eval()
        eval_sampler = NeighborSampler(
            self.stores[0], self.samplers[0].fanouts, charge=False
        )
        res = linkpred_forward(
            self.nodes[0], model, eval_sampler, self.embeddings[0],
            src, dst, labels, 0, rng, None, self._score_scale, charge=False,
        )
        model.train()
        return roc_auc(res.scores.data, labels)

    def _make_executors(self) -> list[PipelinedExecutor]:
        return [
            PipelinedExecutor(self.stores[i], self.samplers[i], rank=0)
            for i in range(self.num_machine_nodes)
        ]

    # -- fault polling & recovery -------------------------------------------------

    def _now(self) -> float:
        return max(c.now for node in self.nodes for c in node.gpu_clock)

    def _poll_faults(self) -> None:
        """Detect due permanent failures on any machine node."""
        if self.fault_injector is not None:
            self.fault_injector.poll_rank_failures(self._now())

    def run_report(self, name: str = "cluster",
                   accuracy: float | None = None,
                   extra: dict | None = None):
        """Structured JSON manifest of the multi-node run (machine node 0's
        timeline; per-node epoch times in ``extra``) — see
        :mod:`repro.telemetry.run_report`."""
        from repro.telemetry.run_report import report_from_node

        merged = {
            "node_epoch_times": [
                max(c.now for c in node.gpu_clock) for node in self.nodes
            ],
            "recoveries": list(self.recoveries),
        }
        cfg = {
            "model": self.model_name,
            "batch_size": self.batch_size,
            "num_machine_nodes": self.num_machine_nodes,
            "num_gpus_per_node": self.nodes[0].num_gpus,
            "overlap": self.overlap,
            "bucket_cap_mb": self.grad_sync.bucket_cap_mb,
            "overlap_grad_sync": self.grad_sync.overlap,
            "grad_buckets": self.grad_sync.num_buckets,
            "fault_plan": (
                self.fault_plan.to_config()
                if self.fault_plan is not None and self.fault_plan
                else None
            ),
            "recovery_policy": self.recovery_policy,
        }
        if self.task == "linkpred":
            cfg["task"] = "linkpred"
            cfg["embedding_dim"] = self.embedding_dim
            cfg["num_pairs"] = self.num_pairs
            cfg["sparse_optimizer"] = self.sparse_optim_name
            merged["embedding"] = self.embeddings[0].stats_dict()
            merged["sparse_state_bytes"] = (
                self.sparse_optimizers[0].state_bytes()
            )
        merged.update(extra or {})
        return report_from_node(
            name,
            self.nodes[0],
            kind="train",
            config=cfg,
            seed=self.seed,
            feature_stats=getattr(
                self.stores[0].feature_tensor, "stats", None
            ),
            cache=self.stores[0].feature_cache,
            accuracy=accuracy,
            history=list(self.history),
            extra=merged,
        )

    def assert_in_sync(self, atol: float = 1e-5) -> None:
        """All machine-node replicas hold identical weights (and, for link
        prediction, identical embedding tables)."""
        ref = self.models[0].state_dict()
        for i, m in enumerate(self.models[1:], start=1):
            for a, b in zip(ref, m.state_dict()):
                if not np.allclose(a, b, atol=atol):
                    raise AssertionError(f"machine node {i} diverged")
        if self.embeddings:
            rows = np.arange(self.embeddings[0].num_rows, dtype=np.int64)
            ref_rows = self.embeddings[0].read_rows(rows)
            for i, emb in enumerate(self.embeddings[1:], start=1):
                if not np.allclose(emb.read_rows(rows), ref_rows, atol=atol):
                    raise AssertionError(
                        f"machine node {i} embedding diverged"
                    )

    def evaluate(self, nodes=None, batch_size: int | None = None) -> float:
        """Validation accuracy using machine node 0's replica."""
        from repro.nn.tensor import Tensor  # local: avoid cycle

        store = self.stores[0]
        if nodes is None:
            nodes = store.val_nodes
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        model = self.models[0]
        model.eval()
        sampler = NeighborSampler(store, self.samplers[0].fanouts,
                                  charge=False)
        rng = self.rngs.named("cluster-eval")
        correct = 0
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = sampler.sample(seeds, 0, rng)
            x = Tensor(store.feature_tensor.gather_no_cost(sg.input_nodes))
            logits = model(sg, x, None)
            correct += int(
                (logits.data.argmax(axis=-1) == store.labels[seeds]).sum()
            )
        model.train()
        return correct / max(nodes.shape[0], 1)
