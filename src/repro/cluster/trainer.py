"""Functional multi-node data-parallel training (paper §III-D).

Complements the analytic scaling model in :mod:`repro.cluster.multinode`
with a *measured* multi-machine run: every machine node is a full
:class:`~repro.hardware.machine.SimNode` holding its own replica of the
graph store; iterations are distributed across nodes; each node computes
its local gradients, an inter-node all-reduce averages them over the
InfiniBand NICs, and every replica steps identically — the Apex-DDP flow
the paper describes.

The replicas really stay bit-identical (``assert_in_sync``), and the
per-node clocks really show the near-linear epoch-time reduction of
Fig. 13.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import config
from repro.faults import FaultInjector, FaultPlan, RankFailureError
from repro.graph import MultiGpuGraphStore
from repro.graph.datasets import SyntheticDataset
from repro.hardware import SimNode
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.ops.neighbor_sampler import NeighborSampler
from repro.telemetry import metrics
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.ddp import GradSyncModel
from repro.train.pipeline import (
    PipelinedExecutor,
    run_iteration,
    train_batch,
)
from repro.utils.rng import RngPool, spawn_rng


class ClusterTrainer:
    """Train one model data-parallel over ``num_machine_nodes`` DGX nodes."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        num_machine_nodes: int,
        model_name: str,
        seed: int = 0,
        batch_size: int = config.BATCH_SIZE,
        fanouts=None,
        hidden: int = config.HIDDEN_SIZE,
        num_layers: int = config.NUM_LAYERS,
        lr: float = 3e-3,
        dropout: float = 0.5,
        overlap: bool = False,
        bucket_cap_mb: float | None = None,
        overlap_grad_sync: bool = True,
        fault_plan: FaultPlan | None = None,
        recovery_policy: str = "shrink",
        checkpoint_dir: str | None = None,
    ):
        """``overlap=True`` selects the double-buffered schedule on every
        machine node: each node prefetches its next batch's sample+gather
        while the current batch trains (same bit-identical-math guarantee as
        :class:`~repro.train.trainer.WholeGraphTrainer`).

        ``bucket_cap_mb`` / ``overlap_grad_sync`` configure the bucketed
        hierarchical gradient synchronisation (intra-node NVLink ring plus
        an inter-node IB ring per bucket); both are pure timing knobs.

        ``fault_plan`` injects scheduled faults (:mod:`repro.faults`); a
        rank failure takes its whole machine node (replica) down.
        ``recovery_policy="shrink"`` (default) drops the dead node and
        continues data-parallel over the survivors — replicas are already
        in sync, so no state moves; ``"restart"`` reloads the last
        epoch-boundary checkpoint into every replica and re-runs the epoch
        (the failed node's process is assumed restarted in place)."""
        if num_machine_nodes < 1:
            raise ValueError("need at least one machine node")
        if fanouts is None:
            fanouts = [config.FANOUT] * num_layers
        else:
            fanouts = list(fanouts)
            num_layers = len(fanouts)
        self.batch_size = int(batch_size)
        self.num_machine_nodes = num_machine_nodes
        self.seed = int(seed)
        self.model_name = model_name
        self.history: list[dict] = []

        # one full replica of everything per machine node (§III-D: "each
        # machine node holds one replica of the graph structure and graph
        # features")
        self.nodes = [SimNode(node_id=i) for i in range(num_machine_nodes)]
        self.stores = [
            MultiGpuGraphStore(node, dataset, seed=seed)
            for node in self.nodes
        ]
        self.samplers = [
            NeighborSampler(store, fanouts) for store in self.stores
        ]
        init_rng = spawn_rng(seed, "cluster-init")
        self.models = [
            build_model(
                model_name, self.stores[0].feature_dim,
                self.stores[0].num_classes, init_rng,
                hidden=hidden, num_layers=num_layers, dropout=dropout,
            )
            for _ in range(num_machine_nodes)
        ]
        # start in sync (the DDP weight broadcast)
        state = self.models[0].state_dict()
        for m in self.models[1:]:
            m.load_state_dict(state)
        self.optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        #: bucketed hierarchical gradient-sync pricing over all machine nodes
        self.grad_sync = GradSyncModel(
            self.nodes,
            [p.data.nbytes for p in self.models[0].parameters()],
            bucket_cap_mb=bucket_cap_mb,
            overlap=overlap_grad_sync,
        )
        self.rngs = RngPool(seed, num_machine_nodes)
        self.epoch_rng = self.rngs.named("cluster-epochs")
        self.overlap = bool(overlap)
        #: per-node dropout streams, separate from the sampling streams so
        #: both schedules consume each stream in the same order
        self._model_rngs = [
            self.rngs.named(f"cluster-dropout-{i}")
            for i in range(num_machine_nodes)
        ]
        self._epoch = 0

        # -- fault injection & recovery ------------------------------------
        if recovery_policy not in ("restart", "shrink"):
            raise ValueError("recovery_policy must be 'restart' or 'shrink'")
        self.recovery_policy = recovery_policy
        self.fault_plan = fault_plan
        self.fault_injector = None
        self._checkpoint_dir = checkpoint_dir
        #: recovery actions taken so far (time, nodes, policy, cost)
        self.recoveries: list[dict] = []
        if fault_plan is not None and fault_plan:
            self.fault_injector = FaultInjector(fault_plan).install(
                self.nodes
            )
            if self._needs_checkpoints():
                self._save_checkpoint()

    def _needs_checkpoints(self) -> bool:
        from repro.faults import RankFailure

        return (
            self.fault_injector is not None
            and self.recovery_policy == "restart"
            and bool(self.fault_plan.of_kind(RankFailure))
        )

    def _checkpoint_path(self) -> str:
        if self._checkpoint_dir is None:
            self._checkpoint_dir = tempfile.mkdtemp(prefix="cluster-ckpt-")
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        return os.path.join(self._checkpoint_dir, "latest.npz")

    def _save_checkpoint(self) -> None:
        save_checkpoint(
            self._checkpoint_path(), self.models[0], self.optimizers[0],
            epoch=self._epoch,
        )

    def _grad_nbytes(self) -> int:
        return sum(p.data.nbytes for p in self.models[0].parameters())

    def _average_gradients(self) -> None:
        """Functional half of the sync: average gradients across nodes."""
        if self.num_machine_nodes > 1:
            params = [m.parameters() for m in self.models]
            for group in zip(*params):
                grads = [
                    p.grad if p.grad is not None else np.zeros_like(p.data)
                    for p in group
                ]
                mean = np.mean(grads, axis=0)
                for p in group:
                    p.grad = mean.copy()

    def _overlapped_node_step(
        self,
        executor: PipelinedExecutor,
        i: int,
        batch: np.ndarray,
        batches: list[np.ndarray],
        nxt: int,
    ) -> tuple[float, float]:
        """Node ``i`` trains ``batch`` while prefetching its next batch.

        ``nxt`` is the global index of the batch node ``i`` will process in
        the next round-robin step; its sample+gather runs concurrently with
        this step's training compute, so only the exposed tail
        ``max(0, train - prefetch)`` advances the node's clocks.  Returns
        ``(loss, train compute seconds)`` — the gradient sync is charged
        per group by the caller.
        """
        sample_rng = self.rngs.rank(i)
        if not executor.has_staged:
            # prologue: the epoch's first prefetch is fully exposed
            executor.prefetch(batch, sample_rng, mirror_ranks=True)
        sg, x_np = executor.take()
        prefetch_t = 0.0
        if nxt < len(batches):
            prefetch_t = executor.prefetch(
                batches[nxt], sample_rng, mirror_ranks=True
            )
        loss, _ = train_batch(
            self.models[i], sg, x_np, self.stores[i].labels[batch],
            rng=self._model_rngs[i], optimizer=None, compute_grads=True,
        )
        train_t = self.models[i].estimate_train_time(sg)
        executor.charge_overlapped_train(train_t, prefetch_t)
        return loss, train_t

    def train_epoch(self, max_iterations: int | None = None) -> dict:
        """One epoch; global batches are distributed round-robin over the
        machine nodes and processed concurrently (per-node clocks advance
        in parallel)."""
        store0 = self.stores[0]
        order = self.epoch_rng.permutation(store0.train_nodes)
        nb = max(1, order.shape[0] // self.batch_size)
        batches = [
            order[i * self.batch_size : (i + 1) * self.batch_size]
            for i in range(nb)
        ]
        if max_iterations is not None:
            batches = batches[: max_iterations * self.num_machine_nodes]

        t_start = max(node.sync() for node in self.nodes)
        losses: list[float] = []
        executors = self._make_executors() if self.overlap else None
        # round-robin: one step processes batches[cursor : cursor+k]
        # concurrently; the cursor loop (instead of a fixed-stride range)
        # lets a mid-epoch recovery change k or replay the epoch
        cursor = 0
        while cursor < len(batches):
            k = self.num_machine_nodes
            group = batches[cursor : cursor + k]
            try:
                producers = []
                for i, batch in enumerate(group):
                    if self.overlap:
                        loss, train_t = self._overlapped_node_step(
                            executors[i], i, batch, batches, cursor + k + i
                        )
                        losses.append(loss)
                        producers.append(
                            (self.nodes[i].gpu_clock[0].now, train_t)
                        )
                        continue
                    res = run_iteration(
                        self.stores[i], self.samplers[i], self.models[i],
                        batch, 0, self.rngs.rank(i),
                        optimizer=None, compute_grads=True,
                        charge_train=True,
                        model_rng=self._model_rngs[i],
                    )
                    losses.append(res.loss)
                    # symmetric intra-node ranks
                    node = self.nodes[i]
                    for r in range(1, node.num_gpus):
                        clk = node.gpu_clock[r]
                        clk.advance(res.times.sample, phase="sample")
                        clk.advance(res.times.gather, phase="gather")
                        clk.advance(res.times.train, phase="train")
                    producers.append(
                        (node.gpu_clock[0].now, res.times.train)
                    )
                # global bucketed sync: averages the gradients
                # functionally, then charges the hierarchical (NVLink +
                # IB) schedule — nodes that got no batch this step stall
                # at the collective barrier
                self._average_gradients()
                self.grad_sync.charge(producers, phase="allreduce")
                for opt in self.optimizers:
                    opt.step()
                cursor += len(group)
                self._poll_faults()
            except RankFailureError as exc:
                cursor, losses = self._recover(exc, cursor, losses)
                if self.overlap:
                    # staged prefetches target pre-failure batch indexes;
                    # rebuild and pay a fresh pipeline prologue
                    executors = self._make_executors()
        t_end = max(node.sync() for node in self.nodes)
        self._epoch += 1
        stats = {
            "epoch": self._epoch - 1,
            "mean_loss": float(np.mean(losses)) if losses else float("nan"),
            "iterations": len(batches),
            "epoch_time": t_end - t_start,
        }
        self.history.append(stats)
        if self._needs_checkpoints():
            self._save_checkpoint()
        return stats

    def _make_executors(self) -> list[PipelinedExecutor]:
        return [
            PipelinedExecutor(self.stores[i], self.samplers[i], rank=0)
            for i in range(self.num_machine_nodes)
        ]

    # -- fault polling & recovery -------------------------------------------------

    def _now(self) -> float:
        return max(c.now for node in self.nodes for c in node.gpu_clock)

    def _poll_faults(self) -> None:
        """Detect due permanent failures on any machine node."""
        if self.fault_injector is not None:
            self.fault_injector.poll_rank_failures(self._now())

    def _recover(
        self, exc: RankFailureError, cursor: int, losses: list[float]
    ) -> tuple[int, list[float]]:
        """Run the configured recovery policy after a machine-node loss."""
        t_fail = self._now()
        if self.recovery_policy == "shrink":
            self._recover_shrink(exc)
        else:
            self._recover_restart()
            cursor = 0
            losses.clear()
        t_after = self._now()
        record = {
            "time": t_fail,
            "nodes": sorted({n for n, _ in exc.ranks}),
            "policy": self.recovery_policy,
            "recovery_seconds": t_after - t_fail,
            "num_machine_nodes": self.num_machine_nodes,
        }
        self.recoveries.append(record)
        metrics.get_registry().counter(
            "recovery_seconds", policy=self.recovery_policy
        ).inc(t_after - t_fail)
        return cursor, losses

    def _charge_recovery(self, node_indices, extra_dt: float = 0.0) -> None:
        t_fail = self._now()
        dt = (
            config.FAULT_DETECT_SECONDS
            + config.COMM_REINIT_SECONDS
            + extra_dt
        )
        for i in node_indices:
            node = self.nodes[i]
            for clock in node.gpu_clock:
                clock.wait_until(
                    t_fail, phase="recovery_wait", category="fault"
                )
                clock.advance(
                    dt, phase="recovery", busy=False, category="fault",
                    args={"policy": self.recovery_policy},
                )
            node.sync(phase="recovery_wait")

    def _recover_shrink(self, exc: RankFailureError) -> None:
        """Drop the failed machine node(s); survivors continue in sync.

        Replicas are identical at every optimizer step, so no state moves —
        the survivors only pay failure detection and communicator re-init,
        and the gradient sync re-buckets over the remaining nodes.
        """
        dead = {n for n, _ in exc.ranks}
        keep = [
            i for i, node in enumerate(self.nodes)
            if node.node_id not in dead
        ]
        if not keep:
            raise exc  # no surviving replica to continue with
        self._charge_recovery(keep)
        for name in (
            "nodes", "stores", "samplers", "models", "optimizers",
            "_model_rngs",
        ):
            setattr(
                self, name, [getattr(self, name)[i] for i in keep]
            )
        self.num_machine_nodes = len(keep)
        self.grad_sync = GradSyncModel(
            self.nodes,
            [p.data.nbytes for p in self.models[0].parameters()],
            bucket_cap_mb=self.grad_sync.bucket_cap_mb,
            overlap=self.grad_sync.overlap,
        )
        if self.fault_injector is not None:
            self.fault_injector.install(self.nodes)

    def _recover_restart(self) -> None:
        """Reload the last epoch-boundary checkpoint into every replica.

        The failed node's process is assumed restarted on the same
        hardware: every node pays detection + re-init + the PCIe reload of
        the checkpointed model+optimizer state, then the epoch re-runs.
        """
        from repro.hardware import costmodel

        state_bytes = 3 * sum(
            p.data.nbytes for p in self.models[0].parameters()
        )
        self._charge_recovery(
            range(self.num_machine_nodes),
            extra_dt=costmodel.pcie_host_to_gpu_time(
                state_bytes, shared=False
            ),
        )
        path = self._checkpoint_path()
        if os.path.exists(path):
            for model, opt in zip(self.models, self.optimizers):
                load_checkpoint(path, model, opt)

    def run_report(self, name: str = "cluster",
                   accuracy: float | None = None,
                   extra: dict | None = None):
        """Structured JSON manifest of the multi-node run (machine node 0's
        timeline; per-node epoch times in ``extra``) — see
        :mod:`repro.telemetry.run_report`."""
        from repro.telemetry.run_report import report_from_node

        merged = {
            "node_epoch_times": [
                max(c.now for c in node.gpu_clock) for node in self.nodes
            ],
            "recoveries": list(self.recoveries),
        }
        merged.update(extra or {})
        plan = self.fault_plan
        return report_from_node(
            name,
            self.nodes[0],
            kind="train",
            config={
                "model": self.model_name,
                "batch_size": self.batch_size,
                "num_machine_nodes": self.num_machine_nodes,
                "num_gpus_per_node": self.nodes[0].num_gpus,
                "overlap": self.overlap,
                "bucket_cap_mb": self.grad_sync.bucket_cap_mb,
                "overlap_grad_sync": self.grad_sync.overlap,
                "grad_buckets": self.grad_sync.num_buckets,
                "fault_plan": (
                    plan.to_config() if plan is not None and plan else None
                ),
                "recovery_policy": self.recovery_policy,
            },
            seed=self.seed,
            feature_stats=getattr(
                self.stores[0].feature_tensor, "stats", None
            ),
            cache=self.stores[0].feature_cache,
            accuracy=accuracy,
            history=list(self.history),
            extra=merged,
        )

    def assert_in_sync(self, atol: float = 1e-5) -> None:
        """All machine-node replicas hold identical weights."""
        ref = self.models[0].state_dict()
        for i, m in enumerate(self.models[1:], start=1):
            for a, b in zip(ref, m.state_dict()):
                if not np.allclose(a, b, atol=atol):
                    raise AssertionError(f"machine node {i} diverged")

    def evaluate(self, nodes=None, batch_size: int | None = None) -> float:
        """Validation accuracy using machine node 0's replica."""
        from repro.nn import functional as F  # local: avoid cycle
        from repro.nn.tensor import Tensor

        store = self.stores[0]
        if nodes is None:
            nodes = store.val_nodes
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        model = self.models[0]
        model.eval()
        sampler = NeighborSampler(store, self.samplers[0].fanouts,
                                  charge=False)
        rng = self.rngs.named("cluster-eval")
        correct = 0
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = sampler.sample(seeds, 0, rng)
            x = Tensor(store.feature_tensor.gather_no_cost(sg.input_nodes))
            logits = model(sg, x, None)
            correct += int(
                (logits.data.argmax(axis=-1) == store.labels[seeds]).sum()
            )
        model.train()
        return correct / max(nodes.shape[0], 1)
