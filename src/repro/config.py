"""Global calibration constants for the WholeGraph reproduction.

Every number that turns *work* (bytes moved, edges sampled, FLOPs) into
*simulated time* lives here, with provenance.  Values marked ``[paper]`` are
taken directly from the WholeGraph paper (SC'22); values marked ``[fit]`` are
fitted so that the reproduced tables/figures land in the paper's reported
ranges; values marked ``[public]`` are public hardware specifications.

Units: bytes, seconds, bytes/second, FLOP/second unless stated otherwise.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

KB = 1024
MB = 1024**2
GB = 1024**3

US = 1e-6
MS = 1e-3

# ---------------------------------------------------------------------------
# DGX-A100 interconnect  [paper §II-B, §III-B, Fig. 6]
# ---------------------------------------------------------------------------

#: NVLink unidirectional bandwidth per GPU on DGX-A100.  [paper: 300 GB/s]
NVLINK_UNIDIR_BW = 300 * GB

#: Number of GPUs in one DGX-A100 node.  [paper]
GPUS_PER_NODE = 8

#: Maximum AlgoBW for an 8-GPU all-to-all gather: 300 / (7/8).  [paper §IV-C1]
NVLINK_MAX_ALGO_BW = NVLINK_UNIDIR_BW * GPUS_PER_NODE / (GPUS_PER_NODE - 1)

#: PCIe 4.0 x16 unidirectional bandwidth.  [paper: 32 GB/s]
PCIE_GEN4_X16_BW = 32 * GB

#: GPUs sharing one PCIe host uplink on DGX-A100.  [paper: 2]
GPUS_PER_PCIE_SWITCH = 2

#: Effective host<->GPU bandwidth per GPU when all GPUs stream concurrently.
#: [paper: 16 GB/s = 32/2]
PCIE_BW_PER_GPU_SHARED = PCIE_GEN4_X16_BW // GPUS_PER_PCIE_SWITCH

#: GPU device memory capacity (A100-40GB as implied by Table IV totals).
GPU_MEMORY_CAPACITY = 40 * GB

#: PCIe one-way latency for a DMA transfer setup.  [public, ~]
PCIE_LATENCY = 10 * US

# ---------------------------------------------------------------------------
# Remote-access latency  [paper Table I]
# ---------------------------------------------------------------------------
# The paper's pointer-chase experiment: P2P latency grows mildly with the
# total allocation footprint (TLB/page-table reach), UM latency is dominated
# by the page-fault + migration round trip.

#: GPUDirect P2P load latency at an 8 GB footprint.  [paper: 1.35 us]
P2P_BASE_LATENCY = 1.35 * US

#: P2P latency growth per doubling of footprint beyond 8 GB.
#: Fitted to Table I: 1.35, 1.37, 1.43, 1.51, 1.56 us for 8..128 GB.  [fit]
P2P_LATENCY_PER_DOUBLING = 0.053 * US

#: Unified-memory page-fault service latency at an 8 GB footprint.
#: [paper: 20.8 us]
UM_BASE_LATENCY = 20.8 * US

#: UM latency growth per doubling of footprint (page-table walk depth &
#: migration queue pressure).  Fitted to Table I: 20.8 -> 35.8 us.  [fit]
UM_LATENCY_PER_DOUBLING = 3.75 * US

#: Footprint at which the latency tables are anchored.
LATENCY_ANCHOR_BYTES = 8 * GB

#: Local (same-GPU) HBM random-access latency.  [public, ~]
LOCAL_HBM_LATENCY = 0.45 * US

#: UM page size used by the migration model.  [public: 64 KB driver pages]
UM_PAGE_BYTES = 64 * KB

# ---------------------------------------------------------------------------
# Random-read bandwidth curve  [paper Fig. 8]
# ---------------------------------------------------------------------------
# BusBW is "almost proportional to the random read segment size" below 64 B,
# hits ~181 GB/s at 64 B, and saturates around 230 GB/s for segments >=128 B.
# Model: BusBW(seg) = min(seg * RANDOM_READ_BW_SLOPE, RANDOM_READ_BW_SAT).

#: GB/s of BusBW per byte of segment size in the linear regime.
#: 181 GB/s / 64 B ~= 2.83.  [fit to paper Fig. 8]
RANDOM_READ_BW_SLOPE = 181 * GB / 64

#: Saturated random-read BusBW over NVLink.  [paper Fig. 8: ~230 GB/s]
RANDOM_READ_BW_SAT = 230 * GB

#: Fraction of remote traffic in a uniform gather over N GPUs: (N-1)/N.
#: Used to convert AlgoBW <-> BusBW.  [paper §IV-C1]

#: Saturated random-read bandwidth for *local* HBM (A100 HBM2e ~1.5 TB/s,
#: random gather efficiency ~0.6).  [public, fit]
HBM_RANDOM_READ_BW_SAT = 900 * GB

# ---------------------------------------------------------------------------
# Kernel cost model  [fit]
# ---------------------------------------------------------------------------

#: Fixed launch overhead per CUDA kernel.  [public: ~3-5 us]
KERNEL_LAUNCH_OVERHEAD = 4 * US

#: Effective dense FP32 throughput of one A100 for GNN-sized GEMMs.
#: A100 peak FP32 is 19.5 TFLOP/s; mini-batch GNN GEMMs are small/skinny, so
#: we use a 60% efficiency factor.  [public, fit]
GPU_DENSE_FLOPS = 11.7e12

#: Effective throughput for sparse/aggregation kernels (g-SpMM, g-SDDMM):
#: bandwidth-bound, expressed as bytes touched per second.  [fit]
GPU_SPARSE_BYTES_PER_S = 700 * GB

#: GPU sampling throughput: sampled edges per second for the fused
#: path-doubling sampler (thread-block per target node).  [fit so that
#: WholeGraph sampling is a minor slice of Fig. 9 epochs]
GPU_SAMPLE_EDGES_PER_S = 2.0e9

#: GPU hash-table insert/probe throughput (AppendUnique).  [fit; Warpcore
#: reports >1e9 inserts/s on V100-class parts]
GPU_HASH_OPS_PER_S = 1.5e9

#: Elementwise op throughput in bytes/s (activation, optimizer steps).  [fit]
GPU_ELEMENTWISE_BYTES_PER_S = 1200 * GB

#: Effective throughput of a sort-based unique (64-bit radix sort + compact
#: + ID map-back), in keys/s.  Slower than the hash-table path — the reason
#: the paper adopts hashing (§III-C2).  [fit]
GPU_SORT_UNIQUE_KEYS_PER_S = 0.35e9

#: Cost multiplier of an atomic add over a plain store in the g-SpMM
#: backward scatter (contention + read-modify-write).  [fit]
ATOMIC_ADD_COST_FACTOR = 2.5

# ---------------------------------------------------------------------------
# Baseline (DGL-like / PyG-like) CPU pipeline  [fit to Table V & Fig. 9]
# ---------------------------------------------------------------------------
# The paper's baselines sample and gather on the host CPU and ship mini-batch
# tensors over PCIe.  Epoch-time ratios in Table V put DGL ~8-57x and PyG
# ~14-243x slower than WholeGraph, with sampling+gather dominating (Fig. 9).

#: DGL-like CPU sampling throughput (sampled edges / second, all workers).
#: DGL 0.7 uses OpenMP C++ samplers.  [fit]
CPU_SAMPLE_EDGES_PER_S_DGL = 2.2e7

#: PyG-like CPU sampling throughput.  PyG 2.0's sampler does more Python-side
#: work per batch, an order of magnitude slower.  [fit]
CPU_SAMPLE_EDGES_PER_S_PYG = 2.0e6

#: CPU feature-gather throughput (bytes/s) out of host DRAM, DGL-like.  [fit]
CPU_GATHER_BYTES_PER_S_DGL = 6.0 * GB

#: CPU feature-gather throughput, PyG-like (index_select on CPU tensors).
CPU_GATHER_BYTES_PER_S_PYG = 2.5 * GB

#: Per-iteration fixed host overhead (dataloader wakeup, Python glue). [fit]
HOST_ITER_OVERHEAD_DGL = 2.0 * MS
HOST_ITER_OVERHEAD_PYG = 12.0 * MS

#: Third-party layer compute multipliers vs WholeGraph's fused layers.
#: [paper §IV-C5: WholeGraph layers up to 1.31x vs DGL layers and 2.43x vs
#: PyG layers on whole-epoch time; since compute dominates those epochs, the
#: layer-time multipliers are slightly larger.]
LAYER_COST_FACTOR_DGL = 1.45
LAYER_COST_FACTOR_PYG = 3.1
LAYER_COST_FACTOR_WHOLEGRAPH = 1.0

# ---------------------------------------------------------------------------
# Multi-node  [paper §III-D, §IV-D]
# ---------------------------------------------------------------------------

#: Inter-node bandwidth: 8x ConnectX-6 HDR IB per DGX = 8x25 GB/s.  [public]
INTER_NODE_BW = 200 * GB

#: Inter-node message latency.  [public: ~2 us + software]
INTER_NODE_LATENCY = 5 * US

#: Ring-allreduce efficiency on gradients.  [fit]
ALLREDUCE_EFFICIENCY = 0.85

# ---------------------------------------------------------------------------
# Gradient-synchronisation (Apex-DDP style) bucketing & overlap  [§III-D]
# ---------------------------------------------------------------------------
# The paper trains data-parallel with Apex DDP, which buckets gradients and
# overlaps each bucket's ring all-reduce with the still-running backward
# pass.  The chunked-ring model below prices individual buckets: tiny
# buckets are latency/launch-bound (2(N-1) hops plus a collective launch
# amortise nothing), large buckets ride the bandwidth term.

#: Default gradient bucket capacity.  PyTorch/Apex DDP ship a 25 MB cap
#: sized for ~100 MB vision models; the paper's 3-layer GNNs carry only
#: ~1-2 MB of gradients, so a 25 MB cap degenerates to a single bucket and
#: hides nothing.  We keep DDP's ~8-buckets-per-model ratio by scaling the
#: cap to the model class.  [fit]
DDP_BUCKET_CAP_MB = 0.25

#: Fixed software cost of launching one NCCL collective (kernel launch +
#: proxy wakeup), paid once per bucket.  [public: ~5-10 us, fit]
NCCL_COLL_LAUNCH_OVERHEAD = 6 * US

#: Pipeline chunk granularity of the ring all-reduce: each of the 2(N-1)
#: ring steps moves its shard in chunks of this size.  [public: NCCL
#: chunking is O(128 KB-1 MB); fit]
RING_CHUNK_BYTES = 512 * KB

#: Per-chunk protocol overhead inside a ring step (flag check + copy
#: engine turnaround).  [fit]
RING_CHUNK_OVERHEAD = 0.4 * US

#: Below this payload NCCL switches to its low-latency (LL) protocol:
#: flag-embedded 8-byte stores skip the copy-engine round trip, trading
#: about half the bandwidth for a much smaller per-hop latency.  [public:
#: NCCL_PROTO=LL for small messages; threshold fit]
NCCL_LL_THRESHOLD = 256 * KB

#: Per-hop latency multiplier under the LL protocol.  [fit to the ~3x
#: small-message latency advantage NCCL reports for LL vs Simple]
NCCL_LL_LATENCY_FACTOR = 0.35

#: Bandwidth multiplier under the LL protocol (4-byte data + 4-byte flag
#: per 8-byte store => ~half the line rate).  [public]
NCCL_LL_BW_FACTOR = 0.5

#: Fraction of a training step spent in the backward pass — the window in
#: which gradients become ready and bucket all-reduces can hide.  With the
#: 1:2 forward:backward FLOP rule and a small optimizer tail, backward is
#: ~60% of fwd+bwd+update.  [fit]
TRAIN_BACKWARD_FRACTION = 0.6

#: Fraction of NVLink line rate NCCL sustains on alltoall(v) traffic
#: (protocol overhead, chunking).  [public: NCCL achieves ~80% on DGX]
NCCL_BW_EFFICIENCY = 0.8

# ---------------------------------------------------------------------------
# DSM setup cost  [paper §III-B: "tens to one or two hundred ms"]
# ---------------------------------------------------------------------------

#: Fixed cost of cudaMalloc + IPC handle exchange per shared allocation.
DSM_SETUP_BASE = 8 * MS

#: Additional setup cost per GiB of allocation (page-table population).
DSM_SETUP_PER_GB = 1.5 * MS

# ---------------------------------------------------------------------------
# Out-of-core host/disk storage tier  [PyTorch-Direct; public NVMe specs]
# ---------------------------------------------------------------------------
# Graphs whose features exceed aggregate HBM spill into a host-pinned tier
# (GPU-centric zero-copy reads over PCIe, as in PyTorch-Direct) and a disk
# tier (NVMe staging into pinned host buffers).  The zero-copy regime keeps
# the PCIe random-read curve shape of Fig. 8: bandwidth proportional to the
# access segment below a knee, saturating at the shared per-GPU line rate.

#: Segment size at which zero-copy PCIe random reads saturate.  PyTorch-
#: Direct reports near-peak PCIe efficiency once accesses coalesce to
#: cache-line-multiple granularity; below the knee BusBW is proportional
#: to the segment.  [fit, mirrors the Fig. 8 NVLink knee at 128 B]
ZERO_COPY_SEG_KNEE_BYTES = 128

#: Bandwidth fraction pageable (non-pinned) host memory achieves relative
#: to pinned: every transfer bounces through a driver staging buffer.
#: [public: cudaMemcpy pageable vs pinned is ~0.4-0.6x; fit]
HOST_PAGEABLE_BW_FACTOR = 0.45

#: Sustained sequential read bandwidth of the node-local NVMe scratch
#: (DGX A100 ships 2x1.92 TB U.2 NVMe, RAID-0 ~6-7 GB/s).  [public]
DISK_READ_BW = 6 * GB

#: Per-request disk read latency (NVMe queue + FS overhead).  [public, ~]
DISK_READ_LATENCY = 80 * US

#: Staging granularity of disk->host reads: cold rows are fetched in
#: aligned blocks of this size into the pinned staging area.  [fit]
DISK_BLOCK_BYTES = 512 * KB

#: Default placement policy for graph storage: "device" (all-HBM, the
#: paper's regime), "host_pinned" (features in pinned host memory), or
#: "tiered" (hot rows HBM-cached, warm rows pinned host, cold rows disk).
TIER = "device"

#: Fraction of out-of-HBM feature rows kept in pinned host memory under
#: ``tier="tiered"``; the remaining cold tail lives on disk.  [fit]
HOST_PINNED_FRACTION = 0.5

#: Micro-batches the streaming loader prefetches ahead of compute.  [fit:
#: 2 deep hides the host tier on the benchmark config without hoarding
#: staging buffers]
PREFETCH_DEPTH = 2

# ---------------------------------------------------------------------------
# Fault injection & recovery  [fit]
# ---------------------------------------------------------------------------
# Used by :mod:`repro.faults` and the trainer recovery policies.  All values
# are simulated-time costs; none affect functional results.

#: Requester-side timeout before re-issuing a gather whose reply was lost.
#: [fit: a few RTTs over NVLink/NVSwitch at gather-message granularity]
GATHER_RETRY_TIMEOUT = 50 * US

#: Multiplicative backoff applied to the timeout on every further retry.
GATHER_RETRY_BACKOFF = 2.0

#: Maximum retries before a gather is treated as a permanent failure.
GATHER_RETRY_MAX = 5

#: Watchdog delay between a rank dying and the survivors detecting it
#: (missed NCCL heartbeats).  [fit]
FAULT_DETECT_SECONDS = 1 * MS

#: Cost of tearing down and re-initialising the communicator / NCCL ranks
#: after a membership change (restart or shrink).  [fit: NCCL comm init is
#: O(ms) per rank]
COMM_REINIT_SECONDS = 2 * MS

# ---------------------------------------------------------------------------
# Training hyper-parameters used throughout the evaluation  [paper §IV]
# ---------------------------------------------------------------------------

BATCH_SIZE = 512
NUM_LAYERS = 3
HIDDEN_SIZE = 256
FANOUT = 30
GAT_NUM_HEADS = 4

# ---------------------------------------------------------------------------
# Parallelism plans (repro.train.plans)  [GNNPipe / CAGNET reproductions]
# ---------------------------------------------------------------------------

#: Default micro-batches per global batch in the pipeline-parallel plan's
#: GPipe-style fill-drain schedule; the idle ("bubble") fraction of an
#: S-stage pipeline is (S - 1) / (M + S - 1).  [public: GNNPipe §4]
PIPELINE_MICRO_BATCHES = 4

#: Default replication factor c of the CAGNET 1.5D full-graph plan.  The
#: p ranks form a (p/c) x c grid; broadcast volume shrinks by c at the cost
#: of a c-way partial-output reduce and c-fold activation memory.  c=1
#: degenerates to the 1D block-row algorithm.  [public: CAGNET §4]
CAGNET_REPLICATION = 1
