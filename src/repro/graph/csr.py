"""Compressed-sparse-row graph structure.

The canonical in-memory representation used throughout the reproduction:
``indptr`` (length ``num_nodes + 1``) and ``indices`` (length ``num_edges``),
with optional per-edge weights.  WholeGraph stores the sub-graph adjacency in
CSR as well (paper §III-C2), so the same class describes both full graphs and
sampled mini-batch sub-graphs.
"""

from __future__ import annotations

import numpy as np


class CSRGraph:
    """An adjacency structure in CSR form."""

    def __init__(self, indptr, indices, edge_weights=None, num_nodes=None):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if num_nodes is None:
            num_nodes = self.indptr.shape[0] - 1
        self.num_nodes = int(num_nodes)
        self.edge_weights = (
            None
            if edge_weights is None
            else np.ascontiguousarray(edge_weights, dtype=np.float32)
        )
        self.validate()

    # -- invariants -------------------------------------------------------------

    def validate(self) -> None:
        """Check CSR structural invariants; raises ``ValueError`` on breakage."""
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr.shape[0] != self.num_nodes + 1:
            raise ValueError(
                f"indptr length {self.indptr.shape[0]} != num_nodes+1 "
                f"({self.num_nodes + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_nodes
        ):
            raise ValueError("edge endpoint out of range")
        if self.edge_weights is not None and (
            self.edge_weights.shape[0] != self.indices.shape[0]
        ):
            raise ValueError("edge_weights length must equal num_edges")

    # -- basic queries ------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.indptr)

    def degree(self, nodes) -> np.ndarray:
        """Out-degree of a set of nodes."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.indptr[nodes + 1] - self.indptr[nodes]

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor list of one node (a view into ``indices``)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def edge_slices(self, nodes) -> tuple[np.ndarray, np.ndarray]:
        """``(start, end)`` index ranges into ``indices`` for each node."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.indptr[nodes], self.indptr[nodes + 1]

    # -- transforms ---------------------------------------------------------------

    def transpose(self) -> "CSRGraph":
        """Reverse all edges (CSC of the original).

        Used by g-SpMM backward conceptually; WholeGraph avoids an explicit
        transpose with atomics, but tests compare against this reference.
        """
        dst = self.indices
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees())
        order = np.argsort(dst, kind="stable")
        new_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.add.at(new_indptr, dst + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        w = None
        if self.edge_weights is not None:
            w = self.edge_weights[order]
        return CSRGraph(new_indptr, src[order], edge_weights=w,
                        num_nodes=self.num_nodes)

    def subgraph_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Expand to COO ``(src, dst)`` edge arrays."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees())
        return src, self.indices.copy()

    def permute_nodes(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel nodes: new id of old node ``i`` is ``perm[i]``.

        Row order follows the new labelling; neighbor ids are remapped.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape[0] != self.num_nodes:
            raise ValueError("perm must have one entry per node")
        src, dst = self.subgraph_edges()
        new_src = perm[src]
        new_dst = perm[dst]
        order = np.argsort(new_src, kind="stable")
        new_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.add.at(new_indptr, new_src + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        new_weights = (
            None if self.edge_weights is None else self.edge_weights[order]
        )
        return CSRGraph(new_indptr, new_dst[order], edge_weights=new_weights,
                        num_nodes=self.num_nodes)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
        )
