"""Edge-list to CSR construction.

The paper treats its datasets as undirected (e.g. ogbn-papers100M's 1.6 B
edges become 3.2 B stored directed edges, §IV-B), so the builder supports
symmetrisation, self-loop removal and duplicate-edge removal — all as
vectorised sort/unique passes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def from_edge_list(
    src,
    dst,
    num_nodes: int,
    undirected: bool = True,
    dedup: bool = True,
    remove_self_loops: bool = True,
    edge_weights=None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from COO ``(src, dst)`` arrays.

    Parameters
    ----------
    undirected:
        Add the reverse of every edge (doubles the stored edge count, as in
        the paper's memory accounting).
    dedup:
        Drop duplicate ``(src, dst)`` pairs after symmetrisation.
    remove_self_loops:
        Drop ``u -> u`` edges.
    edge_weights:
        Optional per-input-edge weights; mirrored for reverse edges, and
        incompatible with ``dedup`` (which would have to merge them).
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same length")
    if src.size and (
        min(src.min(), dst.min()) < 0
        or max(src.max(), dst.max()) >= num_nodes
    ):
        raise ValueError("edge endpoint out of range")
    w = None
    if edge_weights is not None:
        if dedup:
            raise ValueError("dedup would silently merge edge weights")
        w = np.asarray(edge_weights, dtype=np.float32).ravel()
        if w.shape != src.shape:
            raise ValueError("edge_weights length must match edges")

    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if w is not None:
            w = np.concatenate([w, w])

    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if dedup and src.size:
        # sort by (src, dst) and drop exact repeats
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        keep = np.empty(src.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:]
        )
        src, dst = src[keep], dst[keep]
    else:
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr, dst, edge_weights=w, num_nodes=num_nodes)


def _place_chunk(
    indices: np.ndarray,
    cursor: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> None:
    """Scatter one chunk's edges into ``indices`` at each source's cursor.

    Stable-sorts the chunk by source so duplicate sources get consecutive
    slots, then advances the per-node cursors — fully vectorised, no
    per-edge Python loop.
    """
    if src.size == 0:
        return
    order = np.argsort(src, kind="stable")
    s, d = src[order], dst[order]
    uniq, start, counts = np.unique(
        s, return_index=True, return_counts=True
    )
    within = np.arange(s.size, dtype=np.int64) - np.repeat(start, counts)
    indices[cursor[s] + within] = d
    cursor[uniq] += counts


def csr_from_chunks(
    chunks,
    num_nodes: int,
    undirected: bool = True,
    remove_self_loops: bool = True,
) -> CSRGraph:
    """Two-pass CSR assembly from a stream of COO edge chunks.

    ``chunks`` is a zero-argument callable returning a fresh iterable of
    ``(src, dst)`` int64 array pairs (e.g. a call to
    :func:`repro.graph.generators.rmat_edges_chunked`); it is consumed
    twice — pass 1 counts per-node degrees into ``indptr``, pass 2 scatters
    neighbors into a preallocated ``indices``.  Peak memory beyond the CSR
    arrays themselves is one chunk plus its sort temporaries, so
    papers100M-scale structures (> 2 B stored edges) assemble without the
    concatenate-and-lexsort blowup of :func:`from_edge_list`.  All offsets
    are int64 throughout — edge counts past 2^31 never overflow.

    Duplicate edges are kept (the chunked path cannot dedup globally
    without a full sort; the paper's §IV-B accounting keeps all 3.2 B
    stored directed edges too).
    """
    if not callable(chunks):
        raise TypeError(
            "chunks must be a zero-argument callable returning a fresh "
            "iterable — the stream is consumed twice"
        )

    def _each(pair):
        src = np.asarray(pair[0], dtype=np.int64).ravel()
        dst = np.asarray(pair[1], dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst chunks must have the same length")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= num_nodes
        ):
            raise ValueError("edge endpoint out of range")
        if remove_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        return src, dst

    # pass 1: per-node out-degrees
    degrees = np.zeros(num_nodes, dtype=np.int64)
    for pair in chunks():
        src, dst = _each(pair)
        degrees += np.bincount(src, minlength=num_nodes)
        if undirected:
            degrees += np.bincount(dst, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])

    # pass 2: scatter each chunk behind the running per-node cursor
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    cursor = indptr[:-1].copy()
    for pair in chunks():
        src, dst = _each(pair)
        _place_chunk(indices, cursor, src, dst)
        if undirected:
            _place_chunk(indices, cursor, dst, src)
    return CSRGraph(indptr, indices, num_nodes=num_nodes)
