"""Edge-list to CSR construction.

The paper treats its datasets as undirected (e.g. ogbn-papers100M's 1.6 B
edges become 3.2 B stored directed edges, §IV-B), so the builder supports
symmetrisation, self-loop removal and duplicate-edge removal — all as
vectorised sort/unique passes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def from_edge_list(
    src,
    dst,
    num_nodes: int,
    undirected: bool = True,
    dedup: bool = True,
    remove_self_loops: bool = True,
    edge_weights=None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from COO ``(src, dst)`` arrays.

    Parameters
    ----------
    undirected:
        Add the reverse of every edge (doubles the stored edge count, as in
        the paper's memory accounting).
    dedup:
        Drop duplicate ``(src, dst)`` pairs after symmetrisation.
    remove_self_loops:
        Drop ``u -> u`` edges.
    edge_weights:
        Optional per-input-edge weights; mirrored for reverse edges, and
        incompatible with ``dedup`` (which would have to merge them).
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same length")
    if src.size and (
        min(src.min(), dst.min()) < 0
        or max(src.max(), dst.max()) >= num_nodes
    ):
        raise ValueError("edge endpoint out of range")
    w = None
    if edge_weights is not None:
        if dedup:
            raise ValueError("dedup would silently merge edge weights")
        w = np.asarray(edge_weights, dtype=np.float32).ravel()
        if w.shape != src.shape:
            raise ValueError("edge_weights length must match edges")

    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if w is not None:
            w = np.concatenate([w, w])

    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if dedup and src.size:
        # sort by (src, dst) and drop exact repeats
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        keep = np.empty(src.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:]
        )
        src, dst = src[keep], dst[keep]
    else:
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr, dst, edge_weights=w, num_nodes=num_nodes)
