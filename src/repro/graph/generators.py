"""Synthetic graph generators.

Stand-ins for the paper's datasets (OGB and KONECT graphs are unavailable
offline).  Two families:

- :func:`rmat_edges` — recursive-matrix (R-MAT) generation producing the
  heavy-tailed degree distributions of web/social graphs (Friendster,
  UK_domain, papers100M structure);
- :func:`homophilous_edges` + :func:`class_features` — a planted-partition
  construction with label-correlated features, giving a *learnable*
  node-classification task so the accuracy experiments (Table III, Fig. 7)
  exercise real training rather than noise.

Both are fully vectorised; generating a million edges takes well under a
second.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``num_edges`` directed edges with R-MAT recursion.

    Uses the Graph500 parameterisation (a=0.57, b=c=0.19, d=0.05) by
    default.  ``num_nodes`` need not be a power of two; endpoints are
    folded into range with a modulo, which perturbs the distribution only
    marginally.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("rmat probabilities must sum to at most 1")
    scale = max(1, int(np.ceil(np.log2(max(num_nodes, 2)))))
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        src_bit = (r >= a + b).astype(np.int64)  # quadrants c, d set src bit
        # dst bit set in quadrants b and d
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src % num_nodes, dst % num_nodes


def rmat_edges_chunked(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    chunk_edges: int = 16_000_000,
):
    """Yield :func:`rmat_edges` output in chunks of ``chunk_edges``.

    Papers100M-scale generation (3.2 B stored directed edges) cannot hold
    the full COO in memory: the monolithic generator peaks at
    ``scale * 8 B * num_edges`` of temporaries.  This generator caps peak
    memory at ``O(chunk_edges)`` — each chunk runs the same per-edge R-MAT
    recursion, so the concatenated stream is distributed identically to a
    single :func:`rmat_edges` call (though not bitwise equal for a given
    ``rng``, since draws are batched differently).  Feed the stream to
    :func:`repro.graph.builder.csr_from_chunks`.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    remaining = int(num_edges)
    while remaining > 0:
        n = min(int(chunk_edges), remaining)
        yield rmat_edges(num_nodes, n, rng, a=a, b=b, c=c)
        remaining -= n


def homophilous_edges(
    num_nodes: int,
    num_edges: int,
    num_classes: int,
    rng: np.random.Generator,
    homophily: float = 0.75,
) -> tuple[np.ndarray, np.ndarray]:
    """Planted-partition edges: classes are contiguous node-ID blocks.

    Each edge picks a uniform source; with probability ``homophily`` the
    destination is uniform *within the source's class block*, otherwise
    uniform over all nodes.  Contiguous blocks keep the construction fully
    vectorised; the downstream hash partition destroys any layout bias.
    """
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must be in [0, 1]")
    block = -(-num_nodes // num_classes)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    block_start = (src // block) * block
    block_end = np.minimum(block_start + block, num_nodes)
    intra = rng.random(num_edges) < homophily
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    span = block_end - block_start
    dst[intra] = block_start[intra] + (dst[intra] % span[intra])
    return src, dst


def block_labels(num_nodes: int, num_classes: int) -> np.ndarray:
    """Class of each node under the contiguous-block layout."""
    block = -(-num_nodes // num_classes)
    return (np.arange(num_nodes, dtype=np.int64) // block).astype(np.int64)


def class_features(
    labels: np.ndarray,
    feature_dim: int,
    rng: np.random.Generator,
    signal: float = 1.0,
    noise: float = 1.0,
) -> np.ndarray:
    """Node features = class centroid + Gaussian noise.

    ``signal``/``noise`` control task difficulty; the defaults give a task
    where a 3-layer GNN converges within a few epochs on small graphs but
    a plain linear probe does not saturate (aggregation helps, as it must
    for the GNN accuracy curves to be meaningful).
    """
    num_classes = int(labels.max()) + 1 if labels.size else 1
    centroids = rng.standard_normal((num_classes, feature_dim)).astype(
        np.float32
    )
    x = centroids[labels] * np.float32(signal)
    x += rng.standard_normal((labels.size, feature_dim)).astype(np.float32) * (
        np.float32(noise)
    )
    return x


def random_features(
    num_nodes: int, feature_dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Unstructured features for the performance-only datasets (the paper
    randomly generates Friendster/UK_domain features, §IV)."""
    return rng.standard_normal((num_nodes, feature_dim)).astype(np.float32)
