"""The four evaluation datasets (paper Table II), as synthetic stand-ins.

+ ogbn-products    2.4 M nodes,  61.9 M edges, 100-dim features, labelled
+ ogbn-papers100M  111.1 M nodes, 1.6 B edges, 128-dim features, labelled
+ Friendster       68.3 M nodes,  2.6 B edges, 128-dim random features
+ UK_domain        105.2 M nodes, 3.3 B edges, 128-dim random features

Each :class:`DatasetSpec` carries the *full-scale* statistics (used for
memory accounting and epoch-count extrapolation) and a recipe to generate a
*scaled* synthetic instance preserving what per-iteration cost depends on:
average degree, feature dimension, and (for the labelled datasets) a
learnable community structure.  The paper labels 1 % of Friendster/UK nodes
and splits them 80/10/10 (§IV); OGB's official split sizes are kept for the
two OGB datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    block_labels,
    class_features,
    homophilous_edges,
    random_features,
    rmat_edges,
)
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale statistics of one evaluation dataset."""

    name: str
    full_nodes: int
    full_edges: int  #: undirected edge count as reported in Table II
    feature_dim: int
    num_classes: int
    #: OGB-style absolute split sizes at full scale
    full_train_nodes: int
    full_val_nodes: int
    full_test_nodes: int
    #: 'community' (learnable labels) or 'rmat' (performance only)
    kind: str = "community"
    labelled: bool = True

    @property
    def avg_degree(self) -> float:
        """Average *directed* degree after symmetrisation (2E/N)."""
        return 2.0 * self.full_edges / self.full_nodes

    @property
    def full_iterations_per_epoch(self) -> int:
        """Mini-batch steps per full-scale epoch at the paper's batch 512."""
        from repro.config import BATCH_SIZE

        return max(1, int(np.ceil(self.full_train_nodes / BATCH_SIZE)))


# Official OGB split sizes; Friendster/UK use the paper's 1% label ratio
# with an 80/10/10 split.
DATASETS: dict[str, DatasetSpec] = {
    "ogbn-products": DatasetSpec(
        name="ogbn-products",
        full_nodes=2_449_029,
        full_edges=61_859_140,
        feature_dim=100,
        num_classes=47,
        full_train_nodes=196_615,
        full_val_nodes=39_323,
        full_test_nodes=2_213_091,
        kind="community",
        labelled=True,
    ),
    "ogbn-papers100M": DatasetSpec(
        name="ogbn-papers100M",
        full_nodes=111_059_956,
        full_edges=1_615_685_872,
        feature_dim=128,
        num_classes=172,
        full_train_nodes=1_207_179,
        full_val_nodes=125_265,
        full_test_nodes=214_338,
        kind="community",
        labelled=True,
    ),
    "friendster": DatasetSpec(
        name="friendster",
        full_nodes=68_349_466,
        full_edges=2_586_147_869,
        feature_dim=128,
        num_classes=64,
        full_train_nodes=546_796,  # 1% labels x 80%
        full_val_nodes=68_349,
        full_test_nodes=68_349,
        kind="rmat",
        labelled=False,
    ),
    "uk_domain": DatasetSpec(
        name="uk_domain",
        full_nodes=105_153_952,
        full_edges=3_301_876_564,
        feature_dim=128,
        num_classes=64,
        full_train_nodes=841_232,  # 1% labels x 80%
        full_val_nodes=105_154,
        full_test_nodes=105_154,
        kind="rmat",
        labelled=False,
    ),
}


@dataclass
class SyntheticDataset:
    """A scaled synthetic instance of one dataset."""

    spec: DatasetSpec
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_nodes: np.ndarray
    val_nodes: np.ndarray
    test_nodes: np.ndarray
    seed: int
    num_classes: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by name (KeyError with suggestions)."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def load_dataset(
    name: str,
    num_nodes: int = 50_000,
    seed: int = 0,
    feature_dim: int | None = None,
    num_classes: int | None = None,
    homophily: float = 0.8,
    edge_weighted: bool = False,
) -> SyntheticDataset:
    """Generate a scaled synthetic instance of dataset ``name``.

    The instance preserves the full dataset's average degree and feature
    dimension (both overridable for fast tests) and splits nodes into
    train/val/test with the full dataset's *fractions*.
    """
    spec = dataset_spec(name)
    rng = spawn_rng(seed, "dataset", name, num_nodes)
    feature_dim = spec.feature_dim if feature_dim is None else int(feature_dim)
    num_classes = (
        min(spec.num_classes, max(2, num_nodes // 64))
        if num_classes is None
        else int(num_classes)
    )
    # preserve the full graph's average degree
    num_edges = max(num_nodes, int(spec.avg_degree / 2 * num_nodes))

    if spec.kind == "community":
        src, dst = homophilous_edges(
            num_nodes, num_edges, num_classes, rng, homophily=homophily
        )
        labels = block_labels(num_nodes, num_classes)
        features = class_features(labels, feature_dim, rng)
    else:
        src, dst = rmat_edges(num_nodes, num_edges, rng)
        labels = rng.integers(0, num_classes, size=num_nodes, dtype=np.int64)
        features = random_features(num_nodes, feature_dim, rng)

    if edge_weighted:
        # per-edge weights (e.g. interaction strengths); weighted graphs
        # keep duplicate edges since dedup would have to merge weights
        w = rng.gamma(2.0, 0.5, size=src.shape[0]).astype(np.float32)
        graph = from_edge_list(
            src, dst, num_nodes, undirected=True, dedup=False,
            edge_weights=w,
        )
    else:
        graph = from_edge_list(src, dst, num_nodes, undirected=True,
                               dedup=True)

    perm = rng.permutation(num_nodes).astype(np.int64)
    n_train = max(1, int(round(num_nodes * spec.full_train_nodes / spec.full_nodes)))
    n_val = max(1, int(round(num_nodes * spec.full_val_nodes / spec.full_nodes)))
    n_test = max(1, int(round(num_nodes * spec.full_test_nodes / spec.full_nodes)))
    train = np.sort(perm[:n_train])
    val = np.sort(perm[n_train : n_train + n_val])
    test = np.sort(perm[n_train + n_val : n_train + n_val + n_test])

    return SyntheticDataset(
        spec=spec,
        graph=graph,
        features=features,
        labels=labels,
        train_nodes=train,
        val_nodes=val,
        test_nodes=test,
        seed=seed,
        num_classes=num_classes,
    )
