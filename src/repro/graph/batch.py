"""Batched small graphs for graph-level tasks.

The paper motivates GNNs with graph classification and "a dataset with
millions of graphs" (§I).  Graph-level training batches many small graphs
into one block-diagonal adjacency so a single g-SpMM sweep processes the
whole batch; a *readout* then pools node embeddings per graph.

:class:`BatchedGraphs` concatenates CSRs with node-ID offsets and exposes
the batch as a full-graph :class:`~repro.ops.neighbor_sampler.LayerBlock`
(targets == sources == all nodes — the degenerate prefix), so the existing
GNN layers run on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ops.neighbor_sampler import LayerBlock


@dataclass
class BatchedGraphs:
    """A block-diagonal batch of small graphs."""

    #: merged CSR over the concatenated node space
    csr: CSRGraph
    #: node offset where each graph starts (length num_graphs + 1)
    graph_offsets: np.ndarray
    #: per-node graph membership
    graph_ids: np.ndarray

    @property
    def num_graphs(self) -> int:
        return int(self.graph_offsets.shape[0] - 1)

    @property
    def num_nodes(self) -> int:
        return self.csr.num_nodes

    def nodes_of(self, graph: int) -> np.ndarray:
        """Concatenated-space node IDs of one member graph."""
        return np.arange(
            self.graph_offsets[graph], self.graph_offsets[graph + 1]
        )

    def full_graph_block(self) -> LayerBlock:
        """The batch as a full-graph message-passing block.

        Every node is both target and source (the identity prefix), so the
        sampled-block GNN layers apply directly — full-batch training on
        small graphs is the degenerate case of sampling with infinite
        fanout.
        """
        return LayerBlock(
            indptr=self.csr.indptr,
            indices=self.csr.indices,
            num_targets=self.num_nodes,
            num_src=self.num_nodes,
            duplicate_counts=np.bincount(
                self.csr.indices, minlength=self.num_nodes
            ),
        )


def batch_graphs(graphs: list[CSRGraph]) -> BatchedGraphs:
    """Merge small graphs into one block-diagonal batch."""
    if not graphs:
        raise ValueError("need at least one graph")
    sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    indptrs = [graphs[0].indptr]
    indices = []
    edge_base = 0
    for i, g in enumerate(graphs):
        indices.append(g.indices + offsets[i])
        if i > 0:
            indptrs.append(g.indptr[1:] + edge_base)
        edge_base += g.num_edges
    merged = CSRGraph(
        np.concatenate(indptrs),
        np.concatenate(indices) if indices else np.zeros(0, np.int64),
        num_nodes=int(offsets[-1]),
    )
    graph_ids = np.repeat(np.arange(len(graphs), dtype=np.int64), sizes)
    return BatchedGraphs(csr=merged, graph_offsets=offsets,
                         graph_ids=graph_ids)


def generate_graph_classification_dataset(
    num_graphs: int,
    rng: np.random.Generator,
    nodes_range: tuple[int, int] = (8, 20),
    feature_dim: int = 8,
) -> tuple[list[CSRGraph], list[np.ndarray], np.ndarray]:
    """A structurally-learnable two-class task: cycles vs near-cliques.

    Class 0 graphs are rings (every node degree 2); class 1 graphs are
    dense Erdős–Rényi graphs (expected degree ~ n/2) — distinguishable
    from aggregated degree statistics alone, so GNNs separate them while
    per-node features (pure noise) do not.

    Returns ``(graphs, per-graph node features, labels)``.
    """
    from repro.graph.builder import from_edge_list

    graphs, features = [], []
    labels = rng.integers(0, 2, size=num_graphs).astype(np.int64)
    for label in labels:
        n = int(rng.integers(*nodes_range))
        if label == 0:
            src = np.arange(n)
            dst = (src + 1) % n
        else:
            # draw n(n-1) candidate pairs; after dedup the graph is dense
            # (most of the ~n²/2 possible edges present) at every size
            m = n * (n - 1)
            src = rng.integers(0, n, size=m)
            dst = rng.integers(0, n, size=m)
        graphs.append(from_edge_list(src, dst, n, undirected=True,
                                     dedup=True))
        features.append(
            rng.standard_normal((n, feature_dim)).astype(np.float32)
        )
    return graphs, features, labels
