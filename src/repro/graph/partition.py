"""Node-ID hash partitioning across GPUs.

Paper §III-B: "We partition the nodes of the graph to different GPUs
according to the node ID hash value.  Each graph node is assigned to a
GlobalID, which is composed of rank ID and local ID.  All the edges are
stored together with the source node.  Node features are also stored in the
same GPU as the node."

The hash is a splitmix64-style integer mix so partitions are balanced even
for adversarial ID layouts (e.g. community-sorted datasets).  The partition
also yields a *storage permutation* that lays each rank's nodes out as a
contiguous block of rows, which is how :class:`~repro.dsm.whole_tensor.
WholeTensor` addresses them; the (rank, local) GlobalID and the permuted row
index are two views of the same mapping and the tests verify they agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.ids import make_global_ids, split_global_ids


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser — a high-quality 64-bit integer mix."""
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


@dataclass
class HashPartition:
    """The assignment of nodes to ranks plus derived index maps."""

    num_nodes: int
    num_ranks: int
    #: owning rank of each original node id
    owner: np.ndarray
    #: local index of each original node id on its owner
    local_id: np.ndarray
    #: nodes per rank
    counts: np.ndarray
    #: storage row of each original node (rank blocks are contiguous)
    to_stored: np.ndarray
    #: original node id of each storage row
    to_original: np.ndarray
    #: storage-row offset at which each rank's block starts
    rank_offsets: np.ndarray

    def global_ids(self, original_nodes) -> np.ndarray:
        """(rank ‖ local) GlobalID of each original node."""
        nodes = np.asarray(original_nodes, dtype=np.int64)
        return make_global_ids(self.owner[nodes], self.local_id[nodes])

    def stored_of_global(self, gids) -> np.ndarray:
        """Storage row addressed by a packed GlobalID."""
        rank, local = split_global_ids(gids)
        return self.rank_offsets[rank] + local

    def rank_of_stored(self, stored_rows) -> np.ndarray:
        """Owning rank of each storage row."""
        rows = np.asarray(stored_rows, dtype=np.int64)
        return (
            np.searchsorted(self.rank_offsets[1:], rows, side="right")
        ).astype(np.int64)


def hash_partition(num_nodes: int, num_ranks: int, seed: int = 0) -> HashPartition:
    """Partition ``num_nodes`` node IDs over ``num_ranks`` by hash value."""
    ids = np.arange(num_nodes, dtype=np.int64)
    # mix the seed in 64-bit modular arithmetic (Python ints are unbounded,
    # so the product must be masked before the uint64 conversion)
    seed_mix = np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    h = splitmix64(ids.astype(np.uint64) ^ seed_mix)
    owner = (h % np.uint64(num_ranks)).astype(np.int64)

    counts = np.bincount(owner, minlength=num_ranks).astype(np.int64)
    rank_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

    # stable order within each rank preserves original ID order locally
    order = np.argsort(owner, kind="stable")  # storage row -> original node
    to_original = order
    to_stored = np.empty(num_nodes, dtype=np.int64)
    to_stored[order] = ids

    local_id = to_stored - rank_offsets[owner]
    return HashPartition(
        num_nodes=num_nodes,
        num_ranks=num_ranks,
        owner=owner,
        local_id=local_id,
        counts=counts,
        to_stored=to_stored,
        to_original=to_original,
        rank_offsets=rank_offsets,
    )
