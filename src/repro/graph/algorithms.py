"""Classic graph analytics on the multi-GPU shared-memory store.

The paper argues the distributed-shared-memory view of a multi-GPU node
"is also appropriate for other sparse graph computing patterns" (§I) and
positions WholeGraph next to nvGRAPH and Gunrock (§V).  These routines
demonstrate that: PageRank, connected components and BFS run over the
hash-partitioned store with the same SPMD shape as GNN training — every
GPU processes its own node partition, reading neighbor state through the
DSM — and charge the cost model accordingly.

Each algorithm has a pure-CSR functional core (tested against networkx)
plus a ``*_on_store`` wrapper that executes it partition-parallel with
per-iteration simulated timing.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.hardware import costmodel
from repro.ops.spmm import gspmm_sum


def pagerank(
    csr: CSRGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tol: float = 1e-6,
) -> tuple[np.ndarray, int]:
    """Power-iteration PageRank; returns ``(ranks, iterations_used)``.

    Treats the CSR rows as out-edges; dangling mass is redistributed
    uniformly (the standard correction).
    """
    n = csr.num_nodes
    if n == 0:
        return np.zeros(0), 0
    out_deg = csr.degrees().astype(np.float64)
    dangling = out_deg == 0
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(out_deg, 1))
    # transpose once: rank flows along edges, aggregated at destinations
    csc = csr.transpose()
    ranks = np.full(n, 1.0 / n)
    for it in range(1, max_iterations + 1):
        contrib = ranks * inv_deg
        incoming = gspmm_sum(
            csc.indptr, csc.indices, contrib.reshape(-1, 1).astype(np.float32)
        ).ravel().astype(np.float64)
        dangling_mass = ranks[dangling].sum() / n
        new_ranks = (1 - damping) / n + damping * (incoming + dangling_mass)
        delta = np.abs(new_ranks - ranks).sum()
        ranks = new_ranks
        if delta < tol:
            break
    return ranks, it


def connected_components(csr: CSRGraph, max_iterations: int = 10_000
                         ) -> np.ndarray:
    """Label-propagation connected components (undirected semantics).

    Every node repeatedly adopts the minimum label in its closed
    neighborhood; converges in O(diameter) sweeps.  Returns per-node
    component labels (the minimum node ID in each component).
    """
    n = csr.num_nodes
    labels = np.arange(n, dtype=np.int64)
    if csr.num_edges == 0:
        return labels
    src, dst = csr.subgraph_edges()
    for _ in range(max_iterations):
        # min over in-neighbors via scatter-min on both directions
        neighbor_min = labels.copy()
        np.minimum.at(neighbor_min, dst, labels[src])
        np.minimum.at(neighbor_min, src, labels[dst])
        if np.array_equal(neighbor_min, labels):
            break
        labels = neighbor_min
    # flatten label chains so every node points at its component minimum
    while True:
        flattened = labels[labels]
        if np.array_equal(flattened, labels):
            return labels
        labels = flattened


def bfs_levels(csr: CSRGraph, source: int) -> np.ndarray:
    """Frontier BFS; returns hop distance per node (-1 = unreachable)."""
    n = csr.num_nodes
    if not 0 <= source < n:
        raise ValueError("source out of range")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        # expand the frontier's neighbor lists (vectorised concat)
        starts, ends = csr.edge_slices(frontier)
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        reps = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        neighbors = csr.indices[reps + within]
        fresh = np.unique(neighbors[levels[neighbors] < 0])
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = fresh
    return levels


# ---------------------------------------------------------------------------
# Store-parallel execution with cost accounting
# ---------------------------------------------------------------------------

def pagerank_on_store(
    store,
    damping: float = 0.85,
    max_iterations: int = 50,
    tol: float = 1e-6,
    phase: str = "analytics",
) -> tuple[np.ndarray, int]:
    """PageRank over the multi-GPU store, SPMD with per-GPU cost charging.

    Each GPU owns its partition's rows; per iteration it reads the ranks of
    remote neighbors through the DSM (NVLink random reads at 8-byte
    granularity — the worst point of the Fig. 8 curve, which is exactly why
    this access pattern motivates the DSM design).
    """
    node = store.node
    ranks, iterations = pagerank(store.csr, damping, max_iterations, tol)
    # cost: per iteration, each GPU streams its partition's edges, reading
    # one 8-byte rank per edge, (N-1)/N of them remote
    for rank_id in range(node.num_gpus):
        edges = store.edges_per_rank[rank_id]
        per_iter = costmodel.gather_time(
            edges * 8.0, 8.0, node.num_gpus
        ) + costmodel.elementwise_time(
            store.partition.counts[rank_id] * 8.0 * 3
        )
        node.gpu_clock[rank_id].advance(per_iter * iterations, phase=phase)
    node.sync()
    return ranks, iterations


def connected_components_on_store(store, phase: str = "analytics"
                                   ) -> np.ndarray:
    """Connected components over the store with cost charging."""
    node = store.node
    labels = connected_components(store.csr)
    sweeps = max(1, int(np.ceil(np.log2(max(store.num_nodes, 2)))))
    for rank_id in range(node.num_gpus):
        edges = store.edges_per_rank[rank_id]
        per_sweep = costmodel.gather_time(edges * 8.0, 8.0, node.num_gpus)
        node.gpu_clock[rank_id].advance(per_sweep * sweeps, phase=phase)
    node.sync()
    return labels
