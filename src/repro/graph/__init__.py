"""Graph substrate: CSR structures, partitioning, multi-GPU storage, datasets.

WholeGraph stores the graph structure (CSR adjacency) and node features
across all GPUs (paper §III-B): nodes are hash-partitioned by node ID, every
edge lives with its source node, and node features live on the same GPU as
the node.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builder import csr_from_chunks, from_edge_list
from repro.graph.generators import rmat_edges, rmat_edges_chunked
from repro.graph.partition import HashPartition, hash_partition
from repro.graph.storage import MultiGpuGraphStore
from repro.graph.bipartite import (
    BipartiteDataset,
    bipartite_edges,
    load_bipartite_dataset,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    SyntheticDataset,
    load_dataset,
    dataset_spec,
)

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "csr_from_chunks",
    "rmat_edges",
    "rmat_edges_chunked",
    "HashPartition",
    "hash_partition",
    "MultiGpuGraphStore",
    "DATASETS",
    "DatasetSpec",
    "SyntheticDataset",
    "BipartiteDataset",
    "bipartite_edges",
    "load_bipartite_dataset",
    "load_dataset",
    "dataset_spec",
]
