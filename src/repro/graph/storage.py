"""Multi-GPU graph + feature storage on the distributed shared memory.

Implements paper §III-B's storage layout on top of :mod:`repro.dsm`:

- nodes are hash-partitioned across GPUs (:mod:`repro.graph.partition`);
- the CSR structure is re-laid-out in *stored* node order, so each rank's
  nodes — and all of their out-edges — occupy one contiguous block;
- ``indptr``-equivalent (per-node edge offsets) and ``indices`` live in
  WholeTensors whose per-rank partitions align with the node partition;
- node features live in a WholeTensor with the same row partition, so a
  node's feature is always on the GPU that owns the node.

All queries below are expressed in *stored* node IDs; callers translate from
original IDs with :attr:`partition.to_stored` once at setup (train/val/test
lists are translated at construction).

``materialize=False`` builds an accounting-only store at arbitrary scale
(Table IV models ogbn-papers100M's 24 GB structure + 53 GB features without
holding them in host RAM).
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.dsm.feature_cache import FeatureCache
from repro.dsm.host_tensor import HostPinnedTensor
from repro.dsm.tiered_tensor import TieredFeatureCache, TieredTensor
from repro.dsm.whole_tensor import WholeTensor
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSpec, SyntheticDataset
from repro.graph.partition import HashPartition, hash_partition
from repro.hardware.machine import SimNode


class MultiGpuGraphStore:
    """Graph structure and features scattered across all GPUs of a node."""

    def __init__(
        self,
        node: SimNode,
        dataset: SyntheticDataset,
        seed: int = 0,
        charge_setup: bool = True,
        feature_location: str = "device",
        cache_ratio: float = 0.0,
        cache_policy: str = "static",
        tier: str | None = None,
        host_pinned_fraction: float | None = None,
    ):
        """``feature_location``: ``"device"`` scatters features across GPU
        memory (WholeGraph proper); ``"host_pinned"`` keeps them in CPU DRAM
        with zero-copy PCIe access — the fallback the open-source WholeGraph
        offers for graphs beyond aggregate GPU memory, and the baseline of
        the storage-location ablation.

        ``tier`` supersedes ``feature_location`` when given: the same two
        values plus ``"tiered"``, the out-of-core hierarchy — the CSR
        topology moves to pinned host memory, features spill into a
        :class:`~repro.dsm.tiered_tensor.TieredTensor` (the hottest
        ``host_pinned_fraction`` of rows warm in pinned host DRAM, the cold
        tail on NVMe scratch, placement by degree), and ``cache_ratio``
        sizes the hot HBM tier on top.

        ``cache_ratio`` > 0 layers a per-rank hot-row HBM cache
        (:class:`~repro.dsm.feature_cache.FeatureCache`) over the feature
        gather path: that fraction of the feature rows is cached per rank,
        with ``cache_policy`` selecting the degree-ordered ``"static"``
        placement or the online ``"clock"`` (LRU-approximating) policy."""
        if tier is None:
            tier = feature_location
        if tier not in ("device", "host_pinned", "tiered"):
            raise ValueError(
                "feature_location must be 'device' or 'host_pinned'"
                " (or tier='tiered')"
            )
        if cache_ratio and tier == "host_pinned":
            raise ValueError(
                "the feature cache requires device-resident features"
            )
        self.tier = tier
        self.feature_location = tier
        #: where the CSR topology lives: host-pinned under the tiered
        #: hierarchy (the sampler prices its row reads at the zero-copy
        #: PCIe regime), device WholeMemory otherwise
        self.structure_location = "host" if tier == "tiered" else "device"
        self.node = node
        self.dataset = dataset
        # kept for rebuild_on (elastic shrink re-shards onto a new node)
        self._seed = int(seed)
        self._cache_ratio = float(cache_ratio)
        self._cache_policy = cache_policy
        self._host_pinned_fraction = (
            config.HOST_PINNED_FRACTION
            if host_pinned_fraction is None
            else float(host_pinned_fraction)
        )
        graph = dataset.graph
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        self.feature_dim = dataset.feature_dim

        # -- partition and relabel ------------------------------------------------
        self.partition: HashPartition = hash_partition(
            self.num_nodes, node.num_gpus, seed=seed
        )
        # stored-space CSR: node i of the stored layout is original node
        # partition.to_original[i]; neighbor IDs are stored IDs too.
        self.csr: CSRGraph = graph.permute_nodes(self.partition.to_stored)

        nodes_per_rank = [int(c) for c in self.partition.counts]
        edges_per_rank = [
            int(
                self.csr.indptr[self.partition.rank_offsets[r + 1]]
                - self.csr.indptr[self.partition.rank_offsets[r]]
            )
            for r in range(node.num_gpus)
        ]
        self.edges_per_rank = edges_per_rank

        # -- structure storage ------------------------------------------------------
        # per-node edge offsets (int64) partitioned with the nodes; the
        # paper's "8 bytes to store each edge" budget is the indices array.
        if self.structure_location == "host":
            # out-of-core hierarchy: the CSR topology is pinned in host
            # DRAM and read zero-copy — the sampler prices its row reads
            # at the PCIe regime instead of the NVLink curve
            self.indptr_tensor = HostPinnedTensor(
                node, self.num_nodes + 1, 1, dtype=np.int64, tag="graph",
            )
            self.indices_tensor = HostPinnedTensor(
                node, self.num_edges, 1, dtype=np.int64, tag="graph",
            )
        else:
            self.indptr_tensor = WholeTensor(
                node,
                self.num_nodes + 1,
                1,
                dtype=np.int64,
                tag="graph",
                charge_setup=charge_setup,
                rows_per_rank=self._indptr_rows(nodes_per_rank),
            )
            self.indices_tensor = WholeTensor(
                node,
                self.num_edges,
                1,
                dtype=np.int64,
                tag="graph",
                charge_setup=False,
                rows_per_rank=edges_per_rank,
            )
        self.indptr_tensor.load_from_host(
            self.csr.indptr.reshape(-1, 1), phase="load"
        )
        self.indices_tensor.load_from_host(
            self.csr.indices.reshape(-1, 1), phase="load"
        )

        # -- feature storage ----------------------------------------------------------
        if tier == "device":
            self.feature_tensor = WholeTensor(
                node,
                self.num_nodes,
                self.feature_dim,
                dtype=np.float32,
                tag="feature",
                charge_setup=charge_setup,
                rows_per_rank=nodes_per_rank,
            )
        elif tier == "tiered":
            # spill beneath the DSM: warm rows pinned host, cold on disk,
            # placement by degree (the sampling-induced hotness proxy)
            self.feature_tensor = TieredTensor(
                node, self.num_nodes, self.feature_dim,
                dtype=np.float32, tag="feature",
                host_pinned_fraction=self._host_pinned_fraction,
                hotness=np.diff(self.csr.indptr),
            )
        else:
            self.feature_tensor = HostPinnedTensor(
                node, self.num_nodes, self.feature_dim,
                dtype=np.float32, tag="feature",
            )
        stored_features = dataset.features[self.partition.to_original]
        self.feature_tensor.load_from_host(stored_features, phase="load")

        # -- hot-row feature cache (optional) -----------------------------------
        self.feature_cache = None
        if cache_ratio:
            cache_cls = (
                TieredFeatureCache if tier == "tiered" else FeatureCache
            )
            self.feature_cache = cache_cls.from_ratio(
                self.feature_tensor,
                cache_ratio,
                policy=cache_policy,
                degrees=np.diff(self.csr.indptr),
                charge_fill=charge_setup,
            )

        # -- edge-feature storage (optional) -------------------------------------
        # edge weights live with the source node's edges, same partition as
        # the indices array (paper §III-B: "node or edge features")
        self.edge_weight_tensor = None
        if self.csr.edge_weights is not None:
            self.edge_weight_tensor = WholeTensor(
                node,
                self.num_edges,
                1,
                dtype=np.float32,
                tag="edge_feature",
                charge_setup=False,
                rows_per_rank=edges_per_rank,
            )
            self.edge_weight_tensor.load_from_host(
                self.csr.edge_weights.reshape(-1, 1), phase="load"
            )

        # -- labels and splits (host-resident, translated to stored IDs) -------------
        self.labels = dataset.labels[self.partition.to_original]
        self.train_nodes = np.sort(self.partition.to_stored[dataset.train_nodes])
        self.val_nodes = np.sort(self.partition.to_stored[dataset.val_nodes])
        self.test_nodes = np.sort(self.partition.to_stored[dataset.test_nodes])
        self.num_classes = dataset.num_classes

    @staticmethod
    def _indptr_rows(nodes_per_rank: list[int]) -> list[int]:
        """Partition the ``num_nodes + 1`` indptr rows with the nodes
        (the trailing sentinel row goes to the last rank)."""
        rows = list(nodes_per_rank)
        rows[-1] += 1
        return rows

    # -- structure queries (stored-ID space) ---------------------------------------

    def degree(self, stored_nodes) -> np.ndarray:
        """Out-degree of stored nodes."""
        return self.csr.degree(stored_nodes)

    def neighbors_concat(self, stored_nodes) -> tuple[np.ndarray, np.ndarray]:
        """Flattened neighbor lists + per-node counts for a batch."""
        stored_nodes = np.asarray(stored_nodes, dtype=np.int64)
        starts, ends = self.csr.edge_slices(stored_nodes)
        counts = ends - starts
        total = int(counts.sum())
        flat = np.empty(total, dtype=np.int64)
        pos = 0
        for s, e in zip(starts, ends):
            flat[pos : pos + (e - s)] = self.csr.indices[s:e]
            pos += e - s
        return flat, counts

    def rank_of(self, stored_nodes) -> np.ndarray:
        """Owning rank of each stored node."""
        return self.partition.rank_of_stored(stored_nodes)

    # -- feature access ------------------------------------------------------------

    def gather_features(
        self, stored_nodes, rank: int, phase: str = "gather"
    ) -> np.ndarray:
        """Shared-memory global gather of node features onto ``rank``.

        When a hot-row cache is configured, rows resident in ``rank``'s
        cache are served from local HBM; the result is bit-identical either
        way.
        """
        if self.feature_cache is not None:
            return self.feature_cache.gather(stored_nodes, rank, phase=phase)
        return self.feature_tensor.gather(stored_nodes, rank, phase=phase)

    def gather_edge_weights(
        self, edge_positions, rank: int, phase: str = "gather"
    ) -> np.ndarray:
        """Gather sampled edges' weights by their edge positions
        (:attr:`LayerBlock.edge_positions`)."""
        if self.edge_weight_tensor is None:
            raise RuntimeError("this store has no edge weights")
        return self.edge_weight_tensor.gather(
            edge_positions, rank, phase=phase
        ).ravel()

    # -- elastic recovery ------------------------------------------------------------

    def rebuild_on(
        self, node: SimNode, charge_setup: bool = True
    ) -> "MultiGpuGraphStore":
        """Re-shard this store's dataset onto ``node`` (elastic shrink).

        Builds a fresh :class:`MultiGpuGraphStore` with the same dataset,
        seed and cache configuration but ``node``'s (typically smaller) GPU
        count — WholeMemory is re-partitioned and features reloaded, and the
        DSM setup + PCIe load costs are charged to the new node's clocks
        when ``charge_setup`` is on.  Note the hash partition depends on the
        GPU count, so stored IDs are *not* comparable across the rebuild;
        translate via ``old.partition.to_original`` then
        ``new.partition.to_stored``.
        """
        return MultiGpuGraphStore(
            node,
            self.dataset,
            seed=self._seed,
            charge_setup=charge_setup,
            feature_location=self.feature_location,
            cache_ratio=self._cache_ratio,
            cache_policy=self._cache_policy,
            tier=self.tier,
            host_pinned_fraction=self._host_pinned_fraction,
        )

    # -- memory accounting (Table IV) -----------------------------------------------

    def memory_usage_per_gpu(self) -> dict[str, float]:
        """Average per-GPU live bytes by tag."""
        usage = self.node.memory_usage_by_tag()
        n = self.node.num_gpus
        return {tag: b / n for tag, b in usage.items()}

    def free(self) -> None:
        self.indptr_tensor.free()
        self.indices_tensor.free()
        if self.feature_cache is not None:
            self.feature_cache.free()
            self.feature_cache = None
        self.feature_tensor.free()
        if self.edge_weight_tensor is not None:
            self.edge_weight_tensor.free()


def accounting_only_store(
    node: SimNode, spec: DatasetSpec, undirected: bool = True
) -> dict[str, WholeTensor]:
    """Reserve (but do not materialise) full-scale storage for ``spec``.

    Returns the accounting tensors; per-tag usage is then read from
    ``node.memory_usage_by_tag()``.  Used by the Table IV experiment: the
    real ogbn-papers100M needs 2 x 1.6 B x 8 B = 24 GB of edges and
    111.1 M x 128 x 4 B = 53 GB of features.
    """
    stored_edges = spec.full_edges * (2 if undirected else 1)
    structure = WholeTensor(
        node, stored_edges, 1, dtype=np.int64, tag="graph",
        charge_setup=True, materialize=False,
    )
    features = WholeTensor(
        node, spec.full_nodes, spec.feature_dim, dtype=np.float32,
        tag="feature", charge_setup=True, materialize=False,
    )
    return {"graph": structure, "feature": features}
