"""Dataset serialisation: save/load synthetic datasets as ``.npz``.

Generating a large synthetic graph takes seconds; experiments that share a
dataset should pay that once.  Datasets round-trip exactly (structure,
weights, features, labels, splits, and the spec identity), with a format
version for forward compatibility.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import SyntheticDataset, dataset_spec

FORMAT_VERSION = 1


def save_dataset(path, dataset: SyntheticDataset) -> None:
    """Write a dataset to a compressed ``.npz``."""
    arrays = {
        "_format_version": np.array(FORMAT_VERSION),
        "_spec_name": np.array(dataset.spec.name),
        "_seed": np.array(dataset.seed),
        "_num_classes": np.array(dataset.num_classes),
        "indptr": dataset.graph.indptr,
        "indices": dataset.graph.indices,
        "features": dataset.features,
        "labels": dataset.labels,
        "train_nodes": dataset.train_nodes,
        "val_nodes": dataset.val_nodes,
        "test_nodes": dataset.test_nodes,
    }
    if dataset.graph.edge_weights is not None:
        arrays["edge_weights"] = dataset.graph.edge_weights
    np.savez_compressed(path, **arrays)


def load_saved_dataset(path) -> SyntheticDataset:
    """Load a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["_format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported dataset version {version}")
        graph = CSRGraph(
            data["indptr"],
            data["indices"],
            edge_weights=(
                data["edge_weights"] if "edge_weights" in data.files else None
            ),
        )
        return SyntheticDataset(
            spec=dataset_spec(str(data["_spec_name"])),
            graph=graph,
            features=data["features"],
            labels=data["labels"],
            train_nodes=data["train_nodes"],
            val_nodes=data["val_nodes"],
            test_nodes=data["test_nodes"],
            seed=int(data["_seed"]),
            num_classes=int(data["_num_classes"]),
        )
