"""Synthetic bipartite user-item graphs (the recommendation workload).

The "millions of users" scenario needs a rating graph: users and items in
one node ID space (users first, items after), undirected rating edges, and
enough latent structure that link prediction on trained embeddings is
learnable.  The generator plants ``num_groups`` taste communities — users
and items are block-assigned to groups, and each rating picks an item from
the user's own group with probability ``affinity`` (uniformly at random
otherwise), with item popularity skewed inside the group the way real
catalogues are.  A model that recovers the communities separates held-out
ratings from uniform negatives, which is what the AUC acceptance test pins.

The full-scale spec mirrors MovieLens-25M (162 k users, 59 k items, 25 M
ratings); scaled instances keep the user:item ratio and the ratings-per-user
density so per-iteration cost extrapolates the same way as the Table II
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_edge_list
from repro.graph.datasets import DatasetSpec, SyntheticDataset
from repro.graph.generators import class_features
from repro.utils.rng import spawn_rng

#: MovieLens-25M-shaped full-scale statistics (memory accounting and
#: epoch-count extrapolation; splits are 80/10/10 over the *users*)
BIPARTITE_SPEC = DatasetSpec(
    name="movielens-bipartite",
    full_nodes=162_541 + 59_047,
    full_edges=25_000_095,
    feature_dim=32,
    num_classes=16,
    full_train_nodes=130_032,
    full_val_nodes=16_254,
    full_test_nodes=16_255,
    kind="bipartite",
    labelled=True,
)


def bipartite_edges(
    num_users: int,
    num_items: int,
    num_edges: int,
    rng: np.random.Generator,
    num_groups: int = 16,
    affinity: float = 0.85,
    popularity_skew: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``num_edges`` (user, item-node) rating pairs.

    Users are ``[0, num_users)``, items ``[num_users, num_users+num_items)``.
    Both sides are block-assigned to ``num_groups`` taste groups; each
    rating's user is uniform, and its item comes from the user's group with
    probability ``affinity`` (uniform over the catalogue otherwise).  Inside
    a group, item popularity follows a Zipf-like ``1/(k+1)^popularity_skew``
    curve so hot rows exist for the caches and cyclic sharding to disagree
    about.
    """
    num_groups = max(1, min(int(num_groups), num_users, num_items))
    users = rng.integers(0, num_users, num_edges, dtype=np.int64)
    user_group = (users * num_groups) // num_users

    # items sorted by block-assigned group: group g owns the contiguous
    # local range [offsets[g], offsets[g+1])
    item_group = (
        np.arange(num_items, dtype=np.int64) * num_groups
    ) // num_items
    counts = np.bincount(item_group, minlength=num_groups)
    offsets = np.concatenate(([0], np.cumsum(counts)))

    intra = rng.random(num_edges) < affinity
    group_sizes = counts[user_group]
    # Zipf-like rank inside the group via inverse-CDF of k^(1-s)
    u = rng.random(num_edges)
    exponent = 1.0 - popularity_skew
    local_rank = np.floor(
        group_sizes * (u ** (1.0 / exponent) if exponent > 0 else u)
    ).astype(np.int64)
    local_rank = np.minimum(local_rank, group_sizes - 1)
    intra_items = offsets[user_group] + local_rank
    uniform_items = rng.integers(0, num_items, num_edges, dtype=np.int64)
    items = np.where(intra, intra_items, uniform_items)
    return users, items + num_users


@dataclass
class BipartiteDataset(SyntheticDataset):
    """A user-item rating graph in the standard dataset shape.

    Quacks like :class:`SyntheticDataset` (graph/features/labels/splits) so
    :class:`~repro.graph.storage.MultiGpuGraphStore` stores it unchanged;
    the extra fields expose the two node populations for link-prediction
    pair sampling and recsys serving.
    """

    num_users: int = 0
    num_items: int = 0

    @property
    def user_nodes(self) -> np.ndarray:
        return np.arange(self.num_users, dtype=np.int64)

    @property
    def item_nodes(self) -> np.ndarray:
        return np.arange(
            self.num_users, self.num_users + self.num_items, dtype=np.int64
        )


def load_bipartite_dataset(
    num_users: int = 4_000,
    num_items: int = 1_500,
    seed: int = 0,
    feature_dim: int | None = None,
    num_groups: int = 16,
    ratings_per_user: float = 12.0,
    affinity: float = 0.85,
) -> BipartiteDataset:
    """Generate a scaled synthetic user-item rating graph.

    Node labels are the taste-group IDs (users and items alike), features
    are noisy group prototypes — the same learnable-community recipe as the
    Table II datasets — and the 80/10/10 splits are over the *users*, the
    population recsys requests arrive for.
    """
    rng = spawn_rng(seed, "bipartite", num_users, num_items)
    num_nodes = num_users + num_items
    feature_dim = (
        BIPARTITE_SPEC.feature_dim if feature_dim is None else feature_dim
    )
    num_edges = max(num_users, int(round(num_users * ratings_per_user)))

    users, items = bipartite_edges(
        num_users, num_items, num_edges, rng,
        num_groups=num_groups, affinity=affinity,
    )
    graph = from_edge_list(
        users, items, num_nodes=num_nodes, undirected=True, dedup=True
    )

    user_group = (
        np.arange(num_users, dtype=np.int64) * num_groups
    ) // num_users
    item_group = (
        np.arange(num_items, dtype=np.int64) * num_groups
    ) // num_items
    labels = np.concatenate([user_group, item_group]).astype(np.int64)
    features = class_features(labels, feature_dim, rng)

    perm = rng.permutation(num_users).astype(np.int64)
    n_train = int(num_users * 0.8)
    n_val = int(num_users * 0.1)
    return BipartiteDataset(
        spec=BIPARTITE_SPEC,
        graph=graph,
        features=features,
        labels=labels,
        train_nodes=np.sort(perm[:n_train]),
        val_nodes=np.sort(perm[n_train:n_train + n_val]),
        test_nodes=np.sort(perm[n_train + n_val:]),
        seed=seed,
        num_classes=num_groups,
        num_users=num_users,
        num_items=num_items,
    )
