"""Schedule-driven fault injection and recovery for the simulation."""

from repro.faults.injector import (
    FAULT_DEVICE,
    FaultInjector,
    RankFailureError,
)
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    GatherReplyLoss,
    LinkDegradation,
    RankFailure,
    StragglerGpu,
)

__all__ = [
    "FAULT_DEVICE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GatherReplyLoss",
    "LinkDegradation",
    "RankFailure",
    "RankFailureError",
    "StragglerGpu",
]
