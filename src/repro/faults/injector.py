"""Runtime fault injection for the simulated cluster.

A :class:`FaultInjector` takes a :class:`~repro.faults.plan.FaultPlan` and
installs it on one or more :class:`~repro.hardware.machine.SimNode`\\ s:

- stragglers become per-clock ``scale_hook`` time dilations;
- named-link degradations are applied to the node's
  :class:`~repro.hardware.topology.Topology`;
- fabric-wide degradations and gather reply loss are consulted at charge
  time by the comm paths (``node.fault_injector`` is the handle);
- rank failures are polled by the trainers at iteration boundaries and
  surface as :class:`RankFailureError`.

Every injected fault lands in the Chrome trace (marker spans on a synthetic
``faults`` device lane) and the metrics registry (``faults_injected_total``,
``retries_total``); the transient-retry path draws exclusively from a
*private* RNG stream spawned from the plan seed, so training RNG — and
therefore every trained weight — is bit-identical to a fault-free run.
"""

from __future__ import annotations

import math

from repro import config
from repro.faults.plan import (
    FaultPlan,
    GatherReplyLoss,
    LinkDegradation,
    RankFailure,
    StragglerGpu,
)
from repro.hardware.clock import Span
from repro.telemetry.metrics import get_registry
from repro.utils.rng import spawn_rng

#: synthetic trace device carrying fault-window marker spans
FAULT_DEVICE = "faults"


class RankFailureError(RuntimeError):
    """A permanent rank failure was detected; carries the fired events."""

    def __init__(self, events: list[RankFailure]):
        ranks = sorted({(ev.node_id, ev.rank) for ev in events})
        super().__init__(
            "rank failure detected: "
            + ", ".join(f"n{n}.gpu{r}" for n, r in ranks)
        )
        self.events = list(events)

    @property
    def ranks(self) -> list[tuple[int, int]]:
        """Failed ``(node_id, rank)`` pairs."""
        return sorted({(ev.node_id, ev.rank) for ev in self.events})


class FaultInjector:
    """Executes a :class:`FaultPlan` against one or more sim nodes."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: private stream for reply-loss draws — never shared with training
        self._rng = spawn_rng(plan.seed, "fault-injector", "gather-retries")
        self._fired: set[int] = set()
        self.nodes: list = []
        self._installed = False

    # -- installation --------------------------------------------------------

    def install(self, nodes) -> "FaultInjector":
        """Attach to ``nodes`` (a SimNode or a list of them).

        Installs straggler clock hooks and named-link degradations, records
        one trace marker + one ``faults_injected_total`` increment per event,
        and sets ``node.fault_injector`` so the comm paths can consult the
        schedule at charge time.  Returns ``self`` for chaining.

        Calling ``install`` again (trainers reinstall after an elastic
        shrink replaces a node) re-wires hooks and handles without
        double-counting metrics or trace markers; stragglers whose rank no
        longer exists are dropped.
        """
        if not isinstance(nodes, (list, tuple)):
            nodes = [nodes]
        self.nodes = list(nodes)
        for node in self.nodes:
            node.fault_injector = self
        by_id = {node.node_id: node for node in self.nodes}
        registry = get_registry()
        first = not self._installed
        for ev in self.plan.events:
            if first:
                registry.counter(
                    "faults_injected_total", kind=ev.kind
                ).inc()
            node = by_id.get(getattr(ev, "node_id", None) or 0)
            if node is None and not isinstance(ev, GatherReplyLoss):
                continue
            if isinstance(ev, StragglerGpu):
                self._install_straggler(node, ev, strict=first)
            elif isinstance(ev, LinkDegradation) and ev.link is not None:
                if ev.link in node.topology.link_names():
                    node.topology.degrade(ev.link, ev.factor)
                elif first:
                    raise ValueError(f"unknown topology link {ev.link!r}")
            if first:
                self._mark(ev)
        self._installed = True
        return self

    def _install_straggler(
        self, node, ev: StragglerGpu, strict: bool = True
    ) -> None:
        if not 0 <= ev.rank < node.num_gpus:
            if strict:
                raise ValueError(
                    f"straggler rank {ev.rank} out of range on node "
                    f"{node.node_id} ({node.num_gpus} GPUs)"
                )
            return  # the straggler GPU was removed by an elastic shrink
        clock = node.gpu_clock[ev.rank]
        prev = clock.scale_hook

        def hook(dt, phase, now, _ev=ev, _prev=prev):
            if _prev is not None:
                dt = _prev(dt, phase, now)
            if _ev.start <= now < _ev.end:
                dt = dt * _ev.slowdown
            return dt

        clock.scale_hook = hook

    def _mark(self, ev) -> None:
        """Record the fault window as a marker span on the ``faults`` lane."""
        node = self.nodes[0]
        start = getattr(ev, "start", getattr(ev, "time", 0.0))
        end = getattr(ev, "end", start)
        if math.isinf(end):
            end = start
        node.timeline.record(
            Span(
                device=FAULT_DEVICE,
                start=start,
                end=end,
                phase=f"fault:{ev.kind}",
                busy=False,
                category="fault",
                args={
                    k: ("inf" if isinstance(v, float) and math.isinf(v)
                        else v)
                    for k, v in vars(ev).items()
                },
            )
        )

    def uninstall(self) -> None:
        """Detach from all nodes (clock hooks, topology, handle)."""
        for node in self.nodes:
            node.fault_injector = None
            node.topology.clear_degradation()
            for clock in node.gpu_clock:
                clock.scale_hook = None
        self.nodes = []

    # -- transient faults: consulted by the comm/gather charge paths ---------

    def link_slowdown(self, t: float, node_id: int = 0) -> float:
        """Product of fabric-wide degradation factors active at time ``t``."""
        factor = 1.0
        for ev in self.plan.of_kind(LinkDegradation):
            if ev.link is None and ev.node_id == node_id:
                if ev.start <= t < ev.end:
                    factor *= ev.factor
        return factor

    def scale_gather_time(
        self, t: float, remote_fraction: float, now: float, node_id: int = 0
    ) -> float:
        """Dilate a gather duration by the active fabric degradation.

        Only the remote (NVLink-crossing) fraction of the gather slows down;
        the local-HBM share is unaffected.
        """
        slowdown = self.link_slowdown(now, node_id)
        if slowdown == 1.0:
            return t
        return t * (1.0 + (slowdown - 1.0) * remote_fraction)

    def gather_retries(self, now: float, node_id: int = 0) -> int:
        """Number of transient retries a gather issued at ``now`` suffers.

        Draws from the injector's private RNG *only* while a loss window is
        active — outside any window the RNG is untouched, so a plan whose
        windows never overlap the run is draw-for-draw identical to an empty
        plan.
        """
        retries = 0
        for ev in self.plan.of_kind(GatherReplyLoss):
            if ev.node_id is not None and ev.node_id != node_id:
                continue
            if not ev.start <= now < ev.end:
                continue
            while (
                retries < ev.max_retries
                and self._rng.random() < ev.probability
            ):
                retries += 1
        return retries

    def charge_gather_retries(
        self, clock, phase: str = "gather_retry", node_id: int = 0
    ) -> float:
        """Charge timeout+backoff wait for lost replies at ``clock.now``.

        Returns the total simulated seconds charged (0.0 when no loss window
        is active or no reply was lost).  The wait is recorded as a non-busy
        span — the requester is stalled, not computing.
        """
        retries = self.gather_retries(clock.now, node_id)
        if not retries:
            return 0.0
        total = 0.0
        timeout = config.GATHER_RETRY_TIMEOUT
        for _ in range(retries):
            total += timeout
            timeout *= config.GATHER_RETRY_BACKOFF
        clock.advance(
            total,
            phase=phase,
            busy=False,
            category="fault",
            args={"retries": retries},
        )
        get_registry().counter(
            "retries_total", device=clock.device
        ).inc(retries)
        return total

    # -- permanent faults: polled by the trainers ----------------------------

    def _pending(
        self, t: float, node_id: int | None
    ) -> list[tuple[int, RankFailure]]:
        out = []
        for i, ev in enumerate(self.plan.events):
            if not isinstance(ev, RankFailure) or i in self._fired:
                continue
            if node_id is not None and ev.node_id != node_id:
                continue
            if ev.time <= t:
                out.append((i, ev))
        return out

    def pending_rank_failures(
        self, t: float, node_id: int | None = None
    ) -> list[RankFailure]:
        """Rank failures scheduled at or before ``t`` that have not fired."""
        return [ev for _, ev in self._pending(t, node_id)]

    def poll_rank_failures(
        self, t: float, node_id: int | None = None
    ) -> None:
        """Raise :class:`RankFailureError` for newly-due rank failures.

        Each failure fires exactly once; after recovery the trainer keeps
        polling and only *later* failures can fire again.
        """
        pending = self._pending(t, node_id)
        if not pending:
            return
        due = [ev for _, ev in pending]
        registry = get_registry()
        for i, ev in pending:
            self._fired.add(i)
            registry.counter(
                "rank_failures_total",
                node=str(ev.node_id), rank=str(ev.rank),
            ).inc()
            if self.nodes:
                self.nodes[0].timeline.record(
                    Span(
                        device=FAULT_DEVICE,
                        start=ev.time,
                        end=t,
                        phase="fault:rank_failure_fired",
                        busy=False,
                        category="fault",
                        args={"node_id": ev.node_id, "rank": ev.rank},
                    )
                )
        raise RankFailureError(due)
