"""Schedule-driven fault plans for the simulated cluster.

A :class:`FaultPlan` is a declarative list of fault events to inject into a
simulation run — the chaos-engineering counterpart of the cost model: every
transfer already flows through the comm/clock ledgers, so degraded links,
straggler GPUs, lost gather replies and dead ranks can be priced (and
recovered from) exactly.  Four event kinds:

- :class:`LinkDegradation` — the NVLink/NVSwitch fabric (or one named
  topology link) delivers ``1/factor`` of its bandwidth over a time window;
- :class:`StragglerGpu` — one GPU runs all busy work ``slowdown``× slower
  over a window (thermal throttling, a noisy neighbour, a flaky HBM stack);
- :class:`GatherReplyLoss` — gather replies are transiently lost with some
  probability; the requester retries after a timeout with exponential
  backoff (functional results are unaffected — only time is lost);
- :class:`RankFailure` — a GPU (or, on a cluster, its machine node) dies
  permanently at a given simulated time; the trainers recover via
  checkpoint restart or elastic shrink.

Plans serialise to plain JSON (:meth:`FaultPlan.to_config` /
:meth:`FaultPlan.from_config`) and are embedded in run reports, so a
recovered run is reproducible from its manifest and diffable with
``benchmarks/compare_runs.py``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields

from repro import config


@dataclass(frozen=True)
class LinkDegradation:
    """Interconnect bandwidth degraded to ``1/factor`` over a window.

    With ``link=None`` the whole NVLink fabric of ``node_id`` is degraded
    (the time-windowed form every comm path consults); naming a topology
    link (e.g. ``"nvlink3"``) instead degrades only that link in the
    :class:`~repro.hardware.topology.Topology` bandwidth resolution, and is
    applied for the lifetime of the injector (topology queries carry no
    simulated time).
    """

    factor: float
    start: float = 0.0
    end: float = math.inf
    link: str | None = None
    node_id: int = 0
    kind: str = field(default="link_degradation", init=False)

    def __post_init__(self):
        if self.factor < 1.0:
            raise ValueError("degradation factor must be >= 1")


@dataclass(frozen=True)
class StragglerGpu:
    """One GPU's busy work runs ``slowdown``× slower over a window."""

    rank: int
    slowdown: float
    start: float = 0.0
    end: float = math.inf
    node_id: int = 0
    kind: str = field(default="straggler", init=False)

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1")


@dataclass(frozen=True)
class GatherReplyLoss:
    """Gather replies are lost with ``probability`` over a window.

    Purely transient: the requester re-issues the gather after a timeout
    (:data:`repro.config.GATHER_RETRY_TIMEOUT`) with exponential backoff,
    charging only simulated time — the gathered data is bit-identical to a
    fault-free run.  ``node_id=None`` applies to every machine node.
    """

    probability: float
    start: float = 0.0
    end: float = math.inf
    max_retries: int = config.GATHER_RETRY_MAX
    node_id: int | None = None
    kind: str = field(default="gather_reply_loss", init=False)

    def __post_init__(self):
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")


@dataclass(frozen=True)
class RankFailure:
    """GPU ``rank`` of machine node ``node_id`` dies at simulated ``time``.

    Permanent: the trainers detect the failure at the next iteration
    boundary (plus the :data:`repro.config.FAULT_DETECT_SECONDS` watchdog
    timeout) and run their recovery policy — checkpoint-based restart on a
    replacement GPU, or elastic shrink onto the surviving ranks.
    """

    rank: int
    time: float
    node_id: int = 0
    kind: str = field(default="rank_failure", init=False)


_EVENT_KINDS = {
    "link_degradation": LinkDegradation,
    "straggler": StragglerGpu,
    "gather_reply_loss": GatherReplyLoss,
    "rank_failure": RankFailure,
}

#: every event type a plan may carry (public alias for isinstance checks)
FaultEvent = (LinkDegradation, StragglerGpu, GatherReplyLoss, RankFailure)


@dataclass
class FaultPlan:
    """An ordered schedule of fault events plus the injector's RNG seed.

    The ``seed`` drives only the injector's *private* random stream (gather
    reply-loss draws); training RNG streams are never touched, which is what
    makes transient-fault runs bit-identical to fault-free runs in their
    trained weights.
    """

    events: list = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a fault event: {ev!r}")

    @property
    def empty(self) -> bool:
        """True when the plan schedules no events at all."""
        return not self.events

    def __bool__(self) -> bool:
        return not self.empty

    def of_kind(self, cls) -> list:
        """All events of one event class, in schedule order."""
        return [ev for ev in self.events if isinstance(ev, cls)]

    # -- serialisation (run-report embedding / reproduction) -----------------

    def to_config(self) -> dict:
        """JSON-safe dict; ``inf`` windows become the string ``"inf"``."""
        rows = []
        for ev in self.events:
            row = asdict(ev)
            for key, value in row.items():
                if isinstance(value, float) and math.isinf(value):
                    row[key] = "inf"
            rows.append(row)
        return {"seed": self.seed, "events": rows}

    @classmethod
    def from_config(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_config` (exact round trip)."""
        events = []
        for row in data.get("events", ()):
            row = dict(row)
            kind = row.pop("kind")
            ev_cls = _EVENT_KINDS[kind]
            valid = {f.name for f in fields(ev_cls) if f.init}
            kwargs = {
                k: (math.inf if v == "inf" else v)
                for k, v in row.items()
                if k in valid
            }
            events.append(ev_cls(**kwargs))
        return cls(events=events, seed=int(data.get("seed", 0)))
