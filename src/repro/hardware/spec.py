"""Hardware specifications and the DGX-A100 preset.

The paper's testbed (§IV, Fig. 6): one DGX-A100 with 8 NVIDIA A100 GPUs, all
connected to NVSwitch (300 GB/s unidirectional NVLink per GPU), two AMD Rome
7742 CPUs, and PCIe 4.0 switches each shared by 2 GPUs and 2 ConnectX-6 NICs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config


@dataclass(frozen=True)
class GpuSpec:
    """Capabilities of a single GPU."""

    name: str
    memory_capacity: int
    dense_flops: float
    sparse_bytes_per_s: float
    elementwise_bytes_per_s: float
    hbm_random_read_bw: float
    sample_edges_per_s: float
    hash_ops_per_s: float
    kernel_launch_overhead: float


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point or switched link."""

    kind: str  #: 'nvlink', 'pcie', 'ib'
    bandwidth: float  #: unidirectional bytes/s
    latency: float  #: seconds per message


@dataclass(frozen=True)
class NodeSpec:
    """A full machine node."""

    name: str
    num_gpus: int
    gpu: GpuSpec
    nvlink: LinkSpec
    pcie: LinkSpec
    gpus_per_pcie_switch: int
    inter_node: LinkSpec
    #: number of NICs (for multi-node bandwidth aggregation)
    num_nics: int = 8

    @property
    def pcie_bw_per_gpu_shared(self) -> float:
        """Host bandwidth per GPU when all GPUs under a switch stream."""
        return self.pcie.bandwidth / self.gpus_per_pcie_switch


def a100() -> GpuSpec:
    """A100-40GB spec with the calibrated throughput constants."""
    return GpuSpec(
        name="A100-40GB",
        memory_capacity=config.GPU_MEMORY_CAPACITY,
        dense_flops=config.GPU_DENSE_FLOPS,
        sparse_bytes_per_s=config.GPU_SPARSE_BYTES_PER_S,
        elementwise_bytes_per_s=config.GPU_ELEMENTWISE_BYTES_PER_S,
        hbm_random_read_bw=config.HBM_RANDOM_READ_BW_SAT,
        sample_edges_per_s=config.GPU_SAMPLE_EDGES_PER_S,
        hash_ops_per_s=config.GPU_HASH_OPS_PER_S,
        kernel_launch_overhead=config.KERNEL_LAUNCH_OVERHEAD,
    )


def dgx_a100(num_gpus: int = config.GPUS_PER_NODE) -> NodeSpec:
    """The paper's testbed: DGX-A100 with ``num_gpus`` A100s on NVSwitch."""
    return NodeSpec(
        name="DGX-A100",
        num_gpus=num_gpus,
        gpu=a100(),
        nvlink=LinkSpec(
            kind="nvlink",
            bandwidth=config.NVLINK_UNIDIR_BW,
            latency=config.P2P_BASE_LATENCY,
        ),
        pcie=LinkSpec(
            kind="pcie",
            bandwidth=config.PCIE_GEN4_X16_BW,
            latency=config.PCIE_LATENCY,
        ),
        gpus_per_pcie_switch=config.GPUS_PER_PCIE_SWITCH,
        inter_node=LinkSpec(
            kind="ib",
            bandwidth=config.INTER_NODE_BW,
            latency=config.INTER_NODE_LATENCY,
        ),
    )
