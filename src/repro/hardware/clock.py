"""Simulated per-device clocks and phase timelines.

Every device (GPU or host CPU) owns a :class:`SimClock`.  Ops advance the
clock of the device they run on by the simulated duration the cost model
assigns them; each advance is recorded as a :class:`Span` on the shared
:class:`Timeline`.  GPU-utilization traces (paper Fig. 12) and epoch-time
breakdowns (Fig. 9/11) are computed from these spans.

A span's ``busy`` flag distinguishes time the device spends *computing* from
time it spends *waiting* (e.g. a GPU idling while the host CPU samples, the
DGL/PyG failure mode the paper highlights).

Spans optionally carry a ``category`` and an ``args`` metadata dict — these
flow straight into the Chrome trace-event export
(:func:`repro.telemetry.trace.export_chrome_trace`), where ``args`` shows up
in the Perfetto span details pane.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One contiguous interval of (simulated) device activity."""

    device: str
    start: float
    end: float
    phase: str
    busy: bool = True
    #: coarse grouping for trace viewers (e.g. "sampling", "comm", "compute")
    category: str = ""
    #: free-form metadata (bytes moved, rows gathered, ...) for the trace
    args: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only log of spans across all devices.

    Besides the flat ``spans`` list, the timeline maintains incremental
    per-device and per-(phase, device) indexes so that ``device_spans`` and
    ``phase_total`` — called per sampling window by the utilization trace and
    per phase by every breakdown — do not re-scan the full span log.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._by_device: dict[str, list[Span]] = {}
        self._phase_device_total: dict[tuple[str, str], float] = {}

    def record(self, span: Span) -> None:
        self.spans.append(span)
        self._by_device.setdefault(span.device, []).append(span)
        key = (span.phase, span.device)
        self._phase_device_total[key] = (
            self._phase_device_total.get(key, 0.0) + span.duration
        )

    def devices(self) -> list[str]:
        """Device names in first-seen order."""
        return list(self._by_device)

    def device_spans(self, device: str) -> list[Span]:
        """All spans of a device, in recording (== time) order."""
        return list(self._by_device.get(device, ()))

    def phase_total(self, phase: str, device: str | None = None) -> float:
        """Total simulated time spent in ``phase`` (optionally per device)."""
        if device is not None:
            return self._phase_device_total.get((phase, device), 0.0)
        return sum(
            t
            for (p, _), t in self._phase_device_total.items()
            if p == phase
        )

    def phase_breakdown(self, device: str | None = None) -> dict[str, float]:
        """Map phase name -> total simulated seconds."""
        out: dict[str, float] = {}
        for (phase, dev), t in self._phase_device_total.items():
            if device is None or dev == device:
                out[phase] = out.get(phase, 0.0) + t
        return out

    def clear(self) -> None:
        self.spans.clear()
        self._by_device.clear()
        self._phase_device_total.clear()


class SimClock:
    """Monotonic simulated clock of one device."""

    def __init__(self, device: str, timeline: Timeline | None = None):
        self.device = device
        self.now = 0.0
        self.timeline = timeline
        #: optional ``(dt, phase, now) -> dt`` hook that dilates busy time —
        #: how straggler-GPU faults slow one device without touching any op
        self.scale_hook = None

    def advance(
        self,
        dt: float,
        phase: str = "other",
        busy: bool = True,
        category: str = "",
        args: dict | None = None,
    ) -> float:
        """Advance by ``dt`` seconds, logging a span; returns new ``now``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        if self.scale_hook is not None and busy and dt > 0:
            scaled = self.scale_hook(dt, phase, self.now)
            if scaled != dt and dt > 0:
                # stamp the dilation factor so the performance analyzer's
                # "remove straggler" what-if knob can undo exactly this span
                args = {**(args or {}), "dilation": scaled / dt}
            dt = scaled
        start = self.now
        self.now = start + dt
        if self.timeline is not None and dt > 0:
            self.timeline.record(
                Span(self.device, start, self.now, phase, busy,
                     category=category, args=args)
            )
        return self.now

    def wait_until(
        self,
        t: float,
        phase: str = "wait",
        category: str = "idle",
        args: dict | None = None,
    ) -> float:
        """Idle (non-busy) until simulated time ``t`` if it is in the future.

        ``phase`` distinguishes *why* the device stalled — e.g. the
        ``allreduce_wait`` barrier of a collective whose ranks arrive with
        skewed clocks — so stalls show up as their own slice in phase
        breakdowns instead of vanishing into a generic wait.
        """
        if t > self.now:
            start = self.now
            self.now = t
            if self.timeline is not None:
                self.timeline.record(
                    Span(self.device, start, t, phase, busy=False,
                         category=category, args=args)
                )
        return self.now

    def reset(self) -> None:
        self.now = 0.0
