"""Simulated per-device clocks and phase timelines.

Every device (GPU or host CPU) owns a :class:`SimClock`.  Ops advance the
clock of the device they run on by the simulated duration the cost model
assigns them; each advance is recorded as a :class:`Span` on the shared
:class:`Timeline`.  GPU-utilization traces (paper Fig. 12) and epoch-time
breakdowns (Fig. 9/11) are computed from these spans.

A span's ``busy`` flag distinguishes time the device spends *computing* from
time it spends *waiting* (e.g. a GPU idling while the host CPU samples, the
DGL/PyG failure mode the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One contiguous interval of (simulated) device activity."""

    device: str
    start: float
    end: float
    phase: str
    busy: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only log of spans across all devices."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def device_spans(self, device: str) -> list[Span]:
        """All spans of a device, in recording (== time) order."""
        return [s for s in self.spans if s.device == device]

    def phase_total(self, phase: str, device: str | None = None) -> float:
        """Total simulated time spent in ``phase`` (optionally per device)."""
        return sum(
            s.duration
            for s in self.spans
            if s.phase == phase and (device is None or s.device == device)
        )

    def phase_breakdown(self, device: str | None = None) -> dict[str, float]:
        """Map phase name -> total simulated seconds."""
        out: dict[str, float] = {}
        for s in self.spans:
            if device is None or s.device == device:
                out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out

    def clear(self) -> None:
        self.spans.clear()


class SimClock:
    """Monotonic simulated clock of one device."""

    def __init__(self, device: str, timeline: Timeline | None = None):
        self.device = device
        self.now = 0.0
        self.timeline = timeline

    def advance(self, dt: float, phase: str = "other", busy: bool = True) -> float:
        """Advance by ``dt`` seconds, logging a span; returns new ``now``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        start = self.now
        self.now = start + dt
        if self.timeline is not None and dt > 0:
            self.timeline.record(
                Span(self.device, start, self.now, phase, busy)
            )
        return self.now

    def wait_until(self, t: float, phase: str = "wait") -> float:
        """Idle (non-busy) until simulated time ``t`` if it is in the future."""
        if t > self.now:
            start = self.now
            self.now = t
            if self.timeline is not None:
                self.timeline.record(
                    Span(self.device, start, t, phase, busy=False)
                )
        return self.now

    def reset(self) -> None:
        self.now = 0.0
