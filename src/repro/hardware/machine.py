"""The :class:`SimNode` machine bundle.

A ``SimNode`` is one simulated machine: a :class:`~repro.hardware.spec.NodeSpec`,
its interconnect :class:`~repro.hardware.topology.Topology`, one
:class:`~repro.hardware.memory.DeviceMemory` and one
:class:`~repro.hardware.clock.SimClock` per GPU, a host clock, and a shared
:class:`~repro.hardware.clock.Timeline`.  Everything above this layer (the
DSM library, the graph store, the training pipelines) takes a ``SimNode``.
"""

from __future__ import annotations

from repro.hardware.clock import SimClock, Timeline
from repro.hardware.memory import DeviceMemory
from repro.hardware.spec import NodeSpec, dgx_a100
from repro.hardware.topology import HOST, Topology, build_dgx_topology, gpu_name


class SimNode:
    """One simulated multi-GPU machine node."""

    def __init__(self, spec: NodeSpec | None = None, node_id: int = 0):
        self.spec = spec if spec is not None else dgx_a100()
        self.node_id = node_id
        self.topology: Topology = build_dgx_topology(self.spec)
        self.timeline = Timeline()
        prefix = f"n{node_id}." if node_id else ""
        self.gpu_memory = [
            DeviceMemory(prefix + gpu_name(i), self.spec.gpu.memory_capacity)
            for i in range(self.spec.num_gpus)
        ]
        self.gpu_clock = [
            SimClock(prefix + gpu_name(i), self.timeline)
            for i in range(self.spec.num_gpus)
        ]
        self.host_clock = SimClock(prefix + HOST, self.timeline)
        #: host DRAM ledger (DGX-A100 ships 1-2 TB; we model 1 TB) — used by
        #: host-pinned WholeMemory placements
        self.host_memory = DeviceMemory(prefix + HOST, 1 << 40)
        #: set by :meth:`repro.faults.FaultInjector.install`; ``None`` on a
        #: healthy node (the common case — comm paths check before consulting)
        self.fault_injector = None
        #: lazily-built :class:`repro.sim.DeviceStreams` registry (see the
        #: ``streams`` property); reset together with the clocks
        self._streams = None

    @property
    def num_gpus(self) -> int:
        return self.spec.num_gpus

    @property
    def streams(self):
        """The node's stream registry: per-GPU compute/comm streams, the
        host stream, synthetic trace lanes, and the event loop that drives
        them (:class:`repro.sim.DeviceStreams`)."""
        from repro.sim import streams_for

        return streams_for(self)

    def gpu_names(self) -> list[str]:
        return [m.device for m in self.gpu_memory]

    def reset_clocks(self) -> None:
        """Zero all clocks and clear the timeline (new experiment)."""
        for c in self.gpu_clock:
            c.reset()
        self.host_clock.reset()
        self.timeline.clear()
        self._streams = None

    def sync(self, phase: str = "wait") -> float:
        """Barrier: advance every device clock to the max; returns that time.

        Devices that arrive early record non-busy spans under ``phase`` —
        this is what shows up as idle troughs in the utilization trace.
        Collectives pass a dedicated phase (e.g. ``allreduce_wait``) so
        their entry stalls are distinguishable from generic waits.
        """
        t = max([c.now for c in self.gpu_clock] + [self.host_clock.now])
        for c in self.gpu_clock:
            c.wait_until(t, phase=phase)
        self.host_clock.wait_until(t, phase=phase)
        return t

    def total_memory_usage(self) -> int:
        return sum(m.used for m in self.gpu_memory)

    def memory_usage_by_tag(self) -> dict[str, int]:
        """Aggregate per-tag usage over all GPUs (Table IV numerator)."""
        out: dict[str, int] = {}
        for m in self.gpu_memory:
            for tag, n in m.usage_by_tag().items():
                out[tag] = out.get(tag, 0) + n
        return out
