"""Cost model: converts op work descriptors into simulated seconds.

This module is the heart of the performance-simulation layer.  Every formula
is anchored to a number the paper publishes:

- **Pointer-chase latency** (Table I): a chain of dependent random accesses
  cannot be pipelined, so total time = accesses x per-access latency.  P2P
  latency starts at 1.35 us for an 8 GB footprint and creeps up ~0.05 us per
  footprint doubling; UM latency starts at 20.8 us (page-fault service) and
  grows ~3.75 us per doubling.

- **Random-gather bandwidth** (Fig. 8): independent random reads *are*
  pipelined, so throughput is bandwidth-bound.  BusBW grows linearly with the
  contiguous segment size until ~64 B, saturating near 230 GB/s for >=128 B
  segments.  AlgoBW = BusBW x N/(N-1) because 1/N of a uniform gather is
  local and never crosses NVLink.

- **Kernels**: fixed launch overhead plus work/throughput, with per-kernel
  throughput constants in :mod:`repro.config`.
"""

from __future__ import annotations

import math

from repro import config


# ---------------------------------------------------------------------------
# Latency (dependent-access) models — paper Table I
# ---------------------------------------------------------------------------

def _doublings(footprint_bytes: float) -> float:
    """log2 of footprint relative to the 8 GB anchor, floored at 0."""
    ratio = max(float(footprint_bytes), 1.0) / config.LATENCY_ANCHOR_BYTES
    return max(0.0, math.log2(ratio))


def p2p_access_latency(footprint_bytes: float) -> float:
    """GPUDirect P2P load latency for one dependent remote access."""
    return config.P2P_BASE_LATENCY + config.P2P_LATENCY_PER_DOUBLING * _doublings(
        footprint_bytes
    )


def um_access_latency(footprint_bytes: float) -> float:
    """Unified-memory access latency (page fault + migration) per access.

    The UM pointer chase touches a fresh page almost every step (random
    addresses over a huge footprint), so nearly every access pays the fault.
    """
    return config.UM_BASE_LATENCY + config.UM_LATENCY_PER_DOUBLING * _doublings(
        footprint_bytes
    )


def local_access_latency() -> float:
    """Local HBM random-access latency for one dependent access."""
    return config.LOCAL_HBM_LATENCY


def pointer_chase_time(
    num_accesses: int, footprint_bytes: float, mechanism: str
) -> float:
    """Total time of a dependent random-access chain (Table I experiment).

    ``mechanism`` is ``'p2p'``, ``'um'`` or ``'local'``.
    """
    if mechanism == "p2p":
        lat = p2p_access_latency(footprint_bytes)
    elif mechanism == "um":
        lat = um_access_latency(footprint_bytes)
    elif mechanism == "local":
        lat = local_access_latency()
    else:
        raise ValueError(f"unknown access mechanism: {mechanism!r}")
    return num_accesses * lat


# ---------------------------------------------------------------------------
# Bandwidth (independent-access) models — paper Fig. 8
# ---------------------------------------------------------------------------

def random_read_bus_bw(segment_bytes: float) -> float:
    """NVLink BusBW of a random gather with the given segment size.

    Linear in the segment size below ~81 B (181 GB/s at 64 B), saturating at
    230 GB/s — the Fig. 8 curve.
    """
    return min(segment_bytes * config.RANDOM_READ_BW_SLOPE, config.RANDOM_READ_BW_SAT)


def random_read_algo_bw(segment_bytes: float, num_gpus: int) -> float:
    """AlgoBW seen by a uniform random gather across ``num_gpus`` GPUs.

    Only (N-1)/N of the traffic crosses NVLink, so the algorithm-visible
    bandwidth exceeds BusBW by N/(N-1)  (paper §IV-C1).
    """
    if num_gpus <= 1:
        return local_random_read_bw(segment_bytes)
    return random_read_bus_bw(segment_bytes) * num_gpus / (num_gpus - 1)


def local_random_read_bw(segment_bytes: float) -> float:
    """Random-read bandwidth out of local HBM (same saturation shape)."""
    slope = config.HBM_RANDOM_READ_BW_SAT / 96.0  # saturate near 96 B segments
    return min(segment_bytes * slope, config.HBM_RANDOM_READ_BW_SAT)


def gather_time(
    total_bytes: float,
    segment_bytes: float,
    num_gpus: int,
    remote_fraction: float | None = None,
) -> float:
    """Time for one GPU to gather ``total_bytes`` of random segments.

    ``remote_fraction`` defaults to the uniform (N-1)/N split.  The gather is
    bandwidth-bound: remote traffic runs at the Fig. 8 NVLink curve, local
    traffic at HBM speed, and both proceed concurrently (the kernel issues
    loads to all destinations at once), so the slower stream dominates.
    """
    if total_bytes <= 0:
        return config.KERNEL_LAUNCH_OVERHEAD
    if num_gpus <= 1:
        return (
            config.KERNEL_LAUNCH_OVERHEAD
            + total_bytes / local_random_read_bw(segment_bytes)
        )
    if remote_fraction is None:
        remote_fraction = (num_gpus - 1) / num_gpus
    remote_bytes = total_bytes * remote_fraction
    local_bytes = total_bytes - remote_bytes
    t_remote = remote_bytes / random_read_bus_bw(segment_bytes)
    t_local = local_bytes / local_random_read_bw(segment_bytes)
    return config.KERNEL_LAUNCH_OVERHEAD + max(t_remote, t_local)


def cached_gather_time(
    local_bytes: float, remote_bytes: float, segment_bytes: float
) -> float:
    """One gather kernel split between local-HBM and remote-NVLink streams.

    This is the cost of a cache-aware gather (:mod:`repro.dsm.feature_cache`):
    rows served by the per-rank hot-row cache — plus rows whose home partition
    is the calling GPU — ride the local HBM random-read curve, while cache
    misses owned by peers pay the Fig. 8 NVLink curve.  Both streams proceed
    concurrently inside the kernel, so the slower one dominates, exactly as in
    :func:`gather_time` (to which this degenerates when the cache is empty).
    """
    if local_bytes + remote_bytes <= 0:
        return config.KERNEL_LAUNCH_OVERHEAD
    t_remote = remote_bytes / random_read_bus_bw(segment_bytes)
    t_local = local_bytes / local_random_read_bw(segment_bytes)
    return config.KERNEL_LAUNCH_OVERHEAD + max(t_remote, t_local)


def host_pinned_gather_time(total_bytes: float, segment_bytes: float) -> float:
    """GPU gather of random segments out of *host-pinned* memory.

    This is the zero-copy alternative to device-resident WholeMemory: loads
    cross the shared PCIe uplink (16 GB/s per GPU when all stream, paper
    §III-B), with the same small-segment efficiency loss as NVLink but a
    far lower ceiling — the 18.75x bandwidth argument.
    """
    if total_bytes <= 0:
        return config.KERNEL_LAUNCH_OVERHEAD
    # PCIe random reads reach line rate around the same 128 B segment knee
    slope = config.PCIE_BW_PER_GPU_SHARED / 128.0
    bw = min(segment_bytes * slope, config.PCIE_BW_PER_GPU_SHARED)
    return config.KERNEL_LAUNCH_OVERHEAD + total_bytes / bw


def zero_copy_host_bw(segment_bytes: float, pinned: bool = True) -> float:
    """PCIe random-read bandwidth of a zero-copy gather out of host memory.

    The UVA/zero-copy regime of the out-of-core tier (PyTorch-Direct):
    GPU threads load host rows directly over the shared PCIe uplink.  The
    curve keeps the Fig. 8 shape — BusBW proportional to the contiguous
    segment below the 128 B knee, saturating at the 16 GB/s shared line
    rate.  Pageable memory bounces through a driver staging buffer and
    loses ``HOST_PAGEABLE_BW_FACTOR`` of the pinned rate.
    """
    slope = config.PCIE_BW_PER_GPU_SHARED / config.ZERO_COPY_SEG_KNEE_BYTES
    bw = min(segment_bytes * slope, config.PCIE_BW_PER_GPU_SHARED)
    if not pinned:
        bw *= config.HOST_PAGEABLE_BW_FACTOR
    return bw


def zero_copy_gather_time(
    total_bytes: float, segment_bytes: float, pinned: bool = True
) -> float:
    """GPU gather of random host rows via zero-copy PCIe loads."""
    if total_bytes <= 0:
        return config.KERNEL_LAUNCH_OVERHEAD
    return config.KERNEL_LAUNCH_OVERHEAD + total_bytes / zero_copy_host_bw(
        segment_bytes, pinned
    )


def disk_staging_time(total_bytes: float, num_requests: int | None = None) -> float:
    """Disk->host staging cost for cold-tier rows.

    The streaming loader sorts cold rows and coalesces them into aligned
    ``DISK_BLOCK_BYTES`` reads, so the request count defaults to the block
    count; each request pays the NVMe latency, and the payload rides the
    sequential-read bandwidth of the scratch RAID.
    """
    if total_bytes <= 0:
        return 0.0
    if num_requests is None:
        num_requests = math.ceil(total_bytes / config.DISK_BLOCK_BYTES)
    num_requests = max(1, int(num_requests))
    return (
        num_requests * config.DISK_READ_LATENCY
        + total_bytes / config.DISK_READ_BW
    )


def tiered_gather_time(
    host_bytes: float,
    disk_bytes: float,
    segment_bytes: float,
    pinned: bool = True,
) -> float:
    """One gather split across warm (pinned-host) and cold (disk) rows.

    Warm rows are zero-copy PCIe reads.  Cold rows are first staged
    disk->host, then cross PCIe like warm rows — the two hops of the same
    rows serialize.  The warm stream proceeds concurrently with the cold
    chain (independent PCIe transactions interleave), so the slower side
    dominates, exactly as in :func:`gather_time`.
    """
    if host_bytes <= 0 and disk_bytes <= 0:
        return config.KERNEL_LAUNCH_OVERHEAD
    bw = zero_copy_host_bw(segment_bytes, pinned)
    t_warm = host_bytes / bw
    t_cold = 0.0
    if disk_bytes > 0:
        t_cold = disk_staging_time(disk_bytes) + disk_bytes / bw
    return config.KERNEL_LAUNCH_OVERHEAD + max(t_warm, t_cold)


# ---------------------------------------------------------------------------
# Bulk-transfer models
# ---------------------------------------------------------------------------

def stream_transfer_time(nbytes: float, bandwidth: float, latency: float) -> float:
    """Time for one contiguous (DMA-style) transfer over a link."""
    if nbytes <= 0:
        return 0.0
    return latency + nbytes / bandwidth


def pcie_host_to_gpu_time(nbytes: float, shared: bool = True) -> float:
    """Host->GPU copy over PCIe 4.0 x16; ``shared`` halves bandwidth
    (2 GPUs per uplink, paper §III-B)."""
    bw = config.PCIE_BW_PER_GPU_SHARED if shared else config.PCIE_GEN4_X16_BW
    return stream_transfer_time(nbytes, bw, config.PCIE_LATENCY)


def nvlink_p2p_stream_time(nbytes: float) -> float:
    """GPU->GPU contiguous copy over NVLink."""
    return stream_transfer_time(
        nbytes, config.NVLINK_UNIDIR_BW, config.P2P_BASE_LATENCY
    )


# ---------------------------------------------------------------------------
# Kernel models
# ---------------------------------------------------------------------------

def kernel_time(work: float, rate: float) -> float:
    """Generic kernel: launch overhead + work units / rate."""
    if work < 0:
        raise ValueError("work must be non-negative")
    return config.KERNEL_LAUNCH_OVERHEAD + work / rate


def dense_compute_time(flops: float) -> float:
    """Dense GEMM/attention compute time."""
    return kernel_time(flops, config.GPU_DENSE_FLOPS)


def sparse_compute_time(bytes_touched: float) -> float:
    """Bandwidth-bound sparse kernel (g-SpMM / g-SDDMM) time."""
    return kernel_time(bytes_touched, config.GPU_SPARSE_BYTES_PER_S)


def elementwise_time(bytes_touched: float) -> float:
    """Elementwise kernel (activations, optimizer steps) time."""
    return kernel_time(bytes_touched, config.GPU_ELEMENTWISE_BYTES_PER_S)


def gpu_sample_time(edges_considered: float) -> float:
    """Fused multi-GPU sampling kernel time (path-doubling sampler)."""
    return kernel_time(edges_considered, config.GPU_SAMPLE_EDGES_PER_S)


def hash_table_time(num_ops: float) -> float:
    """AppendUnique hash insert/probe kernel time."""
    return kernel_time(num_ops, config.GPU_HASH_OPS_PER_S)


def sort_unique_time(num_keys: float) -> float:
    """Sort-based unique (the alternative the paper rejects, §III-C2)."""
    return kernel_time(num_keys, config.GPU_SORT_UNIQUE_KEYS_PER_S)


def backward_scatter_time(plain_rows: float, atomic_rows: float,
                          row_bytes: float) -> float:
    """g-SpMM backward scatter: plain stores vs contended atomic adds.

    The duplicate-count optimisation (paper §III-C4) turns
    sampled-exactly-once rows into plain stores; the remainder pay the
    atomic read-modify-write premium.
    """
    bytes_plain = plain_rows * row_bytes
    bytes_atomic = atomic_rows * row_bytes * config.ATOMIC_ADD_COST_FACTOR
    return kernel_time(bytes_plain + bytes_atomic,
                       config.GPU_SPARSE_BYTES_PER_S)


# ---------------------------------------------------------------------------
# DSM setup — paper §III-B "tens to one or two hundred ms"
# ---------------------------------------------------------------------------

def dsm_setup_time(total_bytes: float) -> float:
    """One-time cost of cudaMalloc + IPC exchange + pointer-table setup."""
    return config.DSM_SETUP_BASE + config.DSM_SETUP_PER_GB * (
        total_bytes / config.GB
    )


# ---------------------------------------------------------------------------
# Collectives — used by the NCCL-style baseline gather and DDP
# ---------------------------------------------------------------------------

def allreduce_time(nbytes: float, num_ranks: int, bandwidth: float,
                   latency: float) -> float:
    """Ring all-reduce: 2(N-1)/N of the payload crosses the slowest link."""
    if num_ranks <= 1 or nbytes <= 0:
        return 0.0
    traffic = 2 * (num_ranks - 1) / num_ranks * nbytes
    return (
        2 * (num_ranks - 1) * latency
        + traffic / (bandwidth * config.ALLREDUCE_EFFICIENCY)
    )


def chunked_ring_allreduce_time(
    nbytes: float,
    num_ranks: int,
    bandwidth: float,
    latency: float,
    chunk_bytes: float | None = None,
) -> float:
    """One *bucket*'s ring all-reduce, priced with its size regime.

    The ring runs 2(N-1) steps (reduce-scatter then all-gather); each step
    moves one 1/N shard of the bucket over the slowest link, split into
    pipeline chunks of ``chunk_bytes``.  The collective additionally pays a
    fixed launch overhead.  Consequences the bucket-cap sweep measures:

    - **latency regime** — a tiny bucket still pays the launch plus
      2(N-1) hop latencies, so many small buckets are visibly bad;
    - **bandwidth regime** — a large bucket amortises those fixed costs
      and approaches the classic 2(N-1)/N * nbytes / bandwidth bound,
      with a mild per-chunk protocol overhead.

    Payloads under ``NCCL_LL_THRESHOLD`` use the LL protocol: per-hop
    latency shrinks by ``NCCL_LL_LATENCY_FACTOR`` while the flag-interleaved
    stores halve the usable bandwidth — exactly why DDP's *last* (small)
    bucket drains quickly once backward ends.
    """
    if num_ranks <= 1 or nbytes <= 0:
        return 0.0
    if nbytes < config.NCCL_LL_THRESHOLD:
        latency = latency * config.NCCL_LL_LATENCY_FACTOR
        bandwidth = bandwidth * config.NCCL_LL_BW_FACTOR
    chunk = config.RING_CHUNK_BYTES if chunk_bytes is None else chunk_bytes
    shard = nbytes / num_ranks
    chunks_per_step = max(1, math.ceil(shard / max(chunk, 1.0)))
    eff_bw = bandwidth * config.ALLREDUCE_EFFICIENCY
    per_step = (
        latency
        + chunks_per_step * config.RING_CHUNK_OVERHEAD
        + shard / eff_bw
    )
    return config.NCCL_COLL_LAUNCH_OVERHEAD + 2 * (num_ranks - 1) * per_step

def ring_broadcast_time(
    nbytes: float,
    num_ranks: int,
    bandwidth: float,
    latency: float,
    chunk_bytes: float | None = None,
) -> float:
    """One shard's pipelined ring broadcast to ``num_ranks - 1`` peers.

    The CAGNET full-graph SpMM broadcasts each rank's feature block around
    the replica-group ring; a pipelined broadcast relays the shard in
    ``chunk_bytes`` pieces, so for realistic shard sizes the cost is one
    traversal of the shard over the slowest link plus the per-hop latencies
    — (N-1) steps, each moving the shard once (no reduce-scatter half, so
    half the steps of :func:`chunked_ring_allreduce_time`).  Small shards
    ride the same NCCL LL regime as the all-reduce.
    """
    if num_ranks <= 1 or nbytes <= 0:
        return 0.0
    if nbytes < config.NCCL_LL_THRESHOLD:
        latency = latency * config.NCCL_LL_LATENCY_FACTOR
        bandwidth = bandwidth * config.NCCL_LL_BW_FACTOR
    chunk = config.RING_CHUNK_BYTES if chunk_bytes is None else chunk_bytes
    chunks_per_step = max(1, math.ceil(nbytes / max(chunk, 1.0)))
    eff_bw = bandwidth * config.ALLREDUCE_EFFICIENCY
    per_step = (
        latency
        + chunks_per_step * config.RING_CHUNK_OVERHEAD
        + nbytes / eff_bw
    )
    return config.NCCL_COLL_LAUNCH_OVERHEAD + (num_ranks - 1) * per_step
