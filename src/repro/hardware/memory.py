"""Per-device memory allocator with usage accounting.

The paper measures per-GPU memory consumption with ``nvidia-smi`` at
different training phases (Table IV: graph structure 3.1 GB, node features
6.7 GB, training state 20.4 GB per GPU for ogbn-papers100M).  This allocator
reproduces that accounting: every allocation carries a *tag* ("graph",
"feature", "training", ...) and the per-tag totals regenerate the table.

The allocator is a simple first-fit bump/free-list model — sufficient because
we only need capacity enforcement and accounting, not fragmentation studies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation exceeds the device's remaining capacity."""


@dataclass(frozen=True)
class Allocation:
    """A live allocation on one device."""

    alloc_id: int
    device: str
    nbytes: int
    tag: str


class DeviceMemory:
    """Tracks allocations on one device against a fixed capacity."""

    _ids = itertools.count()

    def __init__(self, device: str, capacity: int):
        self.device = device
        self.capacity = int(capacity)
        self._live: dict[int, Allocation] = {}
        self.used = 0
        #: high-water mark, like the peak ``nvidia-smi`` reading
        self.peak = 0

    def allocate(self, nbytes: int, tag: str = "untagged") -> Allocation:
        """Reserve ``nbytes``; raises :class:`OutOfDeviceMemory` on overflow."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.used + nbytes > self.capacity:
            raise OutOfDeviceMemory(
                f"{self.device}: requested {nbytes} bytes with "
                f"{self.capacity - self.used} free of {self.capacity}"
            )
        alloc = Allocation(next(self._ids), self.device, nbytes, tag)
        self._live[alloc.alloc_id] = alloc
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation.  Double-free raises ``KeyError``."""
        if alloc.alloc_id not in self._live:
            raise KeyError(f"allocation {alloc.alloc_id} is not live")
        del self._live[alloc.alloc_id]
        self.used -= alloc.nbytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def usage_by_tag(self) -> dict[str, int]:
        """Live bytes per tag — the Table IV accounting."""
        out: dict[str, int] = {}
        for a in self._live.values():
            out[a.tag] = out.get(a.tag, 0) + a.nbytes
        return out

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())
