"""Interconnect topology of a simulated node.

Models the DGX-A100 wiring of paper Fig. 6 as a graph:

- every GPU has one NVLink trunk into the NVSwitch fabric (all-to-all
  GPU<->GPU at full per-GPU NVLink bandwidth);
- GPUs hang in pairs off PCIe switches; each switch has one x16 uplink to
  the host, shared by its 2 GPUs (and 2 NICs);
- the host CPU/DRAM is one endpoint.

`path()` resolves the link sequence between two endpoints;
`effective_bandwidth()` returns the bottleneck bandwidth of a path given how
many peers share each hop — this is what makes host->GPU streaming top out at
16 GB/s per GPU when all 8 GPUs read concurrently (paper §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.hardware.spec import LinkSpec, NodeSpec


@dataclass(frozen=True)
class Link:
    """A physical link instance in the topology graph."""

    name: str
    spec: LinkSpec
    #: maximum number of concurrent users this link is shared by in the
    #: worst case (e.g. a PCIe uplink shared by 2 GPUs)
    max_sharers: int = 1


def gpu_name(i: int) -> str:
    return f"gpu{i}"


HOST = "host"
NVSWITCH = "nvswitch"


class Topology:
    """Endpoint/link graph with path and bandwidth resolution."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        #: per-link bandwidth degradation factors (fault injection): a link
        #: named here delivers ``spec.bandwidth / factor``
        self.degradation: dict[str, float] = {}

    def add_endpoint(self, name: str, kind: str) -> None:
        self.graph.add_node(name, kind=kind)

    def add_link(self, a: str, b: str, link: Link) -> None:
        self.graph.add_edge(a, b, link=link)

    def endpoints(self, kind: str | None = None) -> list[str]:
        if kind is None:
            return list(self.graph.nodes)
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == kind]

    def path(self, src: str, dst: str) -> list[Link]:
        """Links along the (unique shortest) route from ``src`` to ``dst``."""
        nodes = nx.shortest_path(self.graph, src, dst)
        return [
            self.graph.edges[u, v]["link"] for u, v in zip(nodes, nodes[1:])
        ]

    def effective_bandwidth(self, src: str, dst: str, concurrent: bool = True) -> float:
        """Bottleneck bandwidth between two endpoints.

        With ``concurrent=True`` every link is divided by its worst-case
        sharer count (all GPUs streaming at once, the paper's measurement
        condition); otherwise the path gets each link exclusively.
        """
        bws = []
        for link in self.path(src, dst):
            share = link.max_sharers if concurrent else 1
            bw = link.spec.bandwidth / share
            bw /= self.degradation.get(link.name, 1.0)
            bws.append(bw)
        return min(bws)

    def degrade(self, link_name: str, factor: float) -> None:
        """Degrade one named link's bandwidth to ``1/factor`` of spec.

        Factors compose multiplicatively; ``factor=1`` is a no-op.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self.degradation[link_name] = (
            self.degradation.get(link_name, 1.0) * factor
        )

    def clear_degradation(self) -> None:
        self.degradation.clear()

    def link_names(self) -> list[str]:
        """All physical link names in the topology (degradation targets)."""
        return [
            d["link"].name for _, _, d in self.graph.edges(data=True)
        ]

    def latency(self, src: str, dst: str) -> float:
        """Sum of per-hop message latencies along the route."""
        return sum(link.spec.latency for link in self.path(src, dst))


def build_dgx_topology(spec: NodeSpec) -> Topology:
    """Build the Fig. 6 DGX-A100 topology for ``spec.num_gpus`` GPUs."""
    topo = Topology()
    topo.add_endpoint(HOST, kind="host")
    topo.add_endpoint(NVSWITCH, kind="switch")
    # ceil division: an odd GPU count (elastic shrink leaves e.g. 7 GPUs)
    # still needs a switch for the unpaired GPU
    num_switches = max(1, -(-spec.num_gpus // spec.gpus_per_pcie_switch))
    for s in range(num_switches):
        sw = f"pcie_sw{s}"
        topo.add_endpoint(sw, kind="switch")
        # one x16 uplink to the host, shared by the GPUs under this switch
        topo.add_link(
            sw,
            HOST,
            Link(
                name=f"pcie_uplink{s}",
                spec=spec.pcie,
                max_sharers=spec.gpus_per_pcie_switch,
            ),
        )
    for g in range(spec.num_gpus):
        name = gpu_name(g)
        topo.add_endpoint(name, kind="gpu")
        # NVLink trunk into NVSwitch (exclusive per GPU)
        topo.add_link(
            name, NVSWITCH, Link(name=f"nvlink{g}", spec=spec.nvlink)
        )
        # PCIe x16 down-link from the pair switch (exclusive per GPU)
        sw = f"pcie_sw{g // spec.gpus_per_pcie_switch}"
        topo.add_link(
            name, sw, Link(name=f"pcie_down{g}", spec=spec.pcie)
        )
    return topo
