"""Simulated multi-GPU hardware substrate.

This package stands in for the DGX-A100 node the paper evaluates on.  It
models the pieces of the machine that WholeGraph's performance story depends
on:

- per-GPU device memory with an allocator and usage accounting
  (:mod:`repro.hardware.memory`),
- the NVSwitch / PCIe / host interconnect topology
  (:mod:`repro.hardware.topology`),
- per-device simulated clocks and a phase timeline
  (:mod:`repro.hardware.clock`),
- the cost model converting work into simulated time
  (:mod:`repro.hardware.costmodel`),
- node presets (:mod:`repro.hardware.spec`) and the :class:`SimNode`
  machine bundle (:mod:`repro.hardware.machine`).
"""

from repro.hardware.spec import GpuSpec, LinkSpec, NodeSpec, dgx_a100
from repro.hardware.memory import DeviceMemory, Allocation, OutOfDeviceMemory
from repro.hardware.clock import SimClock, Timeline, Span
from repro.hardware.topology import Topology, build_dgx_topology
from repro.hardware.machine import SimNode
from repro.hardware import costmodel

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "NodeSpec",
    "dgx_a100",
    "DeviceMemory",
    "Allocation",
    "OutOfDeviceMemory",
    "SimClock",
    "Timeline",
    "Span",
    "Topology",
    "build_dgx_topology",
    "SimNode",
    "costmodel",
]
