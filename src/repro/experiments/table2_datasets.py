"""Table II — dataset statistics.

Reports the full-scale statistics of the four evaluation datasets alongside
the scaled synthetic instances the experiments actually run on (the scaled
instances preserve average degree and feature dimensionality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ALL_DATASETS, get_dataset
from repro.graph.datasets import dataset_spec
from repro.telemetry.report import format_table


@dataclass
class DatasetRow:
    name: str
    full_nodes: int
    full_edges: int
    feature_dim: int
    scaled_nodes: int
    scaled_edges: int
    scaled_avg_degree: float
    full_avg_degree: float


def run(num_nodes: int = 20_000, seed: int = 0) -> list[DatasetRow]:
    rows = []
    for name in ALL_DATASETS:
        spec = dataset_spec(name)
        ds = get_dataset(name, num_nodes, seed)
        rows.append(
            DatasetRow(
                name=name,
                full_nodes=spec.full_nodes,
                full_edges=spec.full_edges,
                feature_dim=spec.feature_dim,
                scaled_nodes=ds.num_nodes,
                scaled_edges=ds.graph.num_edges,
                scaled_avg_degree=ds.graph.num_edges / ds.num_nodes,
                full_avg_degree=spec.avg_degree,
            )
        )
    return rows


def report(rows: list[DatasetRow]) -> str:
    return format_table(
        ["Graph", "Nodes (full)", "Edges (full)", "Features",
         "Nodes (scaled)", "Edges (scaled)", "deg (scaled)", "deg (full)"],
        [
            [r.name, f"{r.full_nodes/1e6:.1f}M",
             f"{r.full_edges/1e6:.1f}M" if r.full_edges < 1e9
             else f"{r.full_edges/1e9:.1f}B",
             r.feature_dim, r.scaled_nodes, r.scaled_edges,
             r.scaled_avg_degree, r.full_avg_degree]
            for r in rows
        ],
        title="Table II: evaluation datasets (full-scale spec vs scaled instance)",
    )


def check_shape(rows: list[DatasetRow]) -> None:
    for r in rows:
        # the scaled instance must roughly preserve the average degree
        # (dedup of the synthetic generator loses some multi-edges)
        assert r.scaled_avg_degree > 0.5 * r.full_avg_degree, r
        assert r.scaled_avg_degree < 1.5 * r.full_avg_degree, r
