"""Fig. 8 — random-read bandwidth of the DSM vs segment size.

The paper's experiment: a 128 GB allocation across 8 GPUs, each GPU gathers
4 GB of randomly-scattered segments, with the contiguous segment size swept
from 4 B to 4096 B.  BusBW grows linearly with segment size up to ~64 B
(181 GB/s) and saturates near 230 GB/s from 128 B; AlgoBW = BusBW · 8/7.

Here each GPU performs a *real* gather on a scaled allocation whose rows are
exactly one segment wide; bandwidth is computed from the simulated gather
time, which depends only on the segment size — so the curve is the
full-scale one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GB
from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import SimNode
from repro.ops.gather import shared_memory_gather
from repro.telemetry.report import format_table
from repro.utils.rng import spawn_rng

#: segment sizes of the paper's sweep (bytes)
SEGMENT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass
class BandwidthPoint:
    segment_bytes: int
    algo_bw_gbs: float
    bus_bw_gbs: float


def run(
    segment_sizes=SEGMENT_SIZES,
    bytes_per_gpu: int = 32 * 1024 * 1024,
    total_rows: int = 1_000_000,
    seed: int = 0,
) -> list[BandwidthPoint]:
    """Sweep the segment size; returns one bandwidth point per size.

    Each GPU gathers a fixed byte volume (the paper gathers 4 GB each; we
    default to 32 MB, far past the point where the kernel-launch overhead
    is amortised), so small segments mean proportionally more rows.
    """
    rng = spawn_rng(seed, "fig8")
    points = []
    for seg in segment_sizes:
        cols = max(1, seg // 4)  # float32 elements per row
        rows_per_gpu = max(1024, bytes_per_gpu // (cols * 4))
        node = SimNode()
        tensor = WholeTensor(
            node, total_rows, cols, dtype=np.float32, tag="bw",
            charge_setup=False,
        )
        per_rank = [
            rng.integers(0, total_rows, size=rows_per_gpu)
            for _ in range(node.num_gpus)
        ]
        _, elapsed = shared_memory_gather(tensor, per_rank, phase="gather")
        gathered_bytes = rows_per_gpu * tensor.row_bytes  # per GPU
        algo = gathered_bytes / elapsed
        bus = algo * (node.num_gpus - 1) / node.num_gpus
        points.append(
            BandwidthPoint(
                segment_bytes=seg,
                algo_bw_gbs=algo / GB,
                bus_bw_gbs=bus / GB,
            )
        )
    return points


def report(points: list[BandwidthPoint]) -> str:
    return format_table(
        ["Segment (B)", "AlgoBW (GB/s)", "BusBW (GB/s)"],
        [[p.segment_bytes, p.algo_bw_gbs, p.bus_bw_gbs] for p in points],
        title="Fig. 8: DSM random-read bandwidth vs segment size",
    )


def check_shape(points: list[BandwidthPoint]) -> None:
    by_seg = {p.segment_bytes: p for p in points}
    # linear regime: BW roughly proportional below 64 B
    if 8 in by_seg and 32 in by_seg:
        ratio = by_seg[32].bus_bw_gbs / by_seg[8].bus_bw_gbs
        assert 3.0 < ratio < 5.0, ratio
    # ~181 GB/s at 64 B
    if 64 in by_seg:
        assert 150 < by_seg[64].bus_bw_gbs < 210, by_seg[64]
    # saturation ~230 GB/s from 128 B up
    for seg in (128, 256, 512, 1024, 2048, 4096):
        if seg in by_seg:
            assert 200 < by_seg[seg].bus_bw_gbs < 260, by_seg[seg]
