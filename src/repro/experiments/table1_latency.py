"""Table I — UM vs GPUDirect P2P pointer-chase latency.

The paper's experiment: allocate 8–128 GB spread across the 8 GPUs, chase a
dependency chain of 100 K random addresses from one GPU, report the mean
per-access latency.  UM pays a page-fault + migration per (almost every)
access; P2P is a hardware load over NVLink.

We run the chase *functionally* on the :class:`UnifiedMemorySpace` page
table (page ownership really migrates) and on the DSM via the cost model;
the reported latencies are the simulated per-access times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GB
from repro.dsm.unified_memory import UnifiedMemorySpace
from repro.hardware import SimNode, costmodel
from repro.telemetry.report import format_table
from repro.utils.rng import spawn_rng

#: the paper's footprint column, in GB
SIZES_GB = (8, 16, 32, 64, 128)

#: paper-reported values for the shape check (us)
PAPER_UM_US = {8: 20.8, 16: 29.6, 32: 32.5, 64: 35.3, 128: 35.8}
PAPER_P2P_US = {8: 1.35, 16: 1.37, 32: 1.43, 64: 1.51, 128: 1.56}


@dataclass
class LatencyRow:
    size_gb: int
    um_us: float
    p2p_us: float


def run(num_accesses: int = 20_000, seed: int = 0,
        sizes_gb=SIZES_GB) -> list[LatencyRow]:
    """Chase ``num_accesses`` dependent random addresses per footprint."""
    rows = []
    rng = spawn_rng(seed, "table1")
    for size_gb in sizes_gb:
        footprint = size_gb * GB
        node = SimNode()
        # UM: functional page-migration model.  Random addresses over the
        # whole footprint mean nearly every access faults.
        um = UnifiedMemorySpace(node, footprint)
        addresses = rng.integers(0, footprint, size=num_accesses)
        t_um = um.access(addresses, rank=0)
        um_lat = t_um / num_accesses

        # P2P: dependent loads through the pointer table; 7/8 of random
        # addresses land on a peer GPU.
        remote = 7 / 8
        t_p2p = remote * costmodel.pointer_chase_time(
            num_accesses, footprint, "p2p"
        ) + (1 - remote) * costmodel.pointer_chase_time(
            num_accesses, footprint, "local"
        )
        p2p_lat = t_p2p / num_accesses
        rows.append(
            LatencyRow(size_gb=size_gb, um_us=um_lat * 1e6,
                       p2p_us=p2p_lat * 1e6)
        )
    return rows


def report(rows: list[LatencyRow]) -> str:
    return format_table(
        ["Memory Size (GB)", "UM (us)", "Peer Access (us)",
         "paper UM", "paper P2P"],
        [
            [r.size_gb, r.um_us, r.p2p_us,
             PAPER_UM_US.get(r.size_gb, float("nan")),
             PAPER_P2P_US.get(r.size_gb, float("nan"))]
            for r in rows
        ],
        title="Table I: UM vs GPUDirect P2P access latency",
    )


def check_shape(rows: list[LatencyRow]) -> None:
    """The paper's qualitative claims, as assertions."""
    for r in rows:
        # UM is an order of magnitude slower than P2P
        assert r.um_us / r.p2p_us > 10, (r.size_gb, r.um_us, r.p2p_us)
        # P2P stays at the ~1 us order of magnitude
        assert 1.0 <= r.p2p_us < 2.0, r.p2p_us
    # both grow (mildly) with footprint
    assert rows[-1].um_us > rows[0].um_us
    assert rows[-1].p2p_us > rows[0].p2p_us
