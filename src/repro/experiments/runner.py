"""CLI experiment runner: regenerate any paper table/figure from the shell.

Usage::

    python -m repro.experiments.runner table1 fig8      # specific experiments
    python -m repro.experiments.runner --list           # what exists
    python -m repro.experiments.runner --all             # everything (slow)

Each experiment prints the paper's rows, runs its shape check, and writes a
:class:`~repro.telemetry.run_report.RunReport` JSON manifest (result rows,
per-phase totals, metrics snapshot) under ``--report-dir`` (default
``runs/``; ``--no-report`` disables).  Manifests from two commits are diffed
by ``benchmarks/compare_runs.py`` to flag perf regressions.  The process
exits non-zero if any shape check fails.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.telemetry import metrics
from repro.telemetry.run_report import (
    RunReport,
    json_safe,
    phase_totals_from_registry,
)

from repro.experiments import (
    ablations,
    recsys,
    fig7_accuracy_curve,
    fig8_bandwidth,
    fig9_breakdown,
    fig10_gather,
    fig11_layers,
    fig12_utilization,
    fig13_scaling,
    table1_latency,
    table2_datasets,
    table3_accuracy,
    table4_memory,
    table5_epoch_time,
)

#: experiment name -> (module, kwargs for a reasonable standalone run)
EXPERIMENTS = {
    "table1": (table1_latency, {}),
    "table2": (table2_datasets, {}),
    "table3": (table3_accuracy, {"num_nodes": 5000}),
    "table4": (table4_memory, {}),
    "table5": (table5_epoch_time, {"num_nodes": 30_000, "iterations": 2}),
    "fig7": (fig7_accuracy_curve, {}),
    "fig8": (fig8_bandwidth, {}),
    "fig9": (fig9_breakdown, {"num_nodes": 30_000, "iterations": 2}),
    "fig10": (fig10_gather, {}),
    "fig11": (fig11_layers, {"num_nodes": 30_000, "iterations": 2}),
    "fig12": (fig12_utilization, {}),
    "fig13": (fig13_scaling, {"num_nodes": 20_000, "iterations": 2}),
    "ablations": (ablations, {}),
    "recsys": (recsys, {"num_users": 600, "epochs": 6}),
}


def run_experiment(name: str, report_dir=None, analyze: bool = False) -> bool:
    """Run one experiment end-to-end; returns True on shape-check success.

    With ``report_dir`` set, a ``<name>.json`` :class:`RunReport` manifest
    is written there: the experiment's serialized rows, the per-phase time
    totals and the full metrics snapshot the run accumulated (the registry
    is reset first so the manifest is scoped to this experiment).  With
    ``analyze`` also set, the manifest is fed through
    :mod:`repro.telemetry.analysis` and a ``<name>.analysis.json``
    bottleneck report (phase blame, overlap, what-if bounds) lands next
    to it.
    """
    module, kwargs = EXPERIMENTS[name]
    print(f"== {name}: {module.__doc__.strip().splitlines()[0]}")
    registry = metrics.get_registry()
    registry.reset()
    result = module.run(**kwargs)
    print(module.report(result))
    ok = True
    try:
        module.check_shape(result)
    except AssertionError as exc:
        print(f"!! shape check FAILED: {exc}")
        ok = False
    else:
        print("shape check passed\n")

    if report_dir is not None:
        report_dir = pathlib.Path(report_dir)
        report_dir.mkdir(parents=True, exist_ok=True)
        serialized = json_safe(result)
        manifest = RunReport(
            name=name,
            kind="experiment",
            config=dict(kwargs),
            phase_totals=phase_totals_from_registry(registry),
            metrics=registry.snapshot(),
            rows=serialized if isinstance(serialized, list) else None,
            extra={
                "shape_check": ok,
                **(
                    {}
                    if isinstance(serialized, list)
                    else {"result": serialized}
                ),
            },
        )
        path = report_dir / f"{name}.json"
        manifest.save(path)
        print(f"run report written to {path}")
        if analyze:
            from repro.telemetry.analysis import analyze_report

            analysis = analyze_report(manifest.to_dict(), name=name)
            analysis_path = report_dir / f"{name}.analysis.json"
            analysis.save(analysis_path)
            print(f"analysis report written to {analysis_path}")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate WholeGraph paper tables/figures."
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--report-dir", default="runs",
                        help="directory for RunReport JSON manifests "
                             "(default: runs/)")
    parser.add_argument("--no-report", action="store_true",
                        help="skip writing RunReport manifests")
    parser.add_argument("--analyze", action="store_true",
                        help="also write <name>.analysis.json bottleneck "
                             "reports next to each manifest")
    args = parser.parse_args(argv)

    if args.list:
        for name, (module, _) in EXPERIMENTS.items():
            print(f"{name:10s} {module.__doc__.strip().splitlines()[0]}")
        return 0

    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.error("give experiment names, --all, or --list")
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; see --list")

    report_dir = None if args.no_report else args.report_dir
    ok = all([
        run_experiment(name, report_dir=report_dir, analyze=args.analyze)
        for name in names
    ])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
