"""Fig. 10 — shared-memory gather vs NCCL-based gather.

Both implementations move the same feature rows between the same GPUs; the
NCCL version needs the 5 software steps of Fig. 4 while the shared-memory
version is one kernel.  The paper reports: end-to-end latency speedup above
2x on every dataset, while the *bandwidth of the final feature alltoallv
alone* is close to ours (both near the NVLink limit) — i.e. NCCL loses on
the staging steps, not the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GB
from repro.dsm.comm import Communicator
from repro.dsm.whole_tensor import WholeTensor
from repro.experiments.common import ALL_DATASETS
from repro.graph.datasets import dataset_spec
from repro.hardware import SimNode
from repro.ops.gather import distributed_memory_gather, shared_memory_gather
from repro.telemetry.report import format_table
from repro.utils.rng import spawn_rng


@dataclass
class GatherRow:
    dataset: str
    rows_per_gpu: int
    shared_time: float
    nccl_time: float
    shared_bus_bw_gbs: float
    nccl_step4_bus_bw_gbs: float

    @property
    def speedup(self) -> float:
        return self.nccl_time / self.shared_time


def run(
    datasets=ALL_DATASETS,
    num_rows: int = 400_000,
    rows_per_gpu: int = 60_000,
    seed: int = 0,
) -> list[GatherRow]:
    """One gather comparison per dataset (feature dims differ)."""
    rng = spawn_rng(seed, "fig10")
    rows = []
    for dataset in datasets:
        spec = dataset_spec(dataset)
        node = SimNode()
        tensor = WholeTensor(
            node, num_rows, spec.feature_dim, dtype=np.float32,
            tag="feature", charge_setup=False,
        )
        per_rank = [
            rng.integers(0, num_rows, size=rows_per_gpu)
            for _ in range(node.num_gpus)
        ]
        _, t_shared = shared_memory_gather(tensor, per_rank)
        comm = Communicator(node)
        _, trace = distributed_memory_gather(tensor, per_rank, comm)

        gathered_bytes = rows_per_gpu * tensor.row_bytes
        remote_fraction = (node.num_gpus - 1) / node.num_gpus
        shared_bus = gathered_bytes * remote_fraction / t_shared
        rows.append(
            GatherRow(
                dataset=dataset,
                rows_per_gpu=rows_per_gpu,
                shared_time=t_shared,
                nccl_time=trace.total_time,
                shared_bus_bw_gbs=shared_bus / GB,
                nccl_step4_bus_bw_gbs=trace.step4_bus_bw(node.num_gpus) / GB,
            )
        )
    return rows


def report(rows: list[GatherRow]) -> str:
    return format_table(
        ["Dataset", "ours (ms)", "NCCL (ms)", "speedup",
         "ours BusBW (GB/s)", "NCCL step-4 BusBW (GB/s)"],
        [
            [r.dataset, r.shared_time * 1e3, r.nccl_time * 1e3, r.speedup,
             r.shared_bus_bw_gbs, r.nccl_step4_bus_bw_gbs]
            for r in rows
        ],
        title="Fig. 10: gathering-feature latency and bandwidth",
    )


def check_shape(rows: list[GatherRow]) -> None:
    for r in rows:
        # end-to-end speedup above 2x (paper: "above 2X on all datasets")
        assert r.speedup > 2.0, (r.dataset, r.speedup)
        # both bandwidths near the NVLink random-read limit, close together
        assert r.shared_bus_bw_gbs > 180, r
        assert r.nccl_step4_bus_bw_gbs > 150, r
        ratio = r.shared_bus_bw_gbs / r.nccl_step4_bus_bw_gbs
        assert 0.5 < ratio < 2.0, (r.dataset, ratio)
