"""Fig. 11 — WholeGraph's sampling + gather with third-party GNN layers.

WholeGraph can host PyG's or DGL's layer implementations on top of its own
sampling and global-gather ops (§III-A).  The paper shows: (a) doing so
removes the baselines' data-path bottleneck — GPU utilization reaches 95 %
even with third-party layers; (b) WholeGraph's own fused layers are still
faster — whole-epoch speedups up to 1.31x vs DGL layers and 2.43x vs PyG
layers.

We rerun the WholeGraph pipeline with the training-compute multiplier of
each layer backend and report the same breakdown/speedup rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.experiments.common import measure_wholegraph
from repro.telemetry.report import format_table

DATASETS = ("ogbn-products", "ogbn-papers100M")
MODELS = ("gcn", "graphsage", "gat")

LAYER_BACKENDS = {
    "WholeGraph": config.LAYER_COST_FACTOR_WHOLEGRAPH,
    "WholeGraph+DGL": config.LAYER_COST_FACTOR_DGL,
    "WholeGraph+PyG": config.LAYER_COST_FACTOR_PYG,
}


@dataclass
class LayerRow:
    backend: str
    dataset: str
    model: str
    sample_ms: float
    gather_ms: float
    train_ms: float

    @property
    def iter_ms(self) -> float:
        return self.sample_ms + self.gather_ms + self.train_ms


def run(
    datasets=DATASETS,
    models=MODELS,
    num_nodes: int = 30_000,
    iterations: int = 3,
    seed: int = 0,
) -> list[LayerRow]:
    rows = []
    for dataset in datasets:
        for model in models:
            for backend, factor in LAYER_BACKENDS.items():
                m, _ = measure_wholegraph(
                    dataset, model, num_nodes=num_nodes,
                    iterations=iterations, seed=seed,
                    layer_cost_factor=factor,
                )
                rows.append(
                    LayerRow(
                        backend=backend,
                        dataset=dataset,
                        model=model,
                        sample_ms=m.iter_times.sample * 1e3,
                        gather_ms=m.iter_times.gather * 1e3,
                        train_ms=m.iter_times.train * 1e3,
                    )
                )
    return rows


def report(rows: list[LayerRow]) -> str:
    return format_table(
        ["Backend", "Dataset", "Model", "sample (ms)", "gather (ms)",
         "train (ms)", "iter (ms)"],
        [
            [r.backend, r.dataset, r.model, r.sample_ms, r.gather_ms,
             r.train_ms, r.iter_ms]
            for r in rows
        ],
        title="Fig. 11: WholeGraph sampling+gather with different layer backends",
    )


def check_shape(rows: list[LayerRow]) -> None:
    keyed: dict[tuple, dict[str, LayerRow]] = {}
    for r in rows:
        keyed.setdefault((r.dataset, r.model), {})[r.backend] = r
    for key, by_backend in keyed.items():
        wg = by_backend["WholeGraph"]
        dgl = by_backend["WholeGraph+DGL"]
        pyg = by_backend["WholeGraph+PyG"]
        # sampling/gather identical across backends (same ops)
        for other in (dgl, pyg):
            assert abs(other.sample_ms - wg.sample_ms) / wg.sample_ms < 0.5
        # whole-epoch speedups in the paper's ranges: up to 1.31x vs DGL
        # layers and up to 2.43x vs PyG layers
        s_dgl = dgl.iter_ms / wg.iter_ms
        s_pyg = pyg.iter_ms / wg.iter_ms
        assert 1.0 < s_dgl < 1.5, (key, s_dgl)
        assert 1.1 < s_pyg < 3.2, (key, s_pyg)
        # data path stays a minority share even with third-party layers
        assert (pyg.sample_ms + pyg.gather_ms) / pyg.iter_ms < 0.5, key
