"""Experiment drivers — one module per paper table/figure.

Each module exposes ``run(...) -> result`` and ``report(result) -> str``;
the ``benchmarks/`` harness calls these and prints the same rows the paper
reports.  See DESIGN.md §3 for the experiment index.
"""

from repro.experiments import (
    ablations,
    table1_latency,
    table2_datasets,
    table3_accuracy,
    table4_memory,
    table5_epoch_time,
    fig7_accuracy_curve,
    fig8_bandwidth,
    fig9_breakdown,
    fig10_gather,
    fig11_layers,
    fig12_utilization,
    fig13_scaling,
)

__all__ = [
    "ablations",
    "table1_latency",
    "table2_datasets",
    "table3_accuracy",
    "table4_memory",
    "table5_epoch_time",
    "fig7_accuracy_curve",
    "fig8_bandwidth",
    "fig9_breakdown",
    "fig10_gather",
    "fig11_layers",
    "fig12_utilization",
    "fig13_scaling",
]
