"""Table III — validation/test accuracy parity of PyG, DGL and WholeGraph.

The paper's claim is *parity*: all three frameworks train the same models to
essentially the same accuracy (they share the math; only the data path
differs).  Here the parity is a measured outcome — the WholeGraph trainer
and the two baseline trainers run real training on the same synthetic
labelled dataset with independent RNG streams, and their final accuracies
must agree within noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CpuBaselineTrainer, HostGraphStore, profile_by_name
from repro.experiments.common import get_dataset
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer

#: the paper's Table III datasets
DATASETS = ("ogbn-products", "ogbn-papers100M")
MODELS = ("gcn", "graphsage", "gat")


@dataclass
class AccuracyRow:
    dataset: str
    model: str
    framework: str
    valid: float
    test: float


def _make_trainer(framework: str, node: SimNode, ds, model: str, seed: int,
                  batch_size: int, fanouts, hidden: int, lr: float):
    if framework == "WholeGraph":
        store = MultiGpuGraphStore(node, ds, seed=seed)
        return WholeGraphTrainer(
            store, model, seed=seed, batch_size=batch_size, fanouts=fanouts,
            hidden=hidden, num_layers=len(fanouts), lr=lr, dropout=0.1,
        )
    store = HostGraphStore(node, ds)
    return CpuBaselineTrainer(
        store, profile_by_name(framework), model, seed=seed,
        batch_size=batch_size, fanouts=fanouts, hidden=hidden,
        num_layers=len(fanouts), lr=lr, dropout=0.3,
    )


def run(
    datasets=DATASETS,
    models=MODELS,
    frameworks=("PyG", "DGL", "WholeGraph"),
    num_nodes: int = 6000,
    epochs: int = 8,
    batch_size: int = 64,
    fanouts=(10, 10),
    hidden: int = 64,
    lr: float = 1e-2,
    num_classes: int = 8,
    seed: int = 0,
) -> list[AccuracyRow]:
    """Train every (dataset, model, framework) combination to convergence."""
    rows = []
    for dataset in datasets:
        ds = get_dataset(dataset, num_nodes, seed, num_classes=num_classes)
        for model in models:
            for fw_i, framework in enumerate(frameworks):
                node = SimNode()
                trainer = _make_trainer(
                    framework, node, ds, model, seed + fw_i, batch_size,
                    list(fanouts), hidden, lr,
                )
                for _ in range(epochs):
                    trainer.train_epoch()
                rows.append(
                    AccuracyRow(
                        dataset=dataset,
                        model=model,
                        framework=framework,
                        valid=trainer.evaluate(),
                        test=trainer.evaluate(
                            trainer.store.test_nodes
                        ),
                    )
                )
    return rows


def report(rows: list[AccuracyRow]) -> str:
    keyed: dict[tuple, dict] = {}
    for r in rows:
        keyed.setdefault((r.dataset, r.model), {})[r.framework] = r
    out_rows = []
    for (dataset, model), by_fw in keyed.items():
        row = [dataset, model]
        for fw in ("DGL", "PyG", "WholeGraph"):
            r = by_fw.get(fw)
            row += (
                [f"{100*r.valid:.2f}%", f"{100*r.test:.2f}%"]
                if r else ["-", "-"]
            )
        out_rows.append(row)
    return format_table(
        ["Graph", "Model", "DGL val", "DGL test", "PyG val", "PyG test",
         "WG val", "WG test"],
        out_rows,
        title="Table III: validation/test accuracy parity",
    )


def check_shape(rows: list[AccuracyRow], tolerance: float = 0.08) -> None:
    """All frameworks reach comparable accuracy per (dataset, model)."""
    keyed: dict[tuple, list[AccuracyRow]] = {}
    for r in rows:
        keyed.setdefault((r.dataset, r.model), []).append(r)
    for key, group in keyed.items():
        vals = [r.valid for r in group]
        assert max(vals) - min(vals) < tolerance, (key, vals)
        # and training actually learned something
        assert min(vals) > 0.5, (key, vals)
