"""Table V — average epoch time and speedups, 4 datasets x 3 models.

The paper's headline table: WholeGraph's epoch times vs DGL's and PyG's on
a single 8-GPU DGX-A100, with speedups from 7.84x (DGL, UK_domain GAT) to
242.98x (PyG, products GCN).  The *shape* constraints we reproduce:

- WholeGraph wins everywhere, by 1–2 orders of magnitude;
- PyG is slower than DGL everywhere (roughly another order);
- GAT speedups are the smallest of each dataset row (compute-heavy models
  dilute the data-path advantage, §IV-C2).

Epoch times are measured per-iteration on the scaled graphs and
extrapolated with the full-scale iteration counts (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ALL_DATASETS,
    ALL_MODELS,
    MeasuredPipeline,
    measure_framework,
)
from repro.telemetry.report import format_table

#: paper Table V epoch times (seconds) for reference columns
PAPER_EPOCH_S = {
    ("ogbn-products", "gcn"): (225.97, 26.05, 0.93),
    ("ogbn-products", "graphsage"): (228.96, 30.8, 0.99),
    ("ogbn-products", "gat"): (246.81, 29.21, 3.28),
    ("ogbn-papers100M", "gcn"): (358.58, 220.28, 5.7),
    ("ogbn-papers100M", "graphsage"): (314.88, 273.67, 6.0),
    ("ogbn-papers100M", "gat"): (404.66, 269.7, 24.25),
    ("friendster", "gcn"): (286.78, 159.48, 2.79),
    ("friendster", "graphsage"): (262.45, 167.96, 2.93),
    ("friendster", "gat"): (287.76, 154.56, 12.83),
    ("uk_domain", "gcn"): (122.61, 77.1, 2.77),
    ("uk_domain", "graphsage"): (127.48, 77.38, 3.01),
    ("uk_domain", "gat"): (122.61, 77.38, 10.85),
}


@dataclass
class EpochTimeRow:
    dataset: str
    model: str
    pyg_s: float
    dgl_s: float
    wholegraph_s: float

    @property
    def speedup_vs_pyg(self) -> float:
        return self.pyg_s / self.wholegraph_s

    @property
    def speedup_vs_dgl(self) -> float:
        return self.dgl_s / self.wholegraph_s


def run(
    datasets=ALL_DATASETS,
    models=ALL_MODELS,
    num_nodes: int = 40_000,
    iterations: int = 3,
    seed: int = 0,
) -> list[EpochTimeRow]:
    """Measure every (dataset, model, framework) cell."""
    rows = []
    for dataset in datasets:
        for model in models:
            cells: dict[str, MeasuredPipeline] = {}
            for framework in ("PyG", "DGL", "WholeGraph"):
                measured, _ = measure_framework(
                    framework, dataset, model,
                    num_nodes=num_nodes, iterations=iterations, seed=seed,
                )
                cells[framework] = measured
            rows.append(
                EpochTimeRow(
                    dataset=dataset,
                    model=model,
                    pyg_s=cells["PyG"].epoch_time_full,
                    dgl_s=cells["DGL"].epoch_time_full,
                    wholegraph_s=cells["WholeGraph"].epoch_time_full,
                )
            )
    return rows


def report(rows: list[EpochTimeRow]) -> str:
    out = []
    for r in rows:
        paper = PAPER_EPOCH_S.get((r.dataset, r.model))
        out.append([
            r.dataset, r.model, r.pyg_s, r.dgl_s, r.wholegraph_s,
            r.speedup_vs_pyg, r.speedup_vs_dgl,
            "-" if paper is None else f"{paper[0]/paper[2]:.1f}",
            "-" if paper is None else f"{paper[1]/paper[2]:.1f}",
        ])
    return format_table(
        ["Dataset", "Model", "PyG (s)", "DGL (s)", "Ours (s)",
         "vs PyG", "vs DGL", "paper vs PyG", "paper vs DGL"],
        out,
        title="Table V: average epoch time and speedups (8 GPUs)",
    )


def check_shape(rows: list[EpochTimeRow]) -> None:
    by_dataset: dict[str, list[EpochTimeRow]] = {}
    for r in rows:
        # WholeGraph wins by at least ~4x over DGL and ~10x over PyG
        assert r.speedup_vs_dgl > 4, (r.dataset, r.model, r.speedup_vs_dgl)
        assert r.speedup_vs_pyg > 10, (r.dataset, r.model, r.speedup_vs_pyg)
        # PyG slower than DGL
        assert r.pyg_s > r.dgl_s, (r.dataset, r.model)
        by_dataset.setdefault(r.dataset, []).append(r)
    # GAT has the smallest speedups within each dataset
    for dataset, group in by_dataset.items():
        if len(group) == 3:
            gat = next(r for r in group if r.model == "gat")
            others = [r for r in group if r.model != "gat"]
            assert all(
                gat.speedup_vs_dgl <= o.speedup_vs_dgl for o in others
            ), dataset
