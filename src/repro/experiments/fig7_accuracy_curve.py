"""Fig. 7 — validation accuracy per epoch: DGL vs WholeGraph (GraphSage,
ogbn-products).

The paper shows the two curves tracking each other epoch by epoch.  We
train both trainers on the same dataset and record the per-epoch validation
accuracy; the curves must stay within a small band of each other and both
must converge upward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import CpuBaselineTrainer, HostGraphStore, profile_by_name
from repro.experiments.common import get_dataset
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer


@dataclass
class AccuracyCurves:
    epochs: list[int]
    dgl: list[float]
    wholegraph: list[float]


def run(
    num_nodes: int = 6000,
    epochs: int = 8,
    batch_size: int = 64,
    fanouts=(10, 10),
    hidden: int = 64,
    num_classes: int = 8,
    lr: float = 1e-2,
    seed: int = 0,
) -> AccuracyCurves:
    ds = get_dataset("ogbn-products", num_nodes, seed,
                     num_classes=num_classes)

    node_wg = SimNode()
    wg = WholeGraphTrainer(
        MultiGpuGraphStore(node_wg, ds, seed=seed), "graphsage",
        seed=seed, batch_size=batch_size, fanouts=list(fanouts),
        hidden=hidden, num_layers=len(fanouts), lr=lr, dropout=0.1,
    )
    node_dgl = SimNode()
    dgl = CpuBaselineTrainer(
        HostGraphStore(node_dgl, ds), profile_by_name("DGL"), "graphsage",
        seed=seed + 1, batch_size=batch_size, fanouts=list(fanouts),
        hidden=hidden, num_layers=len(fanouts), lr=lr, dropout=0.1,
    )

    curves = AccuracyCurves(epochs=[], dgl=[], wholegraph=[])
    for epoch in range(epochs):
        wg.train_epoch()
        dgl.train_epoch()
        curves.epochs.append(epoch)
        curves.wholegraph.append(wg.evaluate())
        curves.dgl.append(dgl.evaluate())
    return curves


def report(curves: AccuracyCurves) -> str:
    return format_table(
        ["Epoch", "DGL val acc", "WholeGraph val acc"],
        [
            [e, f"{100*d:.2f}%", f"{100*w:.2f}%"]
            for e, d, w in zip(curves.epochs, curves.dgl, curves.wholegraph)
        ],
        title="Fig. 7: validation accuracy per epoch (GraphSage, products)",
    )


def check_shape(curves: AccuracyCurves, band: float = 0.10) -> None:
    dgl = np.array(curves.dgl)
    wg = np.array(curves.wholegraph)
    # both converge upward
    assert wg[-1] > wg[0] or wg[0] > 0.9
    assert dgl[-1] > dgl[0] or dgl[0] > 0.9
    # curves track each other (paper: "almost the same accuracy
    # iteration by iteration"); allow early-epoch noise
    assert np.all(np.abs(dgl[1:] - wg[1:]) < band), (dgl, wg)
    # and both end up high
    assert wg[-1] > 0.8 and dgl[-1] > 0.8
