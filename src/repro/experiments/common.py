"""Shared experiment plumbing: store construction and epoch extrapolation.

Per-iteration cost of sampled mini-batch training depends on batch size,
fanout, feature and hidden dimensions — not on total graph size — so the
experiments measure a handful of iterations on a scaled synthetic graph and
extrapolate full-scale epoch time as

    epoch_time = measured_iter_time x full_iterations_per_epoch

with the full iteration count taken from the dataset's real training-split
size (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.baselines import CpuBaselineTrainer, HostGraphStore, profile_by_name
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.graph.datasets import SyntheticDataset, dataset_spec
from repro.hardware import SimNode
from repro.train import WholeGraphTrainer
from repro.train.metrics import PhaseTimes

#: graph size for performance experiments — large enough that multi-layer
#: frontiers don't trivially saturate, small enough that the functional math
#: (including GAT's per-edge tensors) fits the host's RAM
PERF_NUM_NODES = 30_000

#: datasets in the paper's Table V order
ALL_DATASETS = ("ogbn-products", "ogbn-papers100M", "friendster", "uk_domain")
ALL_MODELS = ("gcn", "graphsage", "gat")
FRAMEWORKS = ("PyG", "DGL", "WholeGraph")

_dataset_cache: dict[tuple, SyntheticDataset] = {}


def get_dataset(name: str, num_nodes: int, seed: int = 0,
                **kwargs) -> SyntheticDataset:
    """Memoised dataset generation (experiments share instances)."""
    key = (name, num_nodes, seed, tuple(sorted(kwargs.items())))
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(
            name, num_nodes=num_nodes, seed=seed, **kwargs
        )
    return _dataset_cache[key]


@dataclass
class MeasuredPipeline:
    """Per-iteration measurement of one framework on one workload."""

    framework: str
    dataset: str
    model: str
    iter_time: float
    iter_times: PhaseTimes
    mean_loss: float
    #: extrapolated full-scale epoch time (paper's Table V quantity)
    epoch_time_full: float

    @property
    def phase_fractions(self) -> dict[str, float]:
        t = max(self.iter_times.total, 1e-12)
        return {k: v / t for k, v in self.iter_times.as_dict().items()}


def measure_wholegraph(
    dataset_name: str,
    model: str,
    num_nodes: int = PERF_NUM_NODES,
    iterations: int = 4,
    seed: int = 0,
    batch_size: int = config.BATCH_SIZE,
    fanouts=None,
    hidden: int = config.HIDDEN_SIZE,
    layer_cost_factor: float = 1.0,
    node: SimNode | None = None,
) -> tuple[MeasuredPipeline, SimNode]:
    """Run a few WholeGraph iterations; extrapolate to the full epoch."""
    spec = dataset_spec(dataset_name)
    ds = get_dataset(dataset_name, num_nodes, seed)
    node = node if node is not None else SimNode()
    store = MultiGpuGraphStore(node, ds, seed=seed)
    trainer = WholeGraphTrainer(
        store, model, seed=seed, batch_size=batch_size, fanouts=fanouts,
        hidden=hidden, layer_cost_factor=layer_cost_factor,
    )
    node.reset_clocks()  # exclude setup/load from the steady-state epoch
    stats = trainer.train_epoch(max_iterations=iterations)
    iter_time = stats.epoch_time / stats.iterations
    per_iter = PhaseTimes(
        sample=stats.times.sample / stats.iterations,
        gather=stats.times.gather / stats.iterations,
        train=stats.times.train / stats.iterations,
    )
    measured = MeasuredPipeline(
        framework="WholeGraph",
        dataset=dataset_name,
        model=model,
        iter_time=iter_time,
        iter_times=per_iter,
        mean_loss=stats.mean_loss,
        epoch_time_full=iter_time * spec.full_iterations_per_epoch,
    )
    return measured, node


def measure_baseline(
    framework: str,
    dataset_name: str,
    model: str,
    num_nodes: int = PERF_NUM_NODES,
    iterations: int = 4,
    seed: int = 0,
    batch_size: int = config.BATCH_SIZE,
    fanouts=None,
    hidden: int = config.HIDDEN_SIZE,
    node: SimNode | None = None,
) -> tuple[MeasuredPipeline, SimNode]:
    """Run a few DGL-like / PyG-like iterations; extrapolate."""
    spec = dataset_spec(dataset_name)
    ds = get_dataset(dataset_name, num_nodes, seed)
    node = node if node is not None else SimNode()
    store = HostGraphStore(node, ds)
    trainer = CpuBaselineTrainer(
        store, profile_by_name(framework), model, seed=seed,
        batch_size=batch_size, fanouts=fanouts, hidden=hidden,
    )
    node.reset_clocks()
    stats = trainer.train_epoch(max_iterations=iterations)
    iter_time = stats.epoch_time / stats.iterations
    per_iter = PhaseTimes(
        sample=stats.times.sample / stats.iterations,
        gather=stats.times.gather / stats.iterations,
        train=stats.times.train / stats.iterations,
    )
    measured = MeasuredPipeline(
        framework=framework,
        dataset=dataset_name,
        model=model,
        iter_time=iter_time,
        iter_times=per_iter,
        mean_loss=stats.mean_loss,
        epoch_time_full=iter_time * spec.full_iterations_per_epoch,
    )
    return measured, node


def measure_framework(framework: str, dataset_name: str, model: str,
                      **kwargs) -> tuple[MeasuredPipeline, SimNode]:
    """Dispatch on framework name."""
    if framework.lower() == "wholegraph":
        return measure_wholegraph(dataset_name, model, **kwargs)
    return measure_baseline(framework, dataset_name, model, **kwargs)
