"""Fig. 12 — GPU utilization over time during training.

The paper's ``nvidia-smi`` traces on ogbn-papers100M: WholeGraph holds
≥95 % utilization; DGL and PyG fluctuate wildly and repeatedly drop to
zero while the GPUs wait for host-prepared data.

We read the same traces off the simulated timeline: busy spans are kernels,
non-busy spans are the waits the baseline pipeline forces on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import CpuBaselineTrainer, HostGraphStore, profile_by_name
from repro.experiments.common import get_dataset
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode
from repro.telemetry.report import format_table
from repro.telemetry.utilization import mean_utilization, utilization_trace
from repro.train import WholeGraphTrainer


@dataclass
class UtilizationTrace:
    framework: str
    times: np.ndarray
    utilization: np.ndarray
    mean: float
    minimum: float


def run(
    dataset: str = "ogbn-papers100M",
    model: str = "graphsage",
    num_nodes: int = 20_000,
    iterations: int = 6,
    seed: int = 0,
) -> list[UtilizationTrace]:
    ds = get_dataset(dataset, num_nodes, seed)
    traces = []
    for framework in ("PyG", "DGL", "WholeGraph"):
        node = SimNode()
        if framework == "WholeGraph":
            trainer = WholeGraphTrainer(
                MultiGpuGraphStore(node, ds, seed=seed), model, seed=seed
            )
        else:
            trainer = CpuBaselineTrainer(
                HostGraphStore(node, ds), profile_by_name(framework), model,
                seed=seed,
            )
        node.reset_clocks()
        trainer.train_epoch(max_iterations=iterations)
        device = node.gpu_memory[0].device
        t_end = node.gpu_clock[0].now
        window = max(t_end / 60, 1e-6)
        t, u = utilization_trace(node.timeline, device, window, t_end=t_end)
        traces.append(
            UtilizationTrace(
                framework=framework,
                times=t,
                utilization=u,
                mean=mean_utilization(node.timeline, device, t_end=t_end),
                minimum=float(u.min()) if u.size else 0.0,
            )
        )
    return traces


def report(traces: list[UtilizationTrace]) -> str:
    rows = []
    for tr in traces:
        spark = "".join(
            " .:-=+*#%@"[min(9, int(v // 10))] for v in tr.utilization[:60]
        )
        rows.append([tr.framework, f"{tr.mean:.1f}%", f"{tr.minimum:.1f}%",
                     spark])
    return format_table(
        ["Framework", "mean util", "min util", "trace (0-100%)"],
        rows,
        title="Fig. 12: GPU utilization during training (papers100M)",
    )


def check_shape(traces: list[UtilizationTrace]) -> None:
    by_fw = {t.framework: t for t in traces}
    # WholeGraph sustains >= 95%
    assert by_fw["WholeGraph"].mean >= 95.0, by_fw["WholeGraph"].mean
    # baselines fluctuate low; DGL/PyG mean far below WholeGraph's
    for fw in ("DGL", "PyG"):
        assert by_fw[fw].mean < 60.0, (fw, by_fw[fw].mean)
        assert by_fw[fw].minimum < 30.0, (fw, by_fw[fw].minimum)
