"""Recsys workload — sparse embedding training plus top-k serving.

The "millions of users" scenario of the paper's embedding-table discussion:
link-prediction training over a synthetic bipartite rating graph, with the
trainable :class:`~repro.dsm.sparse_embedding.WholeEmbedding` sharded across
the DSM and only the touched rows updated per step, followed by the online
recommendation path (user request -> neighborhood sample -> embedding gather
-> frozen encode -> top-k against the offline item index).

The shape checks pin the workload's quality floor (held-out AUC well above
chance, recommendations far better than random) and the sparse-update
economics (rows touched per step is a small fraction of the table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph import MultiGpuGraphStore, load_bipartite_dataset
from repro.hardware import SimNode
from repro.serve import FrozenModel, RecsysEngine, synthesize_requests
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer
from repro.utils.rng import spawn_rng


@dataclass
class RecsysRow:
    epoch: int
    loss: float
    auc: float
    rows_touched: int
    epoch_time: float


@dataclass
class RecsysResult:
    rows: list[RecsysRow]
    num_users: int
    num_items: int
    table_rows: int
    recall_at_k: float
    random_recall_at_k: float
    serve_p99: float
    serve_qps: float


def run(
    num_users: int = 600,
    num_items: int = 250,
    epochs: int = 6,
    batch_size: int = 32,
    num_pairs: int = 256,
    hidden: int = 32,
    lr: float = 1e-2,
    top_k: int = 10,
    num_requests: int = 200,
    rate_qps: float = 50_000.0,
    seed: int = 0,
) -> RecsysResult:
    """Train the bipartite link predictor, then serve recommendations."""
    ds = load_bipartite_dataset(
        num_users=num_users, num_items=num_items, seed=seed
    )
    node = SimNode(node_id=0)
    store = MultiGpuGraphStore(node, ds, seed=seed)
    trainer = WholeGraphTrainer(
        store, "sage", seed=seed, batch_size=batch_size, task="linkpred",
        num_pairs=num_pairs, hidden=hidden, num_layers=2, lr=lr,
    )
    rows = []
    touched0 = 0
    for epoch in range(epochs):
        stats = trainer.train_epoch()
        touched = trainer.embedding.grad_stats["rows_touched"]
        rows.append(RecsysRow(
            epoch=epoch,
            loss=stats.mean_loss,
            auc=trainer.evaluate_linkpred(num_pairs=1000),
            rows_touched=touched - touched0,
            epoch_time=stats.epoch_time,
        ))
        touched0 = touched

    engine = RecsysEngine(
        store, FrozenModel(trainer.model), trainer.embedding,
        ds.item_nodes, top_k=top_k, score_scale=trainer._score_scale,
    )
    requests = synthesize_requests(
        num_requests, rate_qps, ds.user_nodes, spawn_rng(seed, "recsys-req")
    )
    result = engine.serve(requests, seed=seed)

    users = ds.user_nodes[: min(100, num_users)]
    recall = _recall_at_k(store, users, engine.recommend(users), top_k)
    rng = spawn_rng(seed, "recsys-random")
    random_recs = np.stack([
        rng.choice(ds.item_nodes, top_k, replace=False) for _ in users
    ])
    random_recall = _recall_at_k(store, users, random_recs, top_k)
    return RecsysResult(
        rows=rows,
        num_users=num_users,
        num_items=num_items,
        table_rows=trainer.embedding.num_rows,
        recall_at_k=recall,
        random_recall_at_k=random_recall,
        serve_p99=result.report.latency["p99"],
        serve_qps=result.report.qps,
    )


def _recall_at_k(
    store, users: np.ndarray, recs: np.ndarray, k: int
) -> float:
    """Fraction of each user's rated items recovered in their top-k."""
    csr = store.csr
    hits = []
    for j, u in enumerate(users):
        rated = csr.indices[csr.indptr[u] : csr.indptr[u + 1]]
        if rated.size:
            hits.append(
                float(np.isin(recs[j], rated).sum())
                / min(k, int(rated.size))
            )
    return float(np.mean(hits)) if hits else 0.0


def report(result: RecsysResult) -> str:
    out_rows = [
        [r.epoch, f"{r.loss:.4f}", f"{r.auc:.4f}", r.rows_touched,
         f"{r.epoch_time * 1e3:.2f} ms"]
        for r in result.rows
    ]
    table = format_table(
        ["Epoch", "Loss", "AUC", "Rows touched", "Epoch time"],
        out_rows,
        title=(
            f"Recsys: {result.num_users} users x {result.num_items} items "
            f"({result.table_rows}-row embedding table)"
        ),
    )
    tail = (
        f"\nrecall@10 {result.recall_at_k:.3f} "
        f"(random {result.random_recall_at_k:.3f}); "
        f"serving p99 {result.serve_p99 * 1e6:.1f} us "
        f"at {result.serve_qps:.0f} qps"
    )
    return table + tail


def check_shape(result: RecsysResult) -> None:
    """Quality and sparsity floors of the recsys workload."""
    aucs = [r.auc for r in result.rows]
    assert aucs[-1] > 0.85, f"final AUC {aucs[-1]:.4f} below floor"
    assert aucs[-1] > aucs[0], "AUC did not improve over training"
    losses = [r.loss for r in result.rows]
    assert losses[-1] < losses[0], "loss did not decrease"
    for r in result.rows:
        assert r.rows_touched > 0
    # recommendations must beat random by a wide margin
    assert result.recall_at_k > 3 * max(result.random_recall_at_k, 1e-9), (
        result.recall_at_k, result.random_recall_at_k,
    )
    assert result.serve_qps > 0 and result.serve_p99 > 0
