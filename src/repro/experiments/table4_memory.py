"""Table IV — per-GPU memory consumption for ogbn-papers100M.

Paper numbers on a DGX-A100 (8 GPUs):

- graph structure: 3.1 GB/GPU measured (theory: 3.2 B directed edges x 8 B
  = 24 GB total);
- node features: 6.7 GB/GPU measured (theory: 111.1 M x 128 x 4 B = 53 GB);
- training state: ~20.4 GB/GPU (model params, optimizer state,
  activations, allocator pools).

The structure/feature rows come straight out of our allocator after
reserving the *full-scale* store (accounting-only tensors — no host RAM is
actually committed).  The training row is an estimate from the model
configuration (documented as fitted in :func:`training_state_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.config import GB
from repro.graph.datasets import dataset_spec
from repro.graph.storage import accounting_only_store
from repro.hardware import SimNode
from repro.telemetry.report import format_table

PAPER_GB = {"graph": 3.1, "feature": 6.7, "training": 20.4}


@dataclass
class MemoryRow:
    component: str
    per_gpu_gb: float
    theoretical_total_gb: float | None
    paper_gb: float | None


def training_state_bytes(
    spec,
    batch_size: int = config.BATCH_SIZE,
    hidden: int = config.HIDDEN_SIZE,
    num_layers: int = config.NUM_LAYERS,
    fanout: int = config.FANOUT,
) -> float:
    """Per-GPU training-state estimate.

    Components: Adam keeps 3 copies of every parameter beside the weights;
    activations are kept for every frontier of every layer for backward
    (forward value + gradient); and the CUDA caching allocator typically
    holds ~2x the live working set in pools (the dominant share of the
    paper's 20.4 GB — fitted).
    """
    param_count = (
        spec.feature_dim * hidden + (num_layers - 2) * hidden * hidden
        + hidden * spec.num_classes
    )
    param_bytes = param_count * 4 * 4  # weights + Adam m/v + grads

    # frontier growth is sub-geometric: duplicate collapse strengthens with
    # depth (a 512-seed, fanout-30³ batch on ogbn-papers100M reaches
    # ~600 K input nodes, not 512·30³ ≈ 14 M).  Per-depth retention factors
    # fitted to the OGB frontier statistics. [fit]
    collapse = (0.95, 0.45, 0.10)
    frontier = batch_size
    act_bytes = 0.0
    width = spec.feature_dim
    for depth in range(num_layers):
        keep = collapse[min(depth, len(collapse) - 1)]
        frontier = frontier * fanout * keep
        act_bytes += frontier * max(width, hidden) * 4
        width = hidden
    act_bytes *= 2 * 4  # fwd+bwd tensors, intermediate buffers [fit]
    allocator_pool = 2.0 * (param_bytes + act_bytes)  # caching pools [fit]
    return param_bytes + act_bytes + allocator_pool


def run(dataset: str = "ogbn-papers100M") -> list[MemoryRow]:
    spec = dataset_spec(dataset)
    node = SimNode()
    accounting_only_store(node, spec, undirected=True)
    usage = node.memory_usage_by_tag()
    n = node.num_gpus

    structure_theory = spec.full_edges * 2 * 8 / GB
    feature_theory = spec.full_nodes * spec.feature_dim * 4 / GB
    return [
        MemoryRow("Graph Structure", usage.get("graph", 0) / n / GB,
                  structure_theory, PAPER_GB["graph"]),
        MemoryRow("Node Feature", usage.get("feature", 0) / n / GB,
                  feature_theory, PAPER_GB["feature"]),
        MemoryRow("Training", training_state_bytes(spec) / GB,
                  None, PAPER_GB["training"]),
    ]


def report(rows: list[MemoryRow]) -> str:
    return format_table(
        ["Component", "Per-GPU (GB)", "Theoretical total (GB)", "Paper (GB)"],
        [
            [r.component, r.per_gpu_gb,
             "-" if r.theoretical_total_gb is None else r.theoretical_total_gb,
             r.paper_gb]
            for r in rows
        ],
        title="Table IV: WholeGraph memory usage, ogbn-papers100M on 8 GPUs",
    )


def check_shape(rows: list[MemoryRow]) -> None:
    by_name = {r.component: r for r in rows}
    # structure ~3 GB/GPU, features ~6.6 GB/GPU, training O(20 GB)
    assert 2.5 < by_name["Graph Structure"].per_gpu_gb < 3.5
    assert 6.0 < by_name["Node Feature"].per_gpu_gb < 7.5
    assert 10.0 < by_name["Training"].per_gpu_gb < 30.0
    # everything fits in a 40 GB A100
    total = sum(r.per_gpu_gb for r in rows)
    assert total < 40.0, total
