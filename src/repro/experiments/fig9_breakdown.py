"""Fig. 9 — epoch-time breakdown: sampling / gathering / training.

The paper's diagnosis: for PyG and DGL the sampling + gathering phases
dominate the epoch (training is "hardly visible"), while for WholeGraph the
training phase dominates because the data path has been moved onto the
GPUs.  We reproduce the stacked-bar data as phase fractions per framework,
model and dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import measure_framework
from repro.telemetry.report import format_table

DATASETS = ("ogbn-products", "ogbn-papers100M")
MODELS = ("gcn", "graphsage", "gat")
FRAMEWORKS = ("PyG", "DGL", "WholeGraph")


@dataclass
class BreakdownRow:
    framework: str
    dataset: str
    model: str
    sample_s: float
    gather_s: float
    train_s: float

    @property
    def total(self) -> float:
        return self.sample_s + self.gather_s + self.train_s

    @property
    def data_path_fraction(self) -> float:
        """Share of the iteration spent in sampling + gathering."""
        return (self.sample_s + self.gather_s) / max(self.total, 1e-12)


def run(
    datasets=DATASETS,
    models=MODELS,
    frameworks=FRAMEWORKS,
    num_nodes: int = 30_000,
    iterations: int = 3,
    seed: int = 0,
) -> list[BreakdownRow]:
    rows = []
    for dataset in datasets:
        for model in models:
            for framework in frameworks:
                m, _ = measure_framework(
                    framework, dataset, model,
                    num_nodes=num_nodes, iterations=iterations, seed=seed,
                )
                rows.append(
                    BreakdownRow(
                        framework=framework,
                        dataset=dataset,
                        model=model,
                        sample_s=m.iter_times.sample,
                        gather_s=m.iter_times.gather,
                        train_s=m.iter_times.train,
                    )
                )
    return rows


def report(rows: list[BreakdownRow]) -> str:
    return format_table(
        ["Framework", "Dataset", "Model", "sample (ms)", "gather (ms)",
         "train (ms)", "data-path %"],
        [
            [r.framework, r.dataset, r.model, r.sample_s * 1e3,
             r.gather_s * 1e3, r.train_s * 1e3,
             f"{100*r.data_path_fraction:.1f}%"]
            for r in rows
        ],
        title="Fig. 9: per-iteration epoch-time breakdown",
    )


def check_shape(rows: list[BreakdownRow]) -> None:
    for r in rows:
        if r.framework == "WholeGraph":
            # training dominates for WholeGraph
            assert r.data_path_fraction < 0.5, (r.framework, r.model,
                                                r.data_path_fraction)
        else:
            # sampling + gathering dominate the baselines
            assert r.data_path_fraction > 0.5, (r.framework, r.model,
                                                r.data_path_fraction)
