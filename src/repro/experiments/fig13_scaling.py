"""Fig. 13 — multi-node scaling on the three large datasets.

Each machine node replicates the graph store, so only gradients cross the
node boundary and WholeGraph scales near-linearly to 8 nodes (paper §IV-D).
We measure the single-node iteration time, then predict the 1/2/4/8-node
epoch times with the hierarchical-all-reduce model of
:mod:`repro.cluster.multinode`.

The paper's anchor data point — 80 epochs of 3-layer GraphSage (hidden 256,
fanout 30³) on ogbn-papers100M in 66 s on 8 nodes — is reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import scaling_curve
from repro.experiments.common import measure_wholegraph
from repro.graph.datasets import dataset_spec
from repro.nn.models import build_model
from repro.telemetry.report import format_table
from repro.utils.rng import spawn_rng

DATASETS = ("ogbn-papers100M", "friendster", "uk_domain")
MODELS = ("gcn", "graphsage", "gat")
NODE_COUNTS = (1, 2, 4, 8)


@dataclass
class ScalingRow:
    dataset: str
    model: str
    node_counts: tuple
    speedups: tuple
    epoch_times: tuple


def run(
    datasets=DATASETS,
    models=MODELS,
    node_counts=NODE_COUNTS,
    num_nodes: int = 30_000,
    iterations: int = 3,
    seed: int = 0,
) -> list[ScalingRow]:
    rows = []
    for dataset in datasets:
        spec = dataset_spec(dataset)
        for model in models:
            m, node = measure_wholegraph(
                dataset, model, num_nodes=num_nodes,
                iterations=iterations, seed=seed,
            )
            grad_nbytes = build_model(
                model, spec.feature_dim, 64, spawn_rng(seed, "g")
            ).grad_nbytes()
            points = scaling_curve(
                m.iter_time,
                spec.full_iterations_per_epoch,
                grad_nbytes,
                node_counts=node_counts,
            )
            rows.append(
                ScalingRow(
                    dataset=dataset,
                    model=model,
                    node_counts=tuple(p.num_nodes for p in points),
                    speedups=tuple(p.speedup for p in points),
                    epoch_times=tuple(p.epoch_time for p in points),
                )
            )
    return rows


def report(rows: list[ScalingRow]) -> str:
    out = []
    for r in rows:
        out.append(
            [r.dataset, r.model]
            + [f"{s:.2f}x" for s in r.speedups]
            + [f"{t:.2f}s" for t in r.epoch_times]
        )
    headers = (
        ["Dataset", "Model"]
        + [f"speedup@{k}" for k in rows[0].node_counts]
        + [f"epoch@{k}" for k in rows[0].node_counts]
    )
    return format_table(
        headers, out, title="Fig. 13: multi-node scaling of WholeGraph"
    )


def check_shape(rows: list[ScalingRow]) -> None:
    for r in rows:
        # monotone increasing speedup...
        assert all(
            b > a for a, b in zip(r.speedups, r.speedups[1:])
        ), r
        # ...and near-linear: >= 85% parallel efficiency at 8 nodes
        final_k = r.node_counts[-1]
        assert r.speedups[-1] > 0.85 * final_k, (r.dataset, r.model,
                                                 r.speedups[-1])
