"""Ablations of WholeGraph's design choices (DESIGN.md §3, last row).

Three studies, each isolating one decision the paper argues for:

1. **Hash vs sort unique** (§III-C2): AppendUnique with the bucketed hash
   table versus the sort-based unique other frameworks use, measured as the
   sampling-phase time of real training iterations.

2. **Atomic elision in g-SpMM backward** (§III-C4): the duplicate-count
   array turns sampled-once rows into plain stores; we price the backward
   scatter of real sampled sub-graphs with and without the optimisation.

3. **P2P vs UM storage** (§II-B): what the per-iteration feature gather
   would cost if WholeMemory were built on Unified Memory instead of
   GPUDirect P2P — every gathered row pays a page fault instead of riding
   the NVLink bandwidth curve.

4. **Hot-row feature cache**: the per-rank degree-ordered HBM cache
   (:class:`~repro.dsm.feature_cache.FeatureCache`) versus plain DSM
   gathers, on a power-law graph where the hot rows dominate the sampled
   frontiers; :func:`cache_sweep` traces hit rate and gather time across
   cache sizes.

5. **Pipelined prefetch**: the double-buffered iteration schedule
   (``overlap=True``) versus the sequential sample→gather→train loop —
   same math bit-for-bit, steady-state iteration cost drops from the sum
   of the phases to their max.

6. **Bucketed gradient-sync overlap** (§III-D): the Apex-DDP style
   reverse-order bucketed all-reduce, hidden behind the backward pass,
   versus one flat serial all-reduce per step; :func:`bucket_cap_sweep`
   traces the latency-vs-bandwidth regimes across bucket capacities and
   :func:`overlap_scaling_ablation` the Fig. 13-style multi-node view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.cluster.trainer import ClusterTrainer
from repro.experiments.common import get_dataset
from repro.graph import MultiGpuGraphStore
from repro.hardware import SimNode, costmodel
from repro.ops.neighbor_sampler import NeighborSampler
from repro.ops.spmm import atomic_elision_stats
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer
from repro.train.ddp import GradSyncModel
from repro.utils.rng import spawn_rng


@dataclass
class AblationResult:
    name: str
    baseline_label: str
    optimized_label: str
    baseline_time: float
    optimized_time: float

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.optimized_time


def _sample_setup(num_nodes: int, seed: int, batch_size: int, fanouts):
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=seed)
    seeds = store.train_nodes[
        spawn_rng(seed, "abl").integers(
            0, len(store.train_nodes), size=batch_size
        )
    ]
    seeds = np.unique(seeds)
    return node, store, seeds


def unique_impl_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), iterations: int = 3, seed: int = 0,
) -> AblationResult:
    """Sampling-phase time: hash-table vs sort-based AppendUnique."""
    times = {}
    for impl in ("hash", "sort"):
        node, store, seeds = _sample_setup(num_nodes, seed, batch_size,
                                           fanouts)
        sampler = NeighborSampler(store, list(fanouts), unique_impl=impl)
        node.reset_clocks()
        rng = spawn_rng(seed, "abl-sample", impl)
        for _ in range(iterations):
            sampler.sample(seeds, 0, rng)
        times[impl] = node.timeline.phase_total("sample") / iterations
    return AblationResult(
        name="AppendUnique kernel",
        baseline_label="sort-based unique",
        optimized_label="bucketed hash table",
        baseline_time=times["sort"],
        optimized_time=times["hash"],
    )


def atomic_elision_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), hidden: int = 256, seed: int = 0,
) -> AblationResult:
    """Backward-scatter time with vs without duplicate-count elision."""
    node, store, seeds = _sample_setup(num_nodes, seed, batch_size, fanouts)
    sampler = NeighborSampler(store, list(fanouts), charge=False)
    sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-atomic"))
    with_opt = 0.0
    without = 0.0
    for block in sg.blocks:
        stats = atomic_elision_stats(block.indices, block.duplicate_counts)
        row_bytes = hidden * 4
        with_opt += costmodel.backward_scatter_time(
            stats["plain_stores"], stats["atomic_adds"], row_bytes
        )
        without += costmodel.backward_scatter_time(
            0, block.num_edges, row_bytes
        )
    return AblationResult(
        name="g-SpMM backward scatter",
        baseline_label="all atomic adds",
        optimized_label="duplicate-count elision",
        baseline_time=without,
        optimized_time=with_opt,
    )


def um_storage_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), seed: int = 0,
) -> AblationResult:
    """Per-iteration feature-gather time: P2P DSM vs UM-backed storage."""
    node, store, seeds = _sample_setup(num_nodes, seed, batch_size, fanouts)
    sampler = NeighborSampler(store, list(fanouts), charge=False)
    sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-um"))
    rows = sg.input_nodes
    node.reset_clocks()
    store.gather_features(rows, rank=0)
    t_p2p = node.gpu_clock[0].now
    # UM: a random row is almost always on a fresh page -> one fault per
    # remote row; 1/8 of rows are local.
    footprint = store.feature_tensor.total_bytes
    remote_rows = rows.shape[0] * (node.num_gpus - 1) / node.num_gpus
    t_um = remote_rows * costmodel.um_access_latency(
        max(footprint, 8 * 2**30)
    ) + (rows.shape[0] - remote_rows) * costmodel.local_access_latency()
    return AblationResult(
        name="feature storage substrate",
        baseline_label="Unified Memory (page migration)",
        optimized_label="GPUDirect P2P (WholeMemory)",
        baseline_time=t_um,
        optimized_time=t_p2p,
    )


def feature_location_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), seed: int = 0,
) -> AblationResult:
    """Per-iteration feature gather: device DSM vs host-pinned zero-copy.

    The host-pinned placement survives graphs beyond aggregate GPU memory
    but pays the shared PCIe uplink — the §III-B bandwidth argument
    measured through the real gather path.
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    times = {}
    for location in ("device", "host_pinned"):
        node = SimNode()
        store = MultiGpuGraphStore(
            node, ds, seed=seed, feature_location=location
        )
        sampler = NeighborSampler(store, list(fanouts), charge=False)
        seeds = store.train_nodes[:batch_size]
        sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-loc", location))
        node.reset_clocks()
        store.gather_features(sg.input_nodes, rank=0)
        times[location] = node.gpu_clock[0].now
    return AblationResult(
        name="feature placement",
        baseline_label="host-pinned (PCIe zero-copy)",
        optimized_label="device DSM (NVLink P2P)",
        baseline_time=times["host_pinned"],
        optimized_time=times["device"],
    )


def _cache_workload(
    store: MultiGpuGraphStore,
    fanouts,
    batch_size: int,
    iterations: int,
    seed: int,
) -> float:
    """Replay a fixed sampled-frontier sequence through the gather path.

    The sampler draws from a freshly spawned stream keyed only on ``seed``,
    so every cache configuration sees the *same* frontier sequence — the
    comparison isolates the gather cost.  Returns mean gather time.
    """
    node = store.node
    sampler = NeighborSampler(store, list(fanouts), charge=False)
    rng = spawn_rng(seed, "abl-cache-frontiers")
    train = store.train_nodes
    total = 0.0
    for _ in range(iterations):
        seeds = rng.choice(train, size=min(batch_size, train.size),
                           replace=False)
        sg = sampler.sample(np.sort(seeds), 0, rng)
        t0 = node.gpu_clock[0].now
        store.gather_features(sg.input_nodes, 0)
        total += node.gpu_clock[0].now - t0
    return total / iterations


def feature_cache_ablation(
    num_nodes: int = 20_000, batch_size: int = 64,
    fanouts=(5, 5), iterations: int = 8,
    cache_ratio: float = 0.1, seed: int = 0,
) -> AblationResult:
    """Feature-gather time: plain DSM vs the degree-ordered hot-row cache.

    Runs on the power-law ``uk_domain`` graph, where the hottest 10 % of
    the rows carry most of the degree mass — the skew the cache exploits.
    """
    ds = get_dataset("uk_domain", num_nodes, seed)
    times = {}
    for ratio in (0.0, cache_ratio):
        node = SimNode()
        store = MultiGpuGraphStore(node, ds, seed=seed, cache_ratio=ratio)
        node.reset_clocks()  # exclude setup + cache prefill
        times[ratio] = _cache_workload(
            store, fanouts, batch_size, iterations, seed
        )
    return AblationResult(
        name="hot-row feature cache",
        baseline_label="uncached DSM gather",
        optimized_label=f"degree-ordered cache ({cache_ratio:.0%}/rank)",
        baseline_time=times[0.0],
        optimized_time=times[cache_ratio],
    )


def overlap_ablation(
    num_nodes: int = 20_000, batch_size: int = 32,
    fanouts=(30, 30), iterations: int = 6, seed: int = 0,
) -> AblationResult:
    """Epoch time: sequential schedule vs double-buffered prefetch.

    Both runs train the *same* model trajectory (the trainer guarantees
    bit-identical math under either schedule); only the clock accounting
    differs.
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    times = {}
    losses = {}
    for overlap in (False, True):
        node = SimNode()
        store = MultiGpuGraphStore(node, ds, seed=seed)
        trainer = WholeGraphTrainer(
            store, "graphsage", seed=seed, batch_size=batch_size,
            fanouts=list(fanouts), overlap=overlap,
        )
        node.reset_clocks()
        stats = trainer.train_epoch(max_iterations=iterations)
        times[overlap] = stats.epoch_time
        losses[overlap] = stats.mean_loss
    assert losses[True] == losses[False], "schedules must be bit-identical"
    return AblationResult(
        name="iteration schedule",
        baseline_label="sequential (sum of phases)",
        optimized_label="pipelined prefetch (overlap)",
        baseline_time=times[False],
        optimized_time=times[True],
    )


def grad_sync_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30, 30), iterations: int = 2, seed: int = 0,
) -> AblationResult:
    """Exposed gradient-sync time per step (Table-5 GraphSage config):
    one flat serial all-reduce vs reverse-order buckets overlapped with
    the backward pass.  Both runs train identical weights — only the comm
    schedule (and hence the exposed critical-path time) differs.
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    exposed = {}
    losses = {}
    for overlap in (False, True):
        node = SimNode()
        store = MultiGpuGraphStore(node, ds, seed=seed)
        trainer = WholeGraphTrainer(
            store, "graphsage", seed=seed, batch_size=batch_size,
            fanouts=list(fanouts),
            bucket_cap_mb=None if overlap else 0,
            overlap_grad_sync=overlap,
        )
        node.reset_clocks()
        stats = trainer.train_epoch(max_iterations=iterations)
        exposed[overlap] = stats.allreduce / iterations
        losses[overlap] = stats.mean_loss
    assert losses[True] == losses[False], "schedules must be bit-identical"
    return AblationResult(
        name="gradient synchronisation",
        baseline_label="flat serial all-reduce",
        optimized_label="bucketed + backward-overlapped",
        baseline_time=exposed[False],
        optimized_time=exposed[True],
    )


def bucket_cap_sweep(
    caps_mb=(0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 0),
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30, 30), seed: int = 0,
) -> list[dict]:
    """Comm schedule across bucket capacities (cap 0 = one flat bucket).

    One training step is measured to fix the model's parameter layout and
    backward window; each capacity is then *planned* against that window.
    The sweep exposes both regimes of the chunked-ring model: tiny buckets
    multiply the per-collective launch + hop latencies (total comm blows
    up), while a single flat buffer serializes after backward (everything
    exposed).
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=seed)
    trainer = WholeGraphTrainer(
        store, "graphsage", seed=seed, batch_size=batch_size,
        fanouts=list(fanouts),
    )
    stats = trainer.train_epoch(max_iterations=1)
    window = stats.times.train * config.TRAIN_BACKWARD_FRACTION
    param_nbytes = [
        p.data.nbytes for p in trainer.model.parameters()
    ]
    rows = []
    for cap in caps_mb:
        model = GradSyncModel(node, param_nbytes, bucket_cap_mb=cap,
                              overlap=True)
        plan = model.plan([(0.0, window)])
        rows.append({
            "bucket_cap_mb": cap,
            "buckets": plan.num_buckets,
            "total_comm": plan.total_comm,
            "exposed": plan.exposed,
            "hidden": plan.hidden,
        })
    return rows


def bucket_sweep_report(rows: list[dict]) -> str:
    return format_table(
        ["bucket cap (MB)", "buckets", "total comm (us)", "exposed (us)",
         "hidden (us)"],
        [
            ["flat" if r["bucket_cap_mb"] == 0 else f"{r['bucket_cap_mb']}",
             r["buckets"], r["total_comm"] * 1e6, r["exposed"] * 1e6,
             f"{r['hidden'] * 1e6:.1f}"]
            for r in rows
        ],
        title="Gradient-bucket capacity sweep (Table-5 GraphSage step)",
    )


def overlap_scaling_ablation(
    node_counts=(1, 2, 4),
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30, 30), hidden: int = 256, iterations: int = 2,
    seed: int = 0,
) -> list[dict]:
    """Fig. 13-style scaling view of the gradient-sync overlap.

    For each machine-node count, trains the Table-5 GraphSage config with
    the flat serial sync and with the bucketed overlapped sync, recording
    the exposed all-reduce time on machine node 0 plus the epoch time.
    The hierarchical inter-node term grows with the node count, so the
    absolute overlap win widens with scale — provided the backward window
    is long enough to hide the growing comm backlog, which the Table-5
    workload's is (tiny toy windows are not; the bucket-cap sweep shows
    that regime instead).
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    rows = []
    for k in node_counts:
        row = {"machine_nodes": k}
        for overlap in (False, True):
            tr = ClusterTrainer(
                ds, k, "graphsage", seed=seed, batch_size=batch_size,
                fanouts=list(fanouts), hidden=hidden,
                bucket_cap_mb=None if overlap else 0,
                overlap_grad_sync=overlap,
            )
            stats = tr.train_epoch(max_iterations=iterations)
            dev0 = tr.nodes[0].gpu_memory[0].device
            key = "overlap" if overlap else "flat"
            row[f"epoch_time_{key}"] = stats["epoch_time"]
            row[f"exposed_{key}"] = tr.nodes[0].timeline.phase_total(
                "allreduce", dev0
            )
        rows.append(row)
    return rows


def scaling_report(rows: list[dict]) -> str:
    return format_table(
        ["machine nodes", "exposed flat (us)", "exposed overlap (us)",
         "epoch flat (ms)", "epoch overlap (ms)"],
        [
            [r["machine_nodes"], r["exposed_flat"] * 1e6,
             r["exposed_overlap"] * 1e6,
             r["epoch_time_flat"] * 1e3, r["epoch_time_overlap"] * 1e3]
            for r in rows
        ],
        title="Gradient-sync overlap across machine nodes (Fig. 13 style)",
    )


def cache_sweep(
    ratios=(0.0, 0.05, 0.1, 0.25, 0.5, 1.0),
    num_nodes: int = 20_000, batch_size: int = 64,
    fanouts=(5, 5), iterations: int = 8,
    policy: str = "static", seed: int = 0,
) -> list[dict]:
    """Hit rate and gather time across cache sizes (same frontier replay)."""
    ds = get_dataset("uk_domain", num_nodes, seed)
    rows = []
    for ratio in ratios:
        node = SimNode()
        store = MultiGpuGraphStore(
            node, ds, seed=seed, cache_ratio=ratio, cache_policy=policy
        )
        node.reset_clocks()
        gather_time = _cache_workload(
            store, fanouts, batch_size, iterations, seed
        )
        cache = store.feature_cache
        summary = cache.summary() if cache is not None else None
        rows.append({
            "cache_ratio": ratio,
            "policy": policy if cache is not None else "none",
            "hit_rate": summary["hit_rate"] if summary else 0.0,
            "gather_time": gather_time,
            "nvlink_mib_saved": (
                summary["remote_bytes_saved"] / 2**20 if summary else 0.0
            ),
        })
    return rows


def sweep_report(rows: list[dict]) -> str:
    return format_table(
        ["cache ratio", "policy", "hit rate", "gather (ms)",
         "NVLink MiB saved"],
        [
            [f"{r['cache_ratio']:.0%}", r["policy"],
             f"{r['hit_rate']:.3f}", r["gather_time"] * 1e3,
             f"{r['nvlink_mib_saved']:.1f}"]
            for r in rows
        ],
        title="Feature-cache sweep (uk_domain, degree-ordered placement)",
    )


def tier_hit_ratio_sweep(
    cache_ratios=(0.0, 0.05, 0.1),
    host_fractions=(0.25, 0.5, 0.75),
    num_nodes: int = 30_000, batch_size: int = config.BATCH_SIZE,
    fanouts=(config.FANOUT,) * config.NUM_LAYERS,
    iterations: int = 8, seed: int = 0,
) -> list[dict]:
    """Where gathered bytes land across the out-of-core storage tiers.

    The Table-5 training config (papers100M stand-in, default batch size
    and fanouts) replayed over the tiered store for every HBM-cache size x
    pinned-host fraction.  ``tier_hit_ratio`` is the headline: the share
    of gathered bytes served *above* the disk tier (HBM cache hits plus
    warm pinned-host rows) — the out-of-core analogue of a cache hit rate.
    Every configuration replays the identical frontier sequence, so the
    rows isolate placement, not sampling noise.
    """
    from repro.telemetry import metrics

    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    rows = []
    for ratio in cache_ratios:
        for frac in host_fractions:
            prev = metrics.get_registry()
            metrics.set_registry(metrics.MetricsRegistry())
            try:
                node = SimNode()
                store = MultiGpuGraphStore(
                    node, ds, seed=seed, tier="tiered",
                    cache_ratio=ratio, host_pinned_fraction=frac,
                )
                node.reset_clocks()
                gather_time = _cache_workload(
                    store, fanouts, batch_size, iterations, seed
                )
                reg = metrics.get_registry()
                hbm = reg.total("gather_link_bytes_total", link="hbm")
                host = reg.total("tier_gather_bytes_total", tier="host")
                disk = reg.total("tier_gather_bytes_total", tier="disk")
            finally:
                metrics.set_registry(prev)
            total = hbm + host + disk
            cache = store.feature_cache
            rows.append({
                "cache_ratio": ratio,
                "host_pinned_fraction": frac,
                "tier_hit_ratio": (hbm + host) / total if total else 0.0,
                "hbm_share": hbm / total if total else 0.0,
                "host_share": host / total if total else 0.0,
                "disk_share": disk / total if total else 0.0,
                "cache_hit_rate": (
                    cache.summary()["hit_rate"] if cache is not None else 0.0
                ),
                "gather_time": gather_time,
            })
    return rows


def tier_sweep_report(rows: list[dict]) -> str:
    return format_table(
        ["cache ratio", "host frac", "tier hit", "hbm/host/disk",
         "gather (ms)"],
        [
            [f"{r['cache_ratio']:.0%}", f"{r['host_pinned_fraction']:.0%}",
             f"{r['tier_hit_ratio']:.3f}",
             (f"{r['hbm_share']:.2f}/{r['host_share']:.2f}"
              f"/{r['disk_share']:.2f}"),
             r["gather_time"] * 1e3]
            for r in rows
        ],
        title=(
            "Out-of-core tier hit ratio (papers100M stand-in, Table-5 "
            "config, degree-ordered placement)"
        ),
    )


def run(num_nodes: int = 20_000, seed: int = 0) -> list[AblationResult]:
    return [
        unique_impl_ablation(num_nodes=num_nodes, seed=seed),
        atomic_elision_ablation(num_nodes=num_nodes, seed=seed),
        um_storage_ablation(num_nodes=num_nodes, seed=seed),
        feature_location_ablation(num_nodes=num_nodes, seed=seed),
        feature_cache_ablation(num_nodes=num_nodes, seed=seed),
        overlap_ablation(num_nodes=num_nodes, seed=seed),
        grad_sync_ablation(num_nodes=num_nodes, seed=seed),
    ]


def report(results: list[AblationResult]) -> str:
    return format_table(
        ["Design choice", "baseline", "optimized", "base (ms)", "opt (ms)",
         "speedup"],
        [
            [r.name, r.baseline_label, r.optimized_label,
             r.baseline_time * 1e3, r.optimized_time * 1e3,
             f"{r.speedup:.2f}x"]
            for r in results
        ],
        title="Ablations: each WholeGraph design choice vs its alternative",
    )


def check_shape(results: list[AblationResult]) -> None:
    by_name = {r.name: r for r in results}
    # every design choice must actually help
    for r in results:
        assert r.speedup > 1.0, (r.name, r.speedup)
    # the storage substrate is the dominant choice by far (Table I's
    # order-of-magnitude latency gap)
    assert by_name["feature storage substrate"].speedup > 10
    # NVLink vs shared PCIe: roughly the paper's 18.75x bandwidth gap
    # (modulo the random-access efficiency of each link)
    if "feature placement" in by_name:
        assert 5 < by_name["feature placement"].speedup < 40
    # overlap can at best halve the iteration (max vs sum of two phases)
    if "iteration schedule" in by_name:
        assert by_name["iteration schedule"].speedup <= 2.0
    # bucketed overlap must cut the exposed all-reduce by >= 30 %
    if "gradient synchronisation" in by_name:
        assert by_name["gradient synchronisation"].speedup >= 1.0 / 0.7
