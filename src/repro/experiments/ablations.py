"""Ablations of WholeGraph's design choices (DESIGN.md §3, last row).

Three studies, each isolating one decision the paper argues for:

1. **Hash vs sort unique** (§III-C2): AppendUnique with the bucketed hash
   table versus the sort-based unique other frameworks use, measured as the
   sampling-phase time of real training iterations.

2. **Atomic elision in g-SpMM backward** (§III-C4): the duplicate-count
   array turns sampled-once rows into plain stores; we price the backward
   scatter of real sampled sub-graphs with and without the optimisation.

3. **P2P vs UM storage** (§II-B): what the per-iteration feature gather
   would cost if WholeMemory were built on Unified Memory instead of
   GPUDirect P2P — every gathered row pays a page fault instead of riding
   the NVLink bandwidth curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph import MultiGpuGraphStore
from repro.experiments.common import get_dataset
from repro.hardware import SimNode, costmodel
from repro.ops.neighbor_sampler import NeighborSampler
from repro.ops.spmm import atomic_elision_stats
from repro.telemetry.report import format_table
from repro.utils.rng import spawn_rng


@dataclass
class AblationResult:
    name: str
    baseline_label: str
    optimized_label: str
    baseline_time: float
    optimized_time: float

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.optimized_time


def _sample_setup(num_nodes: int, seed: int, batch_size: int, fanouts):
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=seed)
    seeds = store.train_nodes[
        spawn_rng(seed, "abl").integers(
            0, len(store.train_nodes), size=batch_size
        )
    ]
    seeds = np.unique(seeds)
    return node, store, seeds


def unique_impl_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), iterations: int = 3, seed: int = 0,
) -> AblationResult:
    """Sampling-phase time: hash-table vs sort-based AppendUnique."""
    times = {}
    for impl in ("hash", "sort"):
        node, store, seeds = _sample_setup(num_nodes, seed, batch_size,
                                           fanouts)
        sampler = NeighborSampler(store, list(fanouts), unique_impl=impl)
        node.reset_clocks()
        rng = spawn_rng(seed, "abl-sample", impl)
        for _ in range(iterations):
            sampler.sample(seeds, 0, rng)
        times[impl] = node.timeline.phase_total("sample") / iterations
    return AblationResult(
        name="AppendUnique kernel",
        baseline_label="sort-based unique",
        optimized_label="bucketed hash table",
        baseline_time=times["sort"],
        optimized_time=times["hash"],
    )


def atomic_elision_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), hidden: int = 256, seed: int = 0,
) -> AblationResult:
    """Backward-scatter time with vs without duplicate-count elision."""
    node, store, seeds = _sample_setup(num_nodes, seed, batch_size, fanouts)
    sampler = NeighborSampler(store, list(fanouts), charge=False)
    sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-atomic"))
    with_opt = 0.0
    without = 0.0
    for block in sg.blocks:
        stats = atomic_elision_stats(block.indices, block.duplicate_counts)
        row_bytes = hidden * 4
        with_opt += costmodel.backward_scatter_time(
            stats["plain_stores"], stats["atomic_adds"], row_bytes
        )
        without += costmodel.backward_scatter_time(
            0, block.num_edges, row_bytes
        )
    return AblationResult(
        name="g-SpMM backward scatter",
        baseline_label="all atomic adds",
        optimized_label="duplicate-count elision",
        baseline_time=without,
        optimized_time=with_opt,
    )


def um_storage_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), seed: int = 0,
) -> AblationResult:
    """Per-iteration feature-gather time: P2P DSM vs UM-backed storage."""
    node, store, seeds = _sample_setup(num_nodes, seed, batch_size, fanouts)
    sampler = NeighborSampler(store, list(fanouts), charge=False)
    sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-um"))
    rows = sg.input_nodes
    node.reset_clocks()
    store.gather_features(rows, rank=0)
    t_p2p = node.gpu_clock[0].now
    # UM: a random row is almost always on a fresh page -> one fault per
    # remote row; 1/8 of rows are local.
    footprint = store.feature_tensor.total_bytes
    remote_rows = rows.shape[0] * (node.num_gpus - 1) / node.num_gpus
    t_um = remote_rows * costmodel.um_access_latency(
        max(footprint, 8 * 2**30)
    ) + (rows.shape[0] - remote_rows) * costmodel.local_access_latency()
    return AblationResult(
        name="feature storage substrate",
        baseline_label="Unified Memory (page migration)",
        optimized_label="GPUDirect P2P (WholeMemory)",
        baseline_time=t_um,
        optimized_time=t_p2p,
    )


def feature_location_ablation(
    num_nodes: int = 20_000, batch_size: int = 512,
    fanouts=(30, 30), seed: int = 0,
) -> AblationResult:
    """Per-iteration feature gather: device DSM vs host-pinned zero-copy.

    The host-pinned placement survives graphs beyond aggregate GPU memory
    but pays the shared PCIe uplink — the §III-B bandwidth argument
    measured through the real gather path.
    """
    ds = get_dataset("ogbn-papers100M", num_nodes, seed)
    times = {}
    for location in ("device", "host_pinned"):
        node = SimNode()
        store = MultiGpuGraphStore(
            node, ds, seed=seed, feature_location=location
        )
        sampler = NeighborSampler(store, list(fanouts), charge=False)
        seeds = store.train_nodes[:batch_size]
        sg = sampler.sample(seeds, 0, spawn_rng(seed, "abl-loc", location))
        node.reset_clocks()
        store.gather_features(sg.input_nodes, rank=0)
        times[location] = node.gpu_clock[0].now
    return AblationResult(
        name="feature placement",
        baseline_label="host-pinned (PCIe zero-copy)",
        optimized_label="device DSM (NVLink P2P)",
        baseline_time=times["host_pinned"],
        optimized_time=times["device"],
    )


def run(num_nodes: int = 20_000, seed: int = 0) -> list[AblationResult]:
    return [
        unique_impl_ablation(num_nodes=num_nodes, seed=seed),
        atomic_elision_ablation(num_nodes=num_nodes, seed=seed),
        um_storage_ablation(num_nodes=num_nodes, seed=seed),
        feature_location_ablation(num_nodes=num_nodes, seed=seed),
    ]


def report(results: list[AblationResult]) -> str:
    return format_table(
        ["Design choice", "baseline", "optimized", "base (ms)", "opt (ms)",
         "speedup"],
        [
            [r.name, r.baseline_label, r.optimized_label,
             r.baseline_time * 1e3, r.optimized_time * 1e3,
             f"{r.speedup:.2f}x"]
            for r in results
        ],
        title="Ablations: each WholeGraph design choice vs its alternative",
    )


def check_shape(results: list[AblationResult]) -> None:
    by_name = {r.name: r for r in results}
    # every design choice must actually help
    for r in results:
        assert r.speedup > 1.0, (r.name, r.speedup)
    # the storage substrate is the dominant choice by far (Table I's
    # order-of-magnitude latency gap)
    assert by_name["feature storage substrate"].speedup > 10
    # NVLink vs shared PCIe: roughly the paper's 18.75x bandwidth gap
    # (modulo the random-access efficiency of each link)
    if "feature placement" in by_name:
        assert 5 < by_name["feature placement"].speedup < 40
