"""Weight initialisers (Glorot/Xavier, as used by GCN/GAT reference code)."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """He uniform for ReLU nets."""
    fan_in, _ = _fans(shape)
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
