"""Dense affine layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """``y = x W + b`` with Glorot-initialised ``W``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def flops(self, rows: int) -> float:
        """Forward FLOPs for ``rows`` input rows (2·m·k·n GEMM count)."""
        return 2.0 * rows * self.in_features * self.out_features
