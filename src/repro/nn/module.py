"""Parameter containers (the ``torch.nn.Module`` shape)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: recursive parameter collection, train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its sub-modules (depth-first,
        attribute order — deterministic, which DDP's flat all-reduce
        relies on)."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    params.append(value)
            elif isinstance(value, Module):
                for p in value.parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        params.append(p)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for p in item.parameters():
                            if id(p) not in seen:
                                seen.add(id(p))
                                params.append(p)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> list[np.ndarray]:
        """Parameter data arrays in ``parameters()`` order."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)}"
            )
        for p, s in zip(params, state):
            if p.data.shape != s.shape:
                raise ValueError(f"shape mismatch {p.data.shape} vs {s.shape}")
            p.data[...] = s

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
