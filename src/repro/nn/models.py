"""The paper's evaluation models: 3-layer GCN, GraphSage and GAT.

All three share the mini-batch forward over sampled blocks: the input is the
feature matrix of the deepest frontier; each layer consumes one block and
shrinks the rows to that block's targets; the final rows are the seed batch,
projected to class logits.  Hyper-parameters follow §IV: 3 layers, hidden
256, fanout 30 per layer, batch 512, GAT with 4 heads.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.hardware import costmodel
from repro.nn import functional as F
from repro.nn.layers import GATConv, GCNConv, GINConv, SAGEConv
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import SampledSubgraph

#: the paper's evaluation trio
MODEL_NAMES = ("gcn", "graphsage", "gat")
#: everything the factory can build (extensions included)
EXTENDED_MODEL_NAMES = MODEL_NAMES + ("gin",)


class _BlockModel(Module):
    """Shared forward/cost logic for the three block-based models."""

    #: multiplier on forward FLOPs to account for backward (two GEMMs per
    #: forward GEMM — the standard 1:2 rule)
    TRAIN_FLOP_FACTOR = 3.0

    def __init__(self, dropout: float = 0.5):
        super().__init__()
        self.convs: list[Module] = []
        self.dropout = float(dropout)

    def forward(
        self,
        subgraph: SampledSubgraph,
        x: Tensor,
        rng: np.random.Generator | None = None,
    ) -> Tensor:
        """``x``: features of ``subgraph.input_nodes``; returns seed logits."""
        if len(self.convs) != subgraph.num_layers:
            raise ValueError(
                f"model has {len(self.convs)} layers but subgraph has "
                f"{subgraph.num_layers}"
            )
        h = x
        # blocks[l] maps frontier l+1 -> l; apply deepest-first
        for depth, conv in enumerate(self.convs):
            block = subgraph.blocks[subgraph.num_layers - 1 - depth]
            h = conv(block, h)
            if depth < len(self.convs) - 1:
                h = self._activate(h)
                if rng is not None and self.training and self.dropout > 0:
                    h = F.dropout(h, self.dropout, rng, training=True)
        return h

    def _activate(self, h: Tensor) -> Tensor:
        return F.relu(h)

    # -- cost model -----------------------------------------------------------------

    def estimate_train_time(self, subgraph: SampledSubgraph) -> float:
        """Simulated seconds for one forward+backward+update on one GPU."""
        flops = 0.0
        sparse_bytes = 0.0
        for depth, conv in enumerate(self.convs):
            block = subgraph.blocks[subgraph.num_layers - 1 - depth]
            cost = conv.estimate_cost(
                block.num_targets, block.num_src, block.num_edges
            )
            flops += cost["flops"]
            sparse_bytes += cost["sparse_bytes"]
        t = costmodel.dense_compute_time(flops * self.TRAIN_FLOP_FACTOR)
        t += costmodel.sparse_compute_time(sparse_bytes * 2)  # fwd + bwd
        # activations / dropout / loss elementwise traffic
        act_bytes = sum(
            b.num_src * self._width_hint() * 4 for b in subgraph.blocks
        )
        t += costmodel.elementwise_time(act_bytes * 2)
        # optimizer update (Adam reads/writes 4 arrays per parameter)
        param_bytes = sum(p.data.nbytes for p in self.parameters())
        t += costmodel.elementwise_time(param_bytes * 8)
        return t

    def estimate_inference_time(self, subgraph: SampledSubgraph) -> float:
        """Simulated seconds for one forward-only pass on one GPU.

        Inference runs no backward, no optimizer, and — unlike training —
        no gradient collectives at all (paper §I: WholeGraph "also can be
        used in inference scenarios, since it does not require collective
        communication").
        """
        flops = 0.0
        sparse_bytes = 0.0
        for depth, conv in enumerate(self.convs):
            block = subgraph.blocks[subgraph.num_layers - 1 - depth]
            cost = conv.estimate_cost(
                block.num_targets, block.num_src, block.num_edges
            )
            flops += cost["flops"]
            sparse_bytes += cost["sparse_bytes"]
        t = costmodel.dense_compute_time(flops)
        t += costmodel.sparse_compute_time(sparse_bytes)
        act_bytes = sum(
            b.num_src * self._width_hint() * 4 for b in subgraph.blocks
        )
        return t + costmodel.elementwise_time(act_bytes)

    def _width_hint(self) -> int:
        return getattr(self.convs[0], "out_features", config.HIDDEN_SIZE)

    def grad_nbytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters())


class GCN(_BlockModel):
    """Sampling-augmented GCN (paper adds sampling to support large graphs)."""

    def __init__(self, in_features: int, hidden: int, num_classes: int,
                 num_layers: int, rng: np.random.Generator,
                 dropout: float = 0.5):
        super().__init__(dropout)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.convs = [
            GCNConv(dims[i], dims[i + 1], rng) for i in range(num_layers)
        ]


class GraphSage(_BlockModel):
    """GraphSage with mean aggregation."""

    def __init__(self, in_features: int, hidden: int, num_classes: int,
                 num_layers: int, rng: np.random.Generator,
                 dropout: float = 0.5):
        super().__init__(dropout)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.convs = [
            SAGEConv(dims[i], dims[i + 1], rng) for i in range(num_layers)
        ]


class GIN(_BlockModel):
    """Graph isomorphism network — extension beyond the paper's trio."""

    def __init__(self, in_features: int, hidden: int, num_classes: int,
                 num_layers: int, rng: np.random.Generator,
                 dropout: float = 0.5):
        super().__init__(dropout)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.convs = [
            GINConv(dims[i], dims[i + 1], rng) for i in range(num_layers)
        ]


class GAT(_BlockModel):
    """Multi-head graph attention network (4 heads in the paper)."""

    def __init__(self, in_features: int, hidden: int, num_classes: int,
                 num_layers: int, rng: np.random.Generator,
                 num_heads: int = config.GAT_NUM_HEADS,
                 dropout: float = 0.5):
        super().__init__(dropout)
        # hidden layers concatenate heads to `hidden`; the output layer uses
        # one effective head by emitting num_classes per head and averaging —
        # simplified here to a single-head-width final GAT layer when the
        # class count divides by heads, else heads=1.
        self.convs = []
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for i in range(num_layers):
            heads = num_heads if dims[i + 1] % num_heads == 0 else 1
            self.convs.append(
                GATConv(dims[i], dims[i + 1], rng, num_heads=heads)
            )

    def _activate(self, h: Tensor) -> Tensor:
        return F.elu(h)


def build_model(
    name: str,
    in_features: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden: int = config.HIDDEN_SIZE,
    num_layers: int = config.NUM_LAYERS,
    dropout: float = 0.5,
) -> _BlockModel:
    """Factory for the three evaluation models by paper name."""
    name = name.lower()
    if name == "gcn":
        return GCN(in_features, hidden, num_classes, num_layers, rng, dropout)
    if name in ("graphsage", "sage"):
        return GraphSage(in_features, hidden, num_classes, num_layers, rng,
                         dropout)
    if name == "gat":
        return GAT(in_features, hidden, num_classes, num_layers, rng,
                   dropout=dropout)
    if name == "gin":
        return GIN(in_features, hidden, num_classes, num_layers, rng,
                   dropout)
    raise ValueError(
        f"unknown model {name!r}; expected one of {EXTENDED_MODEL_NAMES}"
    )
