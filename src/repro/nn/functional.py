"""Autograd-aware functional ops: activations, losses, and the graph ops.

The graph ops wrap :mod:`repro.ops.spmm` / :mod:`repro.ops.segment` with the
backward passes the paper prescribes (§III-C4):

- :func:`spmm_sum` / :func:`spmm_mean` forward on the CSR block; the
  feature gradient scatters with atomic adds *elided for sub-graph nodes
  whose duplicate count is 1*;
- the edge-weight gradient of a weighted :func:`spmm_sum` is a g-SDDMM on
  the same CSR;
- :func:`edge_softmax` is the segment softmax GAT needs, with the exact
  within-segment softmax Jacobian in backward.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.ops import sddmm as _sddmm
from repro.ops import segment as _segment
from repro.ops import spmm as _spmm


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    return Tensor._make(
        x.data * mask, (x,), lambda g: (g * mask,)
    )


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    slope = np.float32(negative_slope)
    mask = x.data > 0
    scale = np.where(mask, np.float32(1.0), slope)
    return Tensor._make(x.data * scale, (x,), lambda g: (g * scale,))


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    a = np.float32(alpha)
    neg = a * (np.exp(np.minimum(x.data, 0)) - 1)
    out = np.where(x.data > 0, x.data, neg)
    dgrad = np.where(x.data > 0, np.float32(1.0), neg + a)
    return Tensor._make(out, (x,), lambda g: (g * dgrad,))


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0:
        return x
    keep = (rng.random(x.data.shape) >= p).astype(np.float32) / np.float32(
        1.0 - p
    )
    return Tensor._make(x.data * keep, (x,), lambda g: (g * keep,))


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax (last axis)."""
    mx = x.data.max(axis=-1, keepdims=True)
    shifted = x.data - mx
    lse = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    out = shifted - lse
    softmax = np.exp(out)

    def backward(g):
        return (g - softmax * g.sum(axis=-1, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``."""
    targets = np.asarray(targets, dtype=np.int64)
    n = targets.shape[0]
    rows = np.arange(n)
    out = -log_probs.data[rows, targets].mean()

    def backward(g):
        grad = np.zeros_like(log_probs.data)
        grad[rows, targets] = -1.0 / n
        return (grad * g,)

    return Tensor._make(np.float32(out), (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy (the training loss of all three models)."""
    return nll_loss(log_softmax(logits), targets)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    out = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x.data))),
        np.exp(-np.abs(x.data)) / (1.0 + np.exp(-np.abs(x.data))),
    ).astype(np.float32)
    return Tensor._make(out, (x,), lambda g: (g * out * (1.0 - out),))


def binary_cross_entropy_with_logits(
    logits: Tensor, labels: np.ndarray
) -> Tensor:
    """Mean BCE on raw scores (link-prediction loss).

    Uses the stable form ``max(z,0) − z·y + log(1 + exp(−|z|))``.
    """
    y = np.asarray(labels, dtype=np.float32)
    z = logits.data
    out = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
    n = max(z.size, 1)

    def backward(g):
        s = np.where(
            z >= 0,
            1.0 / (1.0 + np.exp(-np.abs(z))),
            np.exp(-np.abs(z)) / (1.0 + np.exp(-np.abs(z))),
        )
        return ((s - y) / n * g,)

    return Tensor._make(np.float32(out.mean()), (logits,), backward)


def pairwise_dot(h: Tensor, left: np.ndarray, right: np.ndarray) -> Tensor:
    """Per-pair dot product ``<h[left[i]], h[right[i]]>`` (edge decoder)."""
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    hl, hr = h.data[left], h.data[right]
    out = (hl * hr).sum(axis=-1)

    def backward(g):
        grad = np.zeros_like(h.data)
        contrib_l = g[:, None] * hr
        contrib_r = g[:, None] * hl
        grad += _segment.scatter_add_rows(h.data.shape[0], left, contrib_l)
        grad += _segment.scatter_add_rows(h.data.shape[0], right, contrib_r)
        return (grad,)

    return Tensor._make(out, (h,), backward)


# ---------------------------------------------------------------------------
# Row indexing
# ---------------------------------------------------------------------------

def gather_rows(x: Tensor, rows: np.ndarray) -> Tensor:
    """``out[i] = x[rows[i]]`` with scatter-add backward."""
    rows = np.asarray(rows, dtype=np.int64)

    def backward(g):
        return (_segment.scatter_add_rows(x.data.shape[0], rows, g),)

    return Tensor._make(x.data[rows], (x,), backward)


def slice_rows(x: Tensor, n: int) -> Tensor:
    """First ``n`` rows — the prefix-property slice that reuses gathered
    features as the next layer's targets."""
    def backward(g):
        grad = np.zeros_like(x.data)
        grad[:n] = g
        return (grad,)

    return Tensor._make(x.data[:n], (x,), backward)


# ---------------------------------------------------------------------------
# Graph message passing (g-SpMM / g-SDDMM / edge softmax)
# ---------------------------------------------------------------------------

def spmm_sum(
    indptr: np.ndarray,
    indices: np.ndarray,
    x: Tensor,
    edge_weights: Tensor | None = None,
    duplicate_counts: np.ndarray | None = None,
) -> Tensor:
    """Weighted-sum aggregation ``out[t] = Σ_{e→t} w_e · x[src_e]``.

    Backward w.r.t. ``x``: g-SpMM on the transposed CSR via atomics with the
    duplicate-count elision.  Backward w.r.t. ``edge_weights``: g-SDDMM.
    """
    w = edge_weights
    out = _spmm.gspmm_sum(
        indptr, indices, x.data, None if w is None else w.data
    )
    num_src = x.data.shape[0]

    if w is None:
        def backward(g):
            gx, _ = _spmm.gspmm_backward_features(
                indptr, indices, g, num_src,
                duplicate_counts=duplicate_counts,
            )
            return (gx,)

        return Tensor._make(out, (x,), backward)

    def backward_w(g):
        gx, _ = _spmm.gspmm_backward_features(
            indptr, indices, g, num_src, edge_weights=w.data,
            duplicate_counts=duplicate_counts,
        )
        gw = _sddmm.gsddmm_dot(indptr, indices, g, x.data)
        return (gx, gw)

    return Tensor._make(out, (x, w), backward_w)


def spmm_mean(
    indptr: np.ndarray,
    indices: np.ndarray,
    x: Tensor,
    duplicate_counts: np.ndarray | None = None,
) -> Tensor:
    """Mean aggregation (GraphSage)."""
    out = _spmm.gspmm_mean(indptr, indices, x.data)
    num_src = x.data.shape[0]

    def backward(g):
        gx, _ = _spmm.gspmm_mean_backward_features(
            indptr, indices, g, num_src, duplicate_counts=duplicate_counts
        )
        return (gx,)

    return Tensor._make(out, (x,), backward)


def spmm_max(
    indptr: np.ndarray,
    indices: np.ndarray,
    x: Tensor,
) -> Tensor:
    """Max aggregation (GraphSage's pool aggregator).

    Backward is the max subgradient: each output cell routes its gradient
    to the max-achieving incoming message(s); ties split evenly (with
    continuous features, ties have measure zero).
    """
    from repro.ops.segment import segment_max

    idx = np.asarray(indices, dtype=np.int64)
    seg_ids = _segment.segment_ids_from_indptr(indptr)
    msg = x.data[idx]
    out = segment_max(msg, indptr)

    def backward(g):
        winners = (msg == out[seg_ids]).astype(np.float32)
        counts = _segment.segment_sum(winners, indptr)
        share = winners / np.maximum(counts[seg_ids], 1.0)
        return (
            _segment.scatter_add_rows(
                x.data.shape[0], idx, share * g[seg_ids]
            ),
        )

    return Tensor._make(out, (x,), backward)


def edge_softmax(indptr: np.ndarray, logits: Tensor) -> Tensor:
    """Softmax over each target's incoming edges (GAT attention).

    ``logits`` is ``(num_edges, ...)`` in CSR edge order.  Backward uses the
    within-segment softmax Jacobian:
    ``dL/dz = α ⊙ (g − Σ_seg α ⊙ g)``.
    """
    alpha = _segment.segment_softmax(logits.data, indptr)
    seg_ids = _segment.segment_ids_from_indptr(indptr)

    def backward(g):
        weighted = alpha * g
        seg_total = _segment.segment_sum(weighted, indptr)
        return (weighted - alpha * seg_total[seg_ids],)

    return Tensor._make(alpha, (logits,), backward)


def edge_gather_add(
    indptr: np.ndarray,
    indices: np.ndarray,
    dst_values: Tensor,
    src_values: Tensor,
) -> Tensor:
    """Per-edge ``dst_values[row_e] + src_values[col_e]`` (GAT logits).

    Backward segment-sums into rows and scatter-adds into columns.
    """
    seg_ids = _segment.segment_ids_from_indptr(indptr)
    idx = np.asarray(indices, dtype=np.int64)
    out = dst_values.data[seg_ids] + src_values.data[idx]

    def backward(g):
        # dst_values may have more rows than segments (targets are a prefix
        # of the source frontier); rows beyond the targets get zero grad.
        g_dst = np.zeros_like(dst_values.data)
        g_dst[: indptr.shape[0] - 1] = _segment.segment_sum(g, indptr)
        g_src = _segment.scatter_add_rows(src_values.data.shape[0], idx, g)
        return (g_dst, g_src)

    return Tensor._make(out, (dst_values, src_values), backward)


def graph_readout(h: Tensor, graph_offsets: np.ndarray,
                  mode: str = "mean") -> Tensor:
    """Pool node embeddings into per-graph embeddings (graph-level tasks).

    ``graph_offsets`` partitions the batched node space (``BatchedGraphs``);
    ``mode`` is ``"mean"`` or ``"sum"``.
    """
    offsets = np.asarray(graph_offsets, dtype=np.int64)
    seg_ids = _segment.segment_ids_from_indptr(offsets)
    sums = _segment.segment_sum(h.data, offsets)
    counts = np.maximum(np.diff(offsets), 1).astype(np.float32)
    if mode == "sum":
        def backward(g):
            return (g[seg_ids],)

        return Tensor._make(sums, (h,), backward)
    if mode == "mean":
        out = sums / counts[:, None]

        def backward(g):
            return ((g / counts[:, None])[seg_ids],)

        return Tensor._make(out, (h,), backward)
    raise ValueError("mode must be 'mean' or 'sum'")


def segment_sum(indptr: np.ndarray, values: Tensor) -> Tensor:
    """Autograd segment sum over CSR edge order (GAT's aggregation)."""
    out = _segment.segment_sum(values.data, indptr)
    seg_ids = _segment.segment_ids_from_indptr(indptr)

    def backward(g):
        return (g[seg_ids],)

    return Tensor._make(out, (values,), backward)


def edge_mul_gather(
    indices: np.ndarray, alpha: Tensor, src_feat: Tensor
) -> Tensor:
    """Per-edge message ``α_e ⊙ x[src_e]`` with broadcast over the feature
    axis (``alpha``: ``(E, H)``, ``src_feat``: ``(N, H, D)``)."""
    idx = np.asarray(indices, dtype=np.int64)
    out = src_feat.data[idx]  # (E, H, D)
    out *= alpha.data[..., None]

    def backward(g):
        # re-gather instead of capturing the (E, H, D) tensor in the
        # closure — halves the op's resident footprint on big batches
        gathered = src_feat.data[idx]
        g_alpha = (g * gathered).sum(axis=-1)
        # reuse the gathered buffer for the source-gradient messages
        np.multiply(g, alpha.data[..., None], out=gathered)
        g_src = _segment.scatter_add_rows(
            src_feat.data.shape[0], idx, gathered
        )
        return (g_alpha, g_src)

    return Tensor._make(out, (alpha, src_feat), backward)
