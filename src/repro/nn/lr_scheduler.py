"""Learning-rate schedules for long multi-epoch runs."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base: call :meth:`step` once per epoch (or per iteration)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance the schedule and apply the new rate; returns it."""
        self.step_count += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.step_count // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        t = min(self.step_count, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max)
        )


class LinearWarmup(LRScheduler):
    """Ramp from 0 to the base rate over ``warmup_steps``, then hold —
    the standard large-batch data-parallel warmup."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int):
        super().__init__(optimizer)
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.warmup_steps = int(warmup_steps)

    def get_lr(self) -> float:
        return self.base_lr * min(1.0, self.step_count / self.warmup_steps)
