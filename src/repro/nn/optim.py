"""Optimizers: SGD (with momentum) and Adam.

Adam follows Kingma & Ba with bias correction; both operate in-place on
parameter ``data`` using the accumulated ``grad`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Common parameter bookkeeping."""

    def __init__(self, params: list[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def grad_nbytes(self) -> int:
        """Total gradient payload (the DDP all-reduce message size)."""
        return sum(p.data.nbytes for p in self.params)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction (the optimizer of the OGB baselines)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
