"""Sparse optimizers over DSM embedding tables (touched-rows-only updates).

A dense optimizer walks every parameter every step; an embedding table with
millions of rows makes that a non-starter.  :class:`SparseSGD` and
:class:`SparseAdam` instead drain the row gradients a
:class:`~repro.dsm.sparse_embedding.WholeEmbedding` recorded during
backward, deduplicate them (scatter-add of duplicate contributions in
occurrence order), and update *only the touched rows* — with the optimizer
state (momentum / first and second moments, and the per-row step count)
held in WholeTensors co-sharded with the table, so state never leaves the
owning GPU.

The update arithmetic replays :class:`~repro.nn.optim.SGD` /
:class:`~repro.nn.optim.Adam` exactly, restricted to the touched rows.  The
only structural difference is bias correction: dense Adam uses one global
step count, sparse Adam one count per row (a row skipped for ten steps must
not have its moments bias-corrected as if it had been updated ten times).
The per-row correction factors are computed in float64 and cast to float32
*before* entering the update — the same two-rounding semantics NumPy
applies to dense Adam's Python-float scalars — so a touched row's update is
bit-identical to a dense optimizer stepping a one-row parameter on that
row's touch subsequence (``tests/test_sparse_embedding.py`` pins this).

Cluster training averages row gradients across replicas with
:func:`average_row_grads` under the same float64-accumulate contract as the
dense DDP flat buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import costmodel

if TYPE_CHECKING:  # import cycle: dsm.sparse_embedding needs nn.tensor
    from repro.dsm.sparse_embedding import WholeEmbedding


@dataclass
class RowGrads:
    """Deduplicated row gradients of one embedding for one step."""

    rows: np.ndarray       #: unique touched rows (sorted int64)
    grads: np.ndarray      #: float32 summed gradient per row
    raw_rows: int          #: pre-dedup contribution count (hash-table ops)
    atomic_rows: int       #: contributions that collided with a duplicate

    @property
    def num_rows(self) -> int:
        return int(self.rows.size)


def average_row_grads(
    collected: list[list[RowGrads]],
) -> list[RowGrads]:
    """Average per-replica row gradients (the sparse all-reduce).

    ``collected[i][j]`` holds replica ``i``'s :class:`RowGrads` for
    embedding ``j``.  For each embedding the union of touched rows is
    reduced with the float64-accumulate contract of the dense DDP flat
    buffers: contributions are summed in float64 in replica order, divided
    by the replica count, and cast back to float32.  Rows a replica never
    touched contribute zero.
    """
    if not collected:
        return []
    num_embeddings = len(collected[0])
    out: list[RowGrads] = []
    for j in range(num_embeddings):
        parts = [replica[j] for replica in collected]
        union = np.unique(np.concatenate([p.rows for p in parts]))
        dim = parts[0].grads.shape[1]
        acc = np.zeros((union.size, dim), dtype=np.float64)
        for p in parts:
            idx = np.searchsorted(union, p.rows)
            acc[idx] += p.grads.astype(np.float64)
        mean = (acc / len(parts)).astype(np.float32)
        out.append(RowGrads(
            rows=union,
            grads=mean,
            raw_rows=parts[0].raw_rows,
            atomic_rows=parts[0].atomic_rows,
        ))
    return out


class SparseOptimizer:
    """Common bookkeeping: pending-grad draining and update-cost charging."""

    #: state reads+writes per touched element (p alone; subclasses add)
    STATE_RW_FACTOR = 2

    def __init__(self, embeddings, lr: float, charge_setup: bool = True):
        from repro.dsm.sparse_embedding import WholeEmbedding

        self.embeddings: list[WholeEmbedding] = list(embeddings)
        if not self.embeddings:
            raise ValueError("sparse optimizer needs at least one embedding")
        for emb in self.embeddings:
            if not isinstance(emb, WholeEmbedding):
                raise TypeError(
                    f"sparse optimizer updates WholeEmbedding tables, "
                    f"got {type(emb)!r}"
                )
        self.lr = float(lr)
        self._charge_setup = bool(charge_setup)
        #: with ``record_history=True``, every applied (rows, grads) pair is
        #: appended here — the bit-identity tests replay it through the
        #: dense optimizer restricted to each row's touch subsequence
        self.record_history = False
        self.history: list[list[tuple[np.ndarray, np.ndarray]]] = []

    def _state_tensor(
        self, emb: WholeEmbedding, suffix: str, dtype=np.float32,
        num_cols: int | None = None,
    ) -> WholeTensor:
        """Allocate optimizer state co-sharded with ``emb``'s table."""
        return WholeTensor(
            emb.node, emb.num_rows,
            emb.dim if num_cols is None else num_cols,
            dtype=dtype, tag=f"{emb.tag}.{suffix}",
            charge_setup=self._charge_setup,
            partition=emb.table.partition,
        )

    def zero_grad(self) -> None:
        for emb in self.embeddings:
            emb.zero_grad()

    def state_bytes(self) -> int:
        """Total bytes of DSM-resident optimizer state."""
        return sum(t.total_bytes for t in self._state_tensors())

    def _state_tensors(self) -> list[WholeTensor]:
        raise NotImplementedError

    def _update_rows(
        self, index: int, emb: WholeEmbedding,
        rows: np.ndarray, grads: np.ndarray,
    ) -> None:
        raise NotImplementedError

    # -- the step, split so cluster training can average between halves ------

    def collect(self) -> list[RowGrads]:
        """Drain every embedding's pending grads into :class:`RowGrads`."""
        return [
            RowGrads(*emb.collect_row_grads()) for emb in self.embeddings
        ]

    def apply(
        self, collected: list[RowGrads], rank: int = 0, charge: bool = True,
    ) -> None:
        """Push and apply deduplicated row gradients.

        With ``charge=True`` the row-grad payload rides the comm-stream lane
        (:meth:`WholeEmbedding.push_row_grads`) and the touched-row state
        arithmetic is priced at the elementwise bandwidth on each owning
        rank's clock.
        """
        if self.record_history:
            self.history.append([
                (rg.rows.copy(), rg.grads.copy()) for rg in collected
            ])
        for index, (emb, rg) in enumerate(zip(self.embeddings, collected)):
            if rg.num_rows == 0:
                continue
            if charge:
                emb.push_row_grads(
                    rg.rows, rg.grads, rg.raw_rows, rg.atomic_rows,
                    rank=rank,
                )
            self._update_rows(index, emb, rg.rows, rg.grads)
            if charge:
                self._charge_update(emb, rg.rows)

    def step(self, rank: int = 0, charge: bool = True) -> None:
        """Drain pending row grads and update the touched rows."""
        self.apply(self.collect(), rank=rank, charge=charge)

    def _charge_update(self, emb: WholeEmbedding, rows: np.ndarray) -> None:
        """Price the per-row state arithmetic on the owning ranks."""
        node = emb.node
        owners = emb.rank_of_row(rows)
        counts = np.bincount(owners, minlength=node.num_gpus)
        for r in range(node.num_gpus):
            if counts[r] == 0:
                continue
            nbytes = int(counts[r]) * emb.row_bytes * self.STATE_RW_FACTOR
            node.gpu_clock[r].advance(
                costmodel.elementwise_time(nbytes),
                phase="sparse_step", category="compute",
                args={"rows": int(counts[r]), "tensor": emb.tag},
            )


class SparseSGD(SparseOptimizer):
    """Touched-rows SGD with optional momentum, state in DSM."""

    def __init__(self, embeddings, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, charge_setup: bool = True):
        super().__init__(embeddings, lr, charge_setup=charge_setup)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = (
            [self._state_tensor(e, "velocity") for e in self.embeddings]
            if self.momentum else []
        )
        # p read+write, plus velocity read+write when momentum is on
        self.STATE_RW_FACTOR = 4 if self.momentum else 2

    def _state_tensors(self) -> list[WholeTensor]:
        return list(self._velocity)

    def _update_rows(self, index, emb, rows, grads) -> None:
        # mirrors nn.optim.SGD.step restricted to `rows`: every op below is
        # the dense statement with p.data/v replaced by the touched-row
        # slices, so the float32 rounding sequence is identical
        p = emb.read_rows(rows)
        g = grads
        if self.weight_decay:
            g = g + self.weight_decay * p
        if self.momentum:
            v = self._velocity[index].gather_no_cost(rows)
            v *= self.momentum
            v += g
            g = v
            self._velocity[index].scatter_no_cost(rows, v)
        p -= self.lr * g
        emb.write_rows(rows, p)


class SparseAdam(SparseOptimizer):
    """Touched-rows Adam with per-row bias correction, state in DSM."""

    def __init__(self, embeddings, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 charge_setup: bool = True):
        super().__init__(embeddings, lr, charge_setup=charge_setup)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [self._state_tensor(e, "m") for e in self.embeddings]
        self._v = [self._state_tensor(e, "v") for e in self.embeddings]
        #: per-row step counts — Adam's `t`, advanced only when touched
        self._t = [
            self._state_tensor(e, "step", dtype=np.int64, num_cols=1)
            for e in self.embeddings
        ]
        # p, m, v each read+written per touched element
        self.STATE_RW_FACTOR = 6

    def _state_tensors(self) -> list[WholeTensor]:
        return [*self._m, *self._v, *self._t]

    def _update_rows(self, index, emb, rows, grads) -> None:
        t = self._t[index].gather_no_cost(rows) + 1
        self._t[index].scatter_no_cost(rows, t)
        # per-row bias correction: float64 power then one cast to float32,
        # matching NumPy's handling of dense Adam's Python-float scalars
        # (cast to the array dtype, then a float32 op) element-for-element
        t64 = t.astype(np.float64)
        bc1 = (1.0 - self.beta1 ** t64).astype(np.float32)
        bc2 = (1.0 - self.beta2 ** t64).astype(np.float32)
        # mirrors nn.optim.Adam.step restricted to `rows`
        p = emb.read_rows(rows)
        m = self._m[index].gather_no_cost(rows)
        v = self._v[index].gather_no_cost(rows)
        g = grads
        if self.weight_decay:
            g = g + self.weight_decay * p
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * (g * g)
        p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
        self._m[index].scatter_no_cost(rows, m)
        self._v[index].scatter_no_cost(rows, v)
        emb.write_rows(rows, p)
