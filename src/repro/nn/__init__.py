"""Minimal dense-NN substrate (the PyTorch stand-in).

WholeGraph builds on PyTorch only for reverse-mode autodiff, dense layers
and optimizers; this package supplies exactly that surface:

- :mod:`repro.nn.tensor` — a NumPy-backed reverse-mode autograd ``Tensor``;
- :mod:`repro.nn.functional` — activations, losses, dropout, and the
  *graph* autograd ops (g-SpMM, segment softmax, row gather) whose
  backward passes implement the paper's §III-C4 recipes;
- :mod:`repro.nn.module` / :mod:`repro.nn.linear` — parameter containers;
- :mod:`repro.nn.optim` — SGD and Adam;
- :mod:`repro.nn.layers` — GCNConv / SAGEConv / GATConv on sampled blocks;
- :mod:`repro.nn.models` — the paper's 3-layer evaluation models.
"""

from repro.nn.tensor import Tensor
from repro.nn import functional
from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.optim import SGD, Adam
from repro.nn.sparse_optim import RowGrads, SparseAdam, SparseSGD, average_row_grads
from repro.nn.layers import GCNConv, SAGEConv, GATConv, GINConv
from repro.nn.models import GCN, GraphSage, GAT, GIN, build_model, MODEL_NAMES, EXTENDED_MODEL_NAMES

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "SGD",
    "Adam",
    "RowGrads",
    "SparseAdam",
    "SparseSGD",
    "average_row_grads",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "GINConv",
    "GCN",
    "GraphSage",
    "GAT",
    "GIN",
    "build_model",
    "MODEL_NAMES",
    "EXTENDED_MODEL_NAMES",
]
