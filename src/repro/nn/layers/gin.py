"""Graph isomorphism network (GIN) convolution — an extension layer.

Not part of the paper's evaluation trio, but the paper motivates graph
classification (§I), GIN's home turf.  Implements

    h_t = MLP((1 + ε) · x_t + Σ_{s∈S(t)} x_s)

with a learnable ε and a two-layer MLP, on the same sampled-block
interface as the evaluation layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import LayerBlock


class GINConv(Module):
    """One GIN layer over a :class:`LayerBlock`."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, init_eps: float = 0.0):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.eps = Parameter(np.array([init_eps], dtype=np.float32))
        self.mlp_in = Linear(in_features, out_features, rng)
        self.mlp_out = Linear(out_features, out_features, rng)

    def forward(self, block: LayerBlock, x: Tensor) -> Tensor:
        neigh_sum = F.spmm_sum(
            block.indptr, block.indices, x,
            duplicate_counts=block.duplicate_counts,
        )
        x_self = F.slice_rows(x, block.num_targets)
        combined = x_self * (self.eps + 1.0) + neigh_sum
        return self.mlp_out(F.relu(self.mlp_in(combined)))

    def estimate_cost(self, num_targets: int, num_src: int,
                      num_edges: int) -> dict[str, float]:
        return {
            "flops": self.mlp_in.flops(num_targets)
            + self.mlp_out.flops(num_targets),
            "sparse_bytes": 4.0 * num_edges * self.in_features * 2,
        }
