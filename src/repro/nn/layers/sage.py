"""GraphSage convolution.

    h_t = W_self · x_t + W_neigh · agg_{s∈S(t)} x_s

"There are several aggregation types for GraphSage.  We use the mean
aggregation" (paper §IV "GNN Models") — mean is the default here, with the
max-pool aggregator available as an option.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import LayerBlock

AGGREGATORS = ("mean", "max")


class SAGEConv(Module):
    """One GraphSage layer over a :class:`LayerBlock`."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, aggregator: str = "mean"):
        super().__init__()
        if aggregator not in AGGREGATORS:
            raise ValueError(f"aggregator must be one of {AGGREGATORS}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.aggregator = aggregator
        self.linear_self = Linear(in_features, out_features, rng)
        self.linear_neigh = Linear(in_features, out_features, rng, bias=False)

    def forward(self, block: LayerBlock, x: Tensor) -> Tensor:
        if self.aggregator == "mean":
            neigh = F.spmm_mean(
                block.indptr, block.indices, x,
                duplicate_counts=block.duplicate_counts,
            )
        else:
            neigh = F.spmm_max(block.indptr, block.indices, x)
        x_self = F.slice_rows(x, block.num_targets)
        return self.linear_self(x_self) + self.linear_neigh(neigh)

    def estimate_cost(self, num_targets: int, num_src: int,
                      num_edges: int) -> dict[str, float]:
        return {
            "flops": self.linear_self.flops(num_targets)
            + self.linear_neigh.flops(num_targets),
            "sparse_bytes": 4.0 * num_edges * self.in_features * 2,
        }
