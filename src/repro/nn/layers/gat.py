"""Graph attention convolution (Veličković et al.), 4 heads in the paper.

Per head h:

    e_{s,t} = LeakyReLU(a_l^T W x_t + a_r^T W x_s)     (g-SDDMM, add form)
    α_{s,t} = softmax_{s ∈ S(t)}(e_{s,t})              (edge softmax)
    h_t     = Σ_s α_{s,t} · W x_s                      (weighted g-SpMM)

Heads are concatenated.  All three sparse stages run on the block's CSR
(§III-C4); their backward passes are exercised through autograd.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import LayerBlock


class GATConv(Module):
    """One multi-head GAT layer over a :class:`LayerBlock`.

    ``out_features`` is the *total* output width; it must divide evenly by
    ``num_heads`` (each head produces ``out_features // num_heads``).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        negative_slope: float = 0.2,
    ):
        super().__init__()
        if out_features % num_heads:
            raise ValueError("out_features must be divisible by num_heads")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.num_heads = int(num_heads)
        self.head_dim = out_features // num_heads
        self.negative_slope = float(negative_slope)
        self.linear = Linear(in_features, out_features, rng, bias=False)
        self.att_dst = Parameter(
            xavier_uniform((self.num_heads, self.head_dim), rng)
        )
        self.att_src = Parameter(
            xavier_uniform((self.num_heads, self.head_dim), rng)
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32))

    def forward(self, block: LayerBlock, x: Tensor) -> Tensor:
        h = self.linear(x).reshape(-1, self.num_heads, self.head_dim)
        # per-node attention halves: (N, H)
        e_dst = (h * self.att_dst).sum(axis=2)
        e_src = (h * self.att_src).sum(axis=2)
        logits = F.leaky_relu(
            F.edge_gather_add(block.indptr, block.indices, e_dst, e_src),
            self.negative_slope,
        )
        alpha = F.edge_softmax(block.indptr, logits)  # (E, H)
        msgs = F.edge_mul_gather(block.indices, alpha, h)  # (E, H, D)
        out = F.segment_sum(block.indptr, msgs)  # (T, H, D)
        return out.reshape(-1, self.out_features) + self.bias

    def estimate_cost(self, num_targets: int, num_src: int,
                      num_edges: int) -> dict[str, float]:
        att_flops = 2.0 * num_src * self.out_features * 2  # e_dst, e_src
        edge_flops = 4.0 * num_edges * self.num_heads * (self.head_dim + 3)
        return {
            "flops": self.linear.flops(num_src) + att_flops + edge_flops,
            "sparse_bytes": 4.0 * num_edges * (self.out_features * 2
                                               + self.num_heads * 6),
        }
