"""Optimised GNN layer ops (paper §III-C4): GCN, GraphSage, GAT — plus the
GIN extension layer."""

from repro.nn.layers.gcn import GCNConv
from repro.nn.layers.sage import SAGEConv
from repro.nn.layers.gat import GATConv
from repro.nn.layers.gin import GINConv

__all__ = ["GCNConv", "SAGEConv", "GATConv", "GINConv"]
