"""Sampled GCN convolution.

The original GCN (Kipf & Welling) is full-batch; the paper adds neighbor
sampling to it (§IV "GNN Models"), which turns each layer into

    h_t = W · (x_t + Σ_{s∈S(t)} x_s) / (|S(t)| + 1)

— mean over the sampled neighborhood *including the target itself* (the
self-connection of Â = A + I), followed by the dense projection.  The
target's own embedding is the row prefix of the block input (WholeGraph's
prefix property), so no self-edges are materialised.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import LayerBlock


class GCNConv(Module):
    """One sampled-GCN layer over a :class:`LayerBlock`."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.linear = Linear(in_features, out_features, rng)

    def forward(self, block: LayerBlock, x: Tensor) -> Tensor:
        """``x`` has ``block.num_src`` rows (targets first)."""
        neigh_sum = F.spmm_sum(
            block.indptr, block.indices, x,
            duplicate_counts=block.duplicate_counts,
        )
        x_self = F.slice_rows(x, block.num_targets)
        deg = (block.indptr[1:] - block.indptr[:-1]).astype(np.float32)
        inv = Tensor((1.0 / (deg + 1.0))[:, None])
        mean = (neigh_sum + x_self) * inv
        return self.linear(mean)

    def estimate_cost(self, num_targets: int, num_src: int,
                      num_edges: int) -> dict[str, float]:
        """Forward work: dense FLOPs and sparse bytes touched."""
        return {
            "flops": self.linear.flops(num_targets),
            "sparse_bytes": 4.0 * num_edges * self.in_features * 2
            + 4.0 * num_targets * self.in_features * 2,
        }
