"""NumPy-backed reverse-mode autograd tensor.

A deliberately small tape-based autodiff: each op records its parents and a
closure that accumulates gradients into them; ``backward()`` walks the tape
in reverse topological order.  Broadcasting in ``+``/``*`` is handled by
summing gradients over broadcast axes (:func:`unbroadcast`).

Gradients are validated against central finite differences in the test
suite for every op.
"""

from __future__ import annotations

import numpy as np


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    # sum leading axes added by broadcasting
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum axes that were size-1 in the original
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A value in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward = None

    # -- graph construction -------------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward):
        """Create a non-leaf tensor with the given parents and pullback.

        ``backward(grad)`` must return one gradient array (or ``None``) per
        parent, in order.
        """
        out = Tensor(data)
        out.requires_grad = any(p.requires_grad for p in parents)
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad=None) -> None:
        """Reverse-mode sweep from this tensor.

        ``grad`` defaults to ones (must be provided for non-scalar roots in
        principle, but ones is the useful convention for mean-losses too).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        # reverse topological order over the tape
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in seen:
                    stack.append((p, False))
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            grads = node._backward(node.grad)
            for parent, g in zip(node._parents, grads):
                if g is not None and parent.requires_grad:
                    parent.accumulate_grad(g)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # -- shape ----------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def reshape(self, *shape) -> "Tensor":
        orig = self.data.shape
        out_data = self.data.reshape(*shape)
        return Tensor._make(
            out_data, (self,), lambda g: (g.reshape(orig),)
        )

    # -- arithmetic -------------------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        return Tensor._make(
            self.data + other.data,
            (self, other),
            lambda g: (
                unbroadcast(g, self.data.shape),
                unbroadcast(g, other.data.shape),
            ),
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        return Tensor._make(
            self.data * other.data,
            (self, other),
            lambda g: (
                unbroadcast(g * other.data, self.data.shape),
                unbroadcast(g * self.data, other.data.shape),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        return Tensor._make(
            self.data / other.data,
            (self, other),
            lambda g: (
                unbroadcast(g / other.data, self.data.shape),
                unbroadcast(
                    -g * self.data / (other.data**2), other.data.shape
                ),
            ),
        )

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        return Tensor._make(
            self.data @ other.data,
            (self, other),
            lambda g: (g @ other.data.T, self.data.T @ g),
        )

    def __pow__(self, exponent: float) -> "Tensor":
        e = float(exponent)
        return Tensor._make(
            self.data**e,
            (self,),
            lambda g: (g * e * self.data ** (e - 1),),
        )

    # -- reductions -----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            gg = np.asarray(g)
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis)
            return (np.broadcast_to(gg, self.data.shape).copy(),)

        return Tensor._make(out, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else self.data.shape[axis]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.data.shape}, "
            f"requires_grad={self.requires_grad})"
        )
