"""Host-memory graph store (the "Graph Store Server" of paper Fig. 1).

DGL and PyG keep the full graph structure and node features in CPU DRAM.
This store mirrors :class:`~repro.graph.storage.MultiGpuGraphStore`'s query
interface over plain host arrays so the baseline trainer can share the
functional sampling/gather code, while all costs accrue on the host side.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import SyntheticDataset
from repro.hardware.machine import SimNode


class HostGraphStore:
    """The baseline frameworks' CPU-resident graph + feature storage."""

    def __init__(self, node: SimNode, dataset: SyntheticDataset):
        self.node = node
        self.dataset = dataset
        self.csr: CSRGraph = dataset.graph
        self.features = dataset.features
        self.labels = dataset.labels
        self.train_nodes = dataset.train_nodes
        self.val_nodes = dataset.val_nodes
        self.test_nodes = dataset.test_nodes
        self.num_classes = dataset.num_classes

    @property
    def num_nodes(self) -> int:
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    def degree(self, nodes) -> np.ndarray:
        return self.csr.degree(nodes)

    def gather_features_host(self, nodes) -> np.ndarray:
        """CPU fancy-index gather (cost charged by the caller)."""
        return self.features[np.asarray(nodes, dtype=np.int64)]

    def structure_nbytes(self) -> int:
        return self.csr.indptr.nbytes + self.csr.indices.nbytes

    def feature_nbytes(self) -> int:
        return self.features.nbytes
