"""Baseline GNN frameworks: DGL-like and PyG-like host-memory pipelines.

The paper compares WholeGraph against DGL v0.7.2 and PyG v2.0.2, both of
which store the graph and features in host memory, sample and gather on the
CPU, and ship mini-batch tensors to the GPUs over PCIe (paper Fig. 1).
This package reproduces that *architecture*: the math is identical to
WholeGraph's (shared functional ops), but the simulated time is charged to
the host pipeline and the GPUs idle while waiting for data — the source of
the low, spiky utilization in Fig. 12.
"""

from repro.baselines.profiles import (
    BaselineProfile,
    DGL_PROFILE,
    PYG_PROFILE,
    profile_by_name,
)
from repro.baselines.host_store import HostGraphStore
from repro.baselines.cpu_trainer import CpuBaselineTrainer

__all__ = [
    "BaselineProfile",
    "DGL_PROFILE",
    "PYG_PROFILE",
    "profile_by_name",
    "HostGraphStore",
    "CpuBaselineTrainer",
]
