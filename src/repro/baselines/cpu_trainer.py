"""The DGL-like / PyG-like training pipeline (paper Fig. 1).

Per iteration and per GPU worker:

1. **sample** — the host CPU walks the graph and builds the computation
   sub-graph, then ships it over PCIe ("sub-graphs are generated and
   transferred to GPU", §IV-C3);
2. **gather** — the host gathers the mini-batch features out of DRAM and
   ships them over the (shared) PCIe uplink;
3. **train** — the GPU runs forward/backward with the framework's layer
   implementations and all-reduces gradients.

The GPU sits idle through steps 1–2 (recorded as non-busy ``wait`` spans),
which is exactly the utilization collapse of Fig. 12.  The functional math
is shared with WholeGraph — :func:`repro.ops.neighbor_sampler.sample_layer`
and :func:`repro.ops.append_unique.append_unique` run on the host CSR — so
accuracy parity (Table III, Fig. 7) is a real, measured outcome.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.hardware import costmodel
from repro.baselines.host_store import HostGraphStore
from repro.baselines.profiles import BaselineProfile
from repro.nn import functional as F
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.ops.append_unique import append_unique
from repro.ops.neighbor_sampler import (
    LayerBlock,
    SampledSubgraph,
    sample_layer,
)
from repro.train.ddp import charge_allreduce
from repro.train.metrics import PhaseTimes
from repro.train.trainer import EpochStats
from repro.utils.rng import RngPool


class CpuBaselineTrainer:
    """Mini-batch trainer with host-side sampling and gathering."""

    def __init__(
        self,
        store: HostGraphStore,
        profile: BaselineProfile,
        model_name: str,
        seed: int = 0,
        batch_size: int = config.BATCH_SIZE,
        fanouts=None,
        hidden: int = config.HIDDEN_SIZE,
        num_layers: int = config.NUM_LAYERS,
        lr: float = 3e-3,
        dropout: float = 0.5,
    ):
        self.store = store
        self.node = store.node
        self.profile = profile
        self.seed = int(seed)
        self.batch_size = int(batch_size)
        if fanouts is None:
            fanouts = [config.FANOUT] * num_layers
        else:
            # an explicit fanout list defines the depth
            fanouts = list(fanouts)
            num_layers = len(fanouts)
        self.fanouts = fanouts
        self.rngs = RngPool(seed, self.node.num_gpus)
        self.epoch_rng = self.rngs.named("epochs")
        self.model = build_model(
            model_name, store.feature_dim, store.num_classes,
            self.rngs.named("init"), hidden=hidden, num_layers=num_layers,
            dropout=dropout,
        )
        self.optimizer = Adam(self.model.parameters(), lr=lr)
        self._epoch = 0
        self.history: list[EpochStats] = []

    # -- functional sampling on the host CSR ------------------------------------------

    def _sample_subgraph(
        self, seeds: np.ndarray, rng: np.random.Generator
    ) -> tuple[SampledSubgraph, int]:
        """CPU multi-layer sampling; returns the sub-graph and edges drawn."""
        csr = self.store.csr
        frontiers = [np.asarray(seeds, dtype=np.int64)]
        blocks: list[LayerBlock] = []
        total_edges = 0
        for fanout in self.fanouts:
            targets = frontiers[-1]
            flat, counts, positions = sample_layer(
                csr.indptr, csr.indices, targets, fanout, rng
            )
            uni = append_unique(targets, flat)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            blocks.append(
                LayerBlock(
                    indptr=indptr,
                    indices=uni.neighbor_subgraph_ids,
                    num_targets=targets.shape[0],
                    num_src=uni.num_unique,
                    duplicate_counts=uni.duplicate_counts,
                    edge_positions=positions,
                )
            )
            frontiers.append(uni.unique_nodes)
            total_edges += int(counts.sum())
        return SampledSubgraph(frontiers=frontiers, blocks=blocks), total_edges

    # -- one iteration -------------------------------------------------------------------

    def _run_iteration(self, seeds: np.ndarray, rank: int,
                       train: bool = True) -> tuple[float, PhaseTimes]:
        node = self.node
        gpu = node.gpu_clock[rank]
        host = node.host_clock
        rng = self.rngs.rank(rank)

        # -- phase 1: CPU sampling + sub-graph PCIe transfer ------------------
        subgraph, edges_drawn = self._sample_subgraph(seeds, rng)
        t_sample_cpu = (
            self.profile.iter_overhead
            + edges_drawn / self.profile.sample_edges_per_s
        )
        graph_bytes = sum(
            b.indices.nbytes + b.indptr.nbytes for b in subgraph.blocks
        )
        t_sample = t_sample_cpu + costmodel.pcie_host_to_gpu_time(
            graph_bytes, shared=True
        )

        # -- phase 2: CPU feature gather + PCIe transfer -----------------------
        feats = self.store.gather_features_host(subgraph.input_nodes)
        t_gather = (
            feats.nbytes / self.profile.gather_bytes_per_s
            + costmodel.pcie_host_to_gpu_time(feats.nbytes, shared=True)
        )

        # the GPU idles while the host prepares data (Fig. 12's troughs)
        host.advance(t_sample, phase="host_sample")
        host.advance(t_gather, phase="host_gather")
        gpu.wait_until(gpu.now + t_sample, phase="sample")
        gpu.wait_until(gpu.now + t_gather, phase="gather")

        # -- phase 3: GPU training ----------------------------------------------
        x = Tensor(feats)
        logits = self.model(subgraph, x, rng if train else None)
        loss = F.cross_entropy(logits, self.store.labels[seeds])
        if train:
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()
        t_train = (
            self.model.estimate_train_time(subgraph)
            * self.profile.layer_cost_factor
        )
        gpu.advance(t_train, phase="train")
        times = PhaseTimes(sample=t_sample, gather=t_gather, train=t_train)
        return float(loss.data), times

    # -- epoch loop -------------------------------------------------------------------------

    def train_epoch(self, max_iterations: int | None = None) -> EpochStats:
        """One pass over the training nodes (symmetric-rank simulation)."""
        self.model.train()
        node = self.node
        order = self.epoch_rng.permutation(self.store.train_nodes)
        nb = max(1, order.shape[0] // self.batch_size)
        batches = [
            order[i * self.batch_size : (i + 1) * self.batch_size]
            for i in range(nb)
        ]
        if max_iterations is not None:
            batches = batches[:max_iterations]

        t_start = node.sync()
        losses = []
        totals = PhaseTimes()
        for batch in batches:
            loss, times = self._run_iteration(batch, 0, train=True)
            # symmetric ranks: charge the same pipeline to GPUs 1..N-1
            for r in range(1, node.num_gpus):
                clk = node.gpu_clock[r]
                clk.wait_until(clk.now + times.sample, phase="sample")
                clk.wait_until(clk.now + times.gather, phase="gather")
                clk.advance(times.train, phase="train")
            charge_allreduce(node, self.model.grad_nbytes(), phase="train")
            node.sync()
            totals += times
            losses.append(loss)
        t_end = node.sync()

        stats = EpochStats(
            epoch=self._epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            iterations=len(batches),
            times=totals,
            epoch_time=t_end - t_start,
        )
        self._epoch += 1
        self.history.append(stats)
        return stats

    # -- run artifacts --------------------------------------------------------------------------

    def run_report(self, name: str | None = None,
                   accuracy: float | None = None,
                   extra: dict | None = None):
        """Structured JSON manifest of this baseline run (see
        :mod:`repro.telemetry.run_report`)."""
        from repro.telemetry.run_report import report_from_node

        return report_from_node(
            name if name is not None else self.profile.name.lower(),
            self.node,
            kind="train",
            config={
                "framework": self.profile.name,
                "batch_size": self.batch_size,
                "fanouts": self.fanouts,
                "num_gpus": self.node.num_gpus,
            },
            seed=self.seed,
            accuracy=accuracy,
            history=[s.as_row() for s in self.history],
            extra=extra,
        )

    # -- evaluation -----------------------------------------------------------------------------

    def evaluate(self, nodes: np.ndarray | None = None,
                 batch_size: int | None = None) -> float:
        """Sampled-inference accuracy (no cost charging)."""
        if nodes is None:
            nodes = self.store.val_nodes
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        self.model.eval()
        rng = self.rngs.named("eval")
        correct = 0
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg, _ = self._sample_subgraph(seeds, rng)
            x = Tensor(self.store.gather_features_host(sg.input_nodes))
            logits = self.model(sg, x, None)
            correct += int(
                (logits.data.argmax(axis=-1) == self.store.labels[seeds]).sum()
            )
        self.model.train()
        return correct / max(nodes.shape[0], 1)
