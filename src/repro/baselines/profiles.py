"""Throughput profiles of the baseline frameworks.

The constants live in :mod:`repro.config` (with provenance); a profile
bundles the ones describing one framework's host pipeline.  DGL 0.7's
sampler is multithreaded C++ (the paper compiles it from source with the
PyTorch allocator to avoid cudaMalloc churn); PyG 2.0's sampling/collation
path does far more Python-side work per batch — roughly the order-of-
magnitude gap Table V shows between the two baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config


@dataclass(frozen=True)
class BaselineProfile:
    """Host-pipeline throughput description of one framework."""

    name: str
    #: CPU neighbor-sampling throughput (sampled edges / s, per worker)
    sample_edges_per_s: float
    #: CPU feature-gather throughput (bytes / s, per worker)
    gather_bytes_per_s: float
    #: fixed per-iteration host overhead (dataloader wakeup, Python glue)
    iter_overhead: float
    #: GPU-layer compute multiplier vs WholeGraph's fused layers (§IV-C5)
    layer_cost_factor: float


DGL_PROFILE = BaselineProfile(
    name="DGL",
    sample_edges_per_s=config.CPU_SAMPLE_EDGES_PER_S_DGL,
    gather_bytes_per_s=config.CPU_GATHER_BYTES_PER_S_DGL,
    iter_overhead=config.HOST_ITER_OVERHEAD_DGL,
    layer_cost_factor=config.LAYER_COST_FACTOR_DGL,
)

PYG_PROFILE = BaselineProfile(
    name="PyG",
    sample_edges_per_s=config.CPU_SAMPLE_EDGES_PER_S_PYG,
    gather_bytes_per_s=config.CPU_GATHER_BYTES_PER_S_PYG,
    iter_overhead=config.HOST_ITER_OVERHEAD_PYG,
    layer_cost_factor=config.LAYER_COST_FACTOR_PYG,
)


def profile_by_name(name: str) -> BaselineProfile:
    """Look up a profile by framework name (case-insensitive)."""
    key = name.lower()
    if key == "dgl":
        return DGL_PROFILE
    if key == "pyg":
        return PYG_PROFILE
    raise KeyError(f"unknown baseline {name!r}; expected 'DGL' or 'PyG'")
