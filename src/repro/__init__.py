"""WholeGraph (SC'22) reproduction — public API.

The common entry points re-exported for convenience::

    from repro import SimNode, load_dataset, MultiGpuGraphStore, WholeGraphTrainer

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.  Submodules import :mod:`repro.config` at definition
time, so the re-exports below are lazy (via ``__getattr__``) to keep
``import repro.config`` cycle-free.
"""

__version__ = "1.0.0"

_EXPORTS = {
    "SimNode": ("repro.hardware", "SimNode"),
    "MultiGpuGraphStore": ("repro.graph", "MultiGpuGraphStore"),
    "load_dataset": ("repro.graph", "load_dataset"),
    "Communicator": ("repro.dsm", "Communicator"),
    "WholeMemory": ("repro.dsm", "WholeMemory"),
    "WholeTensor": ("repro.dsm", "WholeTensor"),
    "WholeGraphTrainer": ("repro.train", "WholeGraphTrainer"),
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
