"""Telemetry: spans -> trace export, metrics registry, run artifacts.

The observability stack, bottom-up:

- :mod:`repro.hardware.clock` records :class:`Span`s on the shared timeline;
- :mod:`repro.telemetry.trace` exports the timeline as Chrome trace-event
  JSON (Perfetto / ``chrome://tracing``);
- :mod:`repro.telemetry.metrics` is the registry every data-path op reports
  counters/gauges/histograms to;
- :mod:`repro.telemetry.run_report` bundles config + phase breakdown +
  bandwidths + metrics snapshot into the per-run JSON manifest that
  ``benchmarks/compare_runs.py`` diffs between commits;
- utilization / bandwidth / cache / profiler are the derived views the
  paper figures are read from.
"""

from repro.telemetry.utilization import utilization_trace, mean_utilization
from repro.telemetry.bandwidth import algo_bw, bus_bw, bw_from_gather_stats
from repro.telemetry.cache import (
    cache_report,
    cache_summary,
    per_rank_cache_stats,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.report import format_table
from repro.telemetry.run_report import RunReport, report_from_node
from repro.telemetry.trace import export_chrome_trace, trace_events

__all__ = [
    "utilization_trace",
    "mean_utilization",
    "algo_bw",
    "bus_bw",
    "bw_from_gather_stats",
    "cache_report",
    "cache_summary",
    "per_rank_cache_stats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "format_table",
    "RunReport",
    "report_from_node",
    "export_chrome_trace",
    "trace_events",
]
