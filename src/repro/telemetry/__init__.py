"""Telemetry: utilization traces, bandwidth accounting, report tables."""

from repro.telemetry.utilization import utilization_trace, mean_utilization
from repro.telemetry.bandwidth import algo_bw, bus_bw, bw_from_gather_stats
from repro.telemetry.cache import (
    cache_report,
    cache_summary,
    per_rank_cache_stats,
)
from repro.telemetry.report import format_table

__all__ = [
    "utilization_trace",
    "mean_utilization",
    "algo_bw",
    "bus_bw",
    "bw_from_gather_stats",
    "cache_report",
    "cache_summary",
    "per_rank_cache_stats",
    "format_table",
]
