"""Plain-text report tables (the benchmark harness prints these)."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
