"""Chrome trace-event export of the simulated timeline.

Turns a :class:`~repro.hardware.clock.Timeline` into the JSON the
`trace-event format`_ defines, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``:

- one **process** (pid) per simulated machine node — device names carry the
  node prefix (``n1.gpu0``); unprefixed devices belong to node 0;
- one **thread** (tid) per device, with ``process_name``/``thread_name``
  metadata events so the UI shows real names; *stream lanes* — devices named
  ``<base>/<stream>`` by the :mod:`repro.sim` scheduler (``gpu0/nccl``,
  ``gpu3/serve``) — are grouped directly under their base device row via
  ``thread_sort_index``, so each GPU renders as a stack of its streams;
- one complete (``"ph": "X"``) event per span, carrying the span's phase as
  the event name, its category, and its ``args`` dict (plus the busy flag);
- optional **counter** (``"ph": "C"``) tracks from a
  :class:`~repro.telemetry.metrics.MetricsRegistry` — any metric updated
  with ``t=`` sim timestamps (per-link bytes, cache hit rate, ...) becomes a
  plottable counter lane.

Timestamps are microseconds, the unit the format specifies; the simulated
clocks run in seconds.

.. _trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json

from repro.hardware.clock import Timeline
from repro.telemetry.metrics import MetricsRegistry

_US = 1e6  # seconds -> trace microseconds


def _split_device(device: str) -> tuple[int, str]:
    """``"n2.gpu1" -> (2, "gpu1")``; unprefixed devices belong to node 0."""
    if "." in device:
        prefix, rest = device.split(".", 1)
        if prefix.startswith("n") and prefix[1:].isdigit():
            return int(prefix[1:]), rest
    return 0, device


def _lane_order(devices: list[str]) -> list[str]:
    """Group each stream lane (``<base>/<stream>``) behind its base device.

    Base devices keep first-seen order; a base's lanes follow it directly
    (in their own first-seen order), so Perfetto renders every GPU as a
    stack of its streams even when a lane's first span was recorded long
    after other devices appeared.
    """
    bases: list[str] = []
    lanes: dict[str, list[str]] = {}
    for device in devices:
        base = device.split("/", 1)[0]
        if base not in lanes:
            bases.append(base)
            lanes[base] = []
        if device != base:
            lanes[base].append(device)
    out: list[str] = []
    for base in bases:
        if base in devices:
            out.append(base)
        out.extend(lanes[base])
    return out


def trace_events(
    timeline: Timeline,
    metrics: MetricsRegistry | None = None,
    include_waits: bool = True,
) -> list[dict]:
    """The raw trace-event list (metadata + spans + counters)."""
    events: list[dict] = []
    tids: dict[str, tuple[int, int]] = {}  # device -> (pid, tid)
    pids: set[int] = set()
    next_tid: dict[int, int] = {}

    for device in _lane_order(timeline.devices()):
        pid, local = _split_device(device)
        tid = next_tid.get(pid, 0)
        next_tid[pid] = tid + 1
        tids[device] = (pid, tid)
        if pid not in pids:
            pids.add(pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"sim_node{pid}"},
            })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": local},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })

    for span in timeline.spans:
        if not include_waits and not span.busy:
            continue
        pid, tid = tids[span.device]
        args = dict(span.args) if span.args else {}
        args["busy"] = span.busy
        events.append({
            "ph": "X",
            "name": span.phase,
            "cat": span.category or ("busy" if span.busy else "idle"),
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    if metrics is not None:
        for name, samples in metrics.series().items():
            for t, value in samples:
                events.append({
                    "ph": "C", "name": name, "pid": 0, "tid": 0,
                    "ts": t * _US, "args": {"value": value},
                })
    return events


def export_chrome_trace(
    timeline: Timeline,
    path=None,
    metrics: MetricsRegistry | None = None,
    include_waits: bool = True,
) -> str:
    """Serialize ``timeline`` to a Chrome trace-event JSON string.

    ``metrics`` adds counter tracks for every metric with timestamped
    samples; ``path`` additionally writes the JSON to a file ready to drop
    into Perfetto.  Returns the JSON text.
    """
    doc = {
        "traceEvents": trace_events(
            timeline, metrics=metrics, include_waits=include_waits
        ),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry.trace"},
    }
    text = json.dumps(doc)
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text
