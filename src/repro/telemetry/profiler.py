"""Phase profiler: summarise where simulated time goes.

The optimisation workflow the reproduction follows (profile first, then
optimise) applies to the simulated machine too: wrap a region in
:class:`PhaseProfiler` and get a per-device, per-phase table of the
simulated time it consumed — the tool behind the Fig. 9/11 style analyses.

Example
-------
>>> with PhaseProfiler(node) as prof:
...     trainer.train_epoch()
>>> print(prof.report())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.machine import SimNode
from repro.telemetry.report import format_table


@dataclass
class PhaseSummary:
    """Aggregated span time for one ``(device, phase)`` pair."""

    device: str
    phase: str
    total: float
    spans: int
    busy_fraction: float


class PhaseProfiler:
    """Collects the spans recorded while the context is active."""

    def __init__(self, node: SimNode):
        self.node = node
        self._start_index = 0
        self._start_times: dict[str, float] = {}
        self._end_times: dict[str, float] = {}
        self.summaries: list[PhaseSummary] = []

    def __enter__(self) -> "PhaseProfiler":
        self._start_index = len(self.node.timeline.spans)
        self._start_times = {
            c.device: c.now for c in self.node.gpu_clock
        }
        self._start_times[self.node.host_clock.device] = (
            self.node.host_clock.now
        )
        return self

    def __exit__(self, *exc) -> None:
        self._end_times = {c.device: c.now for c in self.node.gpu_clock}
        self._end_times[self.node.host_clock.device] = (
            self.node.host_clock.now
        )
        self._summarise()

    def _summarise(self) -> None:
        spans = self.node.timeline.spans[self._start_index :]
        acc: dict[tuple[str, str], list] = {}
        for s in spans:
            key = (s.device, s.phase)
            entry = acc.setdefault(key, [0.0, 0, 0.0])
            entry[0] += s.duration
            entry[1] += 1
            entry[2] += s.duration if s.busy else 0.0
        self.summaries = [
            PhaseSummary(
                device=dev,
                phase=phase,
                total=total,
                spans=count,
                busy_fraction=busy / total if total else 0.0,
            )
            for (dev, phase), (total, count, busy) in sorted(acc.items())
        ]

    def elapsed(self, device: str | None = None) -> float:
        """Simulated wall time the region took (max over devices)."""
        if device is not None:
            return self._end_times[device] - self._start_times[device]
        return max(
            self._end_times[d] - self._start_times[d]
            for d in self._end_times
        )

    def phase_totals(self, device: str | None = None) -> dict[str, float]:
        """Phase -> summed seconds, across all devices or one of them."""
        out: dict[str, float] = {}
        for s in self.summaries:
            if device is None or s.device == device:
                out[s.phase] = out.get(s.phase, 0.0) + s.total
        return out

    def report(self, device: str | None = None) -> str:
        """Aligned per-phase table (largest consumers first)."""
        rows = [
            s for s in self.summaries
            if device is None or s.device == device
        ]
        rows.sort(key=lambda s: -s.total)
        return format_table(
            ["Device", "Phase", "time (ms)", "spans", "busy %"],
            [
                [s.device, s.phase, s.total * 1e3, s.spans,
                 f"{100*s.busy_fraction:.0f}%"]
                for s in rows
            ],
            title=f"Phase profile ({self.elapsed()*1e3:.3f} ms simulated)",
        )
