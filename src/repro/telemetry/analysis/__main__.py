"""CLI: analyze saved run manifests and emit AnalysisReport artifacts.

Usage::

    python -m repro.telemetry.analysis runs/table5.json
    python -m repro.telemetry.analysis runs/table5.json --baseline last.json
    python -m repro.telemetry.analysis runs/*.json --out-dir analysis/
    python -m repro.telemetry.analysis runs/table5.json \
        --max-exposed-comm-frac 0.35      # CI gate

Each input manifest (RunReport or ServeReport JSON) produces a
``<stem>.analysis.json`` AnalysisReport next to it (or under ``--out-dir``)
plus a readable text summary on stdout.  ``--baseline`` adds regression
attribution; ``--max-exposed-comm-frac`` turns the tool into a gate that
exits non-zero when the grad-sync exposed-comm fraction exceeds the
threshold — the CI analysis job's contract.  ``--max-exposed-host-frac``
gates the streaming loader the same way: the fraction of host/disk tier
transfer time left exposed on the compute streams.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.telemetry.analysis import analyze_report, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.analysis",
        description="Explain a run: bottleneck blame, overlap, what-ifs.",
    )
    parser.add_argument("reports", nargs="+",
                        help="RunReport/ServeReport JSON manifests")
    parser.add_argument("--baseline", default=None,
                        help="baseline manifest for regression attribution")
    parser.add_argument("--out", default=None,
                        help="AnalysisReport output path (single input only)")
    parser.add_argument("--out-dir", default=None,
                        help="directory for <stem>.analysis.json outputs")
    parser.add_argument("--top", type=int, default=6,
                        help="rows per blame/what-if table (default: 6)")
    parser.add_argument("--max-exposed-comm-frac", type=float, default=None,
                        help="fail (exit 1) if the grad-sync exposed-comm "
                             "fraction exceeds this threshold")
    parser.add_argument("--max-exposed-host-frac", type=float, default=None,
                        help="fail (exit 1) if the exposed fraction of "
                             "host/disk tier transfers exceeds this "
                             "threshold (out-of-core streaming runs)")
    args = parser.parse_args(argv)

    if args.out and len(args.reports) > 1:
        parser.error("--out only applies to a single input; use --out-dir")

    baseline = None
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)

    failures = 0
    for path_str in args.reports:
        path = Path(path_str)
        with open(path) as f:
            data = json.load(f)
        report = analyze_report(data, baseline=baseline)
        if args.out:
            out_path = Path(args.out)
        else:
            out_dir = Path(args.out_dir) if args.out_dir else path.parent
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / (path.stem + ".analysis.json")
        report.save(out_path)
        sys.stdout.write(render_text(report, top=args.top))
        print(f"analysis report written: {out_path}")
        if args.max_exposed_comm_frac is not None:
            frac = report.overlap.get("grad_sync", {}).get(
                "exposed_fraction", 0.0
            )
            if frac > args.max_exposed_comm_frac:
                print(
                    f"GATE FAILED: exposed-comm fraction {frac:.3f} exceeds "
                    f"--max-exposed-comm-frac {args.max_exposed_comm_frac}"
                )
                failures += 1
            else:
                print(
                    f"gate ok: exposed-comm fraction {frac:.3f} <= "
                    f"{args.max_exposed_comm_frac}"
                )
        if args.max_exposed_host_frac is not None:
            frac = report.overlap.get("host_fetch", {}).get(
                "exposed_fraction", 0.0
            )
            if frac > args.max_exposed_host_frac:
                print(
                    f"GATE FAILED: exposed host-transfer fraction "
                    f"{frac:.3f} exceeds --max-exposed-host-frac "
                    f"{args.max_exposed_host_frac}"
                )
                failures += 1
            else:
                print(
                    f"gate ok: exposed host-transfer fraction {frac:.3f} "
                    f"<= {args.max_exposed_host_frac}"
                )
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
