"""Overlap efficiency: how much communication is actually hidden.

The overlap engines keep double books.  When a gradient sync is charged,
:func:`repro.train.pipeline.charge_grad_sync` increments the
``grad_sync_{comm,exposed,hidden}_seconds_total`` ledgers *and* stamps the
full bucket schedule — with a per-bucket ``exposed_s``/``hidden_s`` split —
onto the ``<gpu>/nccl`` trace lane; the pipelined prefetch engine keeps
``overlap_hidden_seconds_total``.  This module reads both books and
reconciles them: a mismatch means the schedule committed to the trace is
not the schedule that was priced, which is exactly the class of bug an
overlap engine breeds.

Works from a live :class:`~repro.telemetry.metrics.MetricsRegistry`, a
report's ``metrics`` snapshot dict (flattened-name keyed), or both plus
timelines for the lane-side reconciliation.
"""

from __future__ import annotations

__all__ = ["overlap_report"]

_ABS_TOL = 1e-9


def _metric_value(metrics, name: str) -> float:
    """Total of a counter from a registry or a snapshot dict."""
    if metrics is None:
        return 0.0
    if hasattr(metrics, "total"):
        return float(metrics.total(name))
    total = 0.0
    for key, entry in metrics.items():
        if key == name or key.startswith(name + "{"):
            total += float(entry.get("value", 0.0))
    return total


def _lane_bucket_totals(timelines) -> tuple[float, float, int]:
    """(exposed, hidden, buckets) of the ``allreduce_bucket`` lane spans —
    the trace-side book of the grad-sync schedule.

    ``charge_grad_sync`` stamps the *same* plan onto every participating
    node's ``<gpu0>/nccl`` lane while incrementing the ledgers once, so
    multi-node totals are averaged per timeline, not summed.
    """
    tls = timelines if isinstance(timelines, (list, tuple)) else [timelines]
    per_tl = []
    for tl in tls:
        exposed = hidden = 0.0
        buckets = 0
        for s in tl.spans:
            if s.phase != "allreduce_bucket" or not s.args:
                continue
            if "exposed_s" not in s.args:
                continue
            exposed += s.args["exposed_s"]
            hidden += s.args["hidden_s"]
            buckets += 1
        if buckets:
            per_tl.append((exposed, hidden, buckets))
    if not per_tl:
        return 0.0, 0.0, 0
    n = len(per_tl)
    return (sum(t[0] for t in per_tl) / n,
            sum(t[1] for t in per_tl) / n,
            per_tl[0][2])


def overlap_report(metrics=None, timelines=None, rel_tol: float = 1e-6) -> dict:
    """Hidden-vs-exposed comm accounting, reconciled across its two books.

    ``metrics`` is a live registry or a snapshot dict; ``timelines`` (when
    available) adds the lane-side totals and the ``reconciled`` verdict.
    ``exposed_fraction`` — exposed comm as a share of total grad-sync comm
    — is the headline number the CI analysis gate thresholds.
    """
    comm = _metric_value(metrics, "grad_sync_comm_seconds_total")
    exposed = _metric_value(metrics, "grad_sync_exposed_seconds_total")
    hidden = _metric_value(metrics, "grad_sync_hidden_seconds_total")
    prefetch_hidden = _metric_value(metrics, "overlap_hidden_seconds_total")
    hf_total = _metric_value(metrics, "host_fetch_seconds_total")
    hf_exposed = _metric_value(metrics, "host_fetch_exposed_seconds_total")
    hf_hidden = _metric_value(metrics, "host_fetch_hidden_seconds_total")
    out = {
        "grad_sync": {
            "total": comm,
            "exposed": exposed,
            "hidden": hidden,
            "exposed_fraction": exposed / comm if comm > 0 else 0.0,
        },
        "prefetch": {
            # prefetch has no exposed ledger: the engine only charges the
            # exposed tail to the compute clock, hidden time is the ledger
            "total": prefetch_hidden,
            "hidden": prefetch_hidden,
        },
    }
    # the streaming loader's host/disk tier transfers; the key is dropped
    # entirely on in-core runs so pre-tier analysis snapshots stay
    # byte-identical
    if hf_total > 0:
        out["host_fetch"] = {
            "total": hf_total,
            "exposed": hf_exposed,
            "hidden": hf_hidden,
            "exposed_fraction": hf_exposed / hf_total,
            "ledger_consistent": (
                abs(hf_total - (hf_exposed + hf_hidden))
                <= max(_ABS_TOL, rel_tol * max(hf_total, 1e-30))
            ),
        }
    # internal consistency of the ledgers themselves
    out["grad_sync"]["ledger_consistent"] = (
        abs(comm - (exposed + hidden))
        <= max(_ABS_TOL, rel_tol * max(comm, 1e-30))
    )
    if timelines is not None:
        lane_exposed, lane_hidden, buckets = _lane_bucket_totals(timelines)
        tol = max(_ABS_TOL, rel_tol * max(comm, 1e-30))
        out["grad_sync"]["lane"] = {
            "exposed": lane_exposed,
            "hidden": lane_hidden,
            "buckets": buckets,
        }
        out["grad_sync"]["reconciled"] = (
            abs(lane_exposed - exposed) <= tol
            and abs(lane_hidden - hidden) <= tol
        ) if buckets else None
    return out
