"""Causal critical path through a completed simulated schedule.

The scheduler (:mod:`repro.sim`) leaves two artifacts behind: the
:class:`~repro.hardware.clock.Timeline` of charged spans and the
:class:`~repro.sim.OpRecord` provenance log naming each op's upstream
events.  This module walks them *backward* from the last-ending span to
reconstruct the one chain of spans that determined the makespan — the
simulated run's critical path.

The walk maintains a single invariant: every step moves to a span whose
``end`` equals the current span's ``start`` (same-device predecessor,
devices charge contiguously) or equals the current *wait*'s ``end`` (the
remote producer whose completion released the stall).  The path therefore
tiles ``[0, makespan]`` exactly — ``covered == makespan`` bitwise, the
property the hypothesis suite pins on random DAG programs.

Wait spans are resolved causally when provenance is available: the op that
ran right after the stall names its dependency events, and the dependency
whose completion time equals the stall's end is the binding one.  Without
provenance (e.g. analyzing a parsed trace) the walk falls back to matching
end times, preferring busy spans — identical on every schedule this repo
produces, since a stall ends exactly when its producer retires.  Stalls on
*external* deadlines (a serve batch-close, a fired user event) have no
producing span; the wait itself is charged to the path, which is the honest
answer: that time was spent waiting on the outside world.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.clock import Span

__all__ = ["PathEntry", "CriticalPath", "critical_path", "slack_summary"]


@dataclass(frozen=True)
class PathEntry:
    """One span on the critical path.

    ``kind`` is ``"busy"`` (device work), ``"wait"`` (a stall charged to
    the path — external deadline or unresolvable producer), or
    ``"untracked"`` (a defensive filler for a gap in a device timeline;
    never emitted by the in-repo engines).
    """

    device: str
    start: float
    end: float
    phase: str
    category: str
    kind: str
    args: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class CriticalPath:
    """The longest causal chain of a schedule, with blame aggregations."""

    def __init__(self, entries: list[PathEntry], makespan: float,
                 slack_by_span: dict | None = None,
                 slack_rows: list | None = None):
        #: path entries in time order (earliest first); contiguous intervals
        self.entries = entries
        self.makespan = makespan
        #: ``(device, start, end) -> slack`` for every span (see ``slack_of``)
        self._slack = slack_by_span or {}
        #: busy spans annotated with slack, for :func:`slack_summary`
        self.slack_rows = slack_rows or []

    @property
    def covered(self) -> float:
        """Total seconds the path explains — equals ``makespan`` exactly."""
        return sum(e.duration for e in self.entries)

    def blame(self, key) -> dict:
        """Aggregate path durations by ``key(entry)`` (skips empty keys)."""
        out: dict[str, float] = {}
        for e in self.entries:
            k = key(e)
            if k:
                out[k] = out.get(k, 0.0) + e.duration
        return out

    @property
    def blame_phase(self) -> dict:
        return self.blame(lambda e: e.phase)

    @property
    def blame_device(self) -> dict:
        return self.blame(lambda e: e.device)

    @property
    def blame_category(self) -> dict:
        return self.blame(lambda e: e.category or e.kind)

    @property
    def blame_link(self) -> dict:
        """Seconds of path time attributable to each interconnect.

        Gather spans carry ``bytes``/``remote_bytes`` args; their duration
        is split between HBM (local rows) and NVLink (remote rows)
        proportionally to bytes — a first-order split, since both phases of
        a gather run at their own bandwidth.  Out-of-core spans carry
        ``host_bytes``/``disk_bytes`` instead and split between PCIe (warm
        rows), disk (cold rows) and HBM (the cached remainder) the same
        way.  Collective-comm spans are charged to ``collective`` (the
        NVLink/IB ring) whole.
        """
        out: dict[str, float] = {}

        def add(link, secs):
            if secs > 0.0:
                out[link] = out.get(link, 0.0) + secs

        for e in self.entries:
            if e.kind != "busy":
                continue
            a = e.args or {}
            if (
                ("host_bytes" in a or "disk_bytes" in a)
                and a.get("bytes")
            ):
                hb = a.get("host_bytes", 0)
                db = a.get("disk_bytes", 0)
                add("pcie", e.duration * hb / a["bytes"])
                add("disk", e.duration * db / a["bytes"])
                add("hbm", e.duration * (1.0 - (hb + db) / a["bytes"]))
            elif "bytes" in a and "remote_bytes" in a and a["bytes"]:
                remote = a["remote_bytes"] / a["bytes"]
                add("nvlink", e.duration * remote)
                add("hbm", e.duration * (1.0 - remote))
            elif e.category == "comm":
                add("collective", e.duration)
        return out

    def slack_of(self, entry: PathEntry) -> float | None:
        """Latest-finish slack of a path entry (≈0 on the critical path)."""
        return self._slack.get((entry.device, entry.start, entry.end))

    def to_dict(self, top_entries: int = 50) -> dict:
        """JSON view: blame tables exact, entry list capped at the longest
        ``top_entries`` path spans (counts/aggregates are never capped)."""
        ranked = sorted(
            self.entries, key=lambda e: (-e.duration, e.start)
        )[:top_entries]
        shown = sorted(ranked, key=lambda e: e.start)
        return {
            "makespan": self.makespan,
            "covered": self.covered,
            "entries": len(self.entries),
            "blame_phase": self.blame_phase,
            "blame_device": self.blame_device,
            "blame_category": self.blame_category,
            "blame_link": self.blame_link,
            "top_entries": [
                {
                    "device": e.device, "phase": e.phase, "kind": e.kind,
                    "start": e.start, "duration": e.duration,
                    "slack": self.slack_of(e),
                }
                for e in shown
            ],
        }


def _as_list(x):
    return x if isinstance(x, (list, tuple)) else [x]


def _index_spans(timelines):
    """Per-device span lists, device order, position and end-time indexes.

    Lane devices (``<gpu>/<stream>``) are excluded: lanes are *render*
    copies of schedules whose cost was charged on a base clock; walking
    them would double-count.
    """
    device_lists: dict[str, list[Span]] = {}
    device_order: dict[str, int] = {}
    for tl in timelines:
        for s in tl.spans:
            if "/" in s.device:
                continue
            if s.device not in device_order:
                device_order[s.device] = len(device_order)
            device_lists.setdefault(s.device, []).append(s)
    pos: dict[int, int] = {}
    end_index: dict[float, list[Span]] = {}
    for spans in device_lists.values():
        for i, s in enumerate(spans):
            pos[id(s)] = i
            end_index.setdefault(s.end, []).append(s)
    return device_lists, device_order, pos, end_index


def _provenance_maps(provenance):
    """Per-loop lookup maps: seq -> record, (device, op start) -> record."""
    maps = []
    for records in _as_list(provenance) if provenance else []:
        by_seq = {}
        stall_map = {}
        for r in records:
            by_seq[r.seq] = r
            if r.stall > 0.0:
                stall_map[(r.device, r.start)] = r
        maps.append((by_seq, stall_map))
    return maps


def critical_path(timelines, provenance=None) -> CriticalPath:
    """Compute the critical path of one or more completed timelines.

    ``timelines`` is a :class:`~repro.hardware.clock.Timeline` or a list of
    them (multi-node runs merge naturally: device names are unique across
    nodes).  ``provenance`` is the matching ``EventLoop.provenance`` list
    (or list of lists) and upgrades wait resolution from end-time matching
    to true causal dependency lookup.
    """
    tls = _as_list(timelines)
    device_lists, device_order, pos, end_index = _index_spans(tls)
    if not device_lists:
        return CriticalPath([], 0.0)
    makespan = max(spans[-1].end for spans in device_lists.values())
    prov_maps = _provenance_maps(provenance)

    def cand_key(s: Span):
        # deterministic producer choice: busy first, then longest,
        # then first-seen device, then earliest recorded
        return (not s.busy, -(s.end - s.start),
                device_order[s.device], pos[id(s)])

    def producer_for(wait: Span, visited) -> Span | None:
        # causal resolution first: the op that ran right after this stall
        # names its dependencies; the dep ending exactly at the stall's end
        # is the binding one
        for by_seq, stall_map in prov_maps:
            rec = stall_map.get((wait.device, wait.end))
            if rec is None:
                continue
            cands = []
            for seq in rec.dep_seqs:
                dep = by_seq.get(seq)
                if (dep is None or dep.end != wait.end or not dep.device
                        or dep.device == wait.device or "/" in dep.device):
                    continue
                for s in end_index.get(wait.end, ()):
                    if s.device == dep.device and id(s) not in visited:
                        cands.append(s)
            if cands:
                return min(cands, key=cand_key)
        # fall back to end-time matching on any other base device
        cands = [
            s for s in end_index.get(wait.end, ())
            if s.device != wait.device and id(s) not in visited
        ]
        return min(cands, key=cand_key) if cands else None

    # start at the span that ends last (ties broken like producers)
    cur = min(end_index[makespan], key=cand_key)
    visited: set[int] = set()
    entries: list[PathEntry] = []

    def as_entry(s: Span, kind: str) -> PathEntry:
        return PathEntry(s.device, s.start, s.end, s.phase, s.category,
                         kind, s.args)

    while True:
        visited.add(id(cur))
        if not cur.busy:
            prod = producer_for(cur, visited)
            if prod is not None:
                # the stall's time belongs to its producer; jump devices
                # without charging the wait
                cur = prod
                continue
            entries.append(as_entry(cur, "wait"))
        else:
            entries.append(as_entry(cur, "busy"))
        i = pos[id(cur)]
        if i == 0:
            break
        prev = device_lists[cur.device][i - 1]
        if prev.end != cur.start:
            # defensive: a gap in a device timeline (never produced by the
            # in-repo engines) is charged as untracked path time
            entries.append(PathEntry(cur.device, prev.end, cur.start,
                                     "untracked", "", "untracked"))
        cur = prev

    entries.reverse()
    slack, slack_rows = _slack_by_span(device_lists, pos, end_index, makespan)
    return CriticalPath(entries, makespan, slack, slack_rows)


def _slack_by_span(device_lists, pos, end_index, makespan) -> dict:
    """Latest-finish slack per span: how late could it end without moving
    the makespan, given the recorded successor structure (same-device
    serialization plus stalls it released).  First-order: scaling a span
    can re-bind joins; slack is exact for small perturbations."""
    all_spans = [s for spans in device_lists.values() for s in spans]
    # descending end, then descending start so a zero-duration successor
    # (start == end == predecessor.end) is processed before its predecessor
    all_spans.sort(key=lambda s: (-s.end, -s.start))
    lf: dict[int, float] = {}
    out: dict[tuple, float] = {}
    rows: list[dict] = []
    for s in all_spans:
        succs = []
        dl = device_lists[s.device]
        i = pos[id(s)]
        if i + 1 < len(dl):
            succs.append(dl[i + 1])
        # a wait on another device ending when s ends was (possibly)
        # released by s: the op after that wait is a successor
        for w in end_index.get(s.end, ()):
            if w.device != s.device and not w.busy:
                wl = device_lists[w.device]
                j = pos[id(w)]
                if j + 1 < len(wl):
                    succs.append(wl[j + 1])
        latest = makespan
        for succ in succs:
            # a non-busy successor is elastic — the wait shrinks if s ends
            # later — so only busy successors push their duration back;
            # the .get fallback only fires for degenerate zero-duration
            # chains tied at one instant, where the bound stays valid
            need = succ.duration if succ.busy else 0.0
            latest = min(latest, lf.get(id(succ), makespan) - need)
        lf[id(s)] = latest
        out[(s.device, s.start, s.end)] = latest - s.end
        if s.busy:
            rows.append({
                "device": s.device, "phase": s.phase, "start": s.start,
                "duration": s.end - s.start, "slack": latest - s.end,
            })
    return out, rows


def slack_summary(cp: CriticalPath, top: int = 5) -> dict:
    """The busiest spans that do *not* matter: largest-slack busy spans.

    These are the anti-targets — optimizing them moves nothing.  The
    complement of the what-if ranking.
    """
    rows = sorted(
        (r for r in cp.slack_rows if r["slack"] > 0.0),
        key=lambda r: (-r["slack"], -r["duration"], r["device"], r["start"]),
    )[:top]
    return {"top_slack": rows}
