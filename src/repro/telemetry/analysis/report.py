"""The :class:`AnalysisReport` artifact: one explanation of one run.

Every other artifact in the repo *records* time (spans, metrics, RunReport
phase totals); this one *explains* it.  An ``AnalysisReport`` bundles the
four analyses of :mod:`repro.telemetry.analysis` —

- the causal **critical path** through the completed event DAG, with
  per-phase / per-device / per-link blame and slack;
- the **overlap efficiency** of communication (hidden vs exposed comm,
  reconciled against the grad-sync metrics ledgers);
- the **what-if sensitivity** ranking (which knob cuts epoch time most);
- free-form **notes** on analysis mode and approximations;

— into a JSON manifest plus a terminal-readable text rendering.

Determinism contract: the report carries no timestamps, hostnames or wall
times, every dict is emitted with sorted keys, and the analyses themselves
are deterministic functions of the run artifacts — so the same seed yields
a byte-identical scrubbed ``AnalysisReport``, the same contract
:mod:`repro.telemetry.run_report` pins for training manifests.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.telemetry.run_report import SCHEMA_VERSION, json_safe, scrub_report


@dataclass
class AnalysisReport:
    """The JSON manifest of one performance analysis."""

    #: run name the analysis explains (mirrors the RunReport/ServeReport)
    name: str
    kind: str = "analysis"
    #: "timeline" (full span-level analysis) or "report" (manifest-only)
    mode: str = "timeline"
    #: end of the last span == simulated epoch/run end (seconds)
    makespan: float = 0.0
    #: critical-path block: blame tables, coverage, top path entries
    critical_path: dict = field(default_factory=dict)
    #: hidden-vs-exposed comm accounting, ledger reconciliation
    overlap: dict = field(default_factory=dict)
    #: ranked what-if scenarios (largest epoch-time saving first)
    whatif: list = field(default_factory=list)
    #: slack summary: the busiest spans that do NOT matter
    slack: dict = field(default_factory=dict)
    #: regression attribution vs a baseline report (only with --baseline)
    regression: dict | None = None
    #: analysis-mode caveats and approximations, in emission order
    notes: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """JSON-safe dict view; ``regression`` omitted when absent."""
        out = json_safe(dataclasses.asdict(self))
        if out.get("regression") is None:
            out.pop("regression", None)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise deterministically (scrubbed, sorted keys)."""
        return json.dumps(
            scrub_report(self.to_dict()), indent=indent, sort_keys=True
        )

    def save(self, path) -> None:
        """Write the manifest to ``path`` (trailing newline included)."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisReport":
        """Rebuild from a JSON-loaded dict, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def _fmt_s(x: float) -> str:
    """Seconds with µs-grade precision, compact."""
    if x >= 1.0:
        return f"{x:.3f}s"
    if x >= 1e-3:
        return f"{x * 1e3:.3f}ms"
    return f"{x * 1e6:.1f}us"


def _blame_lines(title: str, blame: dict, total: float, top: int) -> list:
    lines = [f"  {title}:"]
    ranked = sorted(blame.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    for key, secs in ranked:
        share = secs / total if total > 0 else 0.0
        lines.append(f"    {key:<24} {_fmt_s(secs):>12}  {share:6.1%}")
    return lines


def render_text(report: AnalysisReport, top: int = 6) -> str:
    """Human-readable terminal rendering of an :class:`AnalysisReport`."""
    lines = [
        f"== performance analysis: {report.name} ({report.mode} mode) ==",
        f"makespan: {_fmt_s(report.makespan)}",
    ]
    cp = report.critical_path
    if cp:
        lines.append("")
        lines.append(
            f"critical path: {cp.get('entries', 0)} spans, "
            f"covers {_fmt_s(cp.get('covered', 0.0))} "
            f"of {_fmt_s(cp.get('makespan', report.makespan))}"
        )
        total = cp.get("covered", 0.0)
        for key, title in (("blame_phase", "by phase"),
                           ("blame_device", "by device"),
                           ("blame_link", "by link")):
            if cp.get(key):
                lines.extend(_blame_lines(title, cp[key], total, top))
    ov = report.overlap
    if ov:
        lines.append("")
        lines.append("overlap efficiency:")
        for name, block in sorted(ov.items()):
            if not isinstance(block, dict) or "total" not in block:
                continue
            total = block["total"]
            hidden = block.get("hidden", 0.0)
            frac = hidden / total if total > 0 else 0.0
            lines.append(
                f"  {name:<18} total {_fmt_s(total):>12}  "
                f"hidden {_fmt_s(hidden):>12}  ({frac:6.1%} hidden)"
            )
    if report.whatif:
        lines.append("")
        lines.append("what-if sensitivity (largest saving first):")
        for row in report.whatif[:top]:
            lines.append(
                f"  {row['knob']:<24} saves {_fmt_s(row['delta_seconds']):>12}"
                f"  ({row['delta_pct']:6.1%})  -> {row['description']}"
            )
    if report.regression:
        reg = report.regression
        lines.append("")
        lines.append(
            f"regression vs baseline: total {_fmt_s(reg['total_delta'])} "
            f"({reg['total_pct']:+.1%})"
        )
        worst = reg.get("worst")
        if worst:
            lines.append(
                f"  worst phase: {worst['phase']} "
                f"({_fmt_s(worst['delta'])}, {worst['share']:.0%} "
                f"of the regression)"
            )
    if report.notes:
        lines.append("")
        lines.extend(f"note: {n}" for n in report.notes)
    return "\n".join(lines) + "\n"
