"""Performance analysis over the event-driven scheduler's artifacts.

The observability stack *records* time (spans, metrics, run reports); this
package *explains* it, in four pieces:

- :mod:`~repro.telemetry.analysis.critical_path` — the causal critical
  path through the completed event DAG, with per-phase/per-device/per-link
  blame and per-span slack;
- :mod:`~repro.telemetry.analysis.whatif` — replay the recorded DAG with
  one cost scaled (gather 2x faster, NVLink BW doubled, straggler removed)
  and rank the knobs by epoch-time saving;
- :mod:`~repro.telemetry.analysis.overlap` — hidden-vs-exposed comm,
  reconciled against the grad-sync metrics ledgers;
- :mod:`~repro.telemetry.analysis.diff` — regression attribution between
  two manifests ("84% of the regression is serve_gather").

``python -m repro.telemetry.analysis <run_report.json>`` runs the
manifest-mode analysis from the command line; :func:`analyze_node` runs
the full span-level analysis in-process.  Everything is deterministic:
the same seed yields a byte-identical scrubbed :class:`AnalysisReport`.
"""

from repro.telemetry.analysis.analyze import (
    analyze_node,
    analyze_report,
    analyze_timeline,
)
from repro.telemetry.analysis.critical_path import (
    CriticalPath,
    PathEntry,
    critical_path,
    slack_summary,
)
from repro.telemetry.analysis.diff import attribute_regression
from repro.telemetry.analysis.overlap import overlap_report
from repro.telemetry.analysis.report import AnalysisReport, render_text
from repro.telemetry.analysis.whatif import (
    Knob,
    default_knobs,
    replay_makespan,
    report_whatif,
    whatif_ranking,
)

__all__ = [
    "AnalysisReport",
    "CriticalPath",
    "Knob",
    "PathEntry",
    "analyze_node",
    "analyze_report",
    "analyze_timeline",
    "attribute_regression",
    "critical_path",
    "default_knobs",
    "overlap_report",
    "render_text",
    "replay_makespan",
    "report_whatif",
    "slack_summary",
    "whatif_ranking",
]
