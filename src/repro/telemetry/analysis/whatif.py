"""What-if sensitivity: replay the recorded schedule with one cost scaled.

The recorded timeline is a *solved* schedule — every stall already bound to
the dependency that released it.  This module re-solves it under a
counterfactual cost model: each device becomes a clockless virtual cursor
(the :mod:`repro.sim.window` idea), busy spans re-charge at a knob-scaled
duration, and synchronization points are re-derived from the recorded wait
structure:

- spans are replayed in recorded-completion order, grouped by (bitwise)
  end time;
- a group holding wait spans *and* busy spans is a join: every participant
  leaves at the max of their replayed cursors — so when scaling makes a
  different rank the slowest, the barrier re-binds to it;
- a group of waits with no producing span is an external deadline (a serve
  batch close, a fired user event): the original absolute time stays a
  floor, because speeding up the machine does not make requests arrive
  sooner.

The replayed identity makespan (all factors 1.0) reproduces the recorded
makespan up to float-summation order; scenario deltas are therefore always
reported against the identity replay, cancelling that bias.  First-order
caveats: a busy span that *coincidentally* ends at a join's time is pulled
into the barrier; bandwidth knobs scale whole spans by their byte mix
rather than re-pricing the cost model; and comm the recorded run hid
entirely (e.g. behind a straggler's dilated backward) left no exposed span
to replay, so shrinking the compute cannot re-expose it.  Ranking quality
is what matters —
the acceptance test pins that removing a straggler fault recovers the
clean-run epoch time within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Knob",
    "default_knobs",
    "replay_makespan",
    "whatif_ranking",
    "report_whatif",
]


@dataclass(frozen=True)
class Knob:
    """One counterfactual: scale matching spans' busy time by a factor."""

    name: str
    description: str
    #: ``span -> duration multiplier`` (1.0 leaves the span unchanged)
    factor: object


def _base_spans(timelines):
    tls = timelines if isinstance(timelines, (list, tuple)) else [timelines]
    spans = []
    order: dict[str, int] = {}
    for tl in tls:
        for s in tl.spans:
            if "/" in s.device:
                continue
            if s.device not in order:
                order[s.device] = len(order)
            spans.append(s)
    spans.sort(key=lambda s: (s.end, s.start, order[s.device]))
    return spans


def replay_makespan(timelines, factor=None) -> float:
    """Makespan of the recorded schedule replayed under ``factor``.

    ``factor`` is a ``span -> multiplier`` callable applied to busy spans
    (``None`` = identity replay).  See the module docstring for the join /
    external-deadline semantics.
    """
    spans = _base_spans(timelines)
    if not spans:
        return 0.0
    cursor: dict[str, float] = {}
    i, n = 0, len(spans)
    while i < n:
        t = spans[i].end
        j = i
        while j < n and spans[j].end == t:
            j += 1
        group = spans[i:j]
        producers = []
        waiters = []
        for s in group:
            if s.busy:
                dur = s.duration
                if factor is not None:
                    dur *= factor(s)
                cursor[s.device] = cursor.get(s.device, 0.0) + dur
                if s.start < t:
                    # a zero-duration span *starting* at t is a continuation
                    # released by the group, not a producer ending at t
                    producers.append(s.device)
            else:
                waiters.append(s.device)
        if waiters:
            if producers:
                # a join: everyone who met at t leaves together, at the
                # slowest participant's replayed cursor
                members = dict.fromkeys(producers + waiters)
                sync = max(cursor.get(d, 0.0) for d in members)
                for d in members:
                    cursor[d] = sync
            else:
                # external deadline: the wall-clock floor survives scaling
                for d in waiters:
                    cursor[d] = max(cursor.get(d, 0.0), t)
        i = j
    return max(cursor.values()) if cursor else 0.0


# -- the knob suite ---------------------------------------------------------------


def _phase_knob(name, description, phases, f) -> Knob:
    phases = frozenset(phases)
    return Knob(name, description,
                lambda s, _p=phases, _f=f: _f if s.phase in _p else 1.0)


def _nvlink_factor(s) -> float:
    a = s.args or {}
    if a.get("bytes"):
        remote = a.get("remote_bytes", 0) / a["bytes"]
        return 1.0 - 0.5 * remote
    if s.category == "comm":
        return 0.5
    return 1.0


def _no_straggler_factor(s) -> float:
    d = (s.args or {}).get("dilation")
    return 1.0 / d if d else 1.0


def _host_bw_factor(s) -> float:
    """Doubled host-path bandwidth: tier spans (host_fetch launches and
    tiered gathers) shrink by their host+disk byte share."""
    a = s.args or {}
    if a.get("bytes"):
        tier = (a.get("host_bytes", 0) + a.get("disk_bytes", 0)) / a["bytes"]
        return 1.0 - 0.5 * tier
    return 1.0


def default_knobs(timelines) -> list[Knob]:
    """The standard sensitivity suite over a recorded run.

    Phase knobs halve one cost category; the NVLink knob doubles remote
    bandwidth (gather spans shrink by their remote-byte share, collectives
    halve); the straggler knob undoes fault dilation exactly, using the
    ``dilation`` factor the clock stamps on scaled spans — and is only
    offered when a dilated span exists.  The host-bandwidth knob (doubled
    zero-copy PCIe + disk staging rate) is likewise only offered when an
    out-of-core span exists.
    """
    knobs = [
        _phase_knob("gather_2x", "feature gather 2x faster",
                    ("gather", "serve_gather"), 0.5),
        _phase_knob("sample_2x", "neighbor sampling 2x faster",
                    ("sample", "serve_sample"), 0.5),
        _phase_knob("compute_2x", "model compute 2x faster",
                    ("train", "serve_infer"), 0.5),
        _phase_knob("allreduce_2x", "gradient all-reduce 2x faster",
                    ("allreduce",), 0.5),
        Knob("nvlink_bw_2x", "NVLink bandwidth doubled", _nvlink_factor),
    ]
    base = [s for s in _base_spans(timelines) if s.busy]
    dilated = any((s.args or {}).get("dilation") for s in base)
    if dilated:
        knobs.append(Knob("no_straggler", "straggler fault removed",
                          _no_straggler_factor))
    tiered = any(
        (s.args or {}).get("host_bytes") or (s.args or {}).get("disk_bytes")
        for s in base
    )
    if tiered:
        knobs.append(Knob("host_bw_2x", "host/disk tier bandwidth doubled",
                          _host_bw_factor))
    return knobs


def whatif_ranking(timelines, knobs=None) -> dict:
    """Replay every knob; rank scenarios by epoch-time saving.

    Returns ``{"baseline": identity replay makespan, "scenarios": [...]}``
    with scenarios sorted largest-saving first — the automated "what should
    the next perf PR attack" list.
    """
    if knobs is None:
        knobs = default_knobs(timelines)
    base = replay_makespan(timelines, None)
    rows = []
    for k in knobs:
        t = replay_makespan(timelines, k.factor)
        delta = base - t
        rows.append({
            "knob": k.name,
            "description": k.description,
            "epoch_time": t,
            "delta_seconds": delta,
            "delta_pct": delta / base if base > 0 else 0.0,
        })
    rows.sort(key=lambda r: (-r["delta_seconds"], r["knob"]))
    return {"baseline": base, "scenarios": rows}


def report_whatif(phase_totals: dict, epoch_time: float) -> dict:
    """Manifest-only what-if: phase-arithmetic sensitivity bounds.

    With no spans available (analyzing a bare RunReport), the best possible
    estimate for "phase X 2x faster" is subtracting half the phase total —
    an *upper bound* on the saving, since it ignores overlap.  The CLI
    labels these estimates explicitly.
    """
    rows = []
    for phase, total in sorted(phase_totals.items()):
        if "wait" in phase or total <= 0.0:
            continue
        saving = 0.5 * total
        rows.append({
            "knob": f"{phase}_2x",
            "description": f"{phase} 2x faster (upper-bound estimate)",
            "epoch_time": max(0.0, epoch_time - saving),
            "delta_seconds": saving,
            "delta_pct": saving / epoch_time if epoch_time > 0 else 0.0,
        })
    rows.sort(key=lambda r: (-r["delta_seconds"], r["knob"]))
    return {"baseline": epoch_time, "scenarios": rows}
