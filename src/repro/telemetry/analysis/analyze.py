"""Entry points assembling the four analyses into an AnalysisReport.

Two modes, by what survives of the run:

- **timeline mode** (:func:`analyze_node` / :func:`analyze_timeline`) — the
  full span-level analysis: causal critical path, slack, lane-reconciled
  overlap, DAG-replay what-ifs.  Needs the in-process
  :class:`~repro.hardware.clock.Timeline` (and ideally the scheduler's
  provenance log), i.e. runs in the same process as the simulation.
- **report mode** (:func:`analyze_report`) — manifest-only: phase
  attribution from ``phase_totals``, overlap from the metrics-ledger
  snapshot, phase-arithmetic what-if bounds.  This is what the CLI runs on
  a saved RunReport/ServeReport JSON, and what the CI analysis gate uses.
"""

from __future__ import annotations

from repro.telemetry.analysis.critical_path import critical_path, slack_summary
from repro.telemetry.analysis.diff import attribute_regression
from repro.telemetry.analysis.overlap import overlap_report
from repro.telemetry.analysis.report import AnalysisReport
from repro.telemetry.analysis.whatif import report_whatif, whatif_ranking

__all__ = ["analyze_node", "analyze_timeline", "analyze_report"]


def analyze_timeline(
    timelines,
    provenance=None,
    metrics=None,
    name: str = "run",
    epoch_time: float | None = None,
) -> AnalysisReport:
    """Full span-level analysis of one or more completed timelines.

    ``provenance`` is the matching ``EventLoop.provenance`` list(s);
    ``metrics`` a live registry or snapshot dict for the overlap ledgers;
    ``epoch_time``, when given, is recorded next to the path makespan (the
    two are equal on every in-repo engine — the acceptance criterion).
    """
    cp = critical_path(timelines, provenance)
    ranking = whatif_ranking(timelines)
    report = AnalysisReport(name=name, mode="timeline", makespan=cp.makespan)
    report.critical_path = cp.to_dict()
    if epoch_time is not None:
        report.critical_path["epoch_time"] = epoch_time
    report.overlap = overlap_report(metrics, timelines)
    report.whatif = ranking["scenarios"]
    report.slack = slack_summary(cp)
    report.notes.append(
        f"what-if deltas are vs the identity replay "
        f"({ranking['baseline']:.9g}s), cancelling float-summation bias"
    )
    return report


def analyze_node(nodes, metrics=None, name: str = "run") -> AnalysisReport:
    """Analyze live :class:`~repro.hardware.machine.SimNode`\\ (s) in-process.

    Collects each node's timeline, its scheduler provenance (when the node
    ever ran streams), and the epoch time the trainers report — the max
    ``now`` across GPU and host clocks.
    """
    node_list = nodes if isinstance(nodes, (list, tuple)) else [nodes]
    timelines = [n.timeline for n in node_list]
    provenance = [
        n._streams.loop.provenance
        for n in node_list
        if getattr(n, "_streams", None) is not None
    ]
    epoch_time = max(
        max((c.now for c in n.gpu_clock), default=0.0)
        for n in node_list
    )
    epoch_time = max(
        epoch_time, max(n.host_clock.now for n in node_list)
    )
    return analyze_timeline(
        timelines,
        provenance=provenance or None,
        metrics=metrics,
        name=name,
        epoch_time=epoch_time,
    )


def analyze_report(
    data: dict, baseline: dict | None = None, name: str | None = None,
) -> AnalysisReport:
    """Manifest-only analysis of a RunReport/ServeReport dict.

    Phase "blame" here is the phase-totals table (no path information
    survives in a manifest); what-ifs are phase-arithmetic upper bounds.
    ``baseline`` adds a regression-attribution block.
    """
    phase_totals = {
        k: float(v) for k, v in (data.get("phase_totals") or {}).items()
    }
    epoch = data.get("epoch_time")
    if epoch is None:
        epoch = data.get("duration_seconds")
    if epoch is None:
        epoch = sum(phase_totals.values())
    epoch = float(epoch)
    report = AnalysisReport(
        name=name or data.get("name", "run"),
        mode="report",
        makespan=epoch,
    )
    if phase_totals:
        report.critical_path = {
            "makespan": epoch,
            "covered": sum(phase_totals.values()),
            "entries": 0,
            "blame_phase": phase_totals,
        }
    report.overlap = overlap_report(data.get("metrics"))
    report.whatif = report_whatif(phase_totals, epoch)["scenarios"]
    report.notes.append(
        "report mode: blame is the phase-totals table and what-ifs are "
        "phase-arithmetic upper bounds; run the analyzer in-process "
        "(analyze_node) for causal path attribution"
    )
    if data.get("latency_blame"):
        worst = data["latency_blame"].get("p99_tail", {}).get("worst_stage")
        if worst:
            report.notes.append(f"serve p99 tail is dominated by: {worst}")
    if baseline is not None:
        report.regression = attribute_regression(baseline, data)
    return report
