"""Regression attribution: *where* did the time go between two runs.

``benchmarks/compare_runs.py`` answers "did it regress"; this module
answers "what regressed".  Given two manifests — RunReports, ServeReports,
or AnalysisReports — it attributes the total-time delta to phases (and,
when both sides carry critical-path blame tables, to devices), each with
its share of the regression, so the exit message can say "84% of the
regression is ``serve_gather``" instead of "epoch time grew".

Stdlib-only on purpose: the logic must hold for manifests produced by any
commit, and ``compare_runs.py`` vendors a minimal fallback of the same
attribution for environments where ``repro`` is not importable.
"""

from __future__ import annotations

__all__ = ["attribute_regression"]


def _total_time(report: dict) -> float | None:
    """The headline duration of a manifest, whatever its kind."""
    for key in ("epoch_time", "duration_seconds", "makespan"):
        v = report.get(key)
        if v is not None:
            return float(v)
    return None


def _phase_table(report: dict) -> dict:
    """Phase -> seconds, from whichever table the manifest carries."""
    phases = report.get("phase_totals")
    if phases:
        return {k: float(v) for k, v in phases.items()}
    cp = report.get("critical_path")
    if isinstance(cp, dict) and cp.get("blame_phase"):
        return {k: float(v) for k, v in cp["blame_phase"].items()}
    return {}


def _attribute(base: dict, cand: dict) -> list:
    """Per-key delta rows with shares of the total positive delta."""
    keys = sorted(set(base) | set(cand))
    rows = []
    pos_total = sum(
        max(0.0, cand.get(k, 0.0) - base.get(k, 0.0)) for k in keys
    )
    for k in keys:
        b = base.get(k, 0.0)
        c = cand.get(k, 0.0)
        delta = c - b
        rows.append({
            "phase": k,
            "base": b,
            "cand": c,
            "delta": delta,
            "share": (delta / pos_total
                      if pos_total > 0 and delta > 0 else 0.0),
        })
    rows.sort(key=lambda r: (-r["delta"], r["phase"]))
    return rows


def attribute_regression(baseline: dict, candidate: dict) -> dict:
    """Attribute the time delta between two manifest dicts.

    Returns ``{"total_base", "total_cand", "total_delta", "total_pct",
    "phases": [...], "worst": {...}|None, "devices": [...]?}`` — phases
    sorted worst-regressing first, each with its ``share`` of the summed
    positive delta.  ``devices`` appears when both manifests are
    AnalysisReports carrying per-device blame.
    """
    base_phases = _phase_table(baseline)
    cand_phases = _phase_table(candidate)
    total_base = _total_time(baseline)
    total_cand = _total_time(candidate)
    if total_base is None or total_cand is None:
        total_base = sum(base_phases.values())
        total_cand = sum(cand_phases.values())
    total_delta = total_cand - total_base
    out = {
        "total_base": total_base,
        "total_cand": total_cand,
        "total_delta": total_delta,
        "total_pct": total_delta / total_base if total_base > 0 else 0.0,
        "phases": _attribute(base_phases, cand_phases),
    }
    worst = next((r for r in out["phases"] if r["delta"] > 0), None)
    out["worst"] = (
        {"phase": worst["phase"], "delta": worst["delta"],
         "share": worst["share"]}
        if worst else None
    )
    base_dev = (baseline.get("critical_path") or {}).get("blame_device")
    cand_dev = (candidate.get("critical_path") or {}).get("blame_device")
    if base_dev and cand_dev:
        out["devices"] = _attribute(
            {k: float(v) for k, v in base_dev.items()},
            {k: float(v) for k, v in cand_dev.items()},
        )
    return out
