"""Process-wide metrics registry: counters, gauges, histograms.

Every op in the data path (gather kernels, the neighbor sampler, the hot-row
cache, the training pipeline) reports the work it did to one shared
:class:`MetricsRegistry` instead of a private stats dict — the single place
the run artifacts (:mod:`repro.telemetry.run_report`) and the Chrome trace
counter tracks (:mod:`repro.telemetry.trace`) read from.

Metrics are *labeled* series, Prometheus-style: one metric name owns many
``(label set -> value)`` children, e.g. ``gather_link_bytes_total`` split by
``link="hbm"`` / ``link="nvlink"`` — the per-link accounting PyTorch-Direct
and GNNPipe attribute their wins with.

Counters and gauges optionally record *timestamped samples* (simulated
seconds) when the caller passes ``t=``; those samples become Perfetto
counter tracks in the trace export.  Sampling is opt-in per update so hot
paths that nobody plots stay cheap.

The module keeps one default registry; :func:`get_registry` /
:func:`set_registry` swap it (experiment drivers reset or replace it per
run so manifests are scoped to one experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: label key/value separator used in flattened metric names
_LABEL_FMT = "{name}{{{labels}}}"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _flat_name(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return _LABEL_FMT.format(name=name, labels=inner)


@dataclass
class Counter:
    """Monotonically increasing total (bytes moved, rows gathered, ...)."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0
    #: (sim time, cumulative value) samples for trace counter tracks
    samples: list = field(default_factory=list)

    def inc(self, amount: float = 1.0, t: float | None = None) -> None:
        """Add ``amount`` (>= 0); pass ``t=`` to record a trace sample."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        if t is not None:
            self.samples.append((float(t), self.value))

    def as_dict(self) -> dict:
        """JSON-able snapshot of this counter."""
        return {"type": "counter", "labels": dict(self.labels),
                "value": self.value}


@dataclass
class Gauge:
    """Point-in-time value (cache hit rate, queue depth, ...)."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0
    samples: list = field(default_factory=list)

    def set(self, value: float, t: float | None = None) -> None:
        """Overwrite the value; pass ``t=`` to record a trace sample."""
        self.value = float(value)
        if t is not None:
            self.samples.append((float(t), self.value))

    def as_dict(self) -> dict:
        """JSON-able snapshot of this gauge."""
        return {"type": "gauge", "labels": dict(self.labels),
                "value": self.value}


@dataclass
class Histogram:
    """Power-of-two bucketed distribution (gather sizes, fan-outs, ...).

    Buckets are ``[2^k, 2^(k+1))`` on the observed value; exact enough for
    size distributions while keeping ``observe`` O(1) and the snapshot tiny.
    """

    name: str
    labels: dict = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: bucket upper bound (2^(k+1)) -> observation count
    buckets: dict = field(default_factory=dict)

    def observe(self, value) -> None:
        """Record one value or a whole array of values (vectorised)."""
        values = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        # bucket index = position of the highest set bit of floor(v)
        exps = np.frexp(np.maximum(values, 0.0))[1]  # v in [2^(e-1), 2^e)
        for e, n in zip(*np.unique(exps, return_counts=True)):
            upper = float(2.0 ** int(e))
            self.buckets[upper] = self.buckets.get(upper, 0) + int(n)

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot: count/sum/min/max/mean plus the buckets."""
        return {
            "type": "histogram",
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create store of labeled counters/gauges/histograms."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (cls.__name__, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=dict(labels))
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get(Histogram, name, labels)

    # -- introspection -------------------------------------------------------

    def collect(self, name: str | None = None,
                **labels) -> list[Counter | Gauge | Histogram]:
        """All metrics, optionally filtered by name and a label subset."""
        out = []
        for metric in self._metrics.values():
            if name is not None and metric.name != name:
                continue
            if any(metric.labels.get(k) != v for k, v in labels.items()):
                continue
            out.append(metric)
        return out

    def total(self, name: str, **labels) -> float:
        """Sum of every counter/gauge child matching a label subset."""
        return sum(
            m.value
            for m in self.collect(name, **labels)
            if isinstance(m, (Counter, Gauge))
        )

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Flattened name -> timestamped samples (for trace counter tracks)."""
        out = {}
        for m in self._metrics.values():
            if getattr(m, "samples", None):
                out[_flat_name(m.name, m.labels)] = list(m.samples)
        return out

    def snapshot(self) -> dict:
        """JSON-able view of every metric, keyed by flattened name."""
        return {
            _flat_name(m.name, m.labels): m.as_dict()
            for m in sorted(
                self._metrics.values(),
                key=lambda m: (m.name, _label_key(m.labels)),
            )
        }

    def reset(self) -> None:
        """Drop every metric (per-run scoping in experiment drivers)."""
        self._metrics.clear()


#: the process-wide default registry the instrumented ops report to
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented ops report to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    prev = _default_registry
    _default_registry = registry
    return prev
