"""GPU-utilization traces from the simulated timeline (paper Fig. 12).

``nvidia-smi``-style utilization: the fraction of each sampling window in
which the device had a kernel resident (a *busy* span).  WholeGraph keeps
every phase on the GPU, so utilization stays ≥95 %; the baselines' GPUs
idle through the host sampling/gather phases and the trace collapses.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.clock import Timeline


def utilization_trace(
    timeline: Timeline,
    device: str,
    window: float,
    t_start: float = 0.0,
    t_end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(window_centers, utilization%)`` for one device.

    ``window`` is the sampling period (``nvidia-smi`` polls ~1 s; the
    experiments use a window that yields ~100 points per run).
    """
    spans = [s for s in timeline.device_spans(device)]
    if t_end is None:
        t_end = max((s.end for s in spans), default=t_start + window)
    edges = np.arange(t_start, t_end + window, window)
    if edges.shape[0] < 2:
        edges = np.array([t_start, t_start + window])
    busy = np.zeros(edges.shape[0] - 1)
    for s in spans:
        if not s.busy:
            continue
        # distribute the busy span over the windows it overlaps
        lo = np.searchsorted(edges, s.start, side="right") - 1
        hi = np.searchsorted(edges, s.end, side="left")
        for w in range(max(lo, 0), min(hi, busy.shape[0])):
            overlap = min(s.end, edges[w + 1]) - max(s.start, edges[w])
            if overlap > 0:
                busy[w] += overlap
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, 100.0 * busy / window


def mean_utilization(
    timeline: Timeline, device: str,
    t_start: float = 0.0, t_end: float | None = None,
) -> float:
    """Overall busy fraction (%) of a device over ``[t_start, t_end]``."""
    spans = timeline.device_spans(device)
    if t_end is None:
        t_end = max((s.end for s in spans), default=t_start)
    total = t_end - t_start
    if total <= 0:
        return 0.0
    busy = sum(
        max(0.0, min(s.end, t_end) - max(s.start, t_start))
        for s in spans
        if s.busy
    )
    return 100.0 * busy / total
