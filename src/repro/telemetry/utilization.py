"""GPU-utilization traces from the simulated timeline (paper Fig. 12).

``nvidia-smi``-style utilization: the fraction of each sampling window in
which the device had a kernel resident (a *busy* span).  WholeGraph keeps
every phase on the GPU, so utilization stays ≥95 %; the baselines' GPUs
idle through the host sampling/gather phases and the trace collapses.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.clock import Timeline


def utilization_trace(
    timeline: Timeline,
    device: str,
    window: float,
    t_start: float = 0.0,
    t_end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(window_centers, utilization%)`` for one device.

    ``window`` is the sampling period (``nvidia-smi`` polls ~1 s; the
    experiments use a window that yields ~100 points per run).
    """
    spans = timeline.device_spans(device)
    if t_end is None:
        t_end = max((s.end for s in spans), default=t_start + window)
    edges = np.arange(t_start, t_end + window, window)
    if edges.shape[0] < 2:
        edges = np.array([t_start, t_start + window])
    nw = edges.shape[0] - 1
    busy = np.zeros(nw)

    # vectorised distribution of every busy span over the windows it
    # overlaps: clip the spans to the sampled range, then spread each one as
    # (full window width over its covered windows) minus the partial-window
    # corrections at its two ends — all via searchsorted + a difference array
    starts = np.array([s.start for s in spans if s.busy])
    ends = np.array([s.end for s in spans if s.busy])
    if starts.size:
        starts = np.clip(starts, edges[0], edges[-1])
        ends = np.clip(ends, edges[0], edges[-1])
        keep = ends > starts
        starts, ends = starts[keep], ends[keep]
    if starts.size:
        lo = np.clip(np.searchsorted(edges, starts, side="right") - 1,
                     0, nw - 1)
        hi = np.clip(np.searchsorted(edges, ends, side="left"), 1, nw)
        # full window width over windows [lo, hi)
        diff = np.zeros(nw + 1)
        np.add.at(diff, lo, window)
        np.add.at(diff, hi, -window)
        busy = np.cumsum(diff)[:nw]
        # trim the first window down to the true overlap start ...
        np.add.at(busy, lo, -(starts - edges[lo]))
        # ... and the last one down to the true overlap end
        np.add.at(busy, hi - 1, -(edges[hi] - ends))
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, 100.0 * busy / window


def mean_utilization(
    timeline: Timeline, device: str,
    t_start: float = 0.0, t_end: float | None = None,
) -> float:
    """Overall busy fraction (%) of a device over ``[t_start, t_end]``."""
    spans = timeline.device_spans(device)
    if t_end is None:
        t_end = max((s.end for s in spans), default=t_start)
    total = t_end - t_start
    if total <= 0:
        return 0.0
    busy = sum(
        max(0.0, min(s.end, t_end) - max(s.start, t_start))
        for s in spans
        if s.busy
    )
    return 100.0 * busy / total
