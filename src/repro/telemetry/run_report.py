"""Structured run artifacts: one JSON manifest per training/experiment run.

A :class:`RunReport` is the machine-readable record a run leaves behind —
config, seed, per-phase time breakdown, bandwidths, a metrics-registry
snapshot, cache statistics and final accuracy — the artifact the ROADMAP's
perf-trajectory tracking (and ``benchmarks/compare_runs.py``) diffs between
commits.  Trainers produce one via their ``run_report()`` methods; the
experiment runner writes one per figure/table it regenerates.

The schema is flat JSON on purpose: ``json.load`` two manifests and compare
— no repro imports needed on the consumer side.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

SCHEMA_VERSION = 1

#: Report keys that are *allowed* to differ between two runs of the same
#: seed — the documented volatile set of the determinism contract (DESIGN.md
#: §8).  Everything outside this set must be byte-identical, which
#: ``tests/test_determinism_golden.py`` enforces.  The simulation is fully
#: deterministic today, so the set holds only host-environment escape
#: hatches: fields callers may stamp with wall-clock times or file paths.
VOLATILE_KEYS = frozenset({
    "wall_time_seconds",
    "timestamp",
    "hostname",
    "report_path",
})


def scrub_report(report: dict, volatile=VOLATILE_KEYS) -> dict:
    """Strip volatile keys from a report dict, recursively.

    Returns a new dict with every key in ``volatile`` removed at any
    nesting depth — the comparable core two same-seed runs must agree on.
    Accepts a :class:`RunReport` or a plain (JSON-loaded) dict.
    """
    if isinstance(report, RunReport):
        report = report.to_dict()

    def scrub(obj):
        if isinstance(obj, dict):
            return {
                k: scrub(v) for k, v in obj.items() if k not in volatile
            }
        if isinstance(obj, list):
            return [scrub(v) for v in obj]
        return obj

    return scrub(report)


def json_safe(obj):
    """Recursively convert numpy scalars/arrays and dataclasses to JSON."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, float) and not np.isfinite(obj):
        return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return json_safe(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    return repr(obj)


def phase_totals_from_registry(registry: MetricsRegistry) -> dict[str, float]:
    """Per-phase seconds as accumulated by the pipeline instrumentation."""
    return {
        m.labels["phase"]: m.value
        for m in registry.collect("phase_seconds_total")
        if "phase" in m.labels
    }


@dataclass
class RunReport:
    """The JSON manifest of one run (training epoch(s) or experiment)."""

    name: str
    kind: str = "run"
    config: dict = field(default_factory=dict)
    seed: int | None = None
    #: phase -> simulated seconds on the reference device (rank 0)
    phase_totals: dict = field(default_factory=dict)
    #: simulated wall-clock of the measured region (sum of epoch times)
    epoch_time: float | None = None
    #: algo/bus bandwidth of the feature gather path
    bandwidths: dict = field(default_factory=dict)
    #: metrics-registry snapshot (labeled counters/gauges/histograms)
    metrics: dict = field(default_factory=dict)
    #: feature-cache summary, when a hot-row cache was configured
    cache: dict | None = None
    accuracy: float | None = None
    #: per-epoch rows (loss, times) for training runs
    history: list = field(default_factory=list)
    #: experiment result rows (figures/tables), serialized
    rows: list | None = None
    extra: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """JSON-safe nested dict of every field."""
        return json_safe(dataclasses.asdict(self))

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string (field order preserved)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path) -> None:
        """Write the JSON manifest to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild from a dict, ignoring unknown keys (forward compat)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path) -> "RunReport":
        """Read a manifest previously written by :meth:`save`."""
        with open(path) as f:
            return cls.from_dict(json.load(f))


def report_from_node(
    name: str,
    node,
    *,
    kind: str = "run",
    config: dict | None = None,
    seed: int | None = None,
    registry: MetricsRegistry | None = None,
    feature_stats: dict | None = None,
    cache=None,
    accuracy: float | None = None,
    history: list | None = None,
    extra: dict | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a :class:`SimNode`'s telemetry.

    ``feature_stats`` is a :class:`WholeTensor` stats dict (bandwidths are
    derived from it); ``cache`` a :class:`FeatureCache` (its ``summary()``
    is embedded); ``registry`` defaults to the process registry.
    """
    from repro.telemetry import metrics
    from repro.telemetry.bandwidth import bw_from_gather_stats

    registry = registry if registry is not None else metrics.get_registry()
    device0 = node.gpu_memory[0].device
    bandwidths = {}
    if feature_stats and feature_stats.get("gather_time", 0.0) > 0:
        bandwidths = bw_from_gather_stats(feature_stats, node.num_gpus)
    return RunReport(
        name=name,
        kind=kind,
        config=dict(config or {}),
        seed=seed,
        phase_totals=node.timeline.phase_breakdown(device0),
        epoch_time=max(
            [c.now for c in node.gpu_clock] + [node.host_clock.now]
        ),
        bandwidths=bandwidths,
        metrics=registry.snapshot(),
        cache=cache.summary() if cache is not None else None,
        accuracy=accuracy,
        history=list(history or []),
        extra=dict(extra or {}),
    )
