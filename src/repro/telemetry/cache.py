"""Feature-cache telemetry: per-rank hit rates and bytes-saved tables.

The hot-row cache (:mod:`repro.dsm.feature_cache`) keeps cumulative per-rank
counters; this module turns them into the same report shapes the rest of the
telemetry package produces — a per-rank table plus an aggregate summary dict
for experiment drivers.
"""

from __future__ import annotations

from repro.telemetry.report import format_table


def cache_summary(cache) -> dict:
    """Aggregate hit/miss statistics of a :class:`FeatureCache`."""
    return cache.summary()


def per_rank_cache_stats(cache) -> list[dict]:
    """One stats dict per rank, with the derived per-rank hit rate."""
    rows = []
    for rank in range(cache.node.num_gpus):
        stats = cache.rank_stats(rank)
        requests = stats["hits"] + stats["misses"]
        stats["rank"] = rank
        stats["hit_rate"] = stats["hits"] / requests if requests else 0.0
        rows.append(stats)
    return rows


def cache_report(cache) -> str:
    """Per-rank hit-rate / bytes-saved table (plus the aggregate row)."""
    rows = [
        [
            s["rank"],
            s["hits"],
            s["misses"],
            f"{s['hit_rate'] * 100:.1f}%",
            s["remote_bytes_saved"] / 2**20,
            s["gather_time"] * 1e3,
        ]
        for s in per_rank_cache_stats(cache)
    ]
    total = cache.summary()
    rows.append(
        [
            "all",
            total["hits"],
            total["misses"],
            f"{total['hit_rate'] * 100:.1f}%",
            total["remote_bytes_saved"] / 2**20,
            total["gather_time"] * 1e3,
        ]
    )
    return format_table(
        ["Rank", "hits", "misses", "hit rate", "NVLink MiB saved",
         "gather (ms)"],
        rows,
        title=(
            f"Feature cache ({total['policy']} policy, "
            f"{total['capacity_rows']} rows/rank)"
        ),
    )
