"""AlgoBW / BusBW accounting (paper §IV-C1).

*AlgoBW* is the bandwidth the algorithm sees: gathered bytes divided by
time.  *BusBW* is what the NVLink fabric actually carries.  Two BusBW
definitions coexist, and each figure uses exactly one:

- **measured** — remote bytes (home GPU != requester) divided by time.
  This is what :func:`bw_from_gather_stats` reports whenever the stats dict
  carries ``gather_remote_bytes`` (every :class:`WholeTensor` does), and
  what the Fig. 10 NCCL-vs-DSM comparison uses
  (:meth:`DistributedGatherTrace.step4_bus_bw`).
- **uniform estimate** — ``AlgoBW * (N-1)/N``, the conversion for a uniform
  gather over ``N`` GPUs where only that fraction of traffic crosses the
  fabric.  :func:`bus_bw` implements it; the Fig. 8 segment-size sweep uses
  it (its row placement is uniform by construction), and
  :func:`bw_from_gather_stats` falls back to it when remote bytes were not
  recorded (e.g. :class:`HostPinnedTensor` stats, where all traffic is PCIe
  and the split is meaningless).
"""

from __future__ import annotations


def algo_bw(total_bytes: float, seconds: float) -> float:
    """Algorithm-visible bandwidth."""
    if seconds <= 0:
        return 0.0
    return total_bytes / seconds


def bus_bw(total_bytes: float, seconds: float, num_gpus: int) -> float:
    """Fabric bandwidth of a *uniform* gather over ``num_gpus`` GPUs.

    The ``(N-1)/N`` estimate; prefer the measured definition (remote bytes
    / time) whenever the access pattern's owner distribution is known.
    """
    if num_gpus <= 1:
        return 0.0
    return algo_bw(total_bytes, seconds) * (num_gpus - 1) / num_gpus


def bw_from_gather_stats(stats: dict, num_gpus: int) -> dict[str, float]:
    """Compute both bandwidths from a gather stats dict.

    BusBW uses the *measured* remote bytes when the stats carry
    ``gather_remote_bytes``; otherwise it falls back to the uniform
    ``(N-1)/N`` estimate (this is the only place ``num_gpus`` enters the
    arithmetic — with measured remote bytes it is passed through for
    context only).
    """
    t = stats.get("gather_time", 0.0)
    total = stats.get("gather_bytes", 0)
    remote = stats.get("gather_remote_bytes")
    if remote is not None:
        bus = algo_bw(remote, t)
    else:
        bus = bus_bw(total, t, num_gpus)
    return {
        "algo_bw": algo_bw(total, t),
        "bus_bw": bus,
        "num_gpus": num_gpus,
    }
