"""AlgoBW / BusBW accounting (paper §IV-C1).

*AlgoBW* is the bandwidth the algorithm sees: gathered bytes divided by
time.  *BusBW* is what the NVLink hardware carries: in a uniform gather over
``N`` GPUs only ``(N-1)/N`` of the traffic crosses the fabric, so
``BusBW = AlgoBW · (N-1)/N``.
"""

from __future__ import annotations


def algo_bw(total_bytes: float, seconds: float) -> float:
    """Algorithm-visible bandwidth."""
    if seconds <= 0:
        return 0.0
    return total_bytes / seconds


def bus_bw(total_bytes: float, seconds: float, num_gpus: int) -> float:
    """Fabric bandwidth of a uniform gather over ``num_gpus`` GPUs."""
    if num_gpus <= 1:
        return 0.0
    return algo_bw(total_bytes, seconds) * (num_gpus - 1) / num_gpus


def bw_from_gather_stats(stats: dict, num_gpus: int) -> dict[str, float]:
    """Compute both bandwidths from a :class:`WholeTensor` stats dict."""
    t = stats.get("gather_time", 0.0)
    total = stats.get("gather_bytes", 0)
    remote = stats.get("gather_remote_bytes", 0)
    return {
        "algo_bw": algo_bw(total, t),
        "bus_bw": algo_bw(remote, t),
        "num_gpus": num_gpus,
    }
