"""Streaming prefetch loader for out-of-core training (host/disk tier).

When features spill below HBM (``tier="tiered"`` on the graph store), every
mini-batch's gather pays the zero-copy PCIe hop — and, for cold rows, the
disk staging chain.  Paying that synchronously would put the whole transfer
on the iteration's critical path.  This module pipelines it instead, on the
event-driven scheduler (:mod:`repro.sim`):

- a **dedicated host stream** carries the disk->host->HBM transfers: each
  prefetched batch is sampled on the compute stream (the sampling kernels
  are GPU work either way), its frontier split into HBM-cached hits and
  tier rows, and the tier fetch launched on the host stream with the
  :meth:`~repro.dsm.tiered_tensor.TieredTensor.fetch_time` duration;
- the **consume** op — reading the now-staged rows plus cache hits out of
  HBM — launches on the compute streams *depending on the fetch event*.
  The scheduler charges only the dependency stall (the exposed tail, a
  non-busy ``host_fetch_wait`` span); transfer time hidden behind the
  previous batches' train compute costs nothing on the GPU clocks.

A depth-``prefetch_depth`` queue keeps that many batches in flight; the
host stream is FIFO, so in-flight transfers serialise behind each other
exactly like a real copy engine.  Exposed/hidden seconds land in the
``host_fetch_*_seconds_total`` ledgers (mirroring the grad-sync books) and
feed the overlap report and the analysis CI gate.

The functional math is untouched: sampling and feature rows are the same
NumPy values the sequential schedule produces, and both schedules consume
the sampling and dropout RNG streams in batch order — the trained model is
bit-identical to a non-streaming run at equal seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import config
from repro.dsm.tiered_tensor import TieredTensor
from repro.hardware import costmodel
from repro.ops.neighbor_sampler import NeighborSampler, SampledSubgraph
from repro.telemetry import metrics

__all__ = ["StreamingLoader"]


@dataclass
class _StagedBatch:
    """One in-flight prefetch: sampled subgraph, features, fetch event."""

    subgraph: SampledSubgraph
    features: np.ndarray
    #: host-stream completion event of the tier fetch
    event: object
    #: host-stream transfer duration (the full fetch, hidden or not)
    fetch_time: float
    #: tier fetch span args (rows / bytes / host_bytes / disk_bytes)
    fetch_args: dict
    #: rows served from the rank's HBM cache (no host transfer needed)
    cache_hits: int


class StreamingLoader:
    """Prefetching loader over a tiered :class:`MultiGpuGraphStore`.

    Drives the out-of-core epoch: the trainer calls :meth:`prefetch` up to
    ``prefetch_depth`` batches ahead and :meth:`take` for the current one;
    tier transfers ride the host stream and only their exposed tails stall
    the compute streams.
    """

    def __init__(
        self,
        store,
        sampler: NeighborSampler,
        rank: int = 0,
        prefetch_depth: int | None = None,
    ):
        tensor = store.feature_tensor
        if not isinstance(tensor, TieredTensor):
            raise ValueError(
                "the streaming loader needs tiered features — build the "
                "store with tier='tiered'"
            )
        cache = store.feature_cache
        if cache is not None and cache.policy != "static":
            raise ValueError(
                "streaming prefetch plans against a stable cache hit set; "
                "use the static cache policy (or no cache)"
            )
        if prefetch_depth is None:
            prefetch_depth = config.PREFETCH_DEPTH
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        self.store = store
        self.sampler = sampler
        self.rank = rank
        self.node = store.node
        self.tensor = tensor
        self.cache = cache
        self.prefetch_depth = int(prefetch_depth)
        self._queue: deque[_StagedBatch] = deque()
        #: sample duration of the most recent :meth:`prefetch`
        self.last_sample_time = 0.0
        #: consume (HBM read) duration of the most recent :meth:`take`
        self.last_consume_time = 0.0
        #: exposed host-transfer stall of the most recent :meth:`take`
        self.last_exposed_time = 0.0

    @property
    def in_flight(self) -> int:
        return len(self._queue)

    def _split_cached(self, rows: np.ndarray) -> tuple[int, np.ndarray]:
        """``(cache hits, rows needing a tier fetch)`` for the frontier."""
        if self.cache is None or rows.size == 0:
            return 0, rows
        st = self.cache._ranks[self.rank]
        hit = st.slot_of[rows] >= 0
        return int(np.count_nonzero(hit)), rows[~hit]

    def prefetch(self, seeds: np.ndarray, rng: np.random.Generator) -> float:
        """Sample ``seeds`` and launch its tier fetch on the host stream.

        Sampling runs on the compute streams (it is GPU work under either
        schedule); the host stream then carries the frontier's warm/cold
        transfer.  Returns the launched transfer duration.
        """
        if len(self._queue) >= self.prefetch_depth:
            raise RuntimeError(
                f"prefetch queue full ({self.prefetch_depth} in flight) — "
                "take() a batch first"
            )
        node = self.node
        streams = node.streams
        clock = node.gpu_clock[self.rank]

        t0 = clock.now
        sg = self.sampler.sample(seeds, self.rank, rng)
        t_sample = clock.now - t0
        for r in range(node.num_gpus):
            if r != self.rank:
                streams.compute(r).launch(t_sample, phase="sample")

        rows = sg.input_nodes
        x_np = self.tensor.gather_no_cost(rows)
        cache_hits, fetch_rows = self._split_cached(rows)
        t_fetch, fargs = self.tensor.fetch_time(fetch_rows)
        injector = node.fault_injector
        if injector is not None:
            t_fetch = injector.scale_gather_time(
                t_fetch, 1.0, node.host_clock.now, node.node_id
            )
            injector.charge_gather_retries(
                node.host_clock, phase="gather_retry", node_id=node.node_id
            )
        event = streams.host().launch(
            t_fetch, phase="host_fetch", category="gather", args=dict(fargs)
        )
        self.tensor._account(fargs, t_fetch, event.time)

        reg = metrics.get_registry()
        reg.counter("phase_seconds_total", phase="sample").inc(t_sample)
        self._queue.append(
            _StagedBatch(
                subgraph=sg, features=x_np, event=event,
                fetch_time=t_fetch, fetch_args=fargs, cache_hits=cache_hits,
            )
        )
        self.last_sample_time = t_sample
        return t_fetch

    def take(self) -> tuple[SampledSubgraph, np.ndarray]:
        """Consume the oldest staged batch for training.

        Launches the HBM read of the staged rows (plus cache hits) on every
        compute stream behind the fetch event — if the transfer is still in
        flight, the dependency stall lands as a non-busy ``host_fetch_wait``
        span: the *exposed* portion of the host transfer, and nothing more.
        """
        if not self._queue:
            raise RuntimeError("nothing staged — call prefetch() first")
        staged = self._queue.popleft()
        node = self.node
        streams = node.streams
        tensor = self.tensor
        rows = staged.subgraph.input_nodes
        nbytes = int(rows.size * tensor.row_bytes)
        t_consume = costmodel.cached_gather_time(
            nbytes, 0.0, tensor.row_bytes
        )
        stall = max(
            0.0, staged.event.time - node.gpu_clock[self.rank].now
        )
        # the ledger decomposes each transfer exactly: a stall longer than
        # the transfer itself (queueing behind earlier fetches) is capped —
        # the excess is still on the timeline as the host_fetch_wait span
        exposed = min(stall, staged.fetch_time)
        hidden = staged.fetch_time - exposed
        span_args = {
            "rows": int(rows.size),
            "bytes": nbytes,
            "cache_hits": staged.cache_hits,
            "staged": True,
            "fetch_s": staged.fetch_time,
            "exposed_s": exposed,
            "stall_s": stall,
            "tensor": tensor.tag,
        }
        for r in range(node.num_gpus):
            streams.compute(r).launch(
                t_consume, deps=(staged.event,), phase="gather",
                category="gather", wait_phase="host_fetch_wait",
                args=span_args,
            )

        staged_bytes = int(staged.fetch_args["bytes"])
        tensor.stats["staged_bytes"] += staged_bytes
        now = node.gpu_clock[self.rank].now
        reg = metrics.get_registry()
        reg.counter("phase_seconds_total", phase="gather").inc(t_consume)
        reg.counter("iterations_total", schedule="streaming").inc(1)
        # the staged read is a local HBM gather; the PCIe/disk bytes were
        # booked when the fetch launched (TieredTensor._account)
        reg.counter("gather_link_bytes_total", link="hbm").inc(nbytes, t=now)
        reg.counter("host_fetch_seconds_total").inc(staged.fetch_time)
        reg.counter("host_fetch_exposed_seconds_total").inc(exposed)
        reg.counter("host_fetch_hidden_seconds_total").inc(hidden)
        if self.cache is not None:
            misses = rows.size - staged.cache_hits
            hit_bytes = staged.cache_hits * tensor.row_bytes
            st = self.cache._ranks[self.rank].stats
            st["gather_calls"] += 1
            st["hits"] += staged.cache_hits
            st["misses"] += misses
            st["hit_bytes"] += hit_bytes
            st["miss_bytes"] += misses * tensor.row_bytes
            st["remote_bytes_saved"] += hit_bytes
            st["gather_time"] += t_consume
            reg.counter("cache_requests_total").inc(rows.size)
            reg.counter("cache_hits_total").inc(staged.cache_hits)
            reg.counter("cache_misses_total").inc(misses)
            reg.counter("cache_remote_bytes_saved_total").inc(hit_bytes)
            total = (
                reg.total("cache_hits_total")
                + reg.total("cache_misses_total")
            )
            reg.gauge("cache_hit_rate").set(
                reg.total("cache_hits_total") / total if total else 0.0,
                t=now,
            )
        self.last_consume_time = t_consume
        self.last_exposed_time = exposed
        return staged.subgraph, staged.features
