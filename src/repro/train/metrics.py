"""Evaluation metrics and statistics containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] == 0:
        return 0.0
    return float(np.mean(logits.argmax(axis=-1) == labels))


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    AUC = (Σ ranks of positives − n⁺(n⁺+1)/2) / (n⁺ · n⁻), with midranks
    for tied scores.  Used by the link-prediction example.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # midranks for ties
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    pos_rank_sum = ranks[labels].sum()
    return float(
        (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


@dataclass
class PhaseTimes:
    """Per-phase simulated seconds of one iteration or epoch."""

    sample: float = 0.0
    gather: float = 0.0
    train: float = 0.0

    @property
    def total(self) -> float:
        return self.sample + self.gather + self.train

    def __iadd__(self, other: "PhaseTimes") -> "PhaseTimes":
        self.sample += other.sample
        self.gather += other.gather
        self.train += other.train
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "sample": self.sample,
            "gather": self.gather,
            "train": self.train,
        }
