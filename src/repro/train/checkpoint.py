"""Training checkpoints: save/restore model + optimizer state to ``.npz``.

Long papers100M-scale runs (the paper trains ~24 epochs for Table III)
need resumable state.  A checkpoint captures the model parameters, the
Adam moments and step counter, and the epoch cursor, all as flat arrays in
a single compressed ``.npz`` — no pickling, so checkpoints are portable
and inspectable.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, SGD

FORMAT_VERSION = 1


def save_checkpoint(path, model: Module, optimizer: Optimizer,
                    epoch: int = 0, extra: dict | None = None) -> None:
    """Write a checkpoint; parent directories must exist."""
    arrays: dict[str, np.ndarray] = {
        "_format_version": np.array(FORMAT_VERSION),
        "_epoch": np.array(int(epoch)),
        "_optimizer_kind": np.array(type(optimizer).__name__),
    }
    for i, p in enumerate(model.parameters()):
        arrays[f"param_{i}"] = p.data
    if isinstance(optimizer, Adam):
        arrays["_adam_t"] = np.array(optimizer.t)
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"adam_m_{i}"] = m
            arrays[f"adam_v_{i}"] = v
    elif isinstance(optimizer, SGD):
        for i, vel in enumerate(optimizer._velocity):
            arrays[f"sgd_v_{i}"] = vel
    for key, value in (extra or {}).items():
        arrays[f"extra_{key}"] = np.asarray(value)
    np.savez_compressed(path, **arrays)


def load_checkpoint(path, model: Module, optimizer: Optimizer) -> dict:
    """Restore ``model`` and ``optimizer`` in place; returns metadata.

    Raises ``ValueError`` on shape or optimizer-kind mismatch.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["_format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        kind = str(data["_optimizer_kind"])
        if kind != type(optimizer).__name__:
            raise ValueError(
                f"checkpoint was written for {kind}, "
                f"got {type(optimizer).__name__}"
            )
        params = model.parameters()
        for i, p in enumerate(params):
            saved = data[f"param_{i}"]
            if saved.shape != p.data.shape:
                raise ValueError(
                    f"parameter {i} shape {saved.shape} != {p.data.shape}"
                )
            p.data[...] = saved
        if isinstance(optimizer, Adam):
            optimizer.t = int(data["_adam_t"])
            for i in range(len(params)):
                optimizer._m[i][...] = data[f"adam_m_{i}"]
                optimizer._v[i][...] = data[f"adam_v_{i}"]
        elif isinstance(optimizer, SGD):
            for i in range(len(params)):
                optimizer._velocity[i][...] = data[f"sgd_v_{i}"]
        extra = {
            key[len("extra_"):]: data[key]
            for key in data.files
            if key.startswith("extra_")
        }
        return {"epoch": int(data["_epoch"]), "extra": extra}
