"""Early stopping on a validation metric."""

from __future__ import annotations


class EarlyStopping:
    """Stop training when the monitored metric stalls.

    >>> stopper = EarlyStopping(patience=3, mode="max")
    >>> for epoch in range(100):
    ...     acc = trainer.evaluate()
    ...     if stopper.step(acc):
    ...         break
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0,
                 mode: str = "max"):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: float | None = None
        self.best_step = -1
        self.num_bad = 0
        self._step = -1

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def step(self, value: float) -> bool:
        """Record a metric value; returns True when training should stop."""
        self._step += 1
        if self._improved(value):
            self.best = float(value)
            self.best_step = self._step
            self.num_bad = 0
        else:
            self.num_bad += 1
        return self.num_bad >= self.patience

    @property
    def should_stop(self) -> bool:
        return self.num_bad >= self.patience
