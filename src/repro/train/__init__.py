"""Mini-batch GNN training on the multi-GPU shared-memory store.

- :mod:`repro.train.pipeline` — the per-iteration sample → append-unique →
  gather → train pipeline with per-phase simulated timing;
- :mod:`repro.train.trainer` — epoch loops, evaluation, the WholeGraph
  trainer (paper §III-D training flow);
- :mod:`repro.train.plans` — composable parallelism plans (data-parallel,
  GNNPipe-style pipelined model parallelism, hybrid, CAGNET full-graph);
- :mod:`repro.train.streaming` — the out-of-core streaming prefetch loader
  (host-stream tier transfers, exposed-tail-only charging);
- :mod:`repro.train.ddp` — data-parallel gradient synchronisation;
- :mod:`repro.train.metrics` — accuracy and epoch statistics.
"""

from repro.train.pipeline import IterationResult, run_iteration
from repro.train.trainer import WholeGraphTrainer, EpochStats
from repro.train.streaming import StreamingLoader
from repro.train.ddp import DistributedDataParallel
from repro.train.metrics import accuracy
from repro.train.plans import (
    CagnetFullGraphPlan,
    DataParallelPlan,
    HybridParallelPlan,
    ParallelismPlan,
    PipelineParallelPlan,
)

__all__ = [
    "IterationResult",
    "run_iteration",
    "WholeGraphTrainer",
    "EpochStats",
    "StreamingLoader",
    "DistributedDataParallel",
    "accuracy",
    "ParallelismPlan",
    "DataParallelPlan",
    "PipelineParallelPlan",
    "HybridParallelPlan",
    "CagnetFullGraphPlan",
]
