"""Data-parallel gradient synchronisation (paper §III-D).

WholeGraph trains data-parallel with Apex DistributedDataParallel: every GPU
computes on its own mini-batch, gradients are bucketed in *reverse parameter
order* (the order backward produces them), and each bucket's ring all-reduce
launches as soon as its last gradient is ready — overlapping communication
with the still-running backward pass.  All replicas then step identically.

:class:`DistributedDataParallel` reproduces that over our communicator for
*real* multi-replica training, with preallocated flat per-bucket gradient
storage (no per-step concatenation);  :class:`GradSyncModel` prices the same
bucketed schedule on the simulated clocks and is what the symmetric
single-replica harness and the multi-node cluster trainer charge;
:func:`charge_allreduce` remains the legacy flat, non-overlapped charge.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.dsm.comm import Communicator
from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.nn.module import Module
from repro.train.pipeline import GradSyncPlan, charge_grad_sync, plan_grad_sync


def assign_buckets(
    param_nbytes: list[int], bucket_cap_mb: float
) -> list[tuple[int, ...]]:
    """Greedy reverse-parameter-order bucket assignment (Apex/DDP rule).

    Backward produces gradients roughly from the last parameter to the
    first, so walking ``parameters()`` in reverse and cutting a new bucket
    whenever the running size would exceed the cap yields buckets that
    become ready in list order during backward.  A non-positive cap puts
    everything in one bucket — the flat baseline.  Returns tuples of
    parameter indices (into the forward ``parameters()`` order).
    """
    if bucket_cap_mb <= 0:
        cap = float("inf")
    else:
        cap = float(bucket_cap_mb) * config.MB
    buckets: list[tuple[int, ...]] = []
    cur: list[int] = []
    cur_bytes = 0
    for idx in reversed(range(len(param_nbytes))):
        nb = int(param_nbytes[idx])
        if cur and cur_bytes + nb > cap:
            buckets.append(tuple(cur))
            cur, cur_bytes = [], 0
        cur.append(idx)
        cur_bytes += nb
    if cur:
        buckets.append(tuple(cur))
    return buckets


class GradSyncModel:
    """Prices one bucketed, backward-overlapped gradient synchronisation.

    Owns the bucket layout for a parameter list and the per-bucket ring
    all-reduce costs (intra-node chunked ring; plus a hierarchical
    inter-node ring over the 1/num_gpus shards when ``nodes`` spans
    machines).  :meth:`charge` stamps one synchronisation onto the clocks:
    barrier to the max clock, then only the schedule's *exposed* tail.
    """

    def __init__(
        self,
        nodes: SimNode | list[SimNode],
        param_nbytes: list[int],
        bucket_cap_mb: float | None = None,
        overlap: bool = True,
        bandwidth: float | None = None,
        latency: float | None = None,
    ):
        self.nodes = list(nodes) if isinstance(nodes, (list, tuple)) else [nodes]
        node = self.nodes[0]
        self.bucket_cap_mb = (
            config.DDP_BUCKET_CAP_MB if bucket_cap_mb is None
            else float(bucket_cap_mb)
        )
        self.overlap = bool(overlap)
        self.param_nbytes = [int(n) for n in param_nbytes]
        self.bandwidth = (
            bandwidth if bandwidth is not None
            else node.spec.nvlink.bandwidth * config.NCCL_BW_EFFICIENCY
        )
        self.latency = (
            latency if latency is not None else node.spec.nvlink.latency
        )
        self.buckets = assign_buckets(self.param_nbytes, self.bucket_cap_mb)
        self.bucket_nbytes = [
            sum(self.param_nbytes[i] for i in b) for b in self.buckets
        ]
        self.bucket_times = [self.bucket_time(b) for b in self.bucket_nbytes]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def total_nbytes(self) -> int:
        return sum(self.bucket_nbytes)

    def bucket_time(self, nbytes: int) -> float:
        """Comm-stream duration of one bucket's (hierarchical) all-reduce."""
        node = self.nodes[0]
        t = costmodel.chunked_ring_allreduce_time(
            nbytes, node.num_gpus, self.bandwidth, self.latency
        )
        num_machines = len(self.nodes)
        if num_machines > 1:
            # hierarchical: after the intra-node reduce-scatter each GPU
            # owns a 1/num_gpus shard, which rides the inter-node IB ring
            t += costmodel.chunked_ring_allreduce_time(
                nbytes / max(node.num_gpus, 1),
                num_machines,
                config.INTER_NODE_BW,
                config.INTER_NODE_LATENCY,
            )
        return t

    def plan(
        self, producers: list[tuple[float, float]] | None = None
    ) -> GradSyncPlan:
        """Schedule one sync; ``producers`` are (end_offset, window) pairs."""
        return plan_grad_sync(self.bucket_nbytes, self.bucket_times, producers)

    def charge(
        self,
        producers: list[tuple[float, float]] | None = None,
        phase: str = "allreduce",
    ) -> GradSyncPlan:
        """Charge one gradient synchronisation to all clocks.

        ``producers`` lists the replicas that ran backward, as
        ``(clock_now, train_seconds)`` pairs in *absolute* simulated time;
        the backward window is ``train_seconds * TRAIN_BACKWARD_FRACTION``.
        With ``overlap`` off (or no producers) every bucket waits for the
        sync point and the whole transfer is exposed — the flat schedule.
        """
        clocks = [c for n in self.nodes for c in n.gpu_clock]
        sync_point = max(c.now for c in clocks)
        rel: list[tuple[float, float]] | None = None
        if self.overlap and producers:
            rel = [
                (now - sync_point,
                 max(0.0, t) * config.TRAIN_BACKWARD_FRACTION)
                for now, t in producers
            ]
        slowdown = max(
            (n.fault_injector.link_slowdown(sync_point, n.node_id)
             for n in self.nodes if n.fault_injector is not None),
            default=1.0,
        )
        if slowdown > 1.0:
            # degraded fabric at the sync point stretches every bucket ring
            times = [t * slowdown for t in self.bucket_times]
            plan = plan_grad_sync(self.bucket_nbytes, times, rel)
        else:
            plan = self.plan(rel)
        charge_grad_sync(self.nodes, plan, phase=phase)
        return plan


class DistributedDataParallel:
    """Keeps N model replicas in lock-step via bucketed gradient all-reduce.

    Gradients live in preallocated flat per-bucket buffers with
    per-parameter views — sync copies each ``p.grad`` into its view once
    and re-points ``p.grad`` at the view, so no per-step ``np.concatenate``
    ever runs.  The numerical reduction (float64 sum across replicas, cast
    to float32, divide by N) is applied per element exactly as the flat
    path applies it, so bucketing is bit-identical to a single flat buffer.
    """

    def __init__(
        self,
        replicas: list[Module],
        comm: Communicator,
        bucket_cap_mb: float | None = None,
        overlap_grad_sync: bool = False,
    ):
        if len(replicas) != comm.num_ranks:
            raise ValueError("need one replica per communicator rank")
        self.replicas = replicas
        self.comm = comm
        params0 = replicas[0].parameters()
        shapes = [tuple(p.data.shape) for p in params0]
        for r in replicas[1:]:
            if [tuple(p.data.shape) for p in r.parameters()] != shapes:
                raise ValueError("replica parameter shapes differ")
        # broadcast replica 0's weights so training starts in sync
        state = replicas[0].state_dict()
        for r in replicas[1:]:
            r.load_state_dict(state)

        self.sync_model = GradSyncModel(
            comm.node,
            [p.data.size * p.data.itemsize for p in params0],
            bucket_cap_mb=bucket_cap_mb,
            overlap=overlap_grad_sync,
            bandwidth=comm.bandwidth,
            latency=comm.latency,
        )
        # preallocated flat gradient storage: one float32 buffer per
        # (replica, bucket), carved into per-parameter views
        self._bucket_elems = [
            sum(params0[i].data.size for i in b)
            for b in self.sync_model.buckets
        ]
        self._flat: list[list[np.ndarray]] = [
            [np.zeros(n, dtype=np.float32) for n in self._bucket_elems]
            for _ in replicas
        ]
        self._views: list[list[list[np.ndarray]]] = []
        for rep_idx, rep in enumerate(self.replicas):
            params = rep.parameters()
            rep_views: list[list[np.ndarray]] = []
            for b_idx, bucket in enumerate(self.sync_model.buckets):
                buf = self._flat[rep_idx][b_idx]
                views, offset = [], 0
                for p_idx in bucket:
                    size = params[p_idx].data.size
                    views.append(
                        buf[offset:offset + size].reshape(
                            params[p_idx].data.shape
                        )
                    )
                    offset += size
                rep_views.append(views)
            self._views.append(rep_views)

    @property
    def num_buckets(self) -> int:
        return self.sync_model.num_buckets

    def sync_gradients(
        self,
        phase: str = "allreduce",
        train_times: list[float] | None = None,
    ) -> GradSyncPlan:
        """Average gradients across replicas, bucket by bucket.

        ``train_times`` (one per rank, seconds of that rank's train phase)
        enables the backward-overlap schedule when the DDP was built with
        ``overlap_grad_sync=True``; without it the sync is charged flat at
        the barrier.  Returns the :class:`GradSyncPlan` that was charged.
        """
        n = float(len(self.replicas))
        all_params = [r.parameters() for r in self.replicas]
        for b_idx, bucket in enumerate(self.sync_model.buckets):
            # stage each replica's gradients into its flat bucket buffer
            for rep_idx, params in enumerate(all_params):
                for slot, p_idx in enumerate(bucket):
                    view = self._views[rep_idx][b_idx][slot]
                    grad = all_params[rep_idx][p_idx].grad
                    if grad is None:
                        view[...] = 0.0
                    else:
                        view[...] = grad
            # elementwise float64 sum -> float32 -> /N: identical to the
            # flat single-buffer reduction on every element
            total = self._flat[0][b_idx].astype(np.float64)
            for rep_idx in range(1, len(self.replicas)):
                total = total + self._flat[rep_idx][b_idx]
            reduced = total.astype(np.float32) / n
            for rep_idx, params in enumerate(all_params):
                self._flat[rep_idx][b_idx][...] = reduced
                for slot, p_idx in enumerate(bucket):
                    params[p_idx].grad = self._views[rep_idx][b_idx][slot]
        producers = None
        if train_times is not None:
            clocks = self.comm.node.gpu_clock
            producers = [
                (clocks[r].now, train_times[r])
                for r in range(len(train_times))
            ]
        return self.sync_model.charge(producers, phase=phase)

    def sync_gradients_flat(self, phase: str = "allreduce") -> None:
        """Legacy flat path: concatenate, one ring all-reduce, scatter back.

        Kept as the reference implementation the bucketed path must match
        bit-for-bit (and as the micro-benchmark baseline).
        """
        flats = []
        for r in self.replicas:
            params = r.parameters()
            grads = [
                p.grad if p.grad is not None else np.zeros_like(p.data)
                for p in params
            ]
            flats.append(
                np.concatenate([g.ravel() for g in grads]).astype(np.float32)
            )
        reduced = self.comm.allreduce(flats, phase=phase)
        n = float(len(self.replicas))
        for r, flat in zip(self.replicas, reduced):
            flat = flat / n
            offset = 0
            for p in r.parameters():
                size = p.data.size
                p.grad = flat[offset : offset + size].reshape(p.data.shape)
                offset += size

    def assert_in_sync(self, atol: float = 1e-5) -> None:
        """Verify replicas hold identical weights (test hook)."""
        ref = self.replicas[0].state_dict()
        for i, r in enumerate(self.replicas[1:], start=1):
            for a, b in zip(ref, r.state_dict()):
                if not np.allclose(a, b, atol=atol):
                    raise AssertionError(f"replica {i} diverged")


def allreduce_cost(node: SimNode, grad_nbytes: int) -> float:
    """Simulated duration of the intra-node gradient all-reduce."""
    return costmodel.allreduce_time(
        grad_nbytes,
        node.num_gpus,
        node.spec.nvlink.bandwidth,
        node.spec.nvlink.latency,
    )


def charge_allreduce(node: SimNode, grad_nbytes: int,
                     phase: str = "train") -> float:
    """Charge a flat, non-overlapped gradient all-reduce to every GPU clock.

    Proper collective semantics: skewed ranks first align to the max clock
    (the ``allreduce_wait`` barrier stall), then all pay the transfer
    together.  Returns the transfer duration.
    """
    t = allreduce_cost(node, grad_nbytes)
    target = max(c.now for c in node.gpu_clock)
    for clock in node.gpu_clock:
        clock.wait_until(target, phase="allreduce_wait", category="comm")
        clock.advance(t, phase=phase)
    return t
