"""Data-parallel gradient synchronisation (paper §III-D).

WholeGraph trains data-parallel with Apex DistributedDataParallel: every GPU
computes on its own mini-batch, gradients are all-reduced, and all replicas
step identically.  :class:`DistributedDataParallel` reproduces that over our
communicator for *real* multi-replica training; :func:`charge_allreduce`
charges just the communication cost when the harness runs the symmetric
single-replica approximation.
"""

from __future__ import annotations

import numpy as np

from repro.dsm.comm import Communicator
from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.nn.module import Module


class DistributedDataParallel:
    """Keeps N model replicas in lock-step via gradient all-reduce."""

    def __init__(self, replicas: list[Module], comm: Communicator):
        if len(replicas) != comm.num_ranks:
            raise ValueError("need one replica per communicator rank")
        self.replicas = replicas
        self.comm = comm
        shapes = [
            tuple(p.data.shape) for p in replicas[0].parameters()
        ]
        for r in replicas[1:]:
            if [tuple(p.data.shape) for p in r.parameters()] != shapes:
                raise ValueError("replica parameter shapes differ")
        # broadcast replica 0's weights so training starts in sync
        state = replicas[0].state_dict()
        for r in replicas[1:]:
            r.load_state_dict(state)

    def sync_gradients(self, phase: str = "train") -> None:
        """Average gradients across replicas (flat ring all-reduce)."""
        flats = []
        for r in self.replicas:
            params = r.parameters()
            grads = [
                p.grad if p.grad is not None else np.zeros_like(p.data)
                for p in params
            ]
            flats.append(
                np.concatenate([g.ravel() for g in grads]).astype(np.float32)
            )
        reduced = self.comm.allreduce(flats, phase=phase)
        n = float(len(self.replicas))
        for r, flat in zip(self.replicas, reduced):
            flat = flat / n
            offset = 0
            for p in r.parameters():
                size = p.data.size
                p.grad = flat[offset : offset + size].reshape(p.data.shape)
                offset += size

    def assert_in_sync(self, atol: float = 1e-5) -> None:
        """Verify replicas hold identical weights (test hook)."""
        ref = self.replicas[0].state_dict()
        for i, r in enumerate(self.replicas[1:], start=1):
            for a, b in zip(ref, r.state_dict()):
                if not np.allclose(a, b, atol=atol):
                    raise AssertionError(f"replica {i} diverged")


def allreduce_cost(node: SimNode, grad_nbytes: int) -> float:
    """Simulated duration of the intra-node gradient all-reduce."""
    return costmodel.allreduce_time(
        grad_nbytes,
        node.num_gpus,
        node.spec.nvlink.bandwidth,
        node.spec.nvlink.latency,
    )


def charge_allreduce(node: SimNode, grad_nbytes: int,
                     phase: str = "train") -> float:
    """Charge the gradient all-reduce cost to every GPU clock."""
    t = allreduce_cost(node, grad_nbytes)
    for clock in node.gpu_clock:
        clock.advance(t, phase=phase)
    return t
