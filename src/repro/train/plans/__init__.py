"""Composable parallelism plans for the training layer.

A plan encapsulates one strategy for spreading training across GPUs —
replica layout, epoch scheduling onto the simulated streams, gradient
synchronisation and fault recovery — behind the interface defined in
:mod:`repro.train.plans.base`.  The trainer picks a plan by name (or takes
a configured instance) and delegates; see ``docs/parallelism.md`` for the
handbook and DESIGN.md §15 for the interface contract.

Available plans: :class:`DataParallelPlan` (the default WholeGraph
regime), :class:`PipelineParallelPlan` (GNNPipe-style layer pipelining),
:class:`HybridParallelPlan` (pipelined stages replicated into
data-parallel groups), :class:`CagnetFullGraphPlan` (CAGNET-style 1.5D
partitioned full-graph training) and :class:`ClusterDataParallelPlan`
(the multi-machine regime behind :class:`~repro.cluster.ClusterTrainer`).
"""

from repro.train.plans.base import ParallelismPlan, resolve_plan
from repro.train.plans.cagnet import CagnetFullGraphPlan
from repro.train.plans.cluster import ClusterDataParallelPlan
from repro.train.plans.data_parallel import DataParallelPlan
from repro.train.plans.pipeline_parallel import (
    HybridParallelPlan,
    PipelineParallelPlan,
    bubble_fraction,
)

__all__ = [
    "CagnetFullGraphPlan",
    "ClusterDataParallelPlan",
    "DataParallelPlan",
    "HybridParallelPlan",
    "ParallelismPlan",
    "PipelineParallelPlan",
    "bubble_fraction",
    "resolve_plan",
]
