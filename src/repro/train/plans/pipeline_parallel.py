"""GNNPipe-style layer-pipelined model parallelism (PAPERS.md).

The model's layers are sharded contiguously across ``num_stages`` GPU
stages; each global mini-batch is cut into ``micro_batches`` row-chunks
that flow through the stages under a GPipe fill-drain schedule.  Stage
``s`` computes its layers' forward for micro-batch ``m``, ships the
boundary activations to stage ``s+1`` over the comm lane, and later runs
the matching backward as the gradient chunks drain back.  An ``S``-stage
pipeline with ``M`` micro-batches idles for the classic *bubble* fraction

    (S - 1) / (M + S - 1)

of its steady-state step, and that idle time is what this plan accounts
for: every cross-stage dependency stall is recorded under the
``pipeline_bubble`` phase, so the exposed bubbles show up in the analysis
layer's critical-path blame tables and in the
``pipeline_bubble_seconds_total`` metric.

Dual-layer contract: micro-batching here is a *scheduling* knob.  The
functional math is one full-batch forward/backward per global batch —
row-chunked gradient accumulation sums to exactly the same gradient, so
the plan runs the sum once — and both the sampling and dropout streams are
consumed in batch order, making the loss trajectory bit-identical to the
data-parallel plan at equal seeds for every ``micro_batches`` setting
(the single-micro-batch case is where the *schedules* coincide too).

Unlike data parallelism there is no gradient all-reduce: each stage owns
its layers' parameters outright.  :class:`HybridParallelPlan` composes the
two — the pipeline is replicated into data-parallel groups whose stages
all-reduce their stage-local parameters after each batch.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.faults import RankFailureError
from repro.hardware import costmodel
from repro.telemetry import metrics
from repro.train.ddp import GradSyncModel
from repro.train.metrics import PhaseTimes
from repro.train.pipeline import sample_and_gather, train_batch
from repro.train.plans.base import ParallelismPlan


def bubble_fraction(num_stages: int, micro_batches: int) -> float:
    """The GPipe fill-drain idle fraction ``(S - 1) / (M + S - 1)``."""
    s, m = int(num_stages), int(micro_batches)
    if s <= 1:
        return 0.0
    return (s - 1) / (m + s - 1)


class PipelineParallelPlan(ParallelismPlan):
    """Model parallelism: layers sharded into a micro-batch pipeline."""

    name = "pipeline"

    def __init__(self, num_stages: int | None = None,
                 micro_batches: int | None = None):
        """``num_stages`` defaults to ``min(num_gpus, num_layers)``;
        ``micro_batches`` to :data:`config.PIPELINE_MICRO_BATCHES`."""
        super().__init__()
        self.num_stages = num_stages
        self.micro_batches = micro_batches
        #: data-parallel pipeline replicas (1 = pure model parallelism);
        #: set by :class:`HybridParallelPlan`
        self.num_groups = 1

    def bind(self, trainer) -> None:
        """Validate the trainer's knobs and shard the layers into stages."""
        self.trainer = trainer
        t = trainer
        if t.task != "node":
            raise ValueError(
                "the pipeline plan supports node classification only"
            )
        if t.compute_ranks != "one":
            raise ValueError(
                "the pipeline plan runs in the symmetric mode only"
            )
        if t.overlap or t.streaming:
            raise ValueError(
                "the pipeline plan owns its schedule — construct the "
                "trainer with overlap=False, streaming=False"
            )
        if t.recovery_policy != "restart":
            raise ValueError(
                "the pipeline plan supports recovery_policy='restart' only"
            )
        num_layers = len(t.model.convs)
        max_stages = min(t.node.num_gpus // self.num_groups, num_layers)
        stages = max_stages if self.num_stages is None else int(self.num_stages)
        if not 1 <= stages <= max_stages:
            raise ValueError(
                f"num_stages must be in [1, {max_stages}] "
                f"(= min(gpus/groups, layers)); got {stages}"
            )
        self.num_stages = stages
        micro = (
            config.PIPELINE_MICRO_BATCHES if self.micro_batches is None
            else int(self.micro_batches)
        )
        if micro < 1:
            raise ValueError("micro_batches must be >= 1")
        self.micro_batches = micro
        #: conv indices (deepest-first application order) per stage
        self.stage_layers = [
            [int(d) for d in part]
            for part in np.array_split(np.arange(num_layers), stages)
        ]
        t.replicas = [t.model]
        t.ddp = None
        # stage-local parameters: the engine below prices the hybrid plan's
        # cross-group sync; the pure pipeline never charges it
        t.grad_sync = GradSyncModel(
            t.node,
            [p.data.size * p.data.itemsize for p in t.model.parameters()],
            bucket_cap_mb=t._bucket_cap_mb,
            overlap=t._overlap_grad_sync,
        )

    def report_config(self) -> dict:
        """Plan name plus the pipeline shape knobs."""
        return {
            "plan": self.name,
            "num_stages": self.num_stages,
            "micro_batches": self.micro_batches,
            "num_groups": self.num_groups,
        }

    # -- epoch loop --------------------------------------------------------

    def train_epoch(self, max_iterations, overlap):
        """One fill-drain pipelined pass over the training nodes."""
        from repro.train.trainer import EpochStats

        t = self.trainer
        if overlap:
            raise ValueError(
                "the pipeline plan schedules its own overlap; "
                "overlap=True is the data-parallel double-buffer knob"
            )
        t.model.train()
        batches = t._epoch_batches()
        if max_iterations is not None:
            batches = batches[:max_iterations]
        node = t.node
        t_start = node.sync()
        bub0 = node.timeline.phase_total("pipeline_bubble")
        act0 = node.timeline.phase_total("activation_transfer")
        ar0 = node.timeline.phase_total("allreduce")
        losses: list[float] = []
        phase_totals = PhaseTimes()
        cursor = 0
        while cursor < len(batches):
            try:
                loss = self._run_batch(batches[cursor], phase_totals)
                losses.append(loss)
                cursor += 1
                t._poll_faults()
            except RankFailureError as exc:
                batches, cursor, losses = self.recover(
                    exc, batches, cursor, losses
                )
        t_end = node.sync()
        bubble = node.timeline.phase_total("pipeline_bubble") - bub0
        act = node.timeline.phase_total("activation_transfer") - act0
        reg = metrics.get_registry()
        reg.counter("pipeline_bubble_seconds_total").inc(bubble)
        reg.counter(
            "phase_seconds_total", phase="activation_transfer"
        ).inc(act)
        stats = EpochStats(
            epoch=t._epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            iterations=len(batches),
            times=phase_totals,
            epoch_time=t_end - t_start,
            allreduce=node.timeline.phase_total("allreduce") - ar0,
            extras={
                "pipeline_bubble": bubble,
                "activation_transfer": act,
                "bubble_fraction_model": bubble_fraction(
                    self.num_stages, self.micro_batches
                ),
            },
        )
        t._epoch += 1
        t.history.append(stats)
        if t._needs_checkpoints():
            t._save_checkpoint()
        return stats

    # -- one global batch --------------------------------------------------

    def _run_batch(self, batch: np.ndarray,
                   phase_totals: PhaseTimes) -> float:
        """Sample once, train once, schedule the micro-batch pipeline."""
        t = self.trainer
        node = t.node
        # stage 0's rank prepares the data (sampling lives with the first
        # stage, as in GNNPipe); the same streams and order as the
        # data-parallel plan, so the math is bit-identical at equal seeds
        sg, x_np, t_sample, t_gather = sample_and_gather(
            t.store, t.sampler, batch, 0, t.rngs.rank(0)
        )
        loss, _ = train_batch(
            t.model, sg, x_np, t.store.labels[batch],
            rng=t._model_rng, optimizer=t.optimizer,
        )
        total_compute = self._charge_pipeline(sg, batch.shape[0])
        node.sync()
        reg = metrics.get_registry()
        reg.counter("iterations_total", schedule="pipeline").inc(1)
        reg.counter("phase_seconds_total", phase="train").inc(total_compute)
        phase_totals += PhaseTimes(
            sample=t_sample, gather=t_gather, train=total_compute
        )
        return loss

    def _stage_costs(self, sg) -> list[dict]:
        """Per-stage compute/transfer quantities for one sampled subgraph.

        Returns one dict per stage with the layer-summed ``flops``,
        ``sparse_bytes``, activation bytes, parameter bytes and the
        boundary-activation bytes shipped to the next stage.
        """
        t = self.trainer
        convs = t.model.convs
        num_layers = len(convs)
        width_hint = t.model._width_hint()
        out = []
        for layers in self.stage_layers:
            flops = sbytes = act = params = 0.0
            for d in layers:
                block = sg.blocks[num_layers - 1 - d]
                cost = convs[d].estimate_cost(
                    block.num_targets, block.num_src, block.num_edges
                )
                flops += cost["flops"]
                sbytes += cost["sparse_bytes"]
                act += block.num_src * width_hint * 4
                params += sum(p.data.nbytes for p in convs[d].parameters())
            last = layers[-1]
            last_block = sg.blocks[num_layers - 1 - last]
            boundary = (
                last_block.num_targets
                * getattr(convs[last], "out_features", width_hint)
                * 4
            )
            out.append({
                "flops": flops, "sparse_bytes": sbytes, "act": act,
                "params": params, "boundary": boundary,
            })
        return out

    def _charge_pipeline(self, sg, batch_size: int) -> float:
        """Launch the fill-drain schedule onto the simulated streams.

        Forward ops run micro-major so stage ``s+1`` starts micro ``m`` as
        soon as its activations land; backward drains in reverse stage
        order.  Cross-stage activation/gradient chunks ride the comm lane
        as ``activation_transfer`` spans; every dependency stall on a
        compute stream is recorded under ``pipeline_bubble``.  Returns the
        summed compute seconds of one pipeline replica (the rank-0 view
        recorded in the phase totals).
        """
        t = self.trainer
        streams = t.node.streams
        costs = self._stage_costs(sg)
        S = self.num_stages
        M = min(self.micro_batches, max(1, batch_size))
        fracs = [c.shape[0] / batch_size
                 for c in np.array_split(np.arange(batch_size), M)]
        fwd = [[self._fwd_time(costs[s], f) for f in fracs]
               for s in range(S)]
        bwd = [[self._bwd_time(costs[s], f) for f in fracs]
               for s in range(S)]
        xfer = [[costmodel.nvlink_p2p_stream_time(costs[s]["boundary"] * f)
                 for f in fracs] for s in range(S)]
        total = 0.0
        for g in range(self.num_groups):
            base = g * S
            total_g = self._charge_group(
                streams, base, fwd, bwd, xfer, costs, M
            )
            if g == 0:
                total = total_g
        return total

    def _charge_group(self, streams, base, fwd, bwd, xfer, costs, M):
        """Charge one pipeline replica's batch onto ranks ``base..base+S-1``."""
        t = self.trainer
        S = self.num_stages
        launch = dict(
            category="compute",
            wait_phase="pipeline_bubble", wait_category="pipeline",
        )
        fwd_done = [[None] * M for _ in range(S)]
        act_ev = [[None] * M for _ in range(S)]
        grad_ev = [[None] * M for _ in range(S)]
        total = 0.0
        for m in range(M):
            for s in range(S):
                deps = [] if s == 0 else [act_ev[s - 1][m]]
                ev = streams.compute(base + s).launch(
                    fwd[s][m], deps=deps, phase="pipeline_fwd",
                    args={"stage": s, "micro": m}, **launch,
                )
                fwd_done[s][m] = ev
                total += fwd[s][m]
                if s < S - 1:
                    act_ev[s][m] = streams.comm(base + s).launch(
                        xfer[s][m], deps=[ev],
                        phase="activation_transfer", category="comm",
                        args={"stage": s, "micro": m,
                              "bytes": costs[s]["boundary"]},
                    )
        last_bwd = [None] * S
        for m in range(M):
            for s in reversed(range(S)):
                deps = [] if s == S - 1 else [grad_ev[s + 1][m]]
                ev = streams.compute(base + s).launch(
                    bwd[s][m], deps=deps, phase="pipeline_bwd",
                    args={"stage": s, "micro": m}, **launch,
                )
                last_bwd[s] = ev
                total += bwd[s][m]
                if s > 0:
                    grad_ev[s][m] = streams.comm(base + s).launch(
                        xfer[s - 1][m], deps=[ev],
                        phase="activation_transfer", category="comm",
                        args={"stage": s, "micro": m, "direction": "grad",
                              "bytes": costs[s - 1]["boundary"]},
                    )
        for s in range(S):
            deps = [last_bwd[s]]
            if self.num_groups > 1:
                # hybrid: this stage's parameters all-reduce across its
                # data-parallel group before the optimizer applies them
                sync_t = costmodel.chunked_ring_allreduce_time(
                    costs[s]["params"], self.num_groups,
                    t.grad_sync.bandwidth, t.grad_sync.latency,
                )
                deps = [streams.comm(base + s).launch(
                    sync_t, deps=deps, phase="allreduce", category="comm",
                    args={"stage": s, "bytes": costs[s]["params"]},
                )]
            opt_t = costmodel.elementwise_time(costs[s]["params"] * 8)
            streams.compute(base + s).launch(
                opt_t, deps=deps, phase="optimizer",
                args={"stage": s}, **launch,
            )
            total += opt_t
        return total

    @staticmethod
    def _fwd_time(cost: dict, frac: float) -> float:
        """Forward seconds of one stage for a ``frac``-sized micro-batch."""
        return (
            costmodel.dense_compute_time(cost["flops"] * frac)
            + costmodel.sparse_compute_time(cost["sparse_bytes"] * frac)
            + costmodel.elementwise_time(cost["act"] * frac)
        )

    @staticmethod
    def _bwd_time(cost: dict, frac: float) -> float:
        """Backward seconds (two GEMMs per forward GEMM, 1:2 rule)."""
        return (
            costmodel.dense_compute_time(2 * cost["flops"] * frac)
            + costmodel.sparse_compute_time(cost["sparse_bytes"] * frac)
            + costmodel.elementwise_time(cost["act"] * frac)
        )


class HybridParallelPlan(PipelineParallelPlan):
    """Pipeline stages replicated into data-parallel groups.

    ``num_groups`` pipeline replicas each own ``num_stages`` GPUs (ranks
    ``g*S .. g*S+S-1``); the groups process statistically-identical batches
    under the symmetric convention, and after each batch every stage
    all-reduces its stage-local parameters across the ``num_groups``
    replicas on the comm lane — the grad-sync engine's ring pricing at
    group width, charged through the plan interface.
    """

    name = "hybrid"

    def __init__(self, num_stages: int | None = None,
                 micro_batches: int | None = None,
                 num_groups: int | None = None):
        """``num_groups`` defaults to ``num_gpus // num_stages``."""
        super().__init__(num_stages=num_stages, micro_batches=micro_batches)
        self._requested_groups = num_groups

    def bind(self, trainer) -> None:
        """Resolve the stage/group grid, then bind the pipeline."""
        num_gpus = trainer.node.num_gpus
        num_layers = len(trainer.model.convs)
        stages = (
            min(num_gpus, num_layers) if self.num_stages is None
            else int(self.num_stages)
        )
        groups = (
            max(1, num_gpus // max(1, stages))
            if self._requested_groups is None
            else int(self._requested_groups)
        )
        if groups < 1 or stages * groups > num_gpus:
            raise ValueError(
                f"{stages} stages x {groups} groups needs "
                f"{stages * groups} GPUs; node has {num_gpus}"
            )
        self.num_groups = groups
        super().bind(trainer)
