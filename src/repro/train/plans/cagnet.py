"""CAGNET-style 1.5D partitioned full-graph training (PAPERS.md).

No sampling: every epoch is one full forward/backward over the whole
graph, with the adjacency and the feature matrix block-row partitioned
across the ``p`` GPUs.  Following CAGNET ("Reducing Communication in Graph
Neural Network Training"), the processes form a ``(p/c) x c`` grid with
replication factor ``c``:

- each of the ``p/c`` *broadcast groups* holds one block-row of the
  adjacency, replicated ``c`` ways;
- per layer, every rank receives the other block-rows' feature shards via
  ``p/c - 1`` ring-relayed broadcast steps, each shipping ``1/c`` of the
  slice (the replicas split the stationary matrix, so each moves a
  ``c``-th of the volume — the communication-avoiding win);
- when ``c > 1`` the ``c`` replicas hold partial SpMM outputs that a
  ``c``-way chunked-ring reduce combines.

``c = 1`` degenerates to the 1D block-row algorithm.  Broadcasts and
reduces ride the comm lanes under the ``broadcast``/``reduce`` phases
priced by :func:`~repro.hardware.costmodel.ring_broadcast_time` and the
chunked-ring all-reduce model, so both feed the analysis layer's blame
tables; layer-weight gradients sync through the plan-owned
:class:`~repro.train.ddp.GradSyncModel` like any other plan.

Dual-layer contract: the functional epoch is one deterministic full-graph
pass (loss over the training nodes only), independent of ``p`` and ``c``;
the partitioning shapes only the simulated clocks.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.faults import RankFailureError
from repro.hardware import costmodel
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import LayerBlock, SampledSubgraph
from repro.telemetry import metrics
from repro.train.ddp import GradSyncModel
from repro.train.metrics import PhaseTimes
from repro.train.plans.base import ParallelismPlan


class CagnetFullGraphPlan(ParallelismPlan):
    """Full-graph training over a 1.5D block partition (no sampling)."""

    name = "cagnet"

    def __init__(self, replication: int | None = None):
        """``replication`` is CAGNET's ``c``; defaults to
        :data:`config.CAGNET_REPLICATION` (1 = the 1D algorithm)."""
        super().__init__()
        self.replication = replication
        self._subgraph = None

    def bind(self, trainer) -> None:
        """Validate the knobs and build the one full-graph 'sample'."""
        self.trainer = trainer
        t = trainer
        if t.task != "node":
            raise ValueError(
                "the CAGNET plan supports node classification only"
            )
        if t.compute_ranks != "one":
            raise ValueError(
                "the CAGNET plan runs in the symmetric mode only"
            )
        if t.overlap or t.streaming:
            raise ValueError(
                "the CAGNET plan is a full-graph schedule — construct the "
                "trainer with overlap=False, streaming=False"
            )
        if t.recovery_policy != "restart":
            raise ValueError(
                "the CAGNET plan supports recovery_policy='restart' only"
            )
        c = (
            config.CAGNET_REPLICATION if self.replication is None
            else int(self.replication)
        )
        p = t.node.num_gpus
        if c < 1 or p % c != 0:
            raise ValueError(
                f"replication must divide the GPU count ({p}); got {c}"
            )
        self.replication = c
        t.replicas = [t.model]
        t.ddp = None
        t.grad_sync = GradSyncModel(
            t.node,
            [p_.data.size * p_.data.itemsize
             for p_ in t.model.parameters()],
            bucket_cap_mb=t._bucket_cap_mb,
            overlap=t._overlap_grad_sync,
        )
        # the whole graph as one L-layer "sample": every frontier is all
        # nodes, every block the full square CSR (no duplicate counts —
        # nothing was sampled, so nothing was deduplicated)
        csr = t.store.csr
        n = t.store.num_nodes
        all_nodes = np.arange(n, dtype=np.int64)
        num_layers = len(t.model.convs)
        self._subgraph = SampledSubgraph(
            frontiers=[all_nodes] * (num_layers + 1),
            blocks=[
                LayerBlock(csr.indptr, csr.indices, n, n, None)
                for _ in range(num_layers)
            ],
        )

    def report_config(self) -> dict:
        """Plan name plus the partition-grid knob."""
        return {"plan": self.name, "replication": self.replication}

    # -- epoch loop --------------------------------------------------------

    def train_epoch(self, max_iterations, overlap):
        """One full-graph pass = one 'iteration' epoch."""
        from repro.train.trainer import EpochStats

        t = self.trainer
        if overlap:
            raise ValueError(
                "the CAGNET plan has no prefetch to overlap; "
                "overlap=True is the data-parallel double-buffer knob"
            )
        t.model.train()
        node = t.node
        t_start = node.sync()
        b0 = node.timeline.phase_total("broadcast")
        r0 = node.timeline.phase_total("reduce")
        ar0 = node.timeline.phase_total("allreduce")
        while True:
            try:
                loss, train_t = self._full_graph_step()
                t._poll_faults()
                break
            except RankFailureError as exc:
                _, _, _ = self.recover(exc, [], 0, [])
        t_end = node.sync()
        bcast = node.timeline.phase_total("broadcast") - b0
        reduce = node.timeline.phase_total("reduce") - r0
        reg = metrics.get_registry()
        reg.counter("phase_seconds_total", phase="broadcast").inc(bcast)
        reg.counter("phase_seconds_total", phase="reduce").inc(reduce)
        stats = EpochStats(
            epoch=t._epoch,
            mean_loss=loss,
            iterations=1,
            times=PhaseTimes(train=train_t),
            epoch_time=t_end - t_start,
            allreduce=node.timeline.phase_total("allreduce") - ar0,
            extras={
                "broadcast": bcast,
                "reduce": reduce,
                "replication": self.replication,
            },
        )
        t._epoch += 1
        t.history.append(stats)
        if t._needs_checkpoints():
            t._save_checkpoint()
        return stats

    # -- one full-graph iteration ------------------------------------------

    def _full_graph_step(self) -> tuple[float, float]:
        """Functional full-graph pass plus its partitioned clock charges."""
        t = self.trainer
        store = t.store
        # functional math: one deterministic full-batch pass; the loss is
        # taken over the training split only, as in full-graph GCN training
        x_np = store.feature_tensor.gather_no_cost(
            np.arange(store.num_nodes, dtype=np.int64)
        )
        logits = t.model(self._subgraph, Tensor(x_np), t._model_rng)
        train_nodes = store.train_nodes
        loss = F.cross_entropy(
            F.gather_rows(logits, train_nodes),
            store.labels[train_nodes],
        )
        t.model.zero_grad()
        loss.backward()
        t.optimizer.step()

        train_t = self._charge_partitioned_epoch()
        metrics.get_registry().counter(
            "iterations_total", schedule="full_graph"
        ).inc(1)
        metrics.get_registry().counter(
            "phase_seconds_total", phase="train"
        ).inc(train_t)
        return float(loss.data), train_t

    def _charge_partitioned_epoch(self) -> float:
        """Charge the 1.5D layer schedule onto the simulated streams.

        Per layer and rank: broadcast the other block-rows' feature
        shards in (forward), SpMM + dense update over the local block-row,
        reduce partial outputs across the ``c`` replicas; the backward
        repeats the pattern with the transposed operands (2x dense work,
        reversed comm).  Weight gradients then sync through the plan's
        grad-sync engine.  Returns rank 0's summed compute seconds.
        """
        t = self.trainer
        node = t.node
        streams = node.streams
        store = t.store
        p = node.num_gpus
        c = self.replication
        group = p // c
        rank_rows = [int(n) for n in store.partition.counts]
        rank_edges = store.edges_per_rank
        sync = t.grad_sync
        widths = [store.feature_dim] + [
            getattr(conv, "out_features", t.model._width_hint())
            for conv in t.model.convs
        ]
        convs = t.model.convs
        num_layers = len(convs)
        total0 = 0.0
        for d in range(num_layers):
            # deepest-first application order: conv d consumes widths[d]
            f_in, f_out = widths[d], widths[d + 1]
            for r in range(p):
                comp = convs[d].estimate_cost(
                    rank_rows[r], store.num_nodes, rank_edges[r]
                )
                fwd_t = (
                    costmodel.dense_compute_time(comp["flops"])
                    + costmodel.sparse_compute_time(comp["sparse_bytes"])
                )
                bwd_t = (
                    costmodel.dense_compute_time(2 * comp["flops"])
                    + costmodel.sparse_compute_time(comp["sparse_bytes"])
                )
                # ring-relayed broadcast of the other block-rows' feature
                # shards; each replica ships 1/c of the slice
                shard = store.num_nodes / max(group, 1) * f_in * 4 / c
                bcast_t = costmodel.ring_broadcast_time(
                    shard, group, sync.bandwidth, sync.latency
                )
                reduce_t = 0.0
                if c > 1:
                    reduce_t = costmodel.chunked_ring_allreduce_time(
                        rank_rows[r] * f_out * 4, c,
                        sync.bandwidth, sync.latency,
                    )
                comm = streams.comm(r)
                compute = streams.compute(r)
                ev_b = comm.launch(
                    bcast_t, phase="broadcast", category="comm",
                    args={"layer": d, "bytes": shard, "group": group},
                )
                ev_f = compute.launch(
                    fwd_t, deps=[ev_b], phase="train", category="compute",
                    wait_phase="broadcast_wait", wait_category="comm",
                    args={"layer": d, "direction": "fwd"},
                )
                deps = [ev_f]
                if reduce_t:
                    deps = [comm.launch(
                        reduce_t, deps=deps, phase="reduce",
                        category="comm", args={"layer": d, "c": c},
                    )]
                # backward: gradient broadcast mirrors the forward pattern
                ev_gb = comm.launch(
                    bcast_t, deps=deps, phase="broadcast", category="comm",
                    args={"layer": d, "direction": "grad"},
                )
                compute.launch(
                    bwd_t, deps=[ev_gb], phase="train",
                    category="compute",
                    wait_phase="broadcast_wait", wait_category="comm",
                    args={"layer": d, "direction": "bwd"},
                )
                if reduce_t:
                    comm.launch(
                        reduce_t, phase="reduce", category="comm",
                        args={"layer": d, "c": c, "direction": "grad"},
                    )
                if r == 0:
                    total0 += fwd_t + bwd_t
        node.sync()
        # layer-weight gradients all-reduce through the plan's grad-sync
        # engine (same bucketed pricing as every other plan)
        sync.charge(
            producers=[(node.gpu_clock[0].now, total0)],
            phase="allreduce",
        )
        opt_t = costmodel.elementwise_time(
            sum(p_.data.nbytes for p_ in t.model.parameters()) * 8
        )
        for r in range(p):
            streams.compute(r).launch(
                opt_t, phase="optimizer", category="compute",
            )
        node.sync()
        return total0 + opt_t
