"""The default WholeGraph data-parallel plan (paper §III-D).

This is the legacy ``WholeGraphTrainer`` strategy, extracted verbatim onto
the plan interface: every clock charge, stream launch, RNG draw and metric
increment happens in exactly the order the pre-plan trainer produced, so a
data-parallel run through this plan is byte-identical to the golden
manifests recorded before the abstraction existed
(``tests/test_parallelism_plans.py`` pins this with a hypothesis sweep).

Two execution modes (selected by the trainer's ``compute_ranks``):

- ``"one"`` — SPMD-symmetric simulation: rank 0 runs the real math and its
  per-phase durations are mirrored onto the other ranks;
- ``"all"`` — true DDP: one model replica per GPU, per-rank batches, real
  bucketed gradient all-reduce every step.

Within the symmetric mode the trainer's schedule knobs select sequential,
double-buffered (``overlap=True``) or out-of-core streaming
(``streaming=True``) epochs.  Both recovery policies (checkpoint restart
and elastic shrink) plug in here.
"""

from __future__ import annotations

import numpy as np

from repro.dsm.comm import Communicator
from repro.faults import RankFailureError
from repro.hardware.machine import SimNode
from repro.hardware.spec import dgx_a100
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.ops.neighbor_sampler import NeighborSampler
from repro.telemetry import metrics
from repro.train.ddp import DistributedDataParallel, GradSyncModel
from repro.train.metrics import PhaseTimes
from repro.train.pipeline import PipelinedExecutor, run_iteration, train_batch
from repro.train.plans.base import ParallelismPlan
from repro.train.streaming import StreamingLoader


class DataParallelPlan(ParallelismPlan):
    """Data parallelism: every GPU holds the full model, batches split."""

    name = "data_parallel"

    def bind(self, trainer) -> None:
        """Build the replica set and the bucketed grad-sync engine."""
        self.trainer = trainer
        t = trainer
        if t.compute_ranks == "all":
            t.replicas = [t.model] + [
                build_model(
                    t.model_name, t.store.feature_dim, t.store.num_classes,
                    t.rngs.named(f"replica{r}"),
                    hidden=t.hidden, num_layers=t.num_layers,
                    dropout=t.dropout,
                )
                for r in range(1, t.node.num_gpus)
            ]
            t.comm = Communicator(t.node)
            t.ddp = DistributedDataParallel(
                t.replicas, t.comm,
                bucket_cap_mb=t._bucket_cap_mb,
                overlap_grad_sync=t._overlap_grad_sync,
            )
            t.grad_sync = t.ddp.sync_model
            t.optimizers = [Adam(r.parameters(), lr=t.lr) for r in t.replicas]
            t.optimizers[0] = t.optimizer
        else:
            t.replicas = [t.model]
            t.ddp = None
            t.grad_sync = GradSyncModel(
                t.node,
                [p.data.size * p.data.itemsize
                 for p in t.model.parameters()],
                bucket_cap_mb=t._bucket_cap_mb,
                overlap=t._overlap_grad_sync,
            )

    # -- epoch loop --------------------------------------------------------

    def train_epoch(self, max_iterations, overlap):
        """One pass over the training nodes (optionally truncated)."""
        from repro.train.trainer import EpochStats

        t = self.trainer
        t.model.train()
        batches = t._epoch_batches()
        if max_iterations is not None:
            batches = batches[:max_iterations]
        t_epoch_start = t.node.sync()
        losses: list[float] = []
        phase_totals = PhaseTimes()
        cursor = 0
        # grad-sync accumulators survive a mid-epoch recovery (a shrink
        # replaces the node and its timeline, so deltas are per attempt)
        ar_acc = aw_acc = hid_acc = 0.0
        while True:
            node = t.node
            dev0 = node.gpu_memory[0].device
            ar0 = node.timeline.phase_total("allreduce", dev0)
            aw0 = node.timeline.phase_total("allreduce_wait", dev0)
            hid0 = metrics.get_registry().total(
                "grad_sync_hidden_seconds_total"
            )
            done_before = len(losses)
            try:
                if t.streaming:
                    self._epoch_streaming(
                        batches[cursor:], phase_totals, losses
                    )
                    cursor = len(batches)
                elif overlap:
                    self._epoch_pipelined(
                        batches[cursor:], phase_totals, losses
                    )
                    cursor = len(batches)
                else:
                    while cursor < len(batches):
                        batch = batches[cursor]
                        if t.compute_ranks == "all":
                            loss = self._step_all_ranks(batch, cursor)
                        else:
                            loss = self._step_symmetric(batch, phase_totals)
                        losses.append(loss)
                        cursor += 1
                        t._poll_faults()
                break
            except RankFailureError as exc:
                if overlap or t.streaming:
                    cursor += len(losses) - done_before
                ar_acc += node.timeline.phase_total("allreduce", dev0) - ar0
                aw_acc += (
                    node.timeline.phase_total("allreduce_wait", dev0) - aw0
                )
                hid_acc += (
                    metrics.get_registry().total(
                        "grad_sync_hidden_seconds_total"
                    )
                    - hid0
                )
                batches, cursor, losses = self.recover(
                    exc, batches, cursor, losses
                )
        node = t.node
        t_epoch_end = node.sync()

        if t.compute_ranks == "all":
            phase_totals = PhaseTimes(
                sample=node.timeline.phase_total(
                    "sample", node.gpu_memory[0].device
                ),
                gather=node.timeline.phase_total(
                    "gather", node.gpu_memory[0].device
                ),
                train=node.timeline.phase_total(
                    "train", node.gpu_memory[0].device
                ),
            )

        stats = EpochStats(
            epoch=t._epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            iterations=len(batches),
            times=phase_totals,
            epoch_time=t_epoch_end - t_epoch_start,
            allreduce=(
                ar_acc + node.timeline.phase_total("allreduce", dev0) - ar0
            ),
            allreduce_wait=(
                aw_acc
                + node.timeline.phase_total("allreduce_wait", dev0)
                - aw0
            ),
            allreduce_hidden=(
                hid_acc
                + metrics.get_registry().total(
                    "grad_sync_hidden_seconds_total"
                )
                - hid0
            ),
        )
        t._epoch += 1
        t.history.append(stats)
        if t._needs_checkpoints():
            t._save_checkpoint()
        return stats

    # -- step / schedule implementations -----------------------------------

    def _step_symmetric(self, batch: np.ndarray,
                        phase_totals: PhaseTimes) -> float:
        """Rank 0 computes; other ranks are charged the same durations."""
        t = self.trainer
        node = t.node
        res = run_iteration(
            t.store, t.sampler, t.model, batch, 0,
            t.rngs.rank(0), optimizer=t.optimizer, charge_train=True,
            train_time_factor=t.layer_cost_factor,
            model_rng=t._model_rng,
        )
        for r in range(1, node.num_gpus):
            clk = node.gpu_clock[r]
            clk.advance(res.times.sample, phase="sample")
            clk.advance(res.times.gather, phase="gather")
            clk.advance(res.times.train, phase="train")
        t.grad_sync.charge(
            producers=[(node.gpu_clock[0].now, res.times.train)],
            phase="allreduce",
        )
        node.sync()
        phase_totals += res.times
        return res.loss

    def _epoch_pipelined(self, batches: list[np.ndarray],
                         phase_totals: PhaseTimes,
                         losses: list[float] | None = None) -> list[float]:
        """Double-buffered epoch: prefetch batch i+1 while batch i trains.

        Same math, same RNG stream consumption order as the sequential
        schedule — only the clock accounting overlaps: each iteration
        charges ``max(train_i, sample_{i+1}+gather_{i+1})``, with the first
        batch's prefetch fully exposed (the pipeline prologue).

        ``losses`` (when given) is appended to in place, one entry per
        *completed* batch — the recovery path uses its length as the batch
        cursor when a rank failure interrupts the pipeline.
        """
        t = self.trainer
        node = t.node
        losses = [] if losses is None else losses
        if not batches:
            return losses
        executor = PipelinedExecutor(t.store, t.sampler, rank=0)
        sample_rng = t.rngs.rank(0)

        executor.prefetch(batches[0], sample_rng, mirror_ranks=True)
        phase_totals += PhaseTimes(
            sample=executor.last_sample_time,
            gather=executor.last_gather_time,
        )
        node.sync()
        for i, batch in enumerate(batches):
            sg, x_np = executor.take()
            prefetch_t = 0.0
            if i + 1 < len(batches):
                prefetch_t = executor.prefetch(
                    batches[i + 1], sample_rng, mirror_ranks=True
                )
                phase_totals += PhaseTimes(
                    sample=executor.last_sample_time,
                    gather=executor.last_gather_time,
                )
            # training of batch i runs concurrently with that prefetch
            loss, _ = train_batch(
                t.model, sg, x_np, t.store.labels[batch],
                rng=t._model_rng, optimizer=t.optimizer,
            )
            train_t = (
                t.model.estimate_train_time(sg) * t.layer_cost_factor
            )
            executor.charge_overlapped_train(train_t, prefetch_t)
            t.grad_sync.charge(
                producers=[(node.gpu_clock[0].now, train_t)],
                phase="allreduce",
            )
            node.sync()
            losses.append(loss)
            phase_totals += PhaseTimes(train=train_t)
            t._poll_faults()
        return losses

    def _epoch_streaming(self, batches: list[np.ndarray],
                         phase_totals: PhaseTimes,
                         losses: list[float] | None = None) -> list[float]:
        """Out-of-core epoch: the host stream prefetches tier rows ahead.

        Up to ``prefetch_depth`` batches are in flight: each is sampled on
        the compute streams, its host/disk tier fetch launched on the host
        stream, and consumed later behind the fetch event — the scheduler
        charges only the exposed transfer tail (``host_fetch_wait``).  The
        per-iteration ``node.sync()`` of the other schedules is deliberately
        absent: the grad-sync barrier aligns the compute streams, while the
        host clock is free to run ahead into future batches' transfers.

        Same math, same RNG stream consumption order as the sequential
        schedule (sampling and dropout both in batch order), so the losses
        and trained weights are bit-identical.
        """
        t = self.trainer
        node = t.node
        losses = [] if losses is None else losses
        if not batches:
            return losses
        loader = StreamingLoader(
            t.store, t.sampler, rank=0,
            prefetch_depth=t.prefetch_depth,
        )
        sample_rng = t.rngs.rank(0)
        reg = metrics.get_registry()

        depth = min(loader.prefetch_depth, len(batches))
        for j in range(depth):
            loader.prefetch(batches[j], sample_rng)
            phase_totals += PhaseTimes(sample=loader.last_sample_time)
        nxt = depth
        for batch in batches:
            sg, x_np = loader.take()
            phase_totals += PhaseTimes(gather=loader.last_consume_time)
            if nxt < len(batches):
                loader.prefetch(batches[nxt], sample_rng)
                phase_totals += PhaseTimes(sample=loader.last_sample_time)
                nxt += 1
            # training of this batch overlaps the prefetch just launched
            loss, _ = train_batch(
                t.model, sg, x_np, t.store.labels[batch],
                rng=t._model_rng, optimizer=t.optimizer,
            )
            train_t = (
                t.model.estimate_train_time(sg) * t.layer_cost_factor
            )
            for r in range(node.num_gpus):
                node.streams.compute(r).launch(
                    train_t, phase="train", category="compute",
                    args={"edges": sg.total_edges(),
                          "input_nodes": int(sg.input_nodes.shape[0])},
                )
            reg.counter("phase_seconds_total", phase="train").inc(train_t)
            t.grad_sync.charge(
                producers=[(node.gpu_clock[0].now, train_t)],
                phase="allreduce",
            )
            losses.append(loss)
            phase_totals += PhaseTimes(train=train_t)
            t._poll_faults()
        return losses

    def _step_all_ranks(self, batch: np.ndarray, it: int) -> float:
        """True DDP: per-rank batches, real gradient all-reduce."""
        t = self.trainer
        node = t.node
        # split the global batch across ranks (pad by wrapping)
        per_rank = np.array_split(batch, node.num_gpus)
        losses = []
        train_times = []
        for rank in range(node.num_gpus):
            seeds = per_rank[rank]
            if seeds.size == 0:
                seeds = batch[:1]
            model = t.replicas[rank]
            model.train()
            res = run_iteration(
                t.store, t.sampler, model, seeds, rank,
                t.rngs.rank(rank), optimizer=None, charge_train=True,
                compute_grads=True,
            )
            losses.append(res.loss)
            train_times.append(res.times.train)
        t.ddp.sync_gradients(phase="allreduce", train_times=train_times)
        for opt in t.optimizers:
            opt.step()
        node.sync()
        return float(np.mean(losses))

    # -- fault recovery ----------------------------------------------------

    def _apply_recovery(self, exc, batches, cursor, losses):
        """Dispatch restart or elastic shrink (both supported here)."""
        t = self.trainer
        if t.recovery_policy == "shrink":
            batches = self._recover_shrink(exc, batches)
        else:
            self.restart()
            cursor = 0
            losses.clear()
        return batches, cursor, losses

    def _recover_shrink(
        self, exc: RankFailureError, batches: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Elastic shrink: re-shard onto the surviving GPUs and continue.

        Builds a replacement :class:`SimNode` with the survivors'
        GPU count, fast-forwards its clocks to the failure time plus
        detection/re-init, re-shards the graph store (WholeMemory setup and
        feature reload are charged), re-buckets the gradient sync, and
        translates the epoch's remaining batches into the new stored-ID
        space.  Model and optimizer state survive in place — the symmetric
        replica never lived on the failed GPU alone.
        """
        from repro import config

        t = self.trainer
        old_node = t.node
        old_store = t.store
        failed = {r for n, r in exc.ranks if n == old_node.node_id}
        survivors = old_node.num_gpus - len(failed)
        if survivors < 1:
            raise exc  # nothing left to shrink onto
        t_fail = max(c.now for c in old_node.gpu_clock)
        new_node = SimNode(dgx_a100(survivors), node_id=old_node.node_id)
        t0 = (
            t_fail
            + config.FAULT_DETECT_SECONDS
            + config.COMM_REINIT_SECONDS
        )
        for clock in new_node.gpu_clock:
            clock.wait_until(t0, phase="recovery_wait", category="fault")
        new_node.host_clock.wait_until(
            t0, phase="recovery_wait", category="fault"
        )
        # re-shard WholeMemory across the survivors (setup + PCIe reload
        # are charged to the new clocks under dsm_setup/load)
        new_store = old_store.rebuild_on(new_node, charge_setup=True)
        # the hash partition depends on the GPU count: translate the
        # remaining batches old-stored -> original -> new-stored
        batches = [
            new_store.partition.to_stored[
                old_store.partition.to_original[batch]
            ]
            for batch in batches
        ]
        t.node = new_node
        t.store = new_store
        t.sampler = NeighborSampler(new_store, t.sampler.fanouts)
        t.grad_sync = GradSyncModel(
            new_node,
            [p.data.size * p.data.itemsize
             for p in t.model.parameters()],
            bucket_cap_mb=t.grad_sync.bucket_cap_mb,
            overlap=t.grad_sync.overlap,
        )
        if t.fault_injector is not None:
            t.fault_injector.install(new_node)
        new_node.sync(phase="recovery_wait")
        return batches
