"""The multi-machine data-parallel plan behind :class:`ClusterTrainer`.

Extracted from the cluster trainer so gradient synchronisation and fault
recovery plug into the plan interface there too: the plan owns the
hierarchical (NVLink-ring + InfiniBand-ring) grad-sync engine, the
functional gradient averaging across machine-node replicas, and both
recovery policies (elastic shrink over the surviving machines, or
checkpoint restart into every replica).  The trainer keeps what is not
strategy: datasets, replicas' model state, RNG streams and reporting.

Byte-identity: every clock charge and metric increment happens in the
order the pre-plan cluster trainer produced, so the cluster golden
manifests are unchanged.
"""

from __future__ import annotations

import os

import numpy as np

from repro import config
from repro.faults import RankFailureError
from repro.telemetry import metrics
from repro.train.checkpoint import load_checkpoint
from repro.train.ddp import GradSyncModel
from repro.train.plans.base import ParallelismPlan


class ClusterDataParallelPlan(ParallelismPlan):
    """Data parallelism over machine nodes: one full replica per DGX."""

    name = "cluster_data_parallel"

    def bind(self, trainer) -> None:
        """Build the hierarchical grad-sync engine over all machine nodes."""
        self.trainer = trainer
        trainer.grad_sync = GradSyncModel(
            trainer.nodes,
            [p.data.nbytes for p in trainer.models[0].parameters()],
            bucket_cap_mb=trainer._bucket_cap_mb,
            overlap=trainer._overlap_grad_sync,
        )

    # -- gradient synchronisation ------------------------------------------

    def sync_gradients(self, producers, f64: bool = False) -> None:
        """Average gradients across replicas, then charge the collective.

        ``f64`` selects the float64-accumulate average used by replicated
        link prediction (exact for identical inputs); the timing side is
        the same bucketed NVLink + IB schedule either way.
        """
        if f64:
            self.average_gradients_f64()
        else:
            self.average_gradients()
        self.trainer.grad_sync.charge(producers, phase="allreduce")

    def average_gradients(self) -> None:
        """Functional half of the sync: average gradients across nodes."""
        t = self.trainer
        if t.num_machine_nodes > 1:
            params = [m.parameters() for m in t.models]
            for group in zip(*params):
                grads = [
                    p.grad if p.grad is not None else np.zeros_like(p.data)
                    for p in group
                ]
                mean = np.mean(grads, axis=0)
                for p in group:
                    p.grad = mean.copy()

    def average_gradients_f64(self) -> None:
        """Average dense grads across replicas in float64, cast back.

        Identical float32 inputs come back bitwise unchanged (``N*v`` is
        exact in float64 for a 24-bit mantissa and the division recovers
        ``v``), which the replicated link-prediction identity tests pin.
        """
        t = self.trainer
        if t.num_machine_nodes <= 1:
            return
        params = [m.parameters() for m in t.models]
        for group in zip(*params):
            grads = [
                p.grad if p.grad is not None else np.zeros_like(p.data)
                for p in group
            ]
            acc = np.zeros(grads[0].shape, dtype=np.float64)
            for g in grads:
                acc += g.astype(np.float64)
            mean = (acc / len(grads)).astype(np.float32)
            for p in group:
                p.grad = mean.copy()

    # -- fault recovery ----------------------------------------------------

    def recover(self, exc: RankFailureError, batches, cursor, losses):
        """Run the configured recovery policy after a machine-node loss.

        ``batches`` passes through untranslated — every machine node holds
        a full replica of the store, so stored IDs survive a shrink.
        """
        t = self.trainer
        t_fail = t._now()
        if t.recovery_policy == "shrink":
            self._recover_shrink(exc)
        else:
            self._recover_restart()
            cursor = 0
            losses.clear()
        t_after = t._now()
        record = {
            "time": t_fail,
            "nodes": sorted({n for n, _ in exc.ranks}),
            "policy": t.recovery_policy,
            "recovery_seconds": t_after - t_fail,
            "num_machine_nodes": t.num_machine_nodes,
        }
        t.recoveries.append(record)
        metrics.get_registry().counter(
            "recovery_seconds", policy=t.recovery_policy
        ).inc(t_after - t_fail)
        return batches, cursor, losses

    def _charge_recovery(self, node_indices, extra_dt: float = 0.0) -> None:
        """Charge detection + re-init (+ ``extra_dt``) to the given nodes."""
        t = self.trainer
        t_fail = t._now()
        dt = (
            config.FAULT_DETECT_SECONDS
            + config.COMM_REINIT_SECONDS
            + extra_dt
        )
        for i in node_indices:
            node = t.nodes[i]
            for clock in node.gpu_clock:
                clock.wait_until(
                    t_fail, phase="recovery_wait", category="fault"
                )
                clock.advance(
                    dt, phase="recovery", busy=False, category="fault",
                    args={"policy": t.recovery_policy},
                )
            node.sync(phase="recovery_wait")

    def _recover_shrink(self, exc: RankFailureError) -> None:
        """Drop the failed machine node(s); survivors continue in sync.

        Replicas are identical at every optimizer step, so no state moves —
        the survivors only pay failure detection and communicator re-init,
        and the gradient sync re-buckets over the remaining nodes.
        """
        t = self.trainer
        dead = {n for n, _ in exc.ranks}
        keep = [
            i for i, node in enumerate(t.nodes)
            if node.node_id not in dead
        ]
        if not keep:
            raise exc  # no surviving replica to continue with
        self._charge_recovery(keep)
        for name in (
            "nodes", "stores", "samplers", "models", "optimizers",
            "_model_rngs",
        ):
            setattr(t, name, [getattr(t, name)[i] for i in keep])
        t.num_machine_nodes = len(keep)
        t.grad_sync = GradSyncModel(
            t.nodes,
            [p.data.nbytes for p in t.models[0].parameters()],
            bucket_cap_mb=t.grad_sync.bucket_cap_mb,
            overlap=t.grad_sync.overlap,
        )
        if t.fault_injector is not None:
            t.fault_injector.install(t.nodes)

    def _recover_restart(self) -> None:
        """Reload the last epoch-boundary checkpoint into every replica.

        The failed node's process is assumed restarted on the same
        hardware: every node pays detection + re-init + the PCIe reload of
        the checkpointed model+optimizer state, then the epoch re-runs.
        """
        from repro.hardware import costmodel

        t = self.trainer
        state_bytes = 3 * sum(
            p.data.nbytes for p in t.models[0].parameters()
        )
        self._charge_recovery(
            range(t.num_machine_nodes),
            extra_dt=costmodel.pcie_host_to_gpu_time(
                state_bytes, shared=False
            ),
        )
        path = t._checkpoint_path()
        if os.path.exists(path):
            for model, opt in zip(t.models, t.optimizers):
                load_checkpoint(path, model, opt)
