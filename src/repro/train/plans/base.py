"""The parallelism-plan interface shared by every training strategy.

A *plan* owns everything about a training run that depends on how work is
spread across GPUs: which replicas/partitions exist, how an epoch is
scheduled onto the simulated streams, how gradients are synchronised, and
how a permanent rank failure is survived.  The
:class:`~repro.train.trainer.WholeGraphTrainer` owns everything that does
not — the dataset, the model/optimizer state, RNG streams, checkpoints and
reporting — and delegates the rest through this interface.

Concrete plans:

- :class:`~repro.train.plans.data_parallel.DataParallelPlan` — the default
  WholeGraph regime (symmetric or true-DDP data parallelism);
- :class:`~repro.train.plans.pipeline_parallel.PipelineParallelPlan` —
  GNNPipe-style layer-pipelined model parallelism;
- :class:`~repro.train.plans.pipeline_parallel.HybridParallelPlan` —
  pipeline stages replicated into data-parallel groups;
- :class:`~repro.train.plans.cagnet.CagnetFullGraphPlan` — CAGNET-style
  1.5D partitioned no-sampling full-graph training.
"""

from __future__ import annotations

import os

from repro import config
from repro.faults import RankFailureError
from repro.hardware import costmodel
from repro.telemetry import metrics
from repro.train.checkpoint import load_checkpoint


class ParallelismPlan:
    """Base class wiring one parallelisation strategy into the trainer.

    Lifecycle: the trainer constructs the plan (strategy knobs only — no
    trainer state), then calls :meth:`bind` exactly once from its own
    constructor.  ``bind`` validates the trainer's knobs against the
    strategy, builds the replica set and the gradient-sync engine, and
    stores the back-reference used by every later hook.
    """

    #: strategy identifier; appears in ``report_config`` for non-default
    #: plans and in error messages
    name = "abstract"

    def __init__(self):
        """Initialise the (unbound) plan."""
        self.trainer = None

    def bind(self, trainer) -> None:
        """Attach the plan to ``trainer`` and build its execution state.

        Subclasses validate the trainer's schedule knobs, then must leave
        ``trainer.replicas``, ``trainer.ddp`` and ``trainer.grad_sync``
        populated — the grad-sync engine is plan-owned state that merely
        lives on the trainer for reporting and test access.
        """
        raise NotImplementedError

    def train_epoch(self, max_iterations: int | None, overlap: bool):
        """Run one training epoch and return its ``EpochStats``.

        The plan owns the whole epoch: batch scheduling, stream charges,
        gradient sync, fault polling and recovery dispatch.  It must append
        the stats to ``trainer.history``, advance ``trainer._epoch`` and
        write an epoch-boundary checkpoint when the trainer needs one.
        """
        raise NotImplementedError

    def report_config(self) -> dict:
        """Config keys this plan adds to the run manifest.

        The default (data-parallel) plan returns ``{}`` so every manifest
        produced before the plan abstraction existed — including the golden
        files — stays byte-identical.
        """
        return {}

    # -- fault recovery ----------------------------------------------------

    def recover(self, exc: RankFailureError, batches, cursor, losses):
        """Run the trainer's recovery policy after a rank failure.

        Returns the (possibly translated) batches plus the batch cursor and
        loss list to resume with; every recovery lands in
        ``trainer.recoveries``, the ``recovery_seconds`` metric, and the
        trace.
        """
        t = self.trainer
        t_fail = max(c.now for c in t.node.gpu_clock)
        batches, cursor, losses = self._apply_recovery(
            exc, batches, cursor, losses
        )
        t_after = max(c.now for c in t.node.gpu_clock)
        record = {
            "time": t_fail,
            "ranks": [list(r) for r in exc.ranks],
            "policy": t.recovery_policy,
            "recovery_seconds": t_after - t_fail,
            "num_gpus": t.node.num_gpus,
        }
        t.recoveries.append(record)
        metrics.get_registry().counter(
            "recovery_seconds", policy=t.recovery_policy
        ).inc(t_after - t_fail)
        return batches, cursor, losses

    def _apply_recovery(self, exc, batches, cursor, losses):
        """Dispatch the configured policy (base: checkpoint restart only)."""
        if self.trainer.recovery_policy != "restart":
            raise ValueError(
                f"the {self.name} plan supports recovery_policy='restart' "
                f"only"
            )
        self.restart()
        losses.clear()
        return batches, 0, losses

    def restart(self) -> None:
        """Checkpoint-based restart: reload the last epoch-boundary state.

        The failed GPU is replaced (same GPU count); all ranks pay failure
        detection, communicator re-init, DSM re-establishment and the PCIe
        reload of the checkpointed model+optimizer state, then the epoch
        re-runs from its first batch.
        """
        t = self.trainer
        node = t.node
        now = max(c.now for c in node.gpu_clock)
        # weights + two Adam moments ride PCIe back to the device
        state_bytes = 3 * sum(
            p.data.nbytes for p in t.model.parameters()
        )
        dt = (
            config.FAULT_DETECT_SECONDS
            + config.COMM_REINIT_SECONDS
            + costmodel.dsm_setup_time(node.total_memory_usage())
            + costmodel.pcie_host_to_gpu_time(state_bytes, shared=False)
        )
        for clock in node.gpu_clock:
            clock.wait_until(now, phase="recovery_wait", category="fault")
            clock.advance(
                dt, phase="recovery", busy=False, category="fault",
                args={"policy": "restart"},
            )
        node.sync(phase="recovery_wait")
        path = t._checkpoint_path()
        if os.path.exists(path):
            load_checkpoint(path, t.model, t.optimizer)
            if t.compute_ranks == "all":
                for replica, opt in zip(t.replicas[1:], t.optimizers[1:]):
                    load_checkpoint(path, replica, opt)


def resolve_plan(plan) -> ParallelismPlan:
    """Turn the trainer's ``plan`` argument into a plan instance.

    ``None`` selects the default :class:`DataParallelPlan`; a string is a
    plan name (``"data_parallel"``, ``"pipeline"``, ``"hybrid"``,
    ``"cagnet"``) with default knobs; a :class:`ParallelismPlan` instance
    passes through (the way to set per-plan knobs).
    """
    from repro.train.plans.cagnet import CagnetFullGraphPlan
    from repro.train.plans.data_parallel import DataParallelPlan
    from repro.train.plans.pipeline_parallel import (
        HybridParallelPlan,
        PipelineParallelPlan,
    )

    if plan is None:
        return DataParallelPlan()
    if isinstance(plan, ParallelismPlan):
        if plan.trainer is not None:
            raise ValueError("plan instances bind to a single trainer")
        return plan
    names = {
        "data_parallel": DataParallelPlan,
        "pipeline": PipelineParallelPlan,
        "hybrid": HybridParallelPlan,
        "cagnet": CagnetFullGraphPlan,
        "cagnet_15d": CagnetFullGraphPlan,
    }
    try:
        return names[plan]()
    except KeyError:
        raise ValueError(
            f"unknown parallelism plan {plan!r}; available: {sorted(names)}"
        ) from None
