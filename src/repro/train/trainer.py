"""The WholeGraph trainer: epoch loops, evaluation, timing collection.

Two execution modes:

- ``compute_ranks="one"`` (default) — SPMD-symmetric simulation: rank 0
  runs the real math and its per-phase durations are charged to the other
  ranks too (all ranks process statistically-identical batches, the
  standard symmetry assumption of data-parallel performance models).  This
  is the mode the performance experiments run in.
- ``compute_ranks="all"`` — full data-parallel training: one model replica
  per GPU, per-rank batches, real gradient all-reduce every step
  (paper §III-D).  Used by the DDP correctness tests and multi-replica
  accuracy runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.dsm.comm import Communicator
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import NeighborSampler
from repro.telemetry import metrics
from repro.train.ddp import DistributedDataParallel, GradSyncModel
from repro.train.metrics import PhaseTimes
from repro.train.pipeline import PipelinedExecutor, run_iteration, train_batch
from repro.utils.rng import RngPool


@dataclass
class EpochStats:
    """Aggregate results of one training epoch."""

    epoch: int
    mean_loss: float
    iterations: int
    #: per-phase simulated seconds summed over iterations (rank-0 view)
    times: PhaseTimes
    #: simulated wall-clock duration of the epoch
    epoch_time: float
    #: *exposed* gradient all-reduce seconds (on the critical path)
    allreduce: float = 0.0
    #: collective entry-barrier stall seconds (skewed ranks aligning)
    allreduce_wait: float = 0.0
    #: all-reduce seconds hidden behind backward compute (overlap win)
    allreduce_hidden: float = 0.0

    def as_row(self) -> dict[str, float]:
        out = {"epoch": self.epoch, "loss": self.mean_loss,
               "iters": self.iterations, "epoch_time": self.epoch_time,
               "allreduce": self.allreduce,
               "allreduce_wait": self.allreduce_wait,
               "allreduce_hidden": self.allreduce_hidden}
        out.update(self.times.as_dict())
        return out


class WholeGraphTrainer:
    """Drives mini-batch GNN training on a :class:`MultiGpuGraphStore`."""

    def __init__(
        self,
        store,
        model_name: str,
        seed: int = 0,
        batch_size: int = config.BATCH_SIZE,
        fanouts=None,
        hidden: int = config.HIDDEN_SIZE,
        num_layers: int = config.NUM_LAYERS,
        lr: float = 3e-3,
        dropout: float = 0.5,
        compute_ranks: str = "one",
        layer_cost_factor: float = 1.0,
        overlap: bool = False,
        bucket_cap_mb: float | None = None,
        overlap_grad_sync: bool = True,
    ):
        """``layer_cost_factor`` scales the simulated *training-compute* time
        — 1.0 for WholeGraph's fused layers, >1 when the model is built from
        third-party (DGL/PyG) layer implementations (paper §IV-C5).

        ``overlap=True`` trains with the double-buffered pipelined schedule:
        batch *i+1*'s sample+gather prefetches while batch *i* trains, so
        the steady-state iteration time is the max of the two instead of the
        sum.  The trained model is bit-identical to ``overlap=False``
        (sampling and dropout use separate streams, consumed in batch order
        under both schedules).

        ``bucket_cap_mb`` sets the gradient bucket capacity of the Apex-DDP
        style synchronisation (default :data:`config.DDP_BUCKET_CAP_MB`;
        <= 0 forces one flat bucket) and ``overlap_grad_sync`` toggles
        hiding each bucket's all-reduce behind the backward pass — both are
        pure *timing* knobs, the trained weights are bit-identical either
        way."""
        self.store = store
        self.node = store.node
        self.model_name = model_name
        self.seed = int(seed)
        self.layer_cost_factor = float(layer_cost_factor)
        self.batch_size = int(batch_size)
        if fanouts is None:
            fanouts = [config.FANOUT] * num_layers
        else:
            # an explicit fanout list defines the depth
            fanouts = list(fanouts)
            num_layers = len(fanouts)
        self.sampler = NeighborSampler(store, fanouts)
        self.rngs = RngPool(seed, self.node.num_gpus)
        self.epoch_rng = self.rngs.named("epochs")
        if compute_ranks not in ("one", "all"):
            raise ValueError("compute_ranks must be 'one' or 'all'")
        if overlap and compute_ranks == "all":
            raise ValueError(
                "the pipelined schedule runs in the symmetric mode only"
            )
        self.compute_ranks = compute_ranks
        self.overlap = bool(overlap)
        #: dropout stream, separate from the sampling stream so the
        #: sequential and pipelined schedules consume both identically
        self._model_rng = self.rngs.named("dropout")

        init_rng = self.rngs.named("init")
        self.model = build_model(
            model_name, store.feature_dim, store.num_classes, init_rng,
            hidden=hidden, num_layers=num_layers, dropout=dropout,
        )
        self.optimizer = Adam(self.model.parameters(), lr=lr)
        if compute_ranks == "all":
            self.replicas = [self.model] + [
                build_model(
                    model_name, store.feature_dim, store.num_classes,
                    self.rngs.named(f"replica{r}"),
                    hidden=hidden, num_layers=num_layers, dropout=dropout,
                )
                for r in range(1, self.node.num_gpus)
            ]
            self.comm = Communicator(self.node)
            self.ddp = DistributedDataParallel(
                self.replicas, self.comm,
                bucket_cap_mb=bucket_cap_mb,
                overlap_grad_sync=overlap_grad_sync,
            )
            self.grad_sync = self.ddp.sync_model
            self.optimizers = [Adam(r.parameters(), lr=lr) for r in self.replicas]
            self.optimizers[0] = self.optimizer
        else:
            self.replicas = [self.model]
            self.ddp = None
            self.grad_sync = GradSyncModel(
                self.node,
                [p.data.size * p.data.itemsize
                 for p in self.model.parameters()],
                bucket_cap_mb=bucket_cap_mb,
                overlap=overlap_grad_sync,
            )

        self._epoch = 0
        self.history: list[EpochStats] = []

    # -- training ---------------------------------------------------------------------

    def _epoch_batches(self) -> list[np.ndarray]:
        """Shuffled train nodes cut into per-step global batches."""
        order = self.epoch_rng.permutation(self.store.train_nodes)
        nb = max(1, order.shape[0] // self.batch_size)
        return [
            order[i * self.batch_size : (i + 1) * self.batch_size]
            for i in range(nb)
        ]

    def train_epoch(
        self,
        max_iterations: int | None = None,
        overlap: bool | None = None,
    ) -> EpochStats:
        """One pass over the training nodes (optionally truncated).

        ``overlap`` overrides the constructor's schedule for this epoch;
        with the pipelined schedule, phase totals still record the *full*
        per-phase work while ``epoch_time`` reflects the overlap.
        """
        overlap = self.overlap if overlap is None else bool(overlap)
        if overlap and self.compute_ranks == "all":
            raise ValueError(
                "the pipelined schedule runs in the symmetric mode only"
            )
        self.model.train()
        node = self.node
        batches = self._epoch_batches()
        if max_iterations is not None:
            batches = batches[:max_iterations]
        t_epoch_start = node.sync()
        dev0 = node.gpu_memory[0].device
        ar0 = node.timeline.phase_total("allreduce", dev0)
        aw0 = node.timeline.phase_total("allreduce_wait", dev0)
        hid0 = metrics.get_registry().total("grad_sync_hidden_seconds_total")
        losses: list[float] = []
        phase_totals = PhaseTimes()

        if overlap:
            losses = self._epoch_pipelined(batches, phase_totals)
        else:
            for it, batch in enumerate(batches):
                if self.compute_ranks == "all":
                    losses.append(self._step_all_ranks(batch, it))
                else:
                    losses.append(self._step_symmetric(batch, phase_totals))
        t_epoch_end = node.sync()

        if self.compute_ranks == "all":
            phase_totals = PhaseTimes(
                sample=node.timeline.phase_total("sample", node.gpu_memory[0].device),
                gather=node.timeline.phase_total("gather", node.gpu_memory[0].device),
                train=node.timeline.phase_total("train", node.gpu_memory[0].device),
            )

        stats = EpochStats(
            epoch=self._epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            iterations=len(batches),
            times=phase_totals,
            epoch_time=t_epoch_end - t_epoch_start,
            allreduce=node.timeline.phase_total("allreduce", dev0) - ar0,
            allreduce_wait=(
                node.timeline.phase_total("allreduce_wait", dev0) - aw0
            ),
            allreduce_hidden=(
                metrics.get_registry().total("grad_sync_hidden_seconds_total")
                - hid0
            ),
        )
        self._epoch += 1
        self.history.append(stats)
        return stats

    def _step_symmetric(self, batch: np.ndarray,
                        phase_totals: PhaseTimes) -> float:
        """Rank 0 computes; other ranks are charged the same durations."""
        node = self.node
        res = run_iteration(
            self.store, self.sampler, self.model, batch, 0,
            self.rngs.rank(0), optimizer=self.optimizer, charge_train=True,
            train_time_factor=self.layer_cost_factor,
            model_rng=self._model_rng,
        )
        for r in range(1, node.num_gpus):
            clk = node.gpu_clock[r]
            clk.advance(res.times.sample, phase="sample")
            clk.advance(res.times.gather, phase="gather")
            clk.advance(res.times.train, phase="train")
        self.grad_sync.charge(
            producers=[(node.gpu_clock[0].now, res.times.train)],
            phase="allreduce",
        )
        node.sync()
        phase_totals += res.times
        return res.loss

    def _epoch_pipelined(self, batches: list[np.ndarray],
                         phase_totals: PhaseTimes) -> list[float]:
        """Double-buffered epoch: prefetch batch i+1 while batch i trains.

        Same math, same RNG stream consumption order as the sequential
        schedule — only the clock accounting overlaps: each iteration
        charges ``max(train_i, sample_{i+1}+gather_{i+1})``, with the first
        batch's prefetch fully exposed (the pipeline prologue).
        """
        node = self.node
        if not batches:
            return []
        executor = PipelinedExecutor(self.store, self.sampler, rank=0)
        sample_rng = self.rngs.rank(0)
        losses: list[float] = []

        executor.prefetch(batches[0], sample_rng, mirror_ranks=True)
        phase_totals += PhaseTimes(
            sample=executor.last_sample_time,
            gather=executor.last_gather_time,
        )
        node.sync()
        for i, batch in enumerate(batches):
            sg, x_np = executor.take()
            prefetch_t = 0.0
            if i + 1 < len(batches):
                prefetch_t = executor.prefetch(
                    batches[i + 1], sample_rng, mirror_ranks=True
                )
                phase_totals += PhaseTimes(
                    sample=executor.last_sample_time,
                    gather=executor.last_gather_time,
                )
            # training of batch i runs concurrently with that prefetch
            loss, _ = train_batch(
                self.model, sg, x_np, self.store.labels[batch],
                rng=self._model_rng, optimizer=self.optimizer,
            )
            train_t = (
                self.model.estimate_train_time(sg) * self.layer_cost_factor
            )
            executor.charge_overlapped_train(train_t, prefetch_t)
            self.grad_sync.charge(
                producers=[(node.gpu_clock[0].now, train_t)],
                phase="allreduce",
            )
            node.sync()
            losses.append(loss)
            phase_totals += PhaseTimes(train=train_t)
        return losses

    def _step_all_ranks(self, batch: np.ndarray, it: int) -> float:
        """True DDP: per-rank batches, real gradient all-reduce."""
        node = self.node
        # split the global batch across ranks (pad by wrapping)
        per_rank = np.array_split(batch, node.num_gpus)
        losses = []
        train_times = []
        for rank in range(node.num_gpus):
            seeds = per_rank[rank]
            if seeds.size == 0:
                seeds = batch[:1]
            model = self.replicas[rank]
            model.train()
            res = run_iteration(
                self.store, self.sampler, model, seeds, rank,
                self.rngs.rank(rank), optimizer=None, charge_train=True,
                compute_grads=True,
            )
            losses.append(res.loss)
            train_times.append(res.times.train)
        self.ddp.sync_gradients(phase="allreduce", train_times=train_times)
        for opt in self.optimizers:
            opt.step()
        node.sync()
        return float(np.mean(losses))

    # -- run artifacts ----------------------------------------------------------------

    def run_report(self, name: str = "wholegraph",
                   accuracy: float | None = None,
                   extra: dict | None = None):
        """Build the structured JSON manifest of everything trained so far.

        Captures config, seed, the rank-0 phase breakdown, feature-gather
        bandwidths, the metrics-registry snapshot, cache statistics and (if
        given) the final accuracy — see
        :mod:`repro.telemetry.run_report`.
        """
        from repro.telemetry.run_report import report_from_node

        return report_from_node(
            name,
            self.node,
            kind="train",
            config={
                "model": self.model_name,
                "batch_size": self.batch_size,
                "fanouts": self.sampler.fanouts,
                "num_gpus": self.node.num_gpus,
                "compute_ranks": self.compute_ranks,
                "overlap": self.overlap,
                "layer_cost_factor": self.layer_cost_factor,
                "bucket_cap_mb": self.grad_sync.bucket_cap_mb,
                "overlap_grad_sync": self.grad_sync.overlap,
                "grad_buckets": self.grad_sync.num_buckets,
            },
            seed=self.seed,
            feature_stats=getattr(self.store.feature_tensor, "stats", None),
            cache=self.store.feature_cache,
            accuracy=accuracy,
            history=[s.as_row() for s in self.history],
            extra=extra,
        )

    # -- inference --------------------------------------------------------------------

    def predict(
        self,
        nodes: np.ndarray,
        batch_size: int | None = None,
        rank: int = 0,
        charge: bool = True,
    ) -> np.ndarray:
        """Predict class labels for ``nodes`` (sampled inference).

        Unlike training steps, inference involves no gradient collectives
        (paper §I) — each batch is sample + gather + a forward pass, all on
        ``rank``.  With ``charge=True`` the phases land on the timeline
        under ``sample`` / ``gather`` / ``inference``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        self.model.eval()
        sampler = NeighborSampler(
            self.store, self.sampler.fanouts, charge=charge
        )
        rng = self.rngs.named("inference")
        out = np.empty(nodes.shape[0], dtype=np.int64)
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = sampler.sample(seeds, rank, rng)
            if charge:
                x_np = self.store.gather_features(
                    sg.input_nodes, rank, phase="gather"
                )
                self.node.gpu_clock[rank].advance(
                    self.model.estimate_inference_time(sg)
                    * self.layer_cost_factor,
                    phase="inference",
                )
            else:
                x_np = self.store.feature_tensor.gather_no_cost(
                    sg.input_nodes
                )
            logits = self.model(sg, Tensor(x_np), None)
            out[i : i + seeds.shape[0]] = logits.data.argmax(axis=-1)
        self.model.train()
        return out

    # -- evaluation ----------------------------------------------------------------------

    def evaluate(self, nodes: np.ndarray | None = None,
                 batch_size: int | None = None) -> float:
        """Sampled-inference accuracy over ``nodes`` (default: validation)."""
        if nodes is None:
            nodes = self.store.val_nodes
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        self.model.eval()
        eval_sampler = NeighborSampler(
            self.store, self.sampler.fanouts, charge=False
        )
        rng = self.rngs.named("eval")
        correct = 0
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = eval_sampler.sample(seeds, 0, rng)
            x = Tensor(
                self.store.feature_tensor.gather_no_cost(sg.input_nodes)
            )
            logits = self.model(sg, x, None)
            correct += int(
                (logits.data.argmax(axis=-1) == self.store.labels[seeds]).sum()
            )
        self.model.train()
        return correct / max(nodes.shape[0], 1)
