"""The WholeGraph trainer: epoch loops, evaluation, timing collection.

Two execution modes:

- ``compute_ranks="one"`` (default) — SPMD-symmetric simulation: rank 0
  runs the real math and its per-phase durations are charged to the other
  ranks too (all ranks process statistically-identical batches, the
  standard symmetry assumption of data-parallel performance models).  This
  is the mode the performance experiments run in.
- ``compute_ranks="all"`` — full data-parallel training: one model replica
  per GPU, per-rank batches, real gradient all-reduce every step
  (paper §III-D).  Used by the DDP correctness tests and multi-replica
  accuracy runs.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro import config
from repro.dsm.sparse_embedding import WholeEmbedding
from repro.faults import FaultInjector, FaultPlan
from repro.nn import functional as F
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.nn.sparse_optim import SparseAdam, SparseSGD
from repro.nn.tensor import Tensor
from repro.ops.negative_sampling import (
    sample_negative_edges,
    sample_positive_edges,
)
from repro.ops.neighbor_sampler import NeighborSampler
from repro.telemetry import metrics
from repro.train.checkpoint import save_checkpoint
from repro.train.metrics import PhaseTimes, roc_auc
from repro.train.plans.base import resolve_plan
from repro.utils.rng import RngPool

#: sparse-optimizer names accepted by the link-prediction task
SPARSE_OPTIMIZERS = {"adam": SparseAdam, "sgd": SparseSGD}


def sample_link_batch(
    csr, num_pairs: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One link-prediction batch: ``num_pairs`` positive edges plus the same
    number of uniform negative corruptions, with 1/0 labels."""
    src_p, dst_p = sample_positive_edges(csr, num_pairs, rng)
    src_n, dst_n = sample_negative_edges(csr, num_pairs, rng)
    src = np.concatenate([src_p, src_n])
    dst = np.concatenate([dst_p, dst_n])
    labels = np.concatenate([
        np.ones(num_pairs, dtype=np.float32),
        np.zeros(num_pairs, dtype=np.float32),
    ])
    return src, dst, labels


@dataclass
class LinkBatchResult:
    """Forward outputs of one link-prediction batch."""

    subgraph: object
    scores: Tensor
    loss: Tensor
    t_sample: float = 0.0
    t_gather: float = 0.0


def linkpred_forward(
    node,
    model,
    sampler: NeighborSampler,
    embedding: WholeEmbedding,
    src: np.ndarray,
    dst: np.ndarray,
    labels: np.ndarray,
    rank: int,
    sample_rng: np.random.Generator,
    model_rng: np.random.Generator | None,
    score_scale: float,
    charge: bool = True,
) -> LinkBatchResult:
    """Encode the pair endpoints and score every (src, dst) pair.

    The endpoints of all pairs are deduplicated into one seed set, sampled
    and encoded once; scores are scaled dot products of the endpoint
    embeddings against BCE-with-logits labels.  Shared by both trainers so
    the single-node and cluster link-prediction steps run bit-identical
    math.  With ``charge=True`` the sampler and the embedding gather
    advance ``rank``'s clock under ``sample``/``gather``.
    """
    seeds, inverse = np.unique(
        np.concatenate([src, dst]), return_inverse=True
    )
    clock = node.gpu_clock[rank]
    t0 = clock.now
    subgraph = sampler.sample(seeds, rank, sample_rng)
    t1 = clock.now
    if charge:
        e = embedding.forward(subgraph.input_nodes, rank=rank, phase="gather")
    else:
        e = Tensor(embedding.gather_no_cost(subgraph.input_nodes))
    t2 = clock.now
    h = model(subgraph, e, model_rng)
    left = inverse[: src.shape[0]]
    right = inverse[src.shape[0]:]
    scores = F.pairwise_dot(h, left, right) * score_scale
    loss = F.binary_cross_entropy_with_logits(scores, labels)
    return LinkBatchResult(
        subgraph=subgraph, scores=scores, loss=loss,
        t_sample=t1 - t0, t_gather=t2 - t1,
    )


@dataclass
class EpochStats:
    """Aggregate results of one training epoch."""

    epoch: int
    mean_loss: float
    iterations: int
    #: per-phase simulated seconds summed over iterations (rank-0 view)
    times: PhaseTimes
    #: simulated wall-clock duration of the epoch
    epoch_time: float
    #: *exposed* gradient all-reduce seconds (on the critical path)
    allreduce: float = 0.0
    #: collective entry-barrier stall seconds (skewed ranks aligning)
    allreduce_wait: float = 0.0
    #: all-reduce seconds hidden behind backward compute (overlap win)
    allreduce_hidden: float = 0.0
    #: plan-specific extra columns (pipeline bubbles, CAGNET collectives);
    #: ``None`` for the data-parallel plan so its rows — and the golden
    #: manifests built from them — keep their exact historical shape
    extras: dict | None = None

    def as_row(self) -> dict[str, float]:
        out = {"epoch": self.epoch, "loss": self.mean_loss,
               "iters": self.iterations, "epoch_time": self.epoch_time,
               "allreduce": self.allreduce,
               "allreduce_wait": self.allreduce_wait,
               "allreduce_hidden": self.allreduce_hidden}
        out.update(self.times.as_dict())
        if self.extras:
            out.update(self.extras)
        return out


class WholeGraphTrainer:
    """Drives mini-batch GNN training on a :class:`MultiGpuGraphStore`."""

    def __init__(
        self,
        store,
        model_name: str,
        seed: int = 0,
        batch_size: int = config.BATCH_SIZE,
        fanouts=None,
        hidden: int = config.HIDDEN_SIZE,
        num_layers: int = config.NUM_LAYERS,
        lr: float = 3e-3,
        dropout: float = 0.5,
        compute_ranks: str = "one",
        layer_cost_factor: float = 1.0,
        overlap: bool = False,
        streaming: bool = False,
        prefetch_depth: int | None = None,
        bucket_cap_mb: float | None = None,
        overlap_grad_sync: bool = True,
        fault_plan: FaultPlan | None = None,
        recovery_policy: str = "restart",
        checkpoint_dir: str | None = None,
        task: str = "node",
        embedding_dim: int | None = None,
        num_pairs: int | None = None,
        sparse_optimizer: str = "adam",
        plan=None,
    ):
        """``layer_cost_factor`` scales the simulated *training-compute* time
        — 1.0 for WholeGraph's fused layers, >1 when the model is built from
        third-party (DGL/PyG) layer implementations (paper §IV-C5).

        ``overlap=True`` trains with the double-buffered pipelined schedule:
        batch *i+1*'s sample+gather prefetches while batch *i* trains, so
        the steady-state iteration time is the max of the two instead of the
        sum.  The trained model is bit-identical to ``overlap=False``
        (sampling and dropout use separate streams, consumed in batch order
        under both schedules).

        ``streaming=True`` trains with the out-of-core streaming schedule
        (requires a store built with ``tier="tiered"``): a dedicated host
        stream prefetches the next ``prefetch_depth`` batches' host/disk
        tier rows into HBM while the current batch trains, so only the
        *exposed* tail of each transfer stalls the GPUs
        (:class:`~repro.train.streaming.StreamingLoader`).  Like the
        pipelined schedule, the trained model is bit-identical to a
        sequential run at equal seeds.

        ``bucket_cap_mb`` sets the gradient bucket capacity of the Apex-DDP
        style synchronisation (default :data:`config.DDP_BUCKET_CAP_MB`;
        <= 0 forces one flat bucket) and ``overlap_grad_sync`` toggles
        hiding each bucket's all-reduce behind the backward pass — both are
        pure *timing* knobs, the trained weights are bit-identical either
        way.

        ``fault_plan`` injects scheduled faults (:mod:`repro.faults`) into
        the run; a ``None`` or empty plan takes the exact fault-free code
        path.  ``recovery_policy`` selects how permanent rank failures are
        survived: ``"restart"`` reloads the last epoch-boundary checkpoint
        (written to ``checkpoint_dir``, or a temp dir) and re-runs the
        epoch on a replacement GPU; ``"shrink"`` re-shards WholeMemory
        across the surviving GPUs, re-buckets the gradient sync, and
        continues the epoch where it stopped (symmetric modes only).
        Transient faults (degraded links, stragglers, gather reply loss)
        never change the trained weights — only simulated time.

        ``task="linkpred"`` switches from node classification to
        link-prediction training over a DSM-sharded trainable
        :class:`~repro.dsm.sparse_embedding.WholeEmbedding` (``embedding_dim``
        wide, default the store's feature dim): each step scores
        ``num_pairs`` positive edges against as many uniform negatives
        (BCE), the encoder's dense parameters ride the usual bucketed grad
        sync, and the embedding's touched rows are updated by a sparse
        optimizer (``sparse_optimizer`` in {'adam', 'sgd'}) whose row-grad
        push rides the comm stream.  Runs in the sequential symmetric mode;
        transient fault plans apply, permanent rank failures are rejected.

        ``plan`` selects the parallelism strategy (:mod:`repro.train.plans`):
        ``None`` or ``"data_parallel"`` is the default WholeGraph regime
        described above; ``"pipeline"`` / ``"hybrid"`` / ``"cagnet"`` (or a
        :class:`~repro.train.plans.ParallelismPlan` instance carrying its
        own knobs) switch to layer-pipelined model parallelism or CAGNET
        1.5D full-graph training — see ``docs/parallelism.md``."""
        self.store = store
        self.node = store.node
        self.model_name = model_name
        self.seed = int(seed)
        self.layer_cost_factor = float(layer_cost_factor)
        self.batch_size = int(batch_size)
        if fanouts is None:
            fanouts = [config.FANOUT] * num_layers
        else:
            # an explicit fanout list defines the depth
            fanouts = list(fanouts)
            num_layers = len(fanouts)
        self.sampler = NeighborSampler(store, fanouts)
        self.hidden = int(hidden)
        self.num_layers = int(num_layers)
        self.dropout = float(dropout)
        self.lr = float(lr)
        self._bucket_cap_mb = bucket_cap_mb
        self._overlap_grad_sync = bool(overlap_grad_sync)
        self.rngs = RngPool(seed, self.node.num_gpus)
        self.epoch_rng = self.rngs.named("epochs")
        if compute_ranks not in ("one", "all"):
            raise ValueError("compute_ranks must be 'one' or 'all'")
        if overlap and compute_ranks == "all":
            raise ValueError(
                "the pipelined schedule runs in the symmetric mode only"
            )
        if streaming and compute_ranks == "all":
            raise ValueError(
                "the streaming schedule runs in the symmetric mode only"
            )
        if streaming and overlap:
            raise ValueError(
                "pick one schedule: overlap (pipelined prefetch) or "
                "streaming (out-of-core host prefetch)"
            )
        if streaming and getattr(store, "tier", None) != "tiered":
            raise ValueError(
                "the streaming loader needs tiered features — build the "
                "store with tier='tiered'"
            )
        self.compute_ranks = compute_ranks
        self.overlap = bool(overlap)
        self.streaming = bool(streaming)
        self.prefetch_depth = (
            config.PREFETCH_DEPTH if prefetch_depth is None
            else int(prefetch_depth)
        )
        #: dropout stream, separate from the sampling stream so the
        #: sequential and pipelined schedules consume both identically
        self._model_rng = self.rngs.named("dropout")

        if task not in ("node", "linkpred"):
            raise ValueError("task must be 'node' or 'linkpred'")
        if task == "linkpred" and (
            compute_ranks == "all" or overlap or streaming
        ):
            raise ValueError(
                "link prediction runs in the sequential symmetric mode"
            )
        self.task = task

        init_rng = self.rngs.named("init")
        if task == "linkpred":
            from repro.faults import RankFailure

            if fault_plan is not None and fault_plan.of_kind(RankFailure):
                raise ValueError(
                    "link prediction supports transient fault plans only"
                )
            if sparse_optimizer not in SPARSE_OPTIMIZERS:
                raise ValueError(
                    f"sparse_optimizer must be one of "
                    f"{sorted(SPARSE_OPTIMIZERS)}"
                )
            self.embedding_dim = (
                int(embedding_dim) if embedding_dim else store.feature_dim
            )
            self.num_pairs = int(num_pairs) if num_pairs else self.batch_size
            self.sparse_optim_name = sparse_optimizer
            # the encoder maps gathered embedding rows into a `hidden`-dim
            # score space; pairs are scored by scaled dot product
            self.model = build_model(
                model_name, self.embedding_dim, hidden, init_rng,
                hidden=hidden, num_layers=num_layers, dropout=dropout,
            )
            self._score_scale = 1.0 / float(np.sqrt(hidden))
            self.embedding = WholeEmbedding(
                self.node, store.num_nodes, self.embedding_dim,
                rng=self.rngs.named("embedding"),
            )
            self.sparse_optimizer = SPARSE_OPTIMIZERS[sparse_optimizer](
                [self.embedding], lr=lr
            )
            self._pair_rng = self.rngs.named("linkpred-pairs")
            self.iterations_per_epoch = max(
                1, store.train_nodes.shape[0] // self.batch_size
            )
        else:
            self.embedding = None
            self.sparse_optimizer = None
            self.model = build_model(
                model_name, store.feature_dim, store.num_classes, init_rng,
                hidden=hidden, num_layers=num_layers, dropout=dropout,
            )
        self.optimizer = Adam(self.model.parameters(), lr=lr)

        self._epoch = 0
        self.history: list[EpochStats] = []

        # -- fault injection & recovery ------------------------------------
        if recovery_policy not in ("restart", "shrink"):
            raise ValueError("recovery_policy must be 'restart' or 'shrink'")
        if recovery_policy == "shrink" and compute_ranks == "all":
            raise ValueError(
                "elastic shrink re-shards the symmetric store; use "
                "recovery_policy='restart' with compute_ranks='all'"
            )
        self.recovery_policy = recovery_policy
        self.fault_plan = fault_plan
        self.fault_injector = None
        self._checkpoint_dir = checkpoint_dir
        #: recovery actions taken so far (time, ranks, policy, cost)
        self.recoveries: list[dict] = []

        # -- parallelism plan ----------------------------------------------
        # the plan owns replicas, gradient sync and epoch scheduling; it
        # validates the schedule knobs against its strategy and populates
        # self.replicas / self.ddp / self.grad_sync
        self.plan = resolve_plan(plan)
        self.plan.bind(self)

        if fault_plan is not None and fault_plan:
            self.fault_injector = FaultInjector(fault_plan).install(self.node)
            if self._needs_checkpoints():
                self._save_checkpoint()

    def _needs_checkpoints(self) -> bool:
        from repro.faults import RankFailure

        return (
            self.fault_injector is not None
            and self.recovery_policy == "restart"
            and bool(self.fault_plan.of_kind(RankFailure))
        )

    def _checkpoint_path(self) -> str:
        if self._checkpoint_dir is None:
            self._checkpoint_dir = tempfile.mkdtemp(prefix="wg-ckpt-")
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        return os.path.join(self._checkpoint_dir, "latest.npz")

    def _save_checkpoint(self) -> None:
        save_checkpoint(
            self._checkpoint_path(), self.model, self.optimizer,
            epoch=self._epoch,
        )

    # -- training ---------------------------------------------------------------------

    def _epoch_batches(self) -> list[np.ndarray]:
        """Shuffled train nodes cut into per-step global batches."""
        order = self.epoch_rng.permutation(self.store.train_nodes)
        nb = max(1, order.shape[0] // self.batch_size)
        return [
            order[i * self.batch_size : (i + 1) * self.batch_size]
            for i in range(nb)
        ]

    def train_epoch(
        self,
        max_iterations: int | None = None,
        overlap: bool | None = None,
    ) -> EpochStats:
        """One pass over the training nodes (optionally truncated).

        ``overlap`` overrides the constructor's schedule for this epoch;
        with the pipelined schedule, phase totals still record the *full*
        per-phase work while ``epoch_time`` reflects the overlap.
        """
        overlap = self.overlap if overlap is None else bool(overlap)
        if self.task == "linkpred":
            if overlap:
                raise ValueError(
                    "link prediction runs in the sequential schedule"
                )
            return self._train_epoch_linkpred(max_iterations)
        if overlap and self.compute_ranks == "all":
            raise ValueError(
                "the pipelined schedule runs in the symmetric mode only"
            )
        return self.plan.train_epoch(max_iterations, overlap)

    # -- fault polling & recovery -------------------------------------------------

    def _poll_faults(self) -> None:
        """Detect due permanent failures (raises :class:`RankFailureError`).

        Called at iteration boundaries — the granularity at which a real
        DDP run notices a dead peer (the next collective hangs).
        """
        injector = self.node.fault_injector
        if injector is not None:
            injector.poll_rank_failures(
                max(c.now for c in self.node.gpu_clock),
                node_id=self.node.node_id,
            )

    # -- link prediction over the DSM embedding table ---------------------------

    def _train_epoch_linkpred(self, max_iterations: int | None) -> EpochStats:
        """One link-prediction epoch (sequential symmetric schedule)."""
        self.model.train()
        n_iter = self.iterations_per_epoch
        if max_iterations is not None:
            n_iter = min(n_iter, int(max_iterations))
        node = self.node
        dev0 = node.gpu_memory[0].device
        ar0 = node.timeline.phase_total("allreduce", dev0)
        aw0 = node.timeline.phase_total("allreduce_wait", dev0)
        hid0 = metrics.get_registry().total("grad_sync_hidden_seconds_total")
        t_start = node.sync()
        losses: list[float] = []
        phase_totals = PhaseTimes()
        for _ in range(n_iter):
            losses.append(self._step_linkpred(phase_totals))
            self._poll_faults()
        t_end = node.sync()
        stats = EpochStats(
            epoch=self._epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            iterations=n_iter,
            times=phase_totals,
            epoch_time=t_end - t_start,
            allreduce=node.timeline.phase_total("allreduce", dev0) - ar0,
            allreduce_wait=(
                node.timeline.phase_total("allreduce_wait", dev0) - aw0
            ),
            allreduce_hidden=(
                metrics.get_registry().total(
                    "grad_sync_hidden_seconds_total"
                )
                - hid0
            ),
        )
        self._epoch += 1
        self.history.append(stats)
        return stats

    def _step_linkpred(self, phase_totals: PhaseTimes) -> float:
        """One link-prediction step: score pairs, sync dense grads through
        the bucketed engine, push sparse row grads over the comm stream."""
        node = self.node
        clock = node.gpu_clock[0]
        src, dst, labels = sample_link_batch(
            self.store.csr, self.num_pairs, self._pair_rng
        )
        res = linkpred_forward(
            node, self.model, self.sampler, self.embedding,
            src, dst, labels, 0, self.rngs.rank(0), self._model_rng,
            self._score_scale, charge=True,
        )
        loss_val = float(res.loss.data)
        self.model.zero_grad()
        res.loss.backward()
        self.optimizer.step()
        sg = res.subgraph
        train_t = self.model.estimate_train_time(sg) * self.layer_cost_factor
        clock.advance(
            train_t, phase="train", category="compute",
            args={"edges": sg.total_edges(),
                  "input_nodes": int(sg.input_nodes.shape[0])},
        )
        reg = metrics.get_registry()
        reg.counter("iterations_total", schedule="linkpred").inc(1)
        reg.counter("phase_seconds_total", phase="sample").inc(res.t_sample)
        reg.counter("phase_seconds_total", phase="gather").inc(res.t_gather)
        reg.counter("phase_seconds_total", phase="train").inc(train_t)
        for r in range(1, node.num_gpus):
            clk = node.gpu_clock[r]
            clk.advance(res.t_sample, phase="sample")
            clk.advance(res.t_gather, phase="gather")
            clk.advance(train_t, phase="train")
        # dense encoder params: the bucketed grad-sync engine (the plan is
        # built from model.parameters() only — the embedding is not a
        # Parameter, so the sparse rows are skipped by construction)
        self.grad_sync.charge(
            producers=[(clock.now, train_t)],
            phase="allreduce",
        )
        # sparse rows: dedup + scatter-add + comm-lane push, touched-row
        # state update priced on the owning ranks
        self.sparse_optimizer.step(rank=0)
        node.sync()
        phase_totals += PhaseTimes(
            sample=res.t_sample, gather=res.t_gather, train=train_t
        )
        return loss_val

    def evaluate_linkpred(self, num_pairs: int = 2000) -> float:
        """Held-out link-prediction AUC over fresh positive/negative pairs.

        Functional only (no clock charges); every call draws the same
        ``linkpred-eval`` stream from its start, so repeated evaluations of
        the same trained state agree bitwise.
        """
        if self.task != "linkpred":
            raise ValueError("evaluate_linkpred needs task='linkpred'")
        rng = self.rngs.named("linkpred-eval")
        src, dst, labels = sample_link_batch(
            self.store.csr, num_pairs, rng
        )
        self.model.eval()
        eval_sampler = NeighborSampler(
            self.store, self.sampler.fanouts, charge=False
        )
        res = linkpred_forward(
            self.node, self.model, eval_sampler, self.embedding,
            src, dst, labels, 0, rng, None, self._score_scale, charge=False,
        )
        self.model.train()
        return roc_auc(res.scores.data, labels)

    # -- run artifacts ----------------------------------------------------------------

    def run_report(self, name: str = "wholegraph",
                   accuracy: float | None = None,
                   extra: dict | None = None):
        """Build the structured JSON manifest of everything trained so far.

        Captures config, seed, the rank-0 phase breakdown, feature-gather
        bandwidths, the metrics-registry snapshot, cache statistics and (if
        given) the final accuracy — see
        :mod:`repro.telemetry.run_report`.
        """
        from repro.telemetry.run_report import report_from_node

        cfg = {
            "model": self.model_name,
            "batch_size": self.batch_size,
            "fanouts": self.sampler.fanouts,
            "num_gpus": self.node.num_gpus,
            "compute_ranks": self.compute_ranks,
            "overlap": self.overlap,
            "layer_cost_factor": self.layer_cost_factor,
            "bucket_cap_mb": self.grad_sync.bucket_cap_mb,
            "overlap_grad_sync": self.grad_sync.overlap,
            "grad_buckets": self.grad_sync.num_buckets,
            # the plan makes a recovered run reproducible from its
            # manifest; None for both no-plan and empty-plan runs so
            # the two stay byte-identical (determinism contract)
            "fault_plan": (
                self.fault_plan.to_config()
                if self.fault_plan is not None and self.fault_plan
                else None
            ),
            "recovery_policy": self.recovery_policy,
        }
        # parallelism-plan keys appear only for non-default plans, so the
        # data-parallel manifests (and the goldens) stay byte-identical
        cfg.update(self.plan.report_config())
        # out-of-core knobs appear only when the tier is in play, so the
        # in-HBM manifests (and the goldens) stay byte-identical
        if getattr(self.store, "tier", None) == "tiered":
            cfg["tier"] = self.store.tier
            cfg["host_pinned_fraction"] = self.store._host_pinned_fraction
        if self.streaming:
            cfg["streaming"] = True
            cfg["prefetch_depth"] = self.prefetch_depth
        # link-prediction keys appear only for the recsys task, so the
        # node-classification manifests (and goldens) stay byte-identical
        if self.task == "linkpred":
            cfg["task"] = "linkpred"
            cfg["embedding_dim"] = self.embedding_dim
            cfg["num_pairs"] = self.num_pairs
            cfg["sparse_optimizer"] = self.sparse_optim_name
            extra = {
                "embedding": self.embedding.stats_dict(),
                "sparse_state_bytes": self.sparse_optimizer.state_bytes(),
                **(extra or {}),
            }
        return report_from_node(
            name,
            self.node,
            kind="train",
            config=cfg,
            seed=self.seed,
            feature_stats=getattr(self.store.feature_tensor, "stats", None),
            cache=self.store.feature_cache,
            accuracy=accuracy,
            history=[s.as_row() for s in self.history],
            extra={"recoveries": list(self.recoveries), **(extra or {})},
        )

    # -- inference --------------------------------------------------------------------

    def predict(
        self,
        nodes: np.ndarray,
        batch_size: int | None = None,
        rank: int = 0,
        charge: bool = True,
    ) -> np.ndarray:
        """Predict class labels for ``nodes`` (sampled inference).

        Unlike training steps, inference involves no gradient collectives
        (paper §I) — each batch is sample + gather + a forward pass, all on
        ``rank``.  With ``charge=True`` the phases land on the timeline
        under ``sample`` / ``gather`` / ``inference``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        self.model.eval()
        sampler = NeighborSampler(
            self.store, self.sampler.fanouts, charge=charge
        )
        rng = self.rngs.named("inference")
        out = np.empty(nodes.shape[0], dtype=np.int64)
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = sampler.sample(seeds, rank, rng)
            if charge:
                x_np = self.store.gather_features(
                    sg.input_nodes, rank, phase="gather"
                )
                self.node.gpu_clock[rank].advance(
                    self.model.estimate_inference_time(sg)
                    * self.layer_cost_factor,
                    phase="inference",
                )
            else:
                x_np = self.store.feature_tensor.gather_no_cost(
                    sg.input_nodes
                )
            logits = self.model(sg, Tensor(x_np), None)
            out[i : i + seeds.shape[0]] = logits.data.argmax(axis=-1)
        self.model.train()
        return out

    # -- evaluation ----------------------------------------------------------------------

    def evaluate(self, nodes: np.ndarray | None = None,
                 batch_size: int | None = None) -> float:
        """Sampled-inference accuracy over ``nodes`` (default: validation)."""
        if nodes is None:
            nodes = self.store.val_nodes
        nodes = np.asarray(nodes, dtype=np.int64)
        batch_size = batch_size or self.batch_size
        self.model.eval()
        eval_sampler = NeighborSampler(
            self.store, self.sampler.fanouts, charge=False
        )
        rng = self.rngs.named("eval")
        correct = 0
        for i in range(0, nodes.shape[0], batch_size):
            seeds = nodes[i : i + batch_size]
            sg = eval_sampler.sample(seeds, 0, rng)
            x = Tensor(
                self.store.feature_tensor.gather_no_cost(sg.input_nodes)
            )
            logits = self.model(sg, x, None)
            correct += int(
                (logits.data.argmax(axis=-1) == self.store.labels[seeds]).sum()
            )
        self.model.train()
        return correct / max(nodes.shape[0], 1)
