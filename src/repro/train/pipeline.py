"""The WholeGraph training iteration (paper Fig. 1 reworked onto GPUs).

One iteration on one GPU rank:

1. **sample** — multi-layer GPU neighbor sampling + AppendUnique over the
   multi-GPU graph store (all on-device, peer reads over NVLink);
2. **gather** — one global-gather kernel pulls the input frontier's
   features out of the distributed shared memory;
3. **train** — forward, backward, gradient all-reduce, optimizer step.

Each phase advances the rank's simulated clock under its phase label;
Fig. 9/11/12 are read off the resulting timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import NeighborSampler, SampledSubgraph
from repro.train.metrics import PhaseTimes, accuracy


@dataclass
class IterationResult:
    """Everything one training iteration produced."""

    loss: float
    batch_accuracy: float
    times: PhaseTimes
    subgraph: SampledSubgraph
    num_input_nodes: int


def run_iteration(
    store,
    sampler: NeighborSampler,
    model,
    seeds: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    optimizer=None,
    charge_train: bool = True,
    compute_grads: bool | None = None,
    train_time_factor: float = 1.0,
) -> IterationResult:
    """Run one mini-batch iteration on ``rank``.

    ``optimizer`` given: backward + step.  ``compute_grads=True`` without an
    optimizer: backward only (the DDP path, which steps after the gradient
    all-reduce).  Neither: pure inference (evaluation path).  The returned
    phase times are the clock deltas this iteration added on ``rank``.
    """
    if compute_grads is None:
        compute_grads = optimizer is not None
    node = store.node
    clock = node.gpu_clock[rank]

    t0 = clock.now
    subgraph = sampler.sample(seeds, rank, rng, phase="sample")
    t1 = clock.now

    x_np = store.gather_features(subgraph.input_nodes, rank, phase="gather")
    t2 = clock.now

    x = Tensor(x_np)
    logits = model(subgraph, x, rng if compute_grads else None)
    labels = store.labels[seeds]
    loss = F.cross_entropy(logits, labels)
    if compute_grads:
        model.zero_grad()
        loss.backward()
        if optimizer is not None:
            optimizer.step()
    if charge_train:
        clock.advance(
            model.estimate_train_time(subgraph) * train_time_factor,
            phase="train",
        )
    t3 = clock.now

    return IterationResult(
        loss=float(loss.data),
        batch_accuracy=accuracy(logits.data, labels),
        times=PhaseTimes(sample=t1 - t0, gather=t2 - t1, train=t3 - t2),
        subgraph=subgraph,
        num_input_nodes=int(subgraph.input_nodes.shape[0]),
    )
