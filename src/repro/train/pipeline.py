"""The WholeGraph training iteration (paper Fig. 1 reworked onto GPUs).

One iteration on one GPU rank:

1. **sample** — multi-layer GPU neighbor sampling + AppendUnique over the
   multi-GPU graph store (all on-device, peer reads over NVLink);
2. **gather** — one global-gather kernel pulls the input frontier's
   features out of the distributed shared memory;
3. **train** — forward, backward, gradient all-reduce, optimizer step.

Each phase advances the rank's simulated clock under its phase label;
Fig. 9/11/12 are read off the resulting timeline.

Two execution schedules are provided:

- :func:`run_iteration` — the sequential schedule: sample, gather and train
  back-to-back on the rank's clock (total = sum of the phases);
- :class:`PipelinedExecutor` — the double-buffered schedule: while batch *i*
  trains, batch *i+1*'s sample+gather runs concurrently (the prefetch
  stream), so the steady-state per-iteration time is
  ``max(train_i, sample_{i+1} + gather_{i+1})`` instead of the sum.  The
  functional math is identical — the models, losses and trained weights are
  bit-for-bit the same as the sequential schedule when sampling and dropout
  draw from separate streams (both schedules consume each stream in batch
  order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import NeighborSampler, SampledSubgraph
from repro.sim import OverlapWindow, VirtualStream, join
from repro.telemetry import metrics
from repro.train.metrics import PhaseTimes, accuracy


@dataclass
class IterationResult:
    """Everything one training iteration produced."""

    loss: float
    batch_accuracy: float
    times: PhaseTimes
    subgraph: SampledSubgraph
    num_input_nodes: int


def sample_and_gather(
    store,
    sampler: NeighborSampler,
    seeds: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    sample_phase: str = "sample",
    gather_phase: str = "gather",
) -> tuple[SampledSubgraph, np.ndarray, float, float]:
    """The data-preparation half of an iteration on ``rank``.

    Returns ``(subgraph, gathered features, sample time, gather time)``;
    both phases advance ``rank``'s clock under their own labels.
    """
    clock = store.node.gpu_clock[rank]
    t0 = clock.now
    subgraph = sampler.sample(seeds, rank, rng, phase=sample_phase)
    t1 = clock.now
    x_np = store.gather_features(
        subgraph.input_nodes, rank, phase=gather_phase
    )
    t2 = clock.now
    reg = metrics.get_registry()
    reg.counter("phase_seconds_total", phase=sample_phase).inc(t1 - t0)
    reg.counter("phase_seconds_total", phase=gather_phase).inc(t2 - t1)
    return subgraph, x_np, t1 - t0, t2 - t1


def train_batch(
    model,
    subgraph: SampledSubgraph,
    x_np: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator | None = None,
    optimizer=None,
    compute_grads: bool | None = None,
) -> tuple[float, float]:
    """The compute half: forward (+ backward + step) on gathered features.

    Purely functional — charges no clocks; callers account the simulated
    train time themselves (sequentially via ``estimate_train_time`` or
    overlapped in the pipelined schedule).  Returns ``(loss, accuracy)``.
    """
    if compute_grads is None:
        compute_grads = optimizer is not None
    x = Tensor(x_np)
    logits = model(subgraph, x, rng if compute_grads else None)
    loss = F.cross_entropy(logits, labels)
    if compute_grads:
        model.zero_grad()
        loss.backward()
        if optimizer is not None:
            optimizer.step()
    return float(loss.data), accuracy(logits.data, labels)


def run_iteration(
    store,
    sampler: NeighborSampler,
    model,
    seeds: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    optimizer=None,
    charge_train: bool = True,
    compute_grads: bool | None = None,
    train_time_factor: float = 1.0,
    model_rng: np.random.Generator | None = None,
) -> IterationResult:
    """Run one mini-batch iteration on ``rank`` (sequential schedule).

    ``optimizer`` given: backward + step.  ``compute_grads=True`` without an
    optimizer: backward only (the DDP path, which steps after the gradient
    all-reduce).  Neither: pure inference (evaluation path).  ``model_rng``
    gives dropout its own stream (defaults to ``rng`` — the legacy shared
    stream); the pipelined schedule relies on the split so both schedules
    consume each stream in the same order.  The returned phase times are the
    clock deltas this iteration added on ``rank``.
    """
    if compute_grads is None:
        compute_grads = optimizer is not None
    node = store.node
    clock = node.gpu_clock[rank]

    t0 = clock.now
    subgraph, x_np, t_sample, t_gather = sample_and_gather(
        store, sampler, seeds, rank, rng
    )
    labels = store.labels[seeds]
    loss, batch_acc = train_batch(
        model, subgraph, x_np, labels,
        rng=model_rng if model_rng is not None else rng,
        optimizer=optimizer, compute_grads=compute_grads,
    )
    if charge_train:
        clock.advance(
            model.estimate_train_time(subgraph) * train_time_factor,
            phase="train", category="compute",
            args={"edges": subgraph.total_edges(),
                  "input_nodes": int(subgraph.input_nodes.shape[0])},
        )
    t3 = clock.now
    reg = metrics.get_registry()
    reg.counter("iterations_total", schedule="sequential").inc(1)
    reg.counter("phase_seconds_total", phase="train").inc(
        t3 - t0 - t_sample - t_gather
    )

    return IterationResult(
        loss=loss,
        batch_accuracy=batch_acc,
        times=PhaseTimes(
            sample=t_sample, gather=t_gather,
            train=t3 - t0 - t_sample - t_gather,
        ),
        subgraph=subgraph,
        num_input_nodes=int(subgraph.input_nodes.shape[0]),
    )


class PipelinedExecutor:
    """Double-buffered sample+gather prefetch over one store/sampler pair.

    Drives the Fig. 1 loop with software pipelining: the caller asks for the
    current batch's prepared data (:meth:`take`) and immediately issues the
    next batch's prefetch (:meth:`prefetch`), then charges only the
    *exposed* portion of the train time via :meth:`charge_overlapped_train`
    — the part not hidden behind the prefetch that ran concurrently.

    The prefetch stream charges the ``sample``/``gather`` phases on the main
    clock (the copy/compute engines share the GPU's timeline); the train
    compute of the *previous* batch then only pays
    ``max(0, train - prefetch)`` — together that models the steady state
    ``max(train_i, sample_{i+1}+gather_{i+1})`` per iteration.
    """

    def __init__(self, store, sampler: NeighborSampler, rank: int = 0):
        self.store = store
        self.sampler = sampler
        self.rank = rank
        self.node = store.node
        self._staged: tuple[SampledSubgraph, np.ndarray] | None = None
        self._staged_time = 0.0
        #: sample/gather durations of the most recent prefetch
        self.last_sample_time = 0.0
        self.last_gather_time = 0.0

    def prefetch(
        self, seeds: np.ndarray, rng: np.random.Generator,
        mirror_ranks: bool = False,
    ) -> float:
        """Sample+gather ``seeds`` into the staging buffer; returns the
        prefetch duration.  ``mirror_ranks=True`` charges the same durations
        to all other ranks (the SPMD-symmetric approximation)."""
        if self._staged is not None:
            raise RuntimeError("staging buffer full — take() the batch first")
        sg, x_np, t_sample, t_gather = sample_and_gather(
            self.store, self.sampler, seeds, self.rank, rng
        )
        if mirror_ranks:
            streams = self.node.streams
            for r in range(self.node.num_gpus):
                if r == self.rank:
                    continue
                stream = streams.compute(r)
                stream.launch(t_sample, phase="sample")
                stream.launch(t_gather, phase="gather")
        self._staged = (sg, x_np)
        self.last_sample_time = t_sample
        self.last_gather_time = t_gather
        self._staged_time = t_sample + t_gather
        return self._staged_time

    @property
    def has_staged(self) -> bool:
        return self._staged is not None

    def take(self) -> tuple[SampledSubgraph, np.ndarray]:
        """Pop the staged (subgraph, features) pair for training."""
        if self._staged is None:
            raise RuntimeError("nothing staged — call prefetch() first")
        staged, self._staged = self._staged, None
        return staged

    def charge_overlapped_train(
        self, train_time: float, prefetch_time: float,
        ranks: list[int] | None = None, phase: str = "train",
    ) -> float:
        """Charge the exposed tail of an overlapped train phase.

        The train compute of batch *i* ran concurrently with the prefetch
        of batch *i+1*, which already advanced the clock: an
        :class:`~repro.sim.OverlapWindow` weighs the two, and only the
        train op's exposed tail is launched on the compute streams.
        Returns the exposed duration.
        """
        window = OverlapWindow(charged=prefetch_time)
        window.stream("compute").launch(train_time)
        exposed = window.exposed
        streams = self.node.streams
        targets = (
            range(self.node.num_gpus) if ranks is None else ranks
        )
        for r in targets:
            streams.compute(r).launch(
                exposed, phase=phase, category="compute",
                args={"train_time": train_time,
                      "hidden_by_prefetch": train_time - exposed},
            )
        reg = metrics.get_registry()
        reg.counter("iterations_total", schedule="pipelined").inc(1)
        reg.counter("phase_seconds_total", phase=phase).inc(train_time)
        reg.counter("overlap_hidden_seconds_total").inc(
            train_time - exposed
        )
        return exposed


# ---------------------------------------------------------------------------
# Bucketed gradient-synchronisation overlap engine (paper §III-D)
# ---------------------------------------------------------------------------
# Apex-style DDP launches one ring all-reduce per gradient *bucket*, as soon
# as the backward pass has produced the bucket's last gradient.  The comm
# stream therefore runs concurrently with the tail of backward compute; only
# whatever is still in flight when backward finishes is *exposed* on the
# iteration's critical path.  ``plan_grad_sync`` computes that schedule in
# time relative to the sync point (t=0 == the slowest rank's backward end);
# ``charge_grad_sync`` stamps it onto the simulated clocks and timeline.


@dataclass(frozen=True)
class GradSyncPlan:
    """Comm-stream schedule of one bucketed gradient synchronisation.

    All times are seconds relative to the *sync point*: the instant the
    slowest producing rank finishes its backward pass.  Bucket ``j``'s
    all-reduce occupies ``(starts[j], ends[j])`` on the (serial) comm
    stream; starts are <= 0 when the launch was hidden behind backward.
    """

    bucket_nbytes: tuple[int, ...]
    bucket_times: tuple[float, ...]
    starts: tuple[float, ...] = field(default=())
    ends: tuple[float, ...] = field(default=())
    exposed: float = 0.0

    @property
    def num_buckets(self) -> int:
        return len(self.bucket_nbytes)

    @property
    def total_comm(self) -> float:
        """Comm-stream busy time of the whole synchronisation."""
        return float(sum(self.bucket_times))

    @property
    def hidden(self) -> float:
        """Comm time overlapped with (hidden behind) backward compute."""
        return self.total_comm - self.exposed


def plan_grad_sync(
    bucket_nbytes: list[int] | tuple[int, ...],
    bucket_times: list[float] | tuple[float, ...],
    producers: list[tuple[float, float]] | None = None,
) -> GradSyncPlan:
    """Schedule one bucketed all-reduce against the backward window.

    ``producers`` lists the replicas producing gradients, each as
    ``(end_offset, window)``: the offset (<= 0) of that replica's backward
    end relative to the sync point, and the backward duration ``window``.
    Gradients are modelled as produced linearly across the window in bucket
    order (reverse parameter order), so bucket ``j`` — covering a cumulative
    byte fraction ``f_j`` of the model — is ready on a replica at
    ``end - window * (1 - f_j)``; the collective can launch once *every*
    replica has it ready.  The comm stream is serial: bucket ``j`` starts at
    ``max(ready_j, end_{j-1})``.  ``exposed`` is the schedule tail past the
    sync point — with no producers (or zero windows) everything is exposed,
    which is exactly the flat/non-overlapped baseline.
    """
    k = len(bucket_nbytes)
    if k == 0:
        return GradSyncPlan((), ())
    if len(bucket_times) != k:
        raise ValueError("bucket_nbytes and bucket_times length mismatch")
    if not producers:
        producers = [(0.0, 0.0)]
    total = float(sum(bucket_nbytes))
    # the serial comm stream, in sync-point-relative time: each bucket is
    # launched behind its readiness floor, and the stream cursor serializes
    comm = VirtualStream()
    cum = 0.0
    for j in range(k):
        cum += bucket_nbytes[j]
        frac = cum / total if total > 0 else 1.0
        ready = max(end - w * (1.0 - frac) for end, w in producers)
        comm.launch(bucket_times[j], not_before=ready)
    exposed = max(0.0, comm.ends[-1])
    return GradSyncPlan(
        bucket_nbytes=tuple(int(b) for b in bucket_nbytes),
        bucket_times=tuple(float(t) for t in bucket_times),
        starts=tuple(comm.starts),
        ends=tuple(comm.ends),
        exposed=exposed,
    )


def charge_grad_sync(
    nodes,
    plan: GradSyncPlan,
    phase: str = "allreduce",
    wait_phase: str = "allreduce_wait",
) -> float:
    """Stamp a :class:`GradSyncPlan` onto the simulated clocks.

    The compute streams of every GPU of ``nodes`` (one :class:`SimNode` or
    a list of them) first :func:`~repro.sim.join` — the collective's entry
    barrier, recorded as the distinct non-busy ``wait_phase`` — then each
    launches the plan's *exposed* tail behind the barrier event: the hidden
    portion already ran under the backward compute that the producing
    clocks charged.  The full bucket-by-bucket schedule is committed onto
    each node's ``<gpu0>/nccl`` comm-stream lane so the overlap is visible
    in the Chrome trace.  Returns the sync-point time.
    """
    node_list = nodes if isinstance(nodes, (list, tuple)) else [nodes]
    compute = [
        n.streams.compute(r)
        for n in node_list
        for r in range(n.num_gpus)
    ]
    barrier = join(compute, phase=wait_phase, category="comm")
    sync_point = barrier.time
    span_args = {
        "buckets": plan.num_buckets,
        "total_comm_us": round(plan.total_comm / 1e-6, 3),
        "hidden_us": round(plan.hidden / 1e-6, 3),
    }
    if plan.exposed > 0.0:
        for stream in compute:
            stream.launch(plan.exposed, deps=[barrier], phase=phase,
                          category="comm", args=span_args)
    for n in node_list:
        lane = n.streams.comm(0)
        for j in range(plan.num_buckets):
            start = sync_point + plan.starts[j]
            end = sync_point + plan.ends[j]
            if end <= start:
                continue
            # per-bucket exposed/hidden split in plan-relative time: the
            # portion of (starts[j], ends[j]) past the sync point is exposed
            exposed_j = max(0.0, plan.ends[j]) - max(0.0, plan.starts[j])
            lane.record(
                max(0.0, start), max(0.0, end),
                phase="allreduce_bucket", category="comm",
                args={"bucket": j, "nbytes": plan.bucket_nbytes[j],
                      "hidden": plan.ends[j] <= 0.0,
                      "exposed_s": exposed_j,
                      "hidden_s": plan.bucket_times[j] - exposed_j},
            )
    reg = metrics.get_registry()
    reg.counter("phase_seconds_total", phase=phase).inc(plan.exposed)
    reg.counter("grad_sync_comm_seconds_total").inc(plan.total_comm)
    reg.counter("grad_sync_exposed_seconds_total").inc(plan.exposed)
    reg.counter("grad_sync_hidden_seconds_total").inc(plan.hidden)
    for nbytes in plan.bucket_nbytes:
        reg.histogram("grad_bucket_bytes").observe(float(nbytes))
    return sync_point
