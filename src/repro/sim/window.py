"""Relative-time overlap planning: virtual streams and overlap windows.

The overlap engines plan their concurrency in *window-relative* time before
any real clock moves: the grad-sync planner schedules bucket all-reduces
against the backward window with t=0 at the sync point, and the pipelined
executor weighs a train op against the prefetch that ran concurrently.
Planning relative and committing absolute is not a style choice — it is the
bit-identity contract.  Computing ``(w0 + train) - (w0 + prefetch)`` in
absolute time is **not** bitwise equal to ``train - prefetch`` in floating
point, so a scheduler that subtracted absolute timestamps would drift from
the golden reports in the last ulp.  The :class:`VirtualStream` cursor
arithmetic below reproduces the legacy planners' float operation sequence
exactly.
"""

from __future__ import annotations

__all__ = ["VirtualStream", "OverlapWindow"]


class VirtualStream:
    """A serial stream in window-relative time (no clock attached).

    Ops are launched with a readiness floor (``not_before``); each starts at
    ``max(not_before, cursor)`` and moves the cursor to ``start +
    duration`` — the classic serial-queue recurrence, identical float-by-
    float to the legacy ``stream_free`` loop of ``plan_grad_sync``.
    """

    __slots__ = ("cursor", "starts", "ends")

    def __init__(self) -> None:
        self.cursor = -float("inf")
        self.starts: list[float] = []
        self.ends: list[float] = []

    def launch(
        self, duration: float, not_before: float = 0.0
    ) -> tuple[float, float]:
        """Enqueue an op; returns its ``(start, end)`` in window time."""
        start = max(not_before, self.cursor)
        self.cursor = start + duration
        self.starts.append(start)
        self.ends.append(self.cursor)
        return start, self.cursor

    @property
    def makespan(self) -> float:
        """End of the last op (``-inf`` when nothing was launched)."""
        return self.cursor


class OverlapWindow:
    """One overlap region: concurrent virtual work vs already-charged time.

    A window opens when two activities begin running concurrently — e.g.
    batch *i*'s training compute against batch *i+1*'s prefetch.  One side
    executes for real and charges the device clock (tracked via
    :meth:`charge`); the other side is planned on virtual streams.  At
    close, only the planned work's tail past the charged time is *exposed*
    on the critical path:

    ``exposed = max(0.0, makespan - charged)``

    which for a single op of duration ``d`` against charged time ``c`` is
    bitwise ``max(0.0, d - c)`` — the legacy double-buffering formula.
    """

    __slots__ = ("charged", "_streams")

    def __init__(self, charged: float = 0.0) -> None:
        self.charged = charged
        self._streams: dict[str, VirtualStream] = {}

    def stream(self, name: str) -> VirtualStream:
        """The named virtual stream of this window (created on first use)."""
        vs = self._streams.get(name)
        if vs is None:
            vs = VirtualStream()
            self._streams[name] = vs
        return vs

    def charge(self, dt: float) -> None:
        """Account real clock time that elapsed inside the window."""
        self.charged += dt

    @property
    def makespan(self) -> float:
        """Latest virtual-stream end (0.0 with no virtual work)."""
        if not self._streams:
            return 0.0
        return max(vs.makespan for vs in self._streams.values())

    @property
    def exposed(self) -> float:
        """Virtual work not hidden behind the charged time."""
        return max(0.0, self.makespan - self.charged)

    @property
    def hidden(self) -> float:
        """Virtual work that the charged time fully covered."""
        return self.makespan - self.exposed
